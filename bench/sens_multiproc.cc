/**
 * @file
 * §6.6 multi-process study: four randomly selected function instances
 * time-share one core; the experiment repeats ten times with different
 * workload mixes. Measures the cost of Memento's context-switch
 * obligations (HOT flush + TLB flush) relative to execution.
 *
 * Paper reference: the HOT flush is negligible compared to the
 * context-switch cost and frequency.
 */

#include <iostream>
#include <vector>

#include "an/report.h"
#include "bench_util.h"
#include "machine/machine.h"
#include "sim/rng.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

namespace {

/** Run four functions round-robin on one core; return (total, cs). */
std::pair<Cycles, Cycles>
runMix(const std::vector<const WorkloadSpec *> &mix,
       const MachineConfig &cfg)
{
    Machine machine(cfg);
    std::vector<Trace> traces;
    std::vector<std::unique_ptr<FunctionExecutor>> executors;
    std::vector<std::size_t> cursor(mix.size(), 0);
    for (const WorkloadSpec *spec : mix) {
        machine.createProcess(*spec);
        traces.push_back(TraceGenerator(*spec).generate());
        executors.push_back(std::make_unique<FunctionExecutor>(machine));
    }

    // Time slices of ~2000 trace operations (a few hundred
    // microseconds of simulated time, like a scheduler quantum).
    constexpr std::size_t kSlice = 2000;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t p = 0; p < mix.size(); ++p) {
            if (cursor[p] >= traces[p].size())
                continue;
            progress = true;
            machine.switchTo(static_cast<unsigned>(p));
            const std::size_t end =
                std::min(cursor[p] + kSlice, traces[p].size());
            executors[p]->runRange(*mix[p], traces[p], cursor[p], end);
            cursor[p] = end;
        }
    }
    return {machine.cycleLedger().total(),
            machine.cycleLedger().category(CycleCategory::ContextSwitch)};
}

} // namespace

int
main()
{
    std::cout << "=== Multi-process context-switch sensitivity ===\n\n";
    const auto functions = workloadsByDomain(Domain::Function);
    Rng rng(2023);

    TextTable t({"Trial", "Mix", "Total cycles", "CS cycles",
                 "CS share"});
    double share_sum = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<const WorkloadSpec *> mix;
        std::string names;
        for (int i = 0; i < 4; ++i) {
            const WorkloadSpec &spec =
                functions[rng.nextBelow(functions.size())];
            mix.push_back(&spec);
            names += (i ? "+" : "") + spec.id;
        }
        std::cerr << "  trial " << trial << ": " << names << "\n";
        auto [total, cs] = runMix(mix, mementoConfig());
        const double share =
            static_cast<double>(cs) / static_cast<double>(total);
        share_sum += share;

        t.newRow();
        t.cell(static_cast<std::uint64_t>(trial));
        t.cell(names);
        t.cell(total);
        t.cell(cs);
        t.cell(percentStr(share, 3));
    }
    t.print(std::cout);

    std::cout << "\nAverage context-switch share (incl. HOT flush): "
              << percentStr(share_sum / 10.0, 3) << "\n";
    std::cout << "Paper: negligible overall performance effect\n";
    return 0;
}
