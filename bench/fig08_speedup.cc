/**
 * @file
 * Fig. 8 reproduction: normalized speedup of Memento over the baseline
 * for all workloads, plus func-avg / data-avg / pltf-avg rows.
 *
 * Paper reference: functions 8-28% (16% avg), data processing 5-11%,
 * platform operations 4-7%.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 8: Normalized speedup ===\n\n";
    auto entries = runEverything();

    TextTable t({"Workload", "Group", "Base cycles", "Memento cycles",
                 "Speedup", ""});
    for (const Entry &e : entries) {
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(e.cmp.base.cycles);
        t.cell(e.cmp.memento.cycles);
        t.cell(e.cmp.speedup(), 3);
        t.cell(asciiBar((e.cmp.speedup() - 1.0) / 0.4, 20));
    }
    t.print(std::cout);

    auto speedup = [](const Entry &e) { return e.cmp.speedup(); };
    std::cout << "\nfunc-avg speedup: "
              << averageOver(entries, isFunction, speedup) << "\n";
    std::cout << "data-avg speedup: "
              << averageOver(entries, isDataProc, speedup) << "\n";
    std::cout << "pltf-avg speedup: "
              << averageOver(entries, isPlatform, speedup) << "\n";
    std::cout << "\nPaper: functions 1.08-1.28 (avg 1.16), "
                 "data 1.05-1.11, platform 1.04-1.07\n";
    return 0;
}
