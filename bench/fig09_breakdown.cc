/**
 * @file
 * Fig. 9 reproduction: where Memento's saved cycles come from —
 * hardware object allocation, hardware frees, hardware page
 * management, and main-memory bypass.
 *
 * Paper reference (function average): obj-alloc 33%, obj-free 32%,
 * page-mgmt 33%, bypass 2% (up to 17%); aes and jl get >90% from
 * object management; DataProc splits 37/58 between object allocation
 * and page management; platform ops get 71% from object allocations.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 9: Performance gains breakdown (% saved "
                 "cycles) ===\n\n";
    auto entries = runEverything();

    TextTable t({"Workload", "Group", "obj-alloc", "obj-free",
                 "page-mgmt", "bypass"});
    for (const Entry &e : entries) {
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(percentStr(e.breakdown.objAlloc));
        t.cell(percentStr(e.breakdown.objFree));
        t.cell(percentStr(e.breakdown.pageMgmt));
        t.cell(percentStr(e.breakdown.bypass));
    }
    t.print(std::cout);

    auto avg_component = [&](auto filter, auto get) {
        return averageOver(entries, filter, get);
    };
    auto print_group = [&](const char *name, auto filter) {
        std::cout << "  " << name << ": alloc "
                  << percentStr(avg_component(filter,
                         [](const Entry &e) { return e.breakdown.objAlloc; }))
                  << ", free "
                  << percentStr(avg_component(filter,
                         [](const Entry &e) { return e.breakdown.objFree; }))
                  << ", page "
                  << percentStr(avg_component(filter,
                         [](const Entry &e) { return e.breakdown.pageMgmt; }))
                  << ", bypass "
                  << percentStr(avg_component(filter,
                         [](const Entry &e) { return e.breakdown.bypass; }))
                  << "\n";
    };
    std::cout << "\nGroup averages:\n";
    print_group("func-avg", isFunction);
    print_group("data-avg", isDataProc);
    print_group("pltf-avg", isPlatform);
    std::cout << "\nPaper: func-avg 33/32/33/2; data 37/-/58/-; "
                 "platform 71% alloc\n";
    return 0;
}
