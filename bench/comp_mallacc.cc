/**
 * @file
 * §6.7 comparison with Mallacc: an idealized Mallacc (zero-latency,
 * always-hit malloc cache accelerating only the userspace fast paths)
 * versus Memento on the DeathStarBench C++ functions — the only
 * workloads Mallacc supports.
 *
 * Paper reference: idealized Mallacc 5–10% (8% avg) vs Memento 12–20%
 * (16% avg); Mallacc leaves all kernel memory management intact.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Comparison with idealized Mallacc "
                 "(DeathStarBench) ===\n\n";

    MachineConfig mallacc_cfg = mementoConfig();
    mallacc_cfg.memento.mallaccMode = true;

    TextTable t({"Workload", "Mallacc speedup", "Memento speedup"});
    double mallacc_sum = 0.0, memento_sum = 0.0;
    unsigned n = 0;
    for (const char *id : {"US", "UM", "CM", "MI"}) {
        const WorkloadSpec &spec = workloadById(id);
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();

        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());
        RunResult mallacc =
            Experiment::runOne(spec, trace, mallacc_cfg);
        RunResult mem = Experiment::runOne(spec, trace, mementoConfig());

        const double mallacc_speedup =
            static_cast<double>(base.cycles) /
            static_cast<double>(mallacc.cycles);
        const double memento_speedup =
            static_cast<double>(base.cycles) /
            static_cast<double>(mem.cycles);
        mallacc_sum += mallacc_speedup;
        memento_sum += memento_speedup;
        ++n;

        t.newRow();
        t.cell(spec.id);
        t.cell(mallacc_speedup, 3);
        t.cell(memento_speedup, 3);
    }
    t.print(std::cout);

    std::cout << "\nAverage: Mallacc " << mallacc_sum / n << ", Memento "
              << memento_sum / n << "\n";
    std::cout << "Paper: Mallacc 1.05-1.10 (avg 1.08) vs Memento "
                 "1.12-1.20 (avg 1.16)\n";
    return 0;
}
