/**
 * @file
 * Fig. 3 reproduction: allocation lifetime (malloc-free distance in
 * same-size-class allocations), 16-allocation buckets with a [257,Inf]
 * tail that also holds never-freed (OS batch-freed) objects.
 *
 * Paper reference: 71% of function allocations freed within 16
 * same-class allocations; 27% long-lived; C++ mostly short, Python
 * short with a long tail, Golang long-lived (GC never runs in
 * functions), platform long-lived, DataProc short.
 */

#include <iostream>
#include <map>

#include "an/lifetime.h"
#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 3: Allocation lifetime (malloc-free distance) "
                 "===\n\n";

    std::map<std::string, std::vector<double>> group_pct;
    std::map<std::string, unsigned> group_n;
    std::vector<std::string> labels;
    double func_short = 0.0;
    unsigned func_n = 0;

    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = TraceGenerator(spec).generate();
        const TraceProfile profile = profileTrace(trace);
        const Histogram &h = profile.lifetimeHist;
        if (labels.empty()) {
            for (std::size_t b = 0; b < h.buckets(); ++b)
                labels.push_back(h.label(b));
        }
        auto &acc = group_pct[groupLabel(spec)];
        acc.resize(h.buckets(), 0.0);
        for (std::size_t b = 0; b < h.buckets(); ++b)
            acc[b] += h.percent(b);
        ++group_n[groupLabel(spec)];
        if (spec.domain == Domain::Function) {
            func_short += h.percent(0);
            ++func_n;
        }
    }

    std::vector<std::string> headers = {"Bucket"};
    for (const auto &[label, n] : group_n)
        headers.push_back(label);
    TextTable t(headers);
    for (std::size_t b = 0; b < labels.size(); ++b) {
        t.newRow();
        t.cell(labels[b]);
        for (const auto &[label, n] : group_n)
            t.cell(group_pct[label][b] / n, 1);
    }
    t.print(std::cout);

    std::cout << "\nFunction allocations freed within 16 same-class "
                 "allocations: "
              << percentStr(func_short / func_n / 100.0) << "\n";
    std::cout << "Paper: 71% within 16; 27% long-lived ([257,Inf] incl. "
                 "never-freed)\n";
    return 0;
}
