/**
 * @file
 * Ablation study of Memento's design choices (beyond the paper's own
 * sensitivity studies): objects per arena (the paper picks 256 to
 * balance metadata cost and internal fragmentation), the eager
 * arena-prefetch optimization (§3.1), the main-memory bypass (§3.3),
 * and the hardware page pool's refill batch.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

namespace {

double
speedupUnder(const WorkloadSpec &spec, const Trace &trace,
             const MachineConfig &memento_cfg)
{
    RunResult base = Experiment::runOne(spec, trace, defaultConfig());
    RunResult mem = Experiment::runOne(spec, trace, memento_cfg);
    return static_cast<double>(base.cycles) /
           static_cast<double>(mem.cycles);
}

} // namespace

int
main()
{
    const WorkloadSpec &spec = workloadById("html");
    const Trace trace = TraceGenerator(spec).generate();
    std::cout << "=== Design ablations (workload: " << spec.id
              << ") ===\n\n";

    // 1. Objects per arena.
    std::cout << "Objects per arena (paper picks 256; the header's\n"
                 "bitmap field caps the arena at 256 objects):\n";
    {
        TextTable t({"objects/arena", "Speedup", "Inactive slots",
                     "Arena grants"});
        for (unsigned objs : {32u, 64u, 128u, 256u}) {
            MachineConfig cfg = mementoConfig();
            cfg.memento.objectsPerArena = objs;
            RunResult base =
                Experiment::runOne(spec, trace, defaultConfig());
            RunResult mem = Experiment::runOne(spec, trace, cfg);
            t.newRow();
            t.cell(static_cast<std::uint64_t>(objs));
            t.cell(static_cast<double>(base.cycles) / mem.cycles, 4);
            t.cell(percentStr(mem.fragInactiveFraction, 2));
            t.cell(mem.objAllocs == 0
                       ? std::string("-")
                       : std::to_string(mem.allocListOps));
        }
        t.print(std::cout);
    }

    // 2. Eager arena prefetch.
    std::cout << "\nEager arena prefetch (§3.1 optimization):\n";
    {
        MachineConfig eager = mementoConfig();
        MachineConfig lazy = mementoConfig();
        lazy.memento.eagerArenaPrefetch = false;
        TextTable t({"prefetch", "Speedup", "HOT alloc miss"});
        for (auto [name, cfg] : {std::pair{"eager", eager},
                                 std::pair{"demand", lazy}}) {
            RunResult base =
                Experiment::runOne(spec, trace, defaultConfig());
            RunResult mem = Experiment::runOne(spec, trace, cfg);
            t.newRow();
            t.cell(name);
            t.cell(static_cast<double>(base.cycles) / mem.cycles, 4);
            t.cell(mem.hotAllocMisses);
        }
        t.print(std::cout);
    }

    // 3. Main-memory bypass.
    std::cout << "\nMain-memory bypass (§3.3):\n";
    {
        MachineConfig off = mementoConfig();
        off.memento.bypassEnabled = false;
        TextTable t({"bypass", "Speedup", "DRAM MB"});
        for (auto [name, cfg] : {std::pair{"on", mementoConfig()},
                                 std::pair{"off", off}}) {
            RunResult base =
                Experiment::runOne(spec, trace, defaultConfig());
            RunResult mem = Experiment::runOne(spec, trace, cfg);
            t.newRow();
            t.cell(name);
            t.cell(static_cast<double>(base.cycles) / mem.cycles, 4);
            t.cell(mem.dramBytes >> 20);
        }
        t.print(std::cout);
    }

    // 4. Page-pool refill batch.
    std::cout << "\nPage-pool refill batch (OS grants per refill):\n";
    {
        TextTable t({"refill pages", "Speedup", "Pool refills",
                     "Peak pages"});
        for (unsigned refill : {16u, 64u, 256u}) {
            MachineConfig cfg = mementoConfig();
            cfg.memento.pagePoolRefill = refill;
            cfg.memento.pagePoolLowWater = refill / 4;
            RunResult base =
                Experiment::runOne(spec, trace, defaultConfig());
            RunResult mem = Experiment::runOne(spec, trace, cfg);
            t.newRow();
            t.cell(static_cast<std::uint64_t>(refill));
            t.cell(static_cast<double>(base.cycles) / mem.cycles, 4);
            t.cell(mem.poolRefills);
            t.cell(mem.peakResidentPages);
        }
        t.print(std::cout);
    }

    // 5. HOT latency sensitivity.
    std::cout << "\nHOT access latency:\n";
    {
        TextTable t({"HOT cycles", "Speedup"});
        for (Cycles lat : {1u, 2u, 4u, 8u}) {
            MachineConfig cfg = mementoConfig();
            cfg.memento.hotLatency = lat;
            t.newRow();
            t.cell(static_cast<std::uint64_t>(lat));
            t.cell(speedupUnder(spec, trace, cfg), 4);
        }
        t.print(std::cout);
    }
    return 0;
}
