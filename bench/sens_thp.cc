/**
 * @file
 * Extension study (not in the paper): can transparent huge pages — the
 * kernel's own answer to page-management overhead — capture Memento's
 * gains in software?
 *
 * THP collapses up to 512 demand faults into one, shortens walks, and
 * widens TLB reach, but pays 2 MiB zeroing per fault, suffers internal
 * fragmentation on sparse serverless heaps, and does nothing for the
 * userspace allocator half of the problem (Table 2). The expected
 * answer, which this bench quantifies: THP recovers part of the
 * kernel share at a footprint cost; Memento still wins overall.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Transparent huge pages vs Memento ===\n\n";

    MachineConfig thp_cfg = defaultConfig();
    thp_cfg.kernel.transparentHugePages = true;

    TextTable t({"Workload", "Lang", "THP speedup", "Memento speedup",
                 "THP footprint", "kernel MM left"});
    double thp_sum = 0.0, mem_sum = 0.0;
    unsigned n = 0;
    for (const char *id :
         {"html", "bfs", "jd", "html-go", "bfs-go", "US"}) {
        const WorkloadSpec &spec = workloadById(id);
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();

        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());
        RunResult thp = Experiment::runOne(spec, trace, thp_cfg);
        RunResult mem = Experiment::runOne(spec, trace, mementoConfig());

        const double thp_speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(thp.cycles);
        const double mem_speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(mem.cycles);
        thp_sum += thp_speedup;
        mem_sum += mem_speedup;
        ++n;

        t.newRow();
        t.cell(spec.id);
        t.cell(languageName(spec.lang));
        t.cell(thp_speedup, 3);
        t.cell(mem_speedup, 3);
        t.cell(static_cast<double>(thp.peakResidentPages) /
                   static_cast<double>(base.peakResidentPages),
               2);
        t.cell(percentStr(
            base.kernelMmCycles() == 0
                ? 0.0
                : static_cast<double>(thp.kernelMmCycles()) /
                      static_cast<double>(base.kernelMmCycles())));
    }
    t.print(std::cout);

    std::cout << "\nAverage: THP " << thp_sum / n << " vs Memento "
              << mem_sum / n << "\n";
    std::cout << "THP attacks only the kernel half of Table 2; the "
                 "userspace allocator path is untouched.\n";
    return 0;
}
