/**
 * @file
 * Table 1 reproduction: joint distribution of allocation size and
 * lifetime over the function workloads.
 *
 * Paper reference: small+short 61%, small+long 32%, large+short 6.55%,
 * large+long 0.45% (function average); DataProc 97% small+short;
 * platform 99% small+long.
 */

#include <iostream>

#include "an/lifetime.h"
#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

namespace {

JointDistribution
averageJoint(Domain domain)
{
    JointDistribution avg;
    unsigned n = 0;
    for (const WorkloadSpec &spec : workloadsByDomain(domain)) {
        const Trace trace = TraceGenerator(spec).generate();
        const JointDistribution j = profileTrace(trace).joint;
        avg.smallShort += j.smallShort;
        avg.smallLong += j.smallLong;
        avg.largeShort += j.largeShort;
        avg.largeLong += j.largeLong;
        ++n;
    }
    avg.smallShort /= n;
    avg.smallLong /= n;
    avg.largeShort /= n;
    avg.largeLong /= n;
    return avg;
}

void
printJoint(const char *title, const JointDistribution &j)
{
    std::cout << title << "\n";
    TextTable t({"", "Small (<=512B)", "Large"});
    t.newRow();
    t.cell("Short-lived");
    t.cell(percentStr(j.smallShort, 2));
    t.cell(percentStr(j.largeShort, 2));
    t.newRow();
    t.cell("Long-lived");
    t.cell(percentStr(j.smallLong, 2));
    t.cell(percentStr(j.largeLong, 2));
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Table 1: Combined distribution of size and "
                 "lifetime ===\n\n";
    printJoint("Functions (paper: 61% / 6.55% ; 32% / 0.45%):",
               averageJoint(Domain::Function));
    printJoint("Data processing (paper: ~97% small+short):",
               averageJoint(Domain::DataProc));
    printJoint("Serverless platform (paper: ~99% small, long-lived):",
               averageJoint(Domain::Platform));
    return 0;
}
