/**
 * @file
 * §6.6 allocator-tuning study: sweep the software allocator's arena
 * size and observe the effect on Memento's speedup.
 *
 * Paper reference: enlarging the software arena reduces mmap frequency
 * (at a fragmentation cost) and changes Memento's speedup by less than
 * 1%; physical footprint is unaffected because mmap reserves lazily.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Software-allocator tuning sensitivity (pymalloc "
                 "arena size) ===\n\n";

    TextTable t({"Workload", "Arena KB", "Base cycles", "mmap calls",
                 "Memento speedup", "Peak pages"});
    for (const char *id : {"html", "jd", "mk"}) {
        const WorkloadSpec &spec = workloadById(id);
        const Trace trace = TraceGenerator(spec).generate();
        double ref_speedup = 0.0;
        for (std::uint64_t arena_kb : {256, 512, 1024}) {
            std::cerr << "  " << id << " @ " << arena_kb << "KB...\n";
            MachineConfig base_cfg = defaultConfig();
            base_cfg.tuning.pymallocArenaBytes = arena_kb << 10;
            MachineConfig mem_cfg = mementoConfig();
            mem_cfg.tuning.pymallocArenaBytes = arena_kb << 10;

            RunResult base = Experiment::runOne(spec, trace, base_cfg);
            RunResult mem = Experiment::runOne(spec, trace, mem_cfg);
            const double speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(mem.cycles);
            if (arena_kb == 256)
                ref_speedup = speedup;

            t.newRow();
            t.cell(spec.id);
            t.cell(arena_kb);
            t.cell(base.cycles);
            t.cell(base.mmapCalls);
            t.cell(speedup, 3);
            t.cell(base.peakResidentPages);
            (void)ref_speedup;
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: larger arenas cut mmap frequency; Memento "
                 "speedup changes by <1%; footprint unaffected\n";
    return 0;
}
