/**
 * @file
 * §6.1 iso-storage study: give the HOT's SRAM budget to the L1D
 * instead (a hypothetical 9-way L1D at the same latency) and compare
 * against Memento.
 *
 * Paper reference: the 9-way L1D yields ~3% overall speedup, versus
 * 28% for Memento on the best workload (dh).
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Iso-storage comparison (9-way L1D vs Memento) "
                 "===\n\n";

    // 9-way L1D with the same set count: 36 KB, matching the extra
    // 3.4 KB HOT SRAM within one way's granularity.
    MachineConfig iso_cfg = defaultConfig();
    iso_cfg.l1d = CacheConfig{36 << 10, 9, iso_cfg.l1d.latency};

    TextTable t({"Workload", "Iso-L1D speedup", "Memento speedup"});
    double iso_sum = 0.0, memento_sum = 0.0;
    unsigned n = 0;
    for (const char *id : {"html", "aes", "jl", "US", "UM"}) {
        const WorkloadSpec &spec = workloadById(id);
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();

        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());
        RunResult iso = Experiment::runOne(spec, trace, iso_cfg);
        RunResult mem = Experiment::runOne(spec, trace, mementoConfig());

        const double iso_speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(iso.cycles);
        const double mem_speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(mem.cycles);
        iso_sum += iso_speedup;
        memento_sum += mem_speedup;
        ++n;

        t.newRow();
        t.cell(spec.id);
        t.cell(iso_speedup, 3);
        t.cell(mem_speedup, 3);
    }
    t.print(std::cout);

    std::cout << "\nAverage: iso-L1D " << iso_sum / n << ", Memento "
              << memento_sum / n << "\n";
    std::cout << "Paper: iso-storage ~1.03 overall vs Memento up to "
                 "1.28\n";
    return 0;
}
