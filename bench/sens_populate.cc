/**
 * @file
 * §6.6 MAP_POPULATE study: force the OS to eagerly populate mmap'd
 * regions and measure the performance and footprint effect per
 * language.
 *
 * Paper reference: Golang +3% performance but 8.6x physical footprint
 * (huge reservations); Python/C++ no significant speedup change, +9.6%
 * memory.
 */

#include <iostream>
#include <map>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== MAP_POPULATE sensitivity ===\n\n";

    MachineConfig pop_cfg = defaultConfig();
    pop_cfg.kernel.mapPopulate = true;

    struct Agg
    {
        double perf = 0.0;
        double mem = 0.0;
        unsigned n = 0;
    };
    std::map<std::string, Agg> groups;

    TextTable t({"Workload", "Lang", "Perf vs base", "Footprint vs base"});
    for (const WorkloadSpec &spec : workloadsByDomain(Domain::Function)) {
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();
        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());
        RunResult populated = Experiment::runOne(spec, trace, pop_cfg);

        const double perf = static_cast<double>(base.cycles) /
                            static_cast<double>(populated.cycles);
        const double mem =
            static_cast<double>(populated.peakResidentPages) /
            static_cast<double>(base.peakResidentPages);

        t.newRow();
        t.cell(spec.id);
        t.cell(languageName(spec.lang));
        t.cell(perf, 3);
        t.cell(mem, 2);

        Agg &agg = groups[languageName(spec.lang)];
        agg.perf += perf;
        agg.mem += mem;
        ++agg.n;
    }
    t.print(std::cout);

    std::cout << "\nPer-language averages:\n";
    for (const auto &[lang, agg] : groups) {
        std::cout << "  " << lang << ": perf x" << agg.perf / agg.n
                  << ", footprint x" << agg.mem / agg.n << "\n";
    }
    std::cout << "\nPaper: Golang +3% perf but 8.6x footprint; "
                 "Python/C++ ~no speedup change, +9.6% memory\n";
    return 0;
}
