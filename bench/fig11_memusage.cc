/**
 * @file
 * Fig. 11 reproduction: normalized aggregate memory usage (cumulative
 * physical pages allocated during execution), user / kernel / total.
 *
 * Paper reference: functions total -15% (user -10%, kernel -28%);
 * Python/Golang userspace increases (no cross-class page sharing in
 * Memento) while kernel drops ~29%; C++ userspace -41%; DataProc user
 * -5%, kernel -50%, total -23%; platform roughly unchanged.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 11: Normalized aggregate memory usage "
                 "===\n\n";
    auto entries = runEverything();

    TextTable t({"Workload", "Group", "User", "Kernel", "Total"});
    auto ratio = [](std::uint64_t memento, std::uint64_t base) {
        return base == 0 ? 1.0
                         : static_cast<double>(memento) /
                               static_cast<double>(base);
    };
    for (const Entry &e : entries) {
        const RunResult &b = e.cmp.base;
        const RunResult &m = e.cmp.memento;
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(ratio(m.aggUserPages, b.aggUserPages), 2);
        t.cell(ratio(m.aggKernelPages, b.aggKernelPages), 2);
        t.cell(ratio(m.aggUserPages + m.aggKernelPages,
                     b.aggUserPages + b.aggKernelPages),
               2);
    }
    t.print(std::cout);

    auto total_ratio = [&](const Entry &e) {
        return ratio(e.cmp.memento.aggUserPages +
                         e.cmp.memento.aggKernelPages,
                     e.cmp.base.aggUserPages + e.cmp.base.aggKernelPages);
    };
    auto kernel_ratio = [&](const Entry &e) {
        return ratio(e.cmp.memento.aggKernelPages,
                     e.cmp.base.aggKernelPages);
    };
    auto user_ratio = [&](const Entry &e) {
        return ratio(e.cmp.memento.aggUserPages, e.cmp.base.aggUserPages);
    };
    std::cout << "\nfunc-avg normalized usage: user "
              << averageOver(entries, isFunction, user_ratio) << ", kernel "
              << averageOver(entries, isFunction, kernel_ratio)
              << ", total "
              << averageOver(entries, isFunction, total_ratio) << "\n";
    std::cout << "data-avg total: "
              << averageOver(entries, isDataProc, total_ratio) << "\n";
    std::cout << "pltf-avg total: "
              << averageOver(entries, isPlatform, total_ratio) << "\n";
    std::cout << "\nPaper: functions user 0.90, kernel 0.72, total 0.85; "
                 "data total 0.77; platform ~1.0\n";
    return 0;
}
