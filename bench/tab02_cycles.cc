/**
 * @file
 * Table 2 reproduction: memory-management cycle breakdown between
 * userspace and the kernel on the *baseline* system, grouped by
 * language and domain.
 *
 * Paper reference: Python 48/52, C++ 96/4, Golang 56/44, FaaS platform
 * 59/41, data processing 38/62 (user%/kernel%).
 */

#include <iostream>
#include <map>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Table 2: Memory management cycles breakdown "
                 "(baseline) ===\n\n";

    struct Group
    {
        double user = 0.0;
        double kernel = 0.0;
        double mmShare = 0.0;
        unsigned n = 0;
    };
    std::map<std::string, Group> groups;

    TextTable t({"Workload", "Group", "User MM", "Kernel MM",
                 "User/Kernel", "MM share of cycles"});
    for (const WorkloadSpec &spec : allWorkloads()) {
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();
        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());

        const double user = static_cast<double>(base.userMmCycles());
        const double kernel = static_cast<double>(base.kernelMmCycles());
        const double total = user + kernel;
        const double user_pct = total > 0 ? user / total : 0.0;
        const double mm_share =
            static_cast<double>(base.cycles) > 0
                ? total / static_cast<double>(base.cycles)
                : 0.0;

        t.newRow();
        t.cell(spec.id);
        t.cell(groupLabel(spec));
        t.cell(static_cast<std::uint64_t>(user));
        t.cell(static_cast<std::uint64_t>(kernel));
        t.cell(percentStr(user_pct) + "/" + percentStr(1.0 - user_pct));
        t.cell(percentStr(mm_share));

        Group &g = groups[groupLabel(spec)];
        g.user += user_pct;
        g.kernel += 1.0 - user_pct;
        g.mmShare += mm_share;
        ++g.n;
    }
    t.print(std::cout);

    std::cout << "\nPer-group averages (user% / kernel%):\n";
    for (const auto &[label, g] : groups) {
        std::cout << "  " << label << ": " << percentStr(g.user / g.n)
                  << " / " << percentStr(g.kernel / g.n)
                  << "   (MM share of all cycles: "
                  << percentStr(g.mmShare / g.n) << ")\n";
    }
    std::cout << "\nPaper: Python 48/52, C++ 96/4, Golang 56/44, "
                 "Platform 59/41, DataProc 38/62\n";
    return 0;
}
