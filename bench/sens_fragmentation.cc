/**
 * @file
 * §6.6 fragmentation study: fraction of small-object slots in the
 * arena headers that are not live at the end of execution, compared
 * between Memento and the software allocators.
 *
 * Paper reference: on average only 3.68% of Memento's header slots are
 * inactive, within ±2% of the software allocators.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fragmentation (inactive small-object slots) "
                 "===\n\n";

    TextTable t({"Workload", "Group", "Software", "Memento", "Delta"});
    double memento_sum = 0.0;
    double delta_sum = 0.0;
    unsigned n = 0;
    for (const WorkloadSpec &spec : allWorkloads()) {
        std::cerr << "  running " << spec.id << "...\n";
        const Trace trace = TraceGenerator(spec).generate();
        RunResult base =
            Experiment::runOne(spec, trace, defaultConfig());
        RunResult mem = Experiment::runOne(spec, trace, mementoConfig());

        memento_sum += mem.fragInactiveFraction;
        delta_sum +=
            mem.fragInactiveFraction - base.fragInactiveFraction;
        ++n;

        t.newRow();
        t.cell(spec.id);
        t.cell(groupLabel(spec));
        t.cell(percentStr(base.fragInactiveFraction, 2));
        t.cell(percentStr(mem.fragInactiveFraction, 2));
        t.cell(percentStr(mem.fragInactiveFraction -
                              base.fragInactiveFraction,
                          2));
    }
    t.print(std::cout);

    std::cout << "\nMemento average inactive slots: "
              << percentStr(memento_sum / n, 2)
              << " (paper: 3.68%); average delta vs software: "
              << percentStr(delta_sum / n, 2) << " (paper: within ±2%)\n";
    return 0;
}
