/**
 * @file
 * §6.6 cold-start study: add the container set-up latency to every
 * function execution and re-measure Memento's speedup.
 *
 * Paper reference: even with cold starts Memento retains 7–22%
 * speedups.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Cold-start sensitivity ===\n\n";

    RunOptions cold;
    cold.coldStart = true;
    auto entries = runAll(workloadsByDomain(Domain::Function), cold);

    TextTable t({"Workload", "Group", "Cold speedup"});
    double lo = 1e9, hi = 0.0, sum = 0.0;
    for (const Entry &e : entries) {
        const double speedup = e.cmp.speedup();
        lo = std::min(lo, speedup);
        hi = std::max(hi, speedup);
        sum += speedup;
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(speedup, 3);
    }
    t.print(std::cout);

    std::cout << "\nCold-start speedup range: " << lo << " - " << hi
              << " (avg " << sum / entries.size() << ")\n";
    std::cout << "Paper: 1.07 - 1.22 with cold starts\n";
    return 0;
}
