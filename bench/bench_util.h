/**
 * @file
 * Shared plumbing for the figure/table benchmark binaries: run the
 * paired baseline/Memento experiments over workload groups and provide
 * the grouping/averaging the paper's figures use.
 */

#ifndef MEMENTO_BENCH_BENCH_UTIL_H
#define MEMENTO_BENCH_BENCH_UTIL_H

#include <functional>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "wl/workloads.h"

namespace memento::benchutil {

/** One workload's full result set. */
struct Entry
{
    WorkloadSpec spec;
    Comparison cmp;
    Breakdown breakdown;
};

/** Run the paired experiments for @p specs (prints progress). */
inline std::vector<Entry>
runAll(const std::vector<WorkloadSpec> &specs, RunOptions opts = {})
{
    std::vector<Entry> out;
    for (const WorkloadSpec &spec : specs) {
        std::cerr << "  running " << spec.id << "...\n";
        Entry e;
        e.spec = spec;
        e.cmp = Experiment::compareDefault(spec, opts);
        e.breakdown = computeBreakdown(e.cmp);
        out.push_back(std::move(e));
    }
    return out;
}

/** All 23 workloads. */
inline std::vector<Entry>
runEverything(RunOptions opts = {})
{
    return runAll(allWorkloads(), opts);
}

/** Average of @p f over entries matching @p filter. */
inline double
averageOver(const std::vector<Entry> &entries,
            const std::function<bool(const Entry &)> &filter,
            const std::function<double(const Entry &)> &f)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const Entry &e : entries) {
        if (filter(e)) {
            sum += f(e);
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / n;
}

inline bool
isFunction(const Entry &e)
{
    return e.spec.domain == Domain::Function;
}

inline bool
isDataProc(const Entry &e)
{
    return e.spec.domain == Domain::DataProc;
}

inline bool
isPlatform(const Entry &e)
{
    return e.spec.domain == Domain::Platform;
}

/** Language group label used in figure rows ("Python", "C++", ...). */
inline std::string
groupLabel(const WorkloadSpec &spec)
{
    if (spec.domain == Domain::DataProc)
        return "DataProc";
    if (spec.domain == Domain::Platform)
        return "Platform";
    return languageName(spec.lang);
}

} // namespace memento::benchutil

#endif // MEMENTO_BENCH_BENCH_UTIL_H
