/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * how fast the host executes simulated obj-alloc/obj-free, software
 * allocator operations, cache accesses, and page walks. These guard
 * the simulator's throughput (host-seconds per simulated operation),
 * not the simulated latencies.
 */

#include <benchmark/benchmark.h>

#include "machine/machine.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

using namespace memento;

namespace {

void
BM_MementoAllocFree(benchmark::State &state)
{
    Machine machine(mementoConfig());
    machine.createProcess(workloadById("aes"));
    Allocator &alloc = machine.allocator();
    for (auto _ : state) {
        Addr a = alloc.malloc(64, machine);
        benchmark::DoNotOptimize(a);
        alloc.free(a, machine);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MementoAllocFree);

void
BM_PyMallocAllocFree(benchmark::State &state)
{
    Machine machine(defaultConfig());
    machine.createProcess(workloadById("aes"));
    Allocator &alloc = machine.allocator();
    for (auto _ : state) {
        Addr a = alloc.malloc(64, machine);
        benchmark::DoNotOptimize(a);
        alloc.free(a, machine);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PyMallocAllocFree);

void
BM_AppAccess(benchmark::State &state)
{
    Machine machine(defaultConfig());
    machine.createProcess(workloadById("aes"));
    Addr base = machine.staticBase();
    std::uint64_t offset = 0;
    for (auto _ : state) {
        machine.appAccess(base + (offset % (128 << 10)),
                          AccessType::Read);
        offset += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppAccess);

void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadSpec &spec = workloadById("jl");
    for (auto _ : state) {
        Trace trace = TraceGenerator(spec).generate();
        benchmark::DoNotOptimize(trace.data());
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
