/**
 * @file
 * Fig. 14 / §6.5 reproduction: normalized function runtime pricing
 * under AWS-Lambda-style billing (ms granularity x MB memory), plus
 * the end-to-end cost including the fixed per-invocation fee.
 *
 * Paper reference: runtime cost -29% on average; -11% end-to-end (up
 * to -31%).
 */

#include <iostream>

#include "an/pricing.h"
#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 14: Normalized function runtime pricing "
                 "===\n\n";
    auto entries = runAll(workloadsByDomain(Domain::Function));
    PricingModel pricing;
    // The synthetic functions are scaled down ~50x in billable work and
    // footprint relative to the paper's real workloads; scale the
    // fixed per-invocation fee identically so the runtime-vs-fee ratio
    // (which determines the end-to-end saving) is preserved.
    pricing.usdPerInvocation /= 50.0;
    const MachineConfig cfg = defaultConfig();

    TextTable t({"Workload", "Base ms", "Memento ms", "Base MB",
                 "Memento MB", "Runtime cost", "End-to-end"});
    double runtime_ratio_sum = 0.0;
    double total_ratio_sum = 0.0;
    for (const Entry &e : entries) {
        const double base_ms = e.cmp.base.executionMs(cfg);
        const double mem_ms = e.cmp.memento.executionMs(cfg);
        const double base_mb =
            static_cast<double>(e.cmp.base.peakResidentPages) * kPageSize /
            (1 << 20);
        const double mem_mb =
            static_cast<double>(e.cmp.memento.peakResidentPages) *
            kPageSize / (1 << 20);

        const double base_cost = pricing.runtimeCostUsd(base_ms, base_mb);
        const double mem_cost = pricing.runtimeCostUsd(mem_ms, mem_mb);
        const double runtime_ratio = mem_cost / base_cost;
        const double total_ratio = pricing.totalCostUsd(mem_ms, mem_mb) /
                                   pricing.totalCostUsd(base_ms, base_mb);
        runtime_ratio_sum += runtime_ratio;
        total_ratio_sum += total_ratio;

        t.newRow();
        t.cell(e.spec.id);
        t.cell(base_ms, 2);
        t.cell(mem_ms, 2);
        t.cell(base_mb, 1);
        t.cell(mem_mb, 1);
        t.cell(runtime_ratio, 3);
        t.cell(total_ratio, 3);
    }
    t.print(std::cout);

    const double n = static_cast<double>(entries.size());
    std::cout << "\nAverage normalized runtime pricing: "
              << runtime_ratio_sum / n << " (paper: 0.71)\n";
    std::cout << "Average normalized end-to-end pricing: "
              << total_ratio_sum / n << " (paper: 0.89)\n";
    return 0;
}
