/**
 * @file
 * Fig. 13 reproduction: frequency of arena linked-list operations as a
 * percentage of obj-alloc / obj-free operations.
 *
 * Paper reference: below 1% of allocations and 0.6% of frees across
 * all workloads; negligible performance impact.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 13: Arena list operation frequency ===\n\n";
    auto entries = runEverything();

    auto pct = [](std::uint64_t ops, std::uint64_t total) {
        return total == 0 ? 0.0
                          : static_cast<double>(ops) /
                                static_cast<double>(total);
    };

    TextTable t({"Workload", "Group", "alloc list ops (% of allocs)",
                 "free list ops (% of frees)"});
    bool all_below = true;
    for (const Entry &e : entries) {
        const RunResult &m = e.cmp.memento;
        const double alloc_pct = pct(m.allocListOps, m.objAllocs);
        const double free_pct = pct(m.freeListOps, m.objFrees);
        all_below = all_below && alloc_pct < 0.02 && free_pct < 0.02;
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(percentStr(alloc_pct, 3));
        t.cell(percentStr(free_pct, 3));
    }
    t.print(std::cout);

    std::cout << "\nAll workloads below 2%: "
              << (all_below ? "yes" : "no") << "\n";
    std::cout << "Paper: <1% of allocations, <0.6% of frees\n";
    return 0;
}
