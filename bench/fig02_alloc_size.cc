/**
 * @file
 * Fig. 2 reproduction: allocation-size distribution in 512 B buckets,
 * normalized per function and aggregated per language / domain.
 *
 * Paper reference: 93% of function allocations below 512 B (>98% for
 * several workloads); DataProc 98%, platform 99%.
 */

#include <iostream>
#include <map>

#include "an/lifetime.h"
#include "an/report.h"
#include "bench_util.h"
#include "wl/trace_generator.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 2: Allocation size (Bytes) ===\n\n";

    // Aggregate percentage histograms per group, normalizing each
    // workload to equal weight (the paper normalizes per function).
    std::map<std::string, std::vector<double>> group_pct;
    std::map<std::string, unsigned> group_n;
    std::vector<std::string> labels;

    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = TraceGenerator(spec).generate();
        const TraceProfile profile = profileTrace(trace);

        const Histogram &h = profile.sizeHist;
        if (labels.empty()) {
            for (std::size_t b = 0; b < h.buckets(); ++b)
                labels.push_back(h.label(b));
        }
        auto &acc = group_pct[groupLabel(spec)];
        acc.resize(h.buckets(), 0.0);
        for (std::size_t b = 0; b < h.buckets(); ++b)
            acc[b] += h.percent(b);
        ++group_n[groupLabel(spec)];
    }

    std::vector<std::string> headers = {"Bucket"};
    for (const auto &[label, n] : group_n)
        headers.push_back(label);
    TextTable t(headers);
    for (std::size_t b = 0; b < labels.size(); ++b) {
        t.newRow();
        t.cell(labels[b]);
        for (const auto &[label, n] : group_n)
            t.cell(group_pct[label][b] / n, 1);
    }
    t.print(std::cout);

    std::cout << "\n% of allocations <= 512 B per group:\n";
    for (const auto &[label, n] : group_n) {
        std::cout << "  " << label << ": "
                  << percentStr(group_pct[label][0] / n / 100.0) << "\n";
    }
    std::cout << "\nPaper: functions 93% (several >98%), DataProc 98%, "
                 "Platform 99% below 512 B\n";
    return 0;
}
