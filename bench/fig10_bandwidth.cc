/**
 * @file
 * Fig. 10 reproduction: normalized main-memory bandwidth reduction,
 * with the share attributable to the main-memory bypass highlighted.
 *
 * Paper reference: 30% average reduction for functions (UM 31%, CM
 * 35%); data processing 33%; bypass alone contributes 5% on average
 * and up to 34%.
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 10: Normalized memory bandwidth reduction "
                 "===\n\n";
    auto entries = runEverything();

    TextTable t({"Workload", "Group", "Base MB", "Memento MB",
                 "Reduction", "Bypass share"});
    for (const Entry &e : entries) {
        // The bypass share of the reduction: traffic saved relative to
        // the bypass-disabled Memento run.
        const double bypass_saved =
            e.cmp.base.dramBytes == 0
                ? 0.0
                : (static_cast<double>(e.cmp.mementoNoBypass.dramBytes) -
                   static_cast<double>(e.cmp.memento.dramBytes)) /
                      static_cast<double>(e.cmp.base.dramBytes);
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(e.cmp.base.dramBytes >> 20);
        t.cell(e.cmp.memento.dramBytes >> 20);
        t.cell(percentStr(e.cmp.bandwidthReduction()));
        t.cell(percentStr(bypass_saved < 0 ? 0 : bypass_saved));
    }
    t.print(std::cout);

    auto reduction = [](const Entry &e) {
        return e.cmp.bandwidthReduction();
    };
    std::cout << "\nfunc-avg reduction: "
              << percentStr(averageOver(entries, isFunction, reduction))
              << "\n";
    std::cout << "data-avg reduction: "
              << percentStr(averageOver(entries, isDataProc, reduction))
              << "\n";
    std::cout << "pltf-avg reduction: "
              << percentStr(averageOver(entries, isPlatform, reduction))
              << "\n";
    std::cout << "\nPaper: functions ~30% avg (UM 31%, CM 35%), data "
                 "33%, platform smaller; bypass avg 5%, up to 34%\n";
    return 0;
}
