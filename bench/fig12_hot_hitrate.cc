/**
 * @file
 * Fig. 12 reproduction: Hardware Object Table hit rates for obj-alloc
 * and obj-free.
 *
 * Paper reference: alloc hit rate 99.8% uniformly; free hit rate 83%
 * average — lower for Python (long-lived interpreter objects), very
 * high for C++ (tight alloc/free loops) and Golang (no individual
 * frees).
 */

#include <iostream>

#include "an/report.h"
#include "bench_util.h"

using namespace memento;
using namespace memento::benchutil;

int
main()
{
    std::cout << "=== Fig. 12: Hardware object table hit rate ===\n\n";
    auto entries = runEverything();

    auto rate = [](std::uint64_t hits, std::uint64_t misses) {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 1.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    };

    TextTable t({"Workload", "Group", "allocs", "alloc hit", "frees",
                 "free hit"});
    for (const Entry &e : entries) {
        const RunResult &m = e.cmp.memento;
        t.newRow();
        t.cell(e.spec.id);
        t.cell(groupLabel(e.spec));
        t.cell(m.hotAllocHits + m.hotAllocMisses);
        t.cell(percentStr(rate(m.hotAllocHits, m.hotAllocMisses)));
        t.cell(m.hotFreeHits + m.hotFreeMisses);
        t.cell(percentStr(rate(m.hotFreeHits, m.hotFreeMisses)));
    }
    t.print(std::cout);

    auto alloc_rate = [&](const Entry &e) {
        return rate(e.cmp.memento.hotAllocHits,
                    e.cmp.memento.hotAllocMisses);
    };
    auto free_rate = [&](const Entry &e) {
        return rate(e.cmp.memento.hotFreeHits,
                    e.cmp.memento.hotFreeMisses);
    };
    std::cout << "\nfunc-avg: alloc "
              << percentStr(averageOver(entries, isFunction, alloc_rate))
              << ", free "
              << percentStr(averageOver(entries, isFunction, free_rate))
              << "\n";
    std::cout << "Paper: alloc 99.8%, free 83% (Python lower)\n";
    return 0;
}
