/**
 * @file
 * Table 3 reproduction: print the simulated configuration and the
 * CACTI-style cost estimates for Memento's hardware structures.
 */

#include <iostream>

#include "an/cacti_lite.h"
#include "an/report.h"
#include "sim/config.h"

using namespace memento;

int
main()
{
    const MachineConfig cfg = mementoConfig();
    const CactiLite cacti(22.0);
    const SramCost hot = cacti.hotCost();
    const SramCost aac = cacti.aacCost();

    std::cout << "=== Table 3: Simulation configuration ===\n\n";
    TextTable t({"Component", "Configuration"});
    t.newRow();
    t.cell("CPU");
    t.cell("4-issue OOO, 3 GHz, 256-entry ROB, 64-entry LSQ");
    t.newRow();
    t.cell("TLB");
    t.cell("L1 64-entry 4-way; L2 2048-entry 12-way");
    t.newRow();
    t.cell("L1d");
    t.cell("32KB, 8-way, 2 cycle, LRU");
    t.newRow();
    t.cell("L1i");
    t.cell("32KB, 8-way, 2 cycle, LRU");
    t.newRow();
    t.cell("HOT");
    {
        std::string row = "3.4KB, direct-mapped, " +
                          std::to_string(cfg.memento.hotLatency) +
                          " cycle, ";
        char buf[80];
        std::snprintf(buf, sizeof(buf), "%.2fmW, %.4fmm^2", hot.powerMw,
                      hot.areaMm2);
        t.cell(row + buf);
    }
    t.newRow();
    t.cell("L2");
    t.cell("256KB, 8-way, 14 cycle, LRU");
    t.newRow();
    t.cell("LLC");
    t.cell("2MB slice, 16-way, 40 cycle, LRU");
    t.newRow();
    t.cell("AAC");
    {
        std::string row = "32-entry, direct-mapped, " +
                          std::to_string(cfg.memento.aacLatency) +
                          " cycle, ";
        char buf[80];
        std::snprintf(buf, sizeof(buf), "%.2fmW, %.4fmm^2", aac.powerMw,
                      aac.areaMm2);
        t.cell(row + buf);
    }
    t.newRow();
    t.cell("DRAM");
    t.cell("64GB, DDR4 3200, 16 banks");
    t.print(std::cout);

    std::cout << "\nPaper reference: HOT 1.32mW / 0.0084mm^2, "
                 "AAC 0.43mW / 0.0023mm^2 (CACTI 6.5 @ 22nm)\n";
    return 0;
}
