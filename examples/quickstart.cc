/**
 * @file
 * Quickstart: run one serverless function (SeBS dynamic-html) on the
 * baseline machine and on Memento, and print the headline numbers.
 *
 * This is the 60-second tour of the public API:
 *   1. pick a workload spec (wl/workloads.h),
 *   2. synthesize its trace (wl/trace_generator.h),
 *   3. run it on machines via Experiment (machine/experiment.h),
 *   4. read speedup / traffic / HOT behaviour off the Comparison.
 */

#include <iostream>

#include "an/report.h"
#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "wl/workloads.h"

using namespace memento;

int
main()
{
    const WorkloadSpec &spec = workloadById("html");
    std::cout << "Workload: " << spec.id << " (" << spec.description
              << ", " << languageName(spec.lang) << ")\n\n";

    Comparison cmp = Experiment::compareDefault(spec);
    const Breakdown bd = computeBreakdown(cmp);

    const MachineConfig cfg = defaultConfig();
    TextTable t({"Metric", "Baseline", "Memento"});
    t.newRow();
    t.cell("cycles");
    t.cell(cmp.base.cycles);
    t.cell(cmp.memento.cycles);
    t.newRow();
    t.cell("execution (ms)");
    t.cell(cmp.base.executionMs(cfg), 3);
    t.cell(cmp.memento.executionMs(cfg), 3);
    t.newRow();
    t.cell("DRAM traffic (KB)");
    t.cell(cmp.base.dramBytes >> 10);
    t.cell(cmp.memento.dramBytes >> 10);
    t.newRow();
    t.cell("page faults");
    t.cell(cmp.base.pageFaults);
    t.cell(cmp.memento.pageFaults);
    t.print(std::cout);

    std::cout << "\nSpeedup:              " << cmp.speedup() << "x\n";
    std::cout << "Bandwidth reduction:  "
              << percentStr(cmp.bandwidthReduction()) << "\n";
    std::cout << "HOT alloc hit rate:   "
              << percentStr(
                     static_cast<double>(cmp.memento.hotAllocHits) /
                     (cmp.memento.hotAllocHits +
                      cmp.memento.hotAllocMisses))
              << "\n";
    std::cout << "Gains breakdown:      alloc "
              << percentStr(bd.objAlloc) << ", free "
              << percentStr(bd.objFree) << ", page "
              << percentStr(bd.pageMgmt) << ", bypass "
              << percentStr(bd.bypass) << "\n";
    return 0;
}
