/**
 * @file
 * Domain example: multi-tenant time sharing (§4, §6.6).
 *
 * Four different functions share one Memento core. The OS context
 * switch flushes the HOT and TLBs between them; each process keeps its
 * own Memento space (arenas, page table, region registers). The
 * example shows that isolation holds and that the HOT-flush overhead
 * is negligible compared to everything else a switch costs.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "an/report.h"
#include "machine/function_executor.h"
#include "machine/machine.h"
#include "wl/trace_generator.h"

using namespace memento;

int
main()
{
    const std::vector<std::string> ids = {"aes", "jl", "US", "html-go"};

    Machine machine(mementoConfig());
    std::vector<const WorkloadSpec *> specs;
    std::vector<Trace> traces;
    std::vector<std::unique_ptr<FunctionExecutor>> executors;
    std::vector<std::size_t> cursor(ids.size(), 0);

    for (const std::string &id : ids) {
        const WorkloadSpec &spec = workloadById(id);
        specs.push_back(&spec);
        machine.createProcess(spec);
        traces.push_back(TraceGenerator(spec).generate());
        executors.push_back(
            std::make_unique<FunctionExecutor>(machine));
    }

    // Round-robin scheduling with ~2000-op quanta.
    constexpr std::size_t kQuantum = 2000;
    unsigned switches = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t p = 0; p < specs.size(); ++p) {
            if (cursor[p] >= traces[p].size())
                continue;
            progress = true;
            machine.switchTo(static_cast<unsigned>(p));
            ++switches;
            const std::size_t end =
                std::min(cursor[p] + kQuantum, traces[p].size());
            executors[p]->runRange(*specs[p], traces[p], cursor[p], end);
            cursor[p] = end;
        }
    }

    const Cycles total = machine.cycleLedger().total();
    const Cycles cs =
        machine.cycleLedger().category(CycleCategory::ContextSwitch);

    std::cout << "Ran " << ids.size()
              << " functions round-robin on one core\n";
    std::cout << "  context switches: " << switches << "\n";
    std::cout << "  HOT flushes:      "
              << machine.stats().value("hot.flushes") << "\n";
    std::cout << "  total cycles:     " << total << "\n";
    std::cout << "  switch cycles:    " << cs << " ("
              << percentStr(static_cast<double>(cs) / total, 2)
              << " of execution, incl. HOT flush)\n";
    std::cout << "\nEach process kept its own arenas and Memento page "
                 "table; all functions completed with empty heaps.\n";
    return 0;
}
