/**
 * @file
 * Domain example: bring your own workload.
 *
 * Shows the full user-facing pipeline for a workload that is not part
 * of the paper's suite: define a WorkloadSpec from profiled statistics
 * (size mixture, lifetime, allocation intensity), synthesize its
 * trace, persist it with the record/replay format, and evaluate the
 * baseline-vs-Memento question for it.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "an/lifetime.h"
#include "an/report.h"
#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "wl/trace.h"
#include "wl/trace_generator.h"

using namespace memento;

int
main()
{
    // A hypothetical thumbnailing function: bursts of mid-sized pixel
    // row buffers, a few large scratch planes, modest compute.
    WorkloadSpec spec;
    spec.id = "thumbnail";
    spec.description = "custom image-thumbnail function";
    spec.lang = Language::Cpp;
    spec.domain = Domain::Function;
    spec.numAllocs = 50'000;
    spec.sizeDist = SizeDistribution(
        {SizeBucket{0.5, 64, 256}, SizeBucket{0.5, 257, 512}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 4096, 65536}});
    spec.lifetime = {.pShort = 0.9, .meanShortDistance = 3.0,
                     .pLongFreed = 0.05, .meanLongDistance = 400.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 400;
    spec.touchStores = 4;
    spec.touchLoads = 2;
    spec.staticWsBytes = 1 << 20;
    spec.rpcBytes = 64 << 10; // Ships the image in and out.
    spec.seed = 20260706;

    // Synthesize and persist the trace (record/replay round trip).
    const Trace trace = TraceGenerator(spec).generate();
    {
        std::ofstream out("thumbnail.trace");
        writeTrace(trace, out);
    }
    std::ifstream in("thumbnail.trace");
    const Trace replayed = readTrace(in);
    std::cout << "Trace round trip: " << trace.size() << " ops, replay "
              << (replayed == trace ? "matches" : "DIFFERS") << "\n";

    // Characterize it the way Fig. 2/3 do.
    const TraceProfile profile = profileTrace(replayed);
    std::cout << "Profile: " << profile.allocations << " allocations, "
              << percentStr(profile.sizeHist.percent(0) / 100.0)
              << " below 512B, "
              << percentStr(profile.lifetimeHist.percent(0) / 100.0)
              << " freed within 16 same-class allocations, MallocPKI "
              << profile.mallocPki << "\n\n";

    // Evaluate.
    Comparison cmp = Experiment::compareDefault(spec);
    Breakdown bd = computeBreakdown(cmp);
    TextTable t({"Metric", "Baseline", "Memento"});
    t.newRow();
    t.cell("cycles");
    t.cell(cmp.base.cycles);
    t.cell(cmp.memento.cycles);
    t.newRow();
    t.cell("DRAM KB");
    t.cell(cmp.base.dramBytes >> 10);
    t.cell(cmp.memento.dramBytes >> 10);
    t.newRow();
    t.cell("page faults");
    t.cell(cmp.base.pageFaults);
    t.cell(cmp.memento.pageFaults);
    t.print(std::cout);

    std::cout << "\nSpeedup " << cmp.speedup() << "x; gains: alloc "
              << percentStr(bd.objAlloc) << ", free "
              << percentStr(bd.objFree) << ", page "
              << percentStr(bd.pageMgmt) << ", bypass "
              << percentStr(bd.bypass) << "\n";
    return 0;
}
