/**
 * @file
 * Domain example: anatomy of one serverless function invocation.
 *
 * Runs the pyaes function workload end to end on the baseline and the
 * Memento machine and dissects where the cycles go per CycleCategory,
 * what the memory system did, and what the invocation would be billed
 * — the full per-invocation story the paper tells across §2 and §6.
 */

#include <iostream>

#include "an/pricing.h"
#include "an/report.h"
#include "machine/experiment.h"
#include "wl/trace_generator.h"

using namespace memento;

int
main()
{
    const WorkloadSpec &spec = workloadById("aes");
    std::cout << "Function: " << spec.id << " (" << spec.description
              << ")\n\n";

    const Trace trace = TraceGenerator(spec).generate();
    std::cout << "Trace: " << countOps(trace, OpKind::Malloc)
              << " allocations, " << countOps(trace, OpKind::Free)
              << " frees, "
              << countOps(trace, OpKind::Load) +
                     countOps(trace, OpKind::Store)
              << " object accesses\n\n";

    RunResult base = Experiment::runOne(spec, trace, defaultConfig());
    RunResult mem = Experiment::runOne(spec, trace, mementoConfig());

    std::cout << "Cycle breakdown per category:\n";
    TextTable t({"Category", "Baseline", "Memento"});
    for (std::size_t i = 0; i < kNumCycleCategories; ++i) {
        const auto cat = static_cast<CycleCategory>(i);
        if (base.category(cat) == 0 && mem.category(cat) == 0)
            continue;
        t.newRow();
        t.cell(std::string(cycleCategoryName(cat)));
        t.cell(base.category(cat));
        t.cell(mem.category(cat));
    }
    t.newRow();
    t.cell("TOTAL");
    t.cell(base.cycles);
    t.cell(mem.cycles);
    t.print(std::cout);

    const MachineConfig cfg = defaultConfig();
    const PricingModel pricing;
    const double base_ms = base.executionMs(cfg);
    const double mem_ms = mem.executionMs(cfg);
    const double base_mb =
        static_cast<double>(base.peakResidentPages) * kPageSize / (1 << 20);
    const double mem_mb =
        static_cast<double>(mem.peakResidentPages) * kPageSize / (1 << 20);

    std::cout << "\nMemory system:\n";
    std::cout << "  page faults:    " << base.pageFaults << " -> "
              << mem.pageFaults << "\n";
    std::cout << "  DRAM traffic:   " << (base.dramBytes >> 10)
              << " KB -> " << (mem.dramBytes >> 10) << " KB\n";
    std::cout << "  bypassed lines: " << mem.bypassedLines << "\n";
    std::cout << "  HOT hit rates:  alloc "
              << percentStr(static_cast<double>(mem.hotAllocHits) /
                            (mem.hotAllocHits + mem.hotAllocMisses))
              << ", free "
              << percentStr(static_cast<double>(mem.hotFreeHits) /
                            (mem.hotFreeHits + mem.hotFreeMisses))
              << "\n";

    std::cout << "\nBilling (per million invocations):\n";
    std::cout << "  baseline: $"
              << pricing.runtimeCostUsd(base_ms, base_mb) * 1e6 << "\n";
    std::cout << "  memento:  $"
              << pricing.runtimeCostUsd(mem_ms, mem_mb) * 1e6 << "\n";
    std::cout << "\nSpeedup: "
              << static_cast<double>(base.cycles) / mem.cycles << "x\n";
    return 0;
}
