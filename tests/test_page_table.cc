/**
 * @file
 * Unit and property tests for the 4-level radix page table.
 */

#include <gtest/gtest.h>

#include <map>

#include "os/page_table.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace memento {
namespace {

/** Frame source handing out sequential fake frames. */
class FakeFrames : public FrameSource
{
  public:
    Addr
    allocFrame() override
    {
        ++outstanding;
        return next += kPageSize;
    }

    void
    freeFrame(Addr) override
    {
        --outstanding;
    }

    Addr next = 0x100000;
    int outstanding = 0;
};

class PageTableTest : public ::testing::Test
{
  protected:
    FakeFrames frames;
};

TEST_F(PageTableTest, RootAllocatedOnConstruction)
{
    PageTable pt(frames);
    EXPECT_EQ(pt.nodePages(), 1u);
    EXPECT_EQ(frames.outstanding, 1);
    EXPECT_NE(pt.rootPhys(), kNullAddr);
}

TEST_F(PageTableTest, MapCreatesThreeNodesForFirstPage)
{
    PageTable pt(frames);
    unsigned created = pt.map(0x7000'0000, 0x55000);
    EXPECT_EQ(created, 3u); // PUD, PMD, PTE nodes.
    EXPECT_EQ(pt.nodePages(), 4u);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST_F(PageTableTest, NeighborPagesShareNodes)
{
    PageTable pt(frames);
    pt.map(0x7000'0000, 0x55000);
    unsigned created = pt.map(0x7000'1000, 0x56000);
    EXPECT_EQ(created, 0u);
    EXPECT_EQ(pt.nodePages(), 4u);
}

TEST_F(PageTableTest, TranslatePreservesOffset)
{
    PageTable pt(frames);
    pt.map(0x7000'0000, 0x55000);
    EXPECT_EQ(pt.translate(0x7000'0ABC), 0x55ABCu);
    EXPECT_EQ(pt.translate(0x7000'2000), kNullAddr);
    EXPECT_TRUE(pt.isMapped(0x7000'0FFF));
    EXPECT_FALSE(pt.isMapped(0x7000'1000));
}

TEST_F(PageTableTest, UnmapReturnsFrameAndPrunes)
{
    PageTable pt(frames);
    pt.map(0x7000'0000, 0x55000);
    unsigned freed = 0;
    EXPECT_EQ(pt.unmap(0x7000'0000, freed), 0x55000u);
    EXPECT_EQ(freed, 3u); // All interior nodes became empty.
    EXPECT_EQ(pt.nodePages(), 1u);
    EXPECT_EQ(pt.mappedPages(), 0u);
    EXPECT_EQ(frames.outstanding, 1); // Only the root remains.
}

TEST_F(PageTableTest, UnmapOfUnmappedReturnsNull)
{
    PageTable pt(frames);
    unsigned freed = 0;
    EXPECT_EQ(pt.unmap(0x1234'5000, freed), kNullAddr);
    EXPECT_EQ(freed, 0u);
}

TEST_F(PageTableTest, WalkVisitsFourLevels)
{
    PageTable pt(frames);
    pt.map(0x7000'0000, 0x55000);
    WalkResult res = pt.walk(0x7000'0123);
    EXPECT_TRUE(res.valid);
    EXPECT_EQ(res.ppage, 0x55000u);
    EXPECT_EQ(res.visitedPtes.size(), 4u);
    // Each visited PTE lies inside a distinct node page.
    for (std::size_t i = 1; i < res.visitedPtes.size(); ++i)
        EXPECT_NE(pageBase(res.visitedPtes[i]),
                  pageBase(res.visitedPtes[i - 1]));
}

TEST_F(PageTableTest, WalkOnUnmappedIsInvalidButVisitsPrefix)
{
    PageTable pt(frames);
    WalkResult res = pt.walk(0x7000'0000);
    EXPECT_FALSE(res.valid);
    EXPECT_EQ(res.visitedPtes.size(), 1u); // Root only.

    pt.map(0x7000'0000, 0x55000);
    res = pt.walk(0x7000'0000 + (1ull << 21)); // Same PMD region? No:
    // next 2 MiB chunk shares PGD/PUD but needs a new PMD leaf node.
    EXPECT_FALSE(res.valid);
    EXPECT_GE(res.visitedPtes.size(), 3u);
}

TEST_F(PageTableTest, DistantAddressesUseSeparateSubtrees)
{
    PageTable pt(frames);
    pt.map(0x0000'7000'0000ull, 0x55000);
    pt.map(0x4000'0000'0000ull, 0x66000);
    EXPECT_GT(pt.nodePages(), 4u);
    EXPECT_EQ(pt.translate(0x0000'7000'0000ull), 0x55000u);
    EXPECT_EQ(pt.translate(0x4000'0000'0000ull), 0x66000u);
}

class PageTablePropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PageTablePropertyTest, MatchesReferenceMapUnderRandomTraffic)
{
    FakeFrames frames;
    PageTable pt(frames);
    std::map<Addr, Addr> reference;
    Rng rng(GetParam());

    for (int i = 0; i < 3000; ++i) {
        // Addresses drawn from a few clustered regions.
        const Addr region = (rng.nextBelow(3)) * 0x100'0000'0000ull;
        const Addr vpage =
            region + rng.nextBelow(512) * kPageSize;
        if (reference.count(vpage) == 0 && rng.nextBool(0.6)) {
            Addr frame = 0x1'0000'0000ull + i * kPageSize;
            pt.map(vpage, frame);
            reference[vpage] = frame;
        } else if (reference.count(vpage)) {
            unsigned freed = 0;
            EXPECT_EQ(pt.unmap(vpage, freed), reference[vpage]);
            reference.erase(vpage);
        }
        if (i % 500 == 0) {
            for (const auto &[va, pa] : reference)
                ASSERT_EQ(pt.translate(va), pa);
        }
    }
    EXPECT_EQ(pt.mappedPages(), reference.size());
    // Unmap everything; the table must shrink back to the root.
    while (!reference.empty()) {
        unsigned freed = 0;
        pt.unmap(reference.begin()->first, freed);
        reference.erase(reference.begin());
    }
    EXPECT_EQ(pt.nodePages(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest,
                         ::testing::Values(7, 11, 13, 17, 19));

} // namespace
} // namespace memento
