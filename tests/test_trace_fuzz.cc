/**
 * @file
 * Property-based trace fuzzing. 200 seeded random workload specs —
 * sizes, lifetimes, and per-language mixes drawn through the same
 * wl/distributions machinery the paper workloads use — are synthesized
 * into traces and checked two ways:
 *
 *  - structurally: unique object ids, every Free/Load/Store hits a
 *    live object, and every allocation either has a matching Free or
 *    survives to the trailing FunctionEnd batch free;
 *  - dynamically: the trace replays cleanly under both the baseline
 *    and the Memento machine with the invariant checker armed at
 *    check.interval = 1 (every op), and no object outlives the run.
 *
 * Seeds are sharded across TEST_P instances so CTest parallelism can
 * spread the work.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "machine/function_executor.h"
#include "machine/machine.h"
#include "sim/error.h"
#include "sim/rng.h"
#include "test_util.h"
#include "wl/distributions.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

constexpr int kShards = 8;
constexpr int kSeedsPerShard = 25; // 8 x 25 = 200 fuzz cases.

/** An 8-byte-granule size range within the small-object span. */
SizeBucket
randomSmallBucket(Rng &rng)
{
    const std::uint64_t lo = 8 * rng.nextRange(1, 32);       // 8..256
    const std::uint64_t hi = lo + 8 * rng.nextRange(0, 32);  // <= 512
    return {rng.nextRange(1, 10) / 1.0, lo, std::min<std::uint64_t>(hi, 512)};
}

/**
 * A random but structurally valid workload spec. Every stochastic
 * parameter flows from @p seed alone, so a failing case replays
 * exactly from its seed.
 */
WorkloadSpec
randomSpec(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545F4914F6CDD1Dull);
    WorkloadSpec spec;
    spec.id = "fuzz-" + std::to_string(seed);
    spec.description = "property fuzz case";
    spec.seed = seed + 1;

    const Language langs[] = {Language::Python, Language::Cpp,
                              Language::Golang};
    spec.lang = langs[rng.nextBelow(3)];
    spec.domain = Domain::Function;

    spec.numAllocs = rng.nextRange(40, 220);

    std::vector<SizeBucket> buckets;
    const unsigned nbuckets = 1 + rng.nextBelow(3);
    for (unsigned b = 0; b < nbuckets; ++b)
        buckets.push_back(randomSmallBucket(rng));
    spec.sizeDist = SizeDistribution(buckets);

    spec.lifetime.pShort = 0.3 + 0.65 * rng.nextDouble();
    spec.lifetime.meanShortDistance = 1.0 + 15.0 * rng.nextDouble();
    spec.lifetime.pLongFreed = 0.3 * rng.nextDouble();
    spec.lifetime.meanLongDistance = 50.0 + 750.0 * rng.nextDouble();

    spec.pLarge = 0.1 * rng.nextDouble();
    spec.largeDist =
        SizeDistribution({{1.0, 1 << 10, 32 << 10}});
    spec.pLargeShort = rng.nextDouble();

    spec.computePerAlloc = rng.nextRange(0, 300);
    spec.touchStores = rng.nextBelow(4);
    spec.touchLoads = rng.nextBelow(4);
    spec.staticWsBytes = 4096 * rng.nextRange(1, 16);
    spec.staticAccesses = rng.nextBelow(4);
    spec.rpcBytes = 1024 * rng.nextBelow(8);

    if (rng.nextBool(0.3)) {
        spec.burstEvery = rng.nextRange(20, 100);
        spec.burstBytes = 1024 * rng.nextRange(1, 64);
        spec.burstObjSize = 8 * rng.nextRange(8, 256);
    }
    return spec;
}

/** Structural self-consistency of a synthesized trace. */
void
checkWellFormed(const Trace &trace, const std::string &ctx)
{
    ASSERT_FALSE(trace.empty()) << ctx;
    ASSERT_EQ(trace.back().kind, OpKind::FunctionEnd)
        << ctx << ": trace must end in the FunctionEnd batch free";

    std::unordered_set<std::uint64_t> live, ever;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceOp &op = trace[i];
        switch (op.kind) {
          case OpKind::Malloc:
            ASSERT_TRUE(ever.insert(op.objId).second)
                << ctx << ": duplicate object id at op " << i;
            live.insert(op.objId);
            break;
          case OpKind::Free:
            ASSERT_EQ(live.erase(op.objId), 1u)
                << ctx << ": free of dead/unknown object at op " << i;
            break;
          case OpKind::Load:
          case OpKind::Store:
            ASSERT_TRUE(live.count(op.objId))
                << ctx << ": access to dead object at op " << i;
            break;
          case OpKind::FunctionEnd:
            ASSERT_EQ(i, trace.size() - 1)
                << ctx << ": FunctionEnd mid-trace at op " << i;
            break;
          default:
            break;
        }
    }
    // Whatever is still live is exactly the set the FunctionEnd batch
    // free reclaims — every alloc has a free or survives to the end.
}

/** Replay with the invariant checker armed at every op. */
void
checkReplaysClean(const WorkloadSpec &spec, const Trace &trace,
                  MachineConfig cfg, const std::string &ctx)
{
    cfg.check.interval = 1;
    try {
        Machine machine(cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        executor.run(spec, trace, RunOptions{});
        EXPECT_EQ(executor.liveObjects(), 0u)
            << ctx << ": objects survived FunctionEnd";
    } catch (const SimError &e) {
        FAIL() << ctx << ": " << errorCategoryName(e.category()) << " at op "
               << (e.hasOpIndex() ? std::to_string(e.opIndex())
                                  : std::string("-"))
               << ": " << e.what();
    }
}

class TraceFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(TraceFuzz, RandomTracesReplayCleanUnderFullChecking)
{
    const int shard = GetParam();
    for (int s = 0; s < kSeedsPerShard; ++s) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(shard) * kSeedsPerShard + s;
        const WorkloadSpec spec = randomSpec(seed);
        const std::string ctx = "seed " + std::to_string(seed);

        const Trace trace = TraceGenerator(spec).generate();
        checkWellFormed(trace, ctx);
        if (::testing::Test::HasFatalFailure())
            return;

        checkReplaysClean(spec, trace, test::smallConfig(),
                          ctx + " baseline");
        checkReplaysClean(spec, trace, test::smallMementoConfig(),
                          ctx + " memento");
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, TraceFuzz,
                         ::testing::Range(0, kShards));

} // namespace
} // namespace memento
