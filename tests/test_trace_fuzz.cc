/**
 * @file
 * Property-based trace fuzzing. 200 seeded random workload specs —
 * sizes, lifetimes, and per-language mixes drawn through the same
 * wl/distributions machinery the paper workloads use — are synthesized
 * into traces and checked two ways:
 *
 *  - structurally: unique object ids, every Free/Load/Store hits a
 *    live object, and every allocation either has a matching Free or
 *    survives to the trailing FunctionEnd batch free;
 *  - dynamically: the trace replays cleanly under both the baseline
 *    and the Memento machine with the invariant checker armed at
 *    check.interval = 1 (every op), and no object outlives the run.
 *
 * Seeds are sharded across TEST_P instances so CTest parallelism can
 * spread the work.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "machine/function_executor.h"
#include "machine/machine.h"
#include "sim/error.h"
#include "sim/rng.h"
#include "test_util.h"
#include "wl/distributions.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

constexpr int kShards = 8;
constexpr int kSeedsPerShard = 25; // 8 x 25 = 200 fuzz cases.

using test::randomSpec; // Shared with the static-analysis corpus test.

/** Structural self-consistency of a synthesized trace. */
void
checkWellFormed(const Trace &trace, const std::string &ctx)
{
    ASSERT_FALSE(trace.empty()) << ctx;
    ASSERT_EQ(trace.back().kind, OpKind::FunctionEnd)
        << ctx << ": trace must end in the FunctionEnd batch free";

    std::unordered_set<std::uint64_t> live, ever;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceOp &op = trace[i];
        switch (op.kind) {
          case OpKind::Malloc:
            ASSERT_TRUE(ever.insert(op.objId).second)
                << ctx << ": duplicate object id at op " << i;
            live.insert(op.objId);
            break;
          case OpKind::Free:
            ASSERT_EQ(live.erase(op.objId), 1u)
                << ctx << ": free of dead/unknown object at op " << i;
            break;
          case OpKind::Load:
          case OpKind::Store:
            ASSERT_TRUE(live.count(op.objId))
                << ctx << ": access to dead object at op " << i;
            break;
          case OpKind::FunctionEnd:
            ASSERT_EQ(i, trace.size() - 1)
                << ctx << ": FunctionEnd mid-trace at op " << i;
            break;
          default:
            break;
        }
    }
    // Whatever is still live is exactly the set the FunctionEnd batch
    // free reclaims — every alloc has a free or survives to the end.
}

/** Replay with the invariant checker armed at every op. */
void
checkReplaysClean(const WorkloadSpec &spec, const Trace &trace,
                  MachineConfig cfg, const std::string &ctx)
{
    cfg.check.interval = 1;
    try {
        Machine machine(cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        executor.run(spec, trace, RunOptions{});
        EXPECT_EQ(executor.liveObjects(), 0u)
            << ctx << ": objects survived FunctionEnd";
    } catch (const SimError &e) {
        FAIL() << ctx << ": " << errorCategoryName(e.category()) << " at op "
               << (e.hasOpIndex() ? std::to_string(e.opIndex())
                                  : std::string("-"))
               << ": " << e.what();
    }
}

class TraceFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(TraceFuzz, RandomTracesReplayCleanUnderFullChecking)
{
    const int shard = GetParam();
    for (int s = 0; s < kSeedsPerShard; ++s) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(shard) * kSeedsPerShard + s;
        const WorkloadSpec spec = randomSpec(seed);
        const std::string ctx = "seed " + std::to_string(seed);

        const Trace trace = TraceGenerator(spec).generate();
        checkWellFormed(trace, ctx);
        if (::testing::Test::HasFatalFailure())
            return;

        checkReplaysClean(spec, trace, test::smallConfig(),
                          ctx + " baseline");
        checkReplaysClean(spec, trace, test::smallMementoConfig(),
                          ctx + " memento");
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, TraceFuzz,
                         ::testing::Range(0, kShards));

} // namespace
} // namespace memento
