/**
 * @file
 * Tests for the trace format, the synthetic trace generator, and the
 * workload registry.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sim/error.h"
#include "sim/size_class.h"
#include "wl/trace.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

TEST(TraceIo, RoundTrip)
{
    Trace trace = {
        {OpKind::Compute, 100, 0, 0},
        {OpKind::Malloc, 64, 1, 0},
        {OpKind::Store, 0, 1, 8},
        {OpKind::Load, 0, 1, 16},
        {OpKind::StaticLoad, 0, 0, 4096},
        {OpKind::StaticStore, 0, 0, 8192},
        {OpKind::Free, 0, 1, 0},
        {OpKind::FunctionEnd, 0, 0, 0},
    };
    std::stringstream ss;
    writeTrace(trace, ss);
    Trace parsed = readTrace(ss);
    EXPECT_EQ(parsed, trace);
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\nC 10 0 0\nE 0 0 0\n");
    Trace parsed = readTrace(ss);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].kind, OpKind::Compute);
    EXPECT_EQ(parsed[0].value, 10u);
}

TEST(TraceIo, MalformedLineThrows)
{
    std::stringstream ss("C 10 0 0\nM 64\nE 0 0 0\n");
    try {
        readTrace(ss);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Trace);
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(TraceIo, TruncatedTraceThrows)
{
    // A file cut off before the FunctionEnd terminator must not
    // replay silently.
    std::stringstream ss("C 10 0 0\nM 64 1 0\n");
    try {
        readTrace(ss);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Trace);
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(TraceIo, CountOps)
{
    Trace trace = {{OpKind::Malloc, 8, 1, 0},
                   {OpKind::Malloc, 8, 2, 0},
                   {OpKind::Free, 0, 1, 0}};
    EXPECT_EQ(countOps(trace, OpKind::Malloc), 2u);
    EXPECT_EQ(countOps(trace, OpKind::Free), 1u);
    EXPECT_EQ(countOps(trace, OpKind::Compute), 0u);
}

class GeneratorTest : public ::testing::Test
{
  protected:
    static WorkloadSpec
    spec()
    {
        WorkloadSpec s;
        s.id = "gen-test";
        s.numAllocs = 2000;
        s.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 256}});
        s.largeDist = SizeDistribution({SizeBucket{1.0, 520, 4096}});
        s.lifetime = {.pShort = 0.7, .meanShortDistance = 5.0,
                      .pLongFreed = 0.1, .meanLongDistance = 200.0};
        s.pLarge = 0.05;
        s.burstEvery = 500;
        s.burstBytes = 32 << 10;
        s.seed = 7;
        return s;
    }
};

TEST_F(GeneratorTest, Deterministic)
{
    Trace a = TraceGenerator(spec()).generate();
    Trace b = TraceGenerator(spec()).generate();
    EXPECT_EQ(a, b);

    WorkloadSpec other = spec();
    other.seed = 8;
    Trace c = TraceGenerator(other).generate();
    EXPECT_NE(a, c);
}

TEST_F(GeneratorTest, EveryFreeMatchesEarlierMalloc)
{
    Trace trace = TraceGenerator(spec()).generate();
    std::unordered_set<std::uint64_t> live;
    for (const TraceOp &op : trace) {
        if (op.kind == OpKind::Malloc) {
            ASSERT_TRUE(live.insert(op.objId).second);
        } else if (op.kind == OpKind::Free) {
            ASSERT_EQ(live.erase(op.objId), 1u) << "free before malloc";
        }
    }
}

TEST_F(GeneratorTest, NoAccessToFreedObjects)
{
    Trace trace = TraceGenerator(spec()).generate();
    std::unordered_set<std::uint64_t> freed;
    for (const TraceOp &op : trace) {
        switch (op.kind) {
          case OpKind::Free:
            freed.insert(op.objId);
            break;
          case OpKind::Load:
          case OpKind::Store:
            ASSERT_EQ(freed.count(op.objId), 0u)
                << "use after free of object " << op.objId;
            break;
          default:
            break;
        }
    }
}

TEST_F(GeneratorTest, AccessOffsetsWithinObjectSize)
{
    Trace trace = TraceGenerator(spec()).generate();
    std::unordered_map<std::uint64_t, std::uint64_t> sizes;
    for (const TraceOp &op : trace) {
        if (op.kind == OpKind::Malloc) {
            sizes[op.objId] = op.value;
        } else if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
            ASSERT_LT(op.offset, sizes.at(op.objId));
        }
    }
}

TEST_F(GeneratorTest, EndsWithFunctionEnd)
{
    Trace trace = TraceGenerator(spec()).generate();
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.back().kind, OpKind::FunctionEnd);
    EXPECT_EQ(countOps(trace, OpKind::FunctionEnd), 1u);
}

TEST_F(GeneratorTest, AllocCountMatchesSpecPlusBursts)
{
    Trace trace = TraceGenerator(spec()).generate();
    const std::uint64_t mallocs = countOps(trace, OpKind::Malloc);
    const std::uint64_t bursts = spec().numAllocs / spec().burstEvery;
    const std::uint64_t per_burst =
        spec().burstBytes / spec().burstObjSize;
    EXPECT_EQ(mallocs, spec().numAllocs + bursts * per_burst);
}

TEST_F(GeneratorTest, SizesRespectDistributionBounds)
{
    Trace trace = TraceGenerator(spec()).generate();
    for (const TraceOp &op : trace) {
        if (op.kind != OpKind::Malloc)
            continue;
        const bool small = op.value >= 16 && op.value <= 256;
        const bool large = op.value >= 520 && op.value <= 4096;
        const bool burst = op.value == 512;
        EXPECT_TRUE(small || large || burst)
            << "unexpected size " << op.value;
    }
}

TEST_F(GeneratorTest, GolangStyleSpecEmitsNoFrees)
{
    WorkloadSpec go = spec();
    go.lifetime.pShort = 0.0;
    go.lifetime.pLongFreed = 0.0;
    go.pLarge = 0.0;
    go.burstEvery = 0;
    Trace trace = TraceGenerator(go).generate();
    EXPECT_EQ(countOps(trace, OpKind::Free), 0u);
}

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(WorkloadRegistry, HasAll23PaperWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 23u);
    EXPECT_EQ(workloadsByDomain(Domain::Function).size(), 16u);
    EXPECT_EQ(workloadsByDomain(Domain::DataProc).size(), 4u);
    EXPECT_EQ(workloadsByDomain(Domain::Platform).size(), 3u);
}

TEST(WorkloadRegistry, IdsAreUniqueAndLookupWorks)
{
    std::unordered_set<std::string> ids;
    for (const WorkloadSpec &w : allWorkloads()) {
        EXPECT_TRUE(ids.insert(w.id).second) << "duplicate id " << w.id;
        EXPECT_EQ(workloadById(w.id).id, w.id);
    }
}

TEST(WorkloadRegistry, LanguageGroupsMatchThePaper)
{
    unsigned python = 0, cpp = 0, go = 0;
    for (const WorkloadSpec &w : workloadsByDomain(Domain::Function)) {
        python += w.lang == Language::Python;
        cpp += w.lang == Language::Cpp;
        go += w.lang == Language::Golang;
    }
    EXPECT_EQ(python, 9u); // SeBS + FunctionBench + pyperformance.
    EXPECT_EQ(cpp, 4u);    // DeathStarBench units.
    EXPECT_EQ(go, 3u);     // Go ports.

    for (const WorkloadSpec &w : workloadsByDomain(Domain::DataProc))
        EXPECT_EQ(w.lang, Language::Cpp);
    for (const WorkloadSpec &w : workloadsByDomain(Domain::Platform))
        EXPECT_EQ(w.lang, Language::Golang);
}

TEST(WorkloadRegistry, SeedsAreDistinct)
{
    std::unordered_set<std::uint64_t> seeds;
    for (const WorkloadSpec &w : allWorkloads())
        EXPECT_TRUE(seeds.insert(w.seed).second);
}

} // namespace
} // namespace memento
