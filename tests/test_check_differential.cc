/**
 * @file
 * Differential testing of the static trace checker against the
 * dynamic invariant machinery: for every inject.* fault class that
 * corrupts the *trace* (truncation, record corruption), the same
 * workload at the same seed must (a) fail dynamically with a
 * structured SimError and (b) be flagged statically by `check` on the
 * identically-faulted trace — with the op indices in agreement.
 *
 * Machine-state faults (pool exhaustion, mmap failure, arena bit
 * flips) have no trace image: the op stream they run is pristine, so
 * they are dynamic-only by construction and deliberately absent here.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/experiment.h"
#include "sa/diag.h"
#include "sa/trace_check.h"
#include "test_util.h"
#include "wl/distributions.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

/** Small, fast workload; mirrors the fault-injection test's shape. */
WorkloadSpec
diffSpec(Language lang)
{
    WorkloadSpec spec;
    spec.id = "diff";
    spec.lang = lang;
    spec.numAllocs = 400;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 128}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 2048}});
    spec.lifetime = {.pShort = 0.8, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 50;
    spec.staticWsBytes = 64 << 10;
    spec.rpcBytes = 1024;
    spec.seed = 42;
    return spec;
}

std::string
renderText(const DiagReport &report)
{
    std::ostringstream os;
    report.printText(os);
    return os.str();
}

class CheckDifferential : public ::testing::TestWithParam<Language>
{
};

TEST_P(CheckDifferential, CorruptedRecordCaughtBothWays)
{
    const WorkloadSpec spec = diffSpec(GetParam());
    const Trace trace = TraceGenerator(spec).generate();

    MachineConfig cfg = GetParam() == Language::Python
                            ? test::smallMementoConfig()
                            : test::smallConfig();
    cfg.inject.workload = spec.id;
    cfg.inject.traceCorruptAt = 20;
    cfg.check.interval = 64;

    // Dynamic: the executor trips over the corrupt record mid-run.
    const RunResult dynamic = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(dynamic.failed());
    ASSERT_TRUE(dynamic.error->hasOpIndex()) << dynamic.error->message;
    EXPECT_EQ(dynamic.error->opIndex, 19u) << dynamic.error->message;

    // Static: the identically-faulted trace is flagged before any
    // machine is built, at the same op.
    const Trace faulted = applyTraceFaultPlan(trace, cfg.inject, spec.id);
    DiagReport report;
    checkTrace(faulted, TraceCheckPolicy::fromConfig(cfg), spec.id,
               report);
    ASSERT_FALSE(report.clean()) << "static checker missed the fault";
    const Diag &first = report.diags().front();
    EXPECT_EQ(first.ruleId, "trace-free-unallocated") << first.message;
    EXPECT_EQ(first.location, dynamic.error->opIndex) << first.message;
}

TEST_P(CheckDifferential, TruncatedTraceCaughtBothWays)
{
    const WorkloadSpec spec = diffSpec(GetParam());
    const Trace trace = TraceGenerator(spec).generate();

    MachineConfig cfg = GetParam() == Language::Python
                            ? test::smallMementoConfig()
                            : test::smallConfig();
    cfg.inject.workload = spec.id;
    cfg.inject.traceTruncateAt = 50;
    cfg.check.interval = 64;

    const RunResult dynamic = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(dynamic.failed());
    EXPECT_EQ(dynamic.error->category, ErrorCategory::Trace)
        << dynamic.error->message;
    EXPECT_NE(dynamic.error->message.find("truncated at op 50"),
              std::string::npos)
        << dynamic.error->message;

    const Trace faulted = applyTraceFaultPlan(trace, cfg.inject, spec.id);
    ASSERT_EQ(faulted.size(), 50u);
    DiagReport report;
    checkTrace(faulted, TraceCheckPolicy::fromConfig(cfg), spec.id,
               report);
    ASSERT_FALSE(report.clean()) << "static checker missed the fault";
    const Diag &first = report.diags().front();
    EXPECT_EQ(first.ruleId, "trace-truncated") << first.message;
    EXPECT_EQ(first.location, 50u) << first.message;
}

TEST_P(CheckDifferential, PlanForOtherWorkloadLeavesTraceClean)
{
    const WorkloadSpec spec = diffSpec(GetParam());
    const Trace trace = TraceGenerator(spec).generate();

    FaultPlan plan;
    plan.workload = "someone-else";
    plan.traceCorruptAt = 20;
    plan.traceTruncateAt = 50;

    const Trace same = applyTraceFaultPlan(trace, plan, spec.id);
    EXPECT_EQ(same.size(), trace.size());
    DiagReport report;
    checkTrace(same, TraceCheckPolicy{}, spec.id, report);
    EXPECT_TRUE(report.empty()) << renderText(report);
}

INSTANTIATE_TEST_SUITE_P(Langs, CheckDifferential,
                         ::testing::Values(Language::Python,
                                           Language::Cpp,
                                           Language::Golang));

} // namespace
} // namespace memento
