/**
 * @file
 * Unit tests for the memoized shared trace cache (wl/trace_generator.h):
 * hit identity, single generation under concurrent first touch, and
 * const-correctness of the shared handle.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

WorkloadSpec
tinySpec(const std::string &id, std::uint64_t seed)
{
    WorkloadSpec spec = workloadById("aes");
    spec.id = id;
    spec.seed = seed;
    spec.numAllocs = 500;
    return spec;
}

// The API must hand out immutable traces: a worker that could mutate
// the shared copy would silently poison every sibling run.
static_assert(
    std::is_same_v<decltype(std::declval<TraceCache>().get(
                       std::declval<const WorkloadSpec &>())),
                   std::shared_ptr<const Trace>>,
    "TraceCache::get must return a shared_ptr to a const Trace");

TEST(TraceCache, HitReturnsSameObject)
{
    TraceCache cache;
    const WorkloadSpec spec = tinySpec("tc-hit", 7);

    const std::shared_ptr<const Trace> first = cache.get(spec);
    const std::shared_ptr<const Trace> second = cache.get(spec);

    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get())
        << "a cache hit must return the identical Trace object";
    EXPECT_EQ(cache.generations(), 1u);
}

TEST(TraceCache, CachedTraceMatchesDirectGeneration)
{
    TraceCache cache;
    const WorkloadSpec spec = tinySpec("tc-content", 11);

    const std::shared_ptr<const Trace> cached = cache.get(spec);
    const Trace direct = TraceGenerator(spec).generate();

    EXPECT_EQ(*cached, direct);
}

TEST(TraceCache, DistinctKeysGenerateSeparately)
{
    TraceCache cache;
    const WorkloadSpec a = tinySpec("tc-a", 1);
    const WorkloadSpec b = tinySpec("tc-b", 1);
    WorkloadSpec a_reseeded = a;
    a_reseeded.seed = 2;

    const auto ta = cache.get(a);
    const auto tb = cache.get(b);
    const auto ta2 = cache.get(a_reseeded);

    EXPECT_NE(ta.get(), tb.get());
    EXPECT_NE(ta.get(), ta2.get())
        << "a reseeded spec must not hit the old entry";
    EXPECT_EQ(cache.generations(), 3u);
    EXPECT_EQ(cache.get(a).get(), ta.get());
    EXPECT_EQ(cache.generations(), 3u);
}

TEST(TraceCache, ConcurrentFirstTouchGeneratesOnce)
{
    constexpr int kThreads = 16;
    TraceCache cache;
    const WorkloadSpec spec = tinySpec("tc-race", 23);

    // Line every thread up at a start barrier so all of them hit the
    // cold entry at once, then verify only one generation happened and
    // everyone got the same object.
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::shared_ptr<const Trace>> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            got[t] = cache.get(spec);
        });
    }
    while (ready.load() < kThreads)
        std::this_thread::yield();
    go.store(true);
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(cache.generations(), 1u)
        << "concurrent first touch must synthesize exactly once";
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
}

} // namespace
} // namespace memento
