/**
 * @file
 * Tests for the JSON read side (sim/json.h, parseJson): the loader
 * under every result-store record. The properties that matter there:
 * 64-bit integers parse exactly (digests and cycle counts never round
 * through a double), damage of any shape is a clean false — never a
 * throw — and everything JsonWriter emits parses back.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "sim/json.h"

namespace memento {
namespace {

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, err)) << text << ": " << err;
    return v;
}

void
expectParseFails(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(text, v, err)) << text;
    EXPECT_FALSE(err.empty()) << text << ": error must name a reason";
}

TEST(JsonParse, ScalarsParse)
{
    EXPECT_EQ(parseOk("null").type, JsonValue::Type::Null);
    EXPECT_TRUE(parseOk("true").boolean);
    EXPECT_FALSE(parseOk("false").boolean);

    const JsonValue s = parseOk("\"hi\"");
    ASSERT_TRUE(s.isString());
    EXPECT_EQ(s.str, "hi");

    const JsonValue n = parseOk("42");
    ASSERT_TRUE(n.isNumber());
    EXPECT_TRUE(n.isInteger);
    EXPECT_EQ(n.u64, 42u);
    EXPECT_EQ(n.number, 42.0);
}

TEST(JsonParse, LargeIntegersAreExact)
{
    // 2^64 - 1: far beyond a double's 53-bit mantissa. A digest that
    // rounded here would quietly invalidate every cache comparison.
    const JsonValue v = parseOk("18446744073709551615");
    ASSERT_TRUE(v.isNumber());
    ASSERT_TRUE(v.isInteger);
    EXPECT_EQ(v.u64, 18446744073709551615ull);

    const JsonValue above = parseOk("0.5");
    EXPECT_FALSE(above.isInteger);
    EXPECT_EQ(above.number, 0.5);

    // Negative and fractional numbers are numbers, not u64 integers.
    const JsonValue neg = parseOk("-3");
    ASSERT_TRUE(neg.isNumber());
    EXPECT_FALSE(neg.isInteger);
    EXPECT_EQ(neg.number, -3.0);

    const JsonValue sci = parseOk("1e3");
    ASSERT_TRUE(sci.isNumber());
    EXPECT_EQ(sci.number, 1000.0);
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\\"b\"").str, "a\"b");
    EXPECT_EQ(parseOk("\"a\\\\b\"").str, "a\\b");
    EXPECT_EQ(parseOk("\"a\\nb\\tc\"").str, "a\nb\tc");
    EXPECT_EQ(parseOk("\"\\u0041\"").str, "A");
}

TEST(JsonParse, ObjectsAndArrays)
{
    const JsonValue v = parseOk(
        "{\"a\": [1, 2, 3], \"b\": {\"c\": \"d\"}, \"e\": null}");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members.size(), 3u);

    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[1].u64, 2u);

    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(b->find("c"), nullptr);
    EXPECT_EQ(b->find("c")->str, "d");

    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(v.find("e")->type, JsonValue::Type::Null);
}

TEST(JsonParse, DamageIsAFalseNeverAThrow)
{
    expectParseFails("");
    expectParseFails("{");
    expectParseFails("{\"a\": }");
    expectParseFails("{\"a\": 1,}");
    expectParseFails("[1, 2");
    expectParseFails("\"unterminated");
    expectParseFails("nul");
    expectParseFails("{\"a\" 1}");
    // Trailing garbage: exactly the shape of a torn record where the
    // next write started mid-file.
    expectParseFails("{\"a\": 1} {\"b\":");
    expectParseFails("123 456");
    // A header whose tail was chopped mid-string.
    expectParseFails("{\"kind\": \"result-ce");
}

TEST(JsonParse, TrailingWhitespaceIsAllowed)
{
    const JsonValue v = parseOk("  {\"a\": 1}  \n\t");
    EXPECT_TRUE(v.isObject());
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "bench");
    w.member("count", std::uint64_t{18446744073709551615ull});
    w.member("name", "quo\"te\n");
    w.member("ratio", 0.125);
    w.key("items").beginArray();
    w.value(std::uint64_t{7}).value(false).valueNull();
    w.endArray();
    w.endObject();
    ASSERT_TRUE(w.complete());

    const JsonValue v = parseOk(os.str());
    EXPECT_EQ(v.find("schema_version")->u64, kJsonSchemaVersion);
    EXPECT_EQ(v.find("kind")->str, "bench");
    EXPECT_EQ(v.find("count")->u64, 18446744073709551615ull);
    EXPECT_EQ(v.find("name")->str, "quo\"te\n");
    EXPECT_EQ(v.find("ratio")->number, 0.125);
    const JsonValue *items = v.find("items");
    ASSERT_NE(items, nullptr);
    ASSERT_EQ(items->items.size(), 3u);
    EXPECT_EQ(items->items[0].u64, 7u);
    EXPECT_FALSE(items->items[1].boolean);
    EXPECT_EQ(items->items[2].type, JsonValue::Type::Null);
}

TEST(JsonParse, DuplicateKeysArePreservedInOrder)
{
    const JsonValue v = parseOk("{\"a\": 1, \"a\": 2}");
    ASSERT_EQ(v.members.size(), 2u);
    // find() returns the first, matching common JSON semantics.
    EXPECT_EQ(v.find("a")->u64, 1u);
}

} // namespace
} // namespace memento
