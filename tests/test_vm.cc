/**
 * @file
 * Unit tests for the OS virtual-memory model: mmap/munmap semantics,
 * demand faulting, MAP_POPULATE, madvise purging, and the Fig. 11
 * accounting counters.
 */

#include <gtest/gtest.h>

#include "os/virtual_memory.h"
#include "test_util.h"

namespace memento {
namespace {

using test::TestEnv;

class VmTest : public ::testing::Test
{
  protected:
    VmTest()
        : buddy(1ull << 22, 64ull << 20, stats),
          vm(cfg, buddy, stats, "vm")
    {
    }

    MachineConfig cfg;
    StatRegistry stats;
    BuddyAllocator buddy;
    VirtualMemory vm;
    TestEnv env;
};

TEST_F(VmTest, MmapReservesWithoutBacking)
{
    const std::uint64_t pages_before = buddy.allocatedPages();
    Addr base = vm.mmap(64 * kPageSize, &env);
    EXPECT_NE(base, kNullAddr);
    EXPECT_TRUE(vm.inVma(base));
    EXPECT_TRUE(vm.inVma(base + 64 * kPageSize - 1));
    EXPECT_FALSE(vm.inVma(base + 64 * kPageSize));
    // Lazy: no user frames allocated yet.
    EXPECT_EQ(buddy.allocatedPages(), pages_before);
    EXPECT_FALSE(vm.pageTable().isMapped(base));
}

TEST_F(VmTest, MmapChargesKernelCategory)
{
    vm.mmap(kPageSize, &env);
    EXPECT_GT(env.ledger().category(CycleCategory::KernelMmap), 0u);
}

TEST_F(VmTest, FaultBacksExactlyOnePage)
{
    Addr base = vm.mmap(16 * kPageSize, &env);
    EXPECT_TRUE(vm.handleFault(base + 5 * kPageSize + 123, env));
    EXPECT_TRUE(vm.pageTable().isMapped(base + 5 * kPageSize));
    EXPECT_FALSE(vm.pageTable().isMapped(base + 4 * kPageSize));
    EXPECT_EQ(vm.faultCount(), 1u);
    EXPECT_EQ(vm.residentUserPages(), 1u);
    EXPECT_GT(env.ledger().category(CycleCategory::KernelFault), 0u);
    // The page was zero-filled: 64 line installs.
    EXPECT_EQ(env.installs.size(), kPageSize / kLineSize);
}

TEST_F(VmTest, FaultOutsideVmaIsSegv)
{
    EXPECT_FALSE(vm.handleFault(0xDEAD'0000, env));
}

TEST_F(VmTest, AlignedMmapRespectsAlignment)
{
    Addr base = vm.mmap(8 * kPageSize, &env, false, 1 << 16);
    EXPECT_EQ(base % (1 << 16), 0u);
}

TEST_F(VmTest, PopulateBacksAllPages)
{
    Addr base = vm.mmap(8 * kPageSize, &env, /*populate=*/true);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(vm.pageTable().isMapped(base + i * kPageSize));
    EXPECT_EQ(vm.faultCount(), 0u);
    EXPECT_EQ(vm.residentUserPages(), 8u);
}

TEST_F(VmTest, MunmapFreesFramesAndInvalidatesTlb)
{
    Addr base = vm.mmap(8 * kPageSize, &env, true);
    const std::uint64_t resident = vm.residentUserPages();
    vm.munmap(base, 8 * kPageSize, &env);
    EXPECT_EQ(vm.residentUserPages(), resident - 8);
    EXPECT_FALSE(vm.inVma(base));
    EXPECT_EQ(env.tlbInvalidations.size(), 8u);
}

TEST_F(VmTest, PartialMunmapSplitsVma)
{
    Addr base = vm.mmap(8 * kPageSize, &env);
    vm.munmap(base + 2 * kPageSize, 2 * kPageSize, &env);
    EXPECT_TRUE(vm.inVma(base));
    EXPECT_FALSE(vm.inVma(base + 2 * kPageSize));
    EXPECT_TRUE(vm.inVma(base + 4 * kPageSize));
    EXPECT_EQ(vm.vmaCount(), 2u);
}

TEST_F(VmTest, MadviseFreeKeepsVmaDropsFrames)
{
    Addr base = vm.mmap(4 * kPageSize, &env, true);
    vm.madviseFree(base, 4 * kPageSize, &env);
    EXPECT_TRUE(vm.inVma(base));
    EXPECT_FALSE(vm.pageTable().isMapped(base));
    EXPECT_EQ(vm.residentUserPages(), 0u);
    // Next touch faults again.
    EXPECT_TRUE(vm.handleFault(base, env));
    EXPECT_EQ(vm.faultCount(), 1u);
}

TEST_F(VmTest, MadviseOfAbsentPagesIsFreeOfCharge)
{
    Addr base = vm.mmap(4 * kPageSize, &env);
    const Cycles before = env.ledger().total();
    const auto invals = env.tlbInvalidations.size();
    vm.madviseFree(base, 4 * kPageSize, &env);
    EXPECT_EQ(env.ledger().total(), before);
    EXPECT_EQ(env.tlbInvalidations.size(), invals + 4);
}

TEST_F(VmTest, AggregateCountsAreCumulative)
{
    Addr base = vm.mmap(4 * kPageSize, &env, true);
    vm.munmap(base, 4 * kPageSize, &env);
    Addr base2 = vm.mmap(4 * kPageSize, &env, true);
    (void)base2;
    // 8 user pages were allocated in total even though only 4 are live.
    EXPECT_EQ(vm.aggregateUserPages(), 8u);
    EXPECT_EQ(vm.residentUserPages(), 4u);
}

TEST_F(VmTest, PeakTracksKernelAndUserPages)
{
    vm.mmap(16 * kPageSize, &env, true);
    const std::uint64_t peak = vm.peakResidentPages();
    EXPECT_GE(peak, 16u); // User pages plus page-table nodes.
    EXPECT_GE(vm.aggregateKernelPages(), 1u);
}

TEST_F(VmTest, MapPopulateConfigForcesEagerBacking)
{
    MachineConfig pop_cfg;
    pop_cfg.kernel.mapPopulate = true;
    StatRegistry stats2;
    BuddyAllocator buddy2(1ull << 22, 64ull << 20, stats2);
    VirtualMemory vm2(pop_cfg, buddy2, stats2, "vm2");
    TestEnv env2;
    Addr base = vm2.mmap(4 * kPageSize, &env2);
    EXPECT_TRUE(vm2.pageTable().isMapped(base));
    EXPECT_EQ(vm2.residentUserPages(), 4u);
}

TEST_F(VmTest, ThpBacksWholeBlockWithOneFault)
{
    MachineConfig thp_cfg;
    thp_cfg.kernel.transparentHugePages = true;
    StatRegistry stats2;
    BuddyAllocator buddy2(1ull << 22, 1ull << 30, stats2);
    VirtualMemory vm2(thp_cfg, buddy2, stats2, "vmthp");
    TestEnv env2;

    const std::uint64_t huge = 1ull << kHugePageShift;
    Addr base = vm2.mmap(2 * huge, &env2, false, huge);
    EXPECT_TRUE(vm2.handleFault(base + 12345, env2));
    EXPECT_EQ(vm2.hugeMappingCount(), 1u);
    EXPECT_EQ(vm2.faultCount(), 1u);
    // The whole 2 MiB block translates; the neighbour block does not.
    ASSERT_TRUE(vm2.lookupHuge(base + huge - 1).has_value());
    EXPECT_FALSE(vm2.lookupHuge(base + huge).has_value());
    // Offsets are preserved.
    EXPECT_EQ(*vm2.lookupHuge(base + 777) - *vm2.lookupHuge(base), 777u);
    EXPECT_EQ(vm2.residentUserPages(), huge / kPageSize);
}

TEST_F(VmTest, ThpFallsBackWhenBlockDoesNotFit)
{
    MachineConfig thp_cfg;
    thp_cfg.kernel.transparentHugePages = true;
    StatRegistry stats2;
    BuddyAllocator buddy2(1ull << 22, 1ull << 30, stats2);
    VirtualMemory vm2(thp_cfg, buddy2, stats2, "vmthp");
    TestEnv env2;

    // A small VMA cannot host a 2 MiB mapping: 4 KiB fault instead.
    Addr base = vm2.mmap(8 * kPageSize, &env2);
    EXPECT_TRUE(vm2.handleFault(base, env2));
    EXPECT_EQ(vm2.hugeMappingCount(), 0u);
    EXPECT_TRUE(vm2.pageTable().isMapped(base));
}

TEST_F(VmTest, MunmapSplitsHugeMapping)
{
    MachineConfig thp_cfg;
    thp_cfg.kernel.transparentHugePages = true;
    StatRegistry stats2;
    BuddyAllocator buddy2(1ull << 22, 1ull << 30, stats2);
    VirtualMemory vm2(thp_cfg, buddy2, stats2, "vmthp");
    TestEnv env2;

    const std::uint64_t huge = 1ull << kHugePageShift;
    Addr base = vm2.mmap(huge, &env2, false, huge);
    vm2.handleFault(base, env2);
    ASSERT_EQ(vm2.hugeMappingCount(), 1u);
    const std::uint64_t frames = buddy2.allocatedPages();
    vm2.munmap(base, huge, &env2);
    EXPECT_EQ(vm2.hugeMappingCount(), 0u);
    EXPECT_LT(buddy2.allocatedPages(), frames);
}

TEST_F(VmTest, StructPageTrafficOnFault)
{
    Addr base = vm.mmap(kPageSize, &env);
    env.physReads.clear();
    env.physWrites.clear();
    vm.handleFault(base, env);
    // At least one struct-page read and write beyond the zero-fill.
    bool saw_struct_read = false, saw_struct_write = false;
    for (Addr a : env.physReads)
        saw_struct_read |= a >= VirtualMemory::kStructPageBase;
    for (Addr a : env.physWrites)
        saw_struct_write |= a >= VirtualMemory::kStructPageBase;
    EXPECT_TRUE(saw_struct_read);
    EXPECT_TRUE(saw_struct_write);
}

} // namespace
} // namespace memento
