/**
 * @file
 * Shared test helpers: a recording Env stub for unit-testing software
 * and hardware models without a full Machine, and small machine
 * configurations that keep tests fast.
 */

#ifndef MEMENTO_TESTS_TEST_UTIL_H
#define MEMENTO_TESTS_TEST_UTIL_H

#include <vector>

#include "mem/env.h"
#include "sim/config.h"

namespace memento::test {

/** Env stub that records activity and charges trivial costs. */
class TestEnv : public Env
{
  public:
    void
    chargeInstructions(InstCount n) override
    {
        instructions += n;
        ledger_.charge((n + 1) / 2);
    }

    void chargeCycles(Cycles n) override { ledger_.charge(n); }

    Cycles
    accessVirtual(Addr vaddr, AccessType type) override
    {
        (type == AccessType::Write ? virtWrites : virtReads)
            .push_back(vaddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles
    accessPhysical(Addr paddr, AccessType type, AccessAttrs) override
    {
        (type == AccessType::Write ? physWrites : physReads)
            .push_back(paddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles
    installPhysical(Addr paddr) override
    {
        installs.push_back(paddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles now() const override { return ledger_.total(); }
    CycleLedger &ledger() override { return ledger_; }

    void
    tlbInvalidate(Addr vaddr) override
    {
        tlbInvalidations.push_back(vaddr);
    }

    InstCount instructions = 0;
    std::vector<Addr> virtReads, virtWrites;
    std::vector<Addr> physReads, physWrites;
    std::vector<Addr> installs;
    std::vector<Addr> tlbInvalidations;

  private:
    CycleLedger ledger_;
};

/** A small but structurally valid machine configuration. */
inline MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l1d = CacheConfig{4 << 10, 4, 2};
    cfg.l1i = CacheConfig{4 << 10, 4, 2};
    cfg.l2 = CacheConfig{16 << 10, 4, 14};
    cfg.llc = CacheConfig{64 << 10, 8, 40};
    cfg.l1Tlb = TlbConfig{16, 4, 1};
    cfg.l2Tlb = TlbConfig{64, 4, 7};
    cfg.dram.sizeBytes = 512ull << 20;
    return cfg;
}

/** smallConfig() with Memento enabled. */
inline MachineConfig
smallMementoConfig()
{
    MachineConfig cfg = smallConfig();
    cfg.memento.enabled = true;
    return cfg;
}

} // namespace memento::test

#endif // MEMENTO_TESTS_TEST_UTIL_H
