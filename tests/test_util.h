/**
 * @file
 * Shared test helpers: a recording Env stub for unit-testing software
 * and hardware models without a full Machine, and small machine
 * configurations that keep tests fast.
 */

#ifndef MEMENTO_TESTS_TEST_UTIL_H
#define MEMENTO_TESTS_TEST_UTIL_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/env.h"
#include "sim/config.h"
#include "sim/rng.h"
#include "wl/distributions.h"
#include "wl/workloads.h"

namespace memento::test {

/** Env stub that records activity and charges trivial costs. */
class TestEnv : public Env
{
  public:
    void
    chargeInstructions(InstCount n) override
    {
        instructions += n;
        ledger_.charge((n + 1) / 2);
    }

    void chargeCycles(Cycles n) override { ledger_.charge(n); }

    Cycles
    accessVirtual(Addr vaddr, AccessType type) override
    {
        (type == AccessType::Write ? virtWrites : virtReads)
            .push_back(vaddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles
    accessPhysical(Addr paddr, AccessType type, AccessAttrs) override
    {
        (type == AccessType::Write ? physWrites : physReads)
            .push_back(paddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles
    installPhysical(Addr paddr) override
    {
        installs.push_back(paddr);
        ledger_.charge(2);
        return 2;
    }

    Cycles now() const override { return ledger_.total(); }
    CycleLedger &ledger() override { return ledger_; }

    void
    tlbInvalidate(Addr vaddr) override
    {
        tlbInvalidations.push_back(vaddr);
    }

    InstCount instructions = 0;
    std::vector<Addr> virtReads, virtWrites;
    std::vector<Addr> physReads, physWrites;
    std::vector<Addr> installs;
    std::vector<Addr> tlbInvalidations;

  private:
    CycleLedger ledger_;
};

/** A small but structurally valid machine configuration. */
inline MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l1d = CacheConfig{4 << 10, 4, 2};
    cfg.l1i = CacheConfig{4 << 10, 4, 2};
    cfg.l2 = CacheConfig{16 << 10, 4, 14};
    cfg.llc = CacheConfig{64 << 10, 8, 40};
    cfg.l1Tlb = TlbConfig{16, 4, 1};
    cfg.l2Tlb = TlbConfig{64, 4, 7};
    cfg.dram.sizeBytes = 512ull << 20;
    return cfg;
}

/** smallConfig() with Memento enabled. */
inline MachineConfig
smallMementoConfig()
{
    MachineConfig cfg = smallConfig();
    cfg.memento.enabled = true;
    return cfg;
}

/** An 8-byte-granule size range within the small-object span. */
inline SizeBucket
randomSmallBucket(Rng &rng)
{
    const std::uint64_t lo = 8 * rng.nextRange(1, 32);       // 8..256
    const std::uint64_t hi = lo + 8 * rng.nextRange(0, 32);  // <= 512
    return {rng.nextRange(1, 10) / 1.0, lo,
            std::min<std::uint64_t>(hi, 512)};
}

/**
 * A random but structurally valid workload spec (the fuzz-corpus
 * generator, shared by the trace fuzzer and the static-analysis corpus
 * test). Every stochastic parameter flows from @p seed alone, so a
 * failing case replays exactly from its seed.
 */
inline WorkloadSpec
randomSpec(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545F4914F6CDD1Dull);
    WorkloadSpec spec;
    spec.id = "fuzz-" + std::to_string(seed);
    spec.description = "property fuzz case";
    spec.seed = seed + 1;

    const Language langs[] = {Language::Python, Language::Cpp,
                              Language::Golang};
    spec.lang = langs[rng.nextBelow(3)];
    spec.domain = Domain::Function;

    spec.numAllocs = rng.nextRange(40, 220);

    std::vector<SizeBucket> buckets;
    const unsigned nbuckets = 1 + rng.nextBelow(3);
    for (unsigned b = 0; b < nbuckets; ++b)
        buckets.push_back(randomSmallBucket(rng));
    spec.sizeDist = SizeDistribution(buckets);

    spec.lifetime.pShort = 0.3 + 0.65 * rng.nextDouble();
    spec.lifetime.meanShortDistance = 1.0 + 15.0 * rng.nextDouble();
    spec.lifetime.pLongFreed = 0.3 * rng.nextDouble();
    spec.lifetime.meanLongDistance = 50.0 + 750.0 * rng.nextDouble();

    spec.pLarge = 0.1 * rng.nextDouble();
    spec.largeDist =
        SizeDistribution({{1.0, 1 << 10, 32 << 10}});
    spec.pLargeShort = rng.nextDouble();

    spec.computePerAlloc = rng.nextRange(0, 300);
    spec.touchStores = rng.nextBelow(4);
    spec.touchLoads = rng.nextBelow(4);
    spec.staticWsBytes = 4096 * rng.nextRange(1, 16);
    spec.staticAccesses = rng.nextBelow(4);
    spec.rpcBytes = 1024 * rng.nextBelow(8);

    if (rng.nextBool(0.3)) {
        spec.burstEvery = rng.nextRange(20, 100);
        spec.burstBytes = 1024 * rng.nextRange(1, 64);
        spec.burstObjSize = 8 * rng.nextRange(8, 256);
    }
    return spec;
}

} // namespace memento::test

#endif // MEMENTO_TESTS_TEST_UTIL_H
