/**
 * @file
 * Tests for the src/val layer: every invariant family must pass on a
 * healthy machine and fire on a deliberately corrupted one, and the
 * machine-state digest must be reproducible across identical runs.
 */

#include <gtest/gtest.h>

#include <string>

#include "machine/experiment.h"
#include "machine/function_executor.h"
#include "machine/machine.h"
#include "sim/error.h"
#include "test_util.h"
#include "val/digest.h"
#include "val/invariants.h"
#include "wl/trace_generator.h"

namespace memento {

/** Befriended by Cache, BuddyAllocator, and CycleLedger. */
struct InvariantTestPeer
{
    static void
    corruptLedger(CycleLedger &ledger)
    {
        ledger.total_ += 5; // Cycles nobody charged to a category.
    }

    static void
    corruptBuddy(BuddyAllocator &buddy)
    {
        buddy.allocatedPages_ += 1; // Phantom live page.
    }

    /** Leave one line invalid yet dirty. */
    static void
    corruptCacheLine(Cache &cache)
    {
        for (auto &line : cache.lines_) {
            if (!line.valid) {
                line.dirty = true;
                return;
            }
        }
        cache.lines_.front().valid = false;
        cache.lines_.front().dirty = true;
    }

    /** Skew a resident tag so it maps to a neighbouring set. */
    static void
    skewResidentTag(Cache &cache)
    {
        for (auto &line : cache.lines_) {
            if (line.valid) {
                line.tag ^= 1;
                return;
            }
        }
    }
};

namespace {

WorkloadSpec
tinySpec(Language lang)
{
    WorkloadSpec spec;
    spec.id = "tiny";
    spec.lang = lang;
    spec.numAllocs = 400;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 128}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 2048}});
    spec.lifetime = {.pShort = 0.8, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 50;
    spec.staticWsBytes = 64 << 10;
    spec.rpcBytes = 1024;
    spec.seed = 42;
    return spec;
}

/** Run the tiny workload; by default stop just short of FunctionEnd so
 *  live objects and arenas remain for the corruption tests to bite. */
void
runTiny(Machine &m, Language lang, bool to_end = false)
{
    const WorkloadSpec spec = tinySpec(lang);
    m.createProcess(spec);
    const Trace trace = TraceGenerator(spec).generate();
    FunctionExecutor executor(m);
    if (to_end)
        executor.run(spec, trace);
    else
        executor.runRange(spec, trace, 0, trace.size() - 1);
}

TEST(InvariantTest, CleanBaselineMachinePasses)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    const InvariantReport report = InvariantChecker::check(m);
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(InvariantTest, CleanMementoMachinePasses)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python);
    const InvariantReport report = InvariantChecker::check(m);
    EXPECT_TRUE(report.clean()) << report.summary();
    ASSERT_NE(m.mementoSpace(), nullptr);
    EXPECT_FALSE(m.mementoSpace()->arenas.empty());
}

TEST(InvariantTest, CleanAfterFullRunWithTeardown)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python, /*to_end=*/true);
    const InvariantReport report = InvariantChecker::check(m);
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(InvariantTest, LedgerConservationViolationDetected)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    InvariantTestPeer::corruptLedger(m.ledger());
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("ledger"), std::string::npos);
}

TEST(InvariantTest, BuddyAccountingViolationDetected)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    InvariantTestPeer::corruptBuddy(m.buddy());
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("buddy"), std::string::npos);
}

TEST(InvariantTest, CacheDirtyInvalidLineDetected)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    InvariantTestPeer::corruptCacheLine(
        const_cast<Cache &>(m.hierarchy().llc()));
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("invalid line dirty"),
              std::string::npos);
}

TEST(InvariantTest, CacheTagSetMismatchDetected)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    InvariantTestPeer::skewResidentTag(
        const_cast<Cache &>(m.hierarchy().l1d()));
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
}

TEST(InvariantTest, StrayPageTableMappingDetected)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    // Map a page no VMA covers to a frame outside the buddy's range.
    m.process().vm().pageTable().map(0x7000'0000'0000ull,
                                     0x3000'0000ull);
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("outside every VMA"),
              std::string::npos);
}

TEST(InvariantTest, ArenaBitmapDesyncDetected)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python);
    MementoSpace *space = m.mementoSpace();
    ASSERT_NE(space, nullptr);
    ASSERT_FALSE(space->arenas.empty());
    space->arenas.begin()->second.bitmap.flip(0);
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("bitmap"), std::string::npos);
}

TEST(InvariantTest, BumpPointerCorruptionDetected)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python);
    MementoSpace *space = m.mementoSpace();
    ASSERT_NE(space, nullptr);
    space->bump[0] += 7; // No longer arena-aligned.
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("bump pointer"), std::string::npos);
}

TEST(InvariantTest, StaleHotEntryDetected)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python);
    ASSERT_NE(m.hot(), nullptr);
    HotEntry &entry = m.hot()->entry(0);
    entry.valid = true;
    entry.arenaVa = 0xDEAD'0000ull; // No such arena header.
    const InvariantReport report = InvariantChecker::check(m);
    ASSERT_FALSE(report.clean());
    EXPECT_NE(report.summary().find("hot[0]"), std::string::npos);
}

TEST(InvariantTest, EnforceThrowsCorruptionError)
{
    Machine m(test::smallConfig());
    runTiny(m, Language::Cpp);
    InvariantTestPeer::corruptLedger(m.ledger());
    try {
        InvariantChecker::enforce(m, "unit test");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Corruption);
        EXPECT_NE(std::string(e.what()).find("unit test"),
                  std::string::npos);
    }
}

TEST(InvariantTest, SummaryTruncatesLongViolationLists)
{
    InvariantReport report;
    for (int i = 0; i < 12; ++i) {
        std::string item = "v";
        item += std::to_string(i);
        report.violations.push_back(item);
    }
    const std::string s = report.summary(8);
    EXPECT_NE(s.find("v7"), std::string::npos);
    EXPECT_EQ(s.find("v8"), std::string::npos);
    EXPECT_NE(s.find("(4 more)"), std::string::npos);
}

// ---------------------------------------------------------------------
// State digest
// ---------------------------------------------------------------------

TEST(DigestTest, IdenticalRunsProduceIdenticalDigests)
{
    const WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    RunOptions opts;
    opts.computeDigest = true;

    const RunResult a =
        Experiment::runOne(spec, trace, test::smallMementoConfig(), opts);
    const RunResult b =
        Experiment::runOne(spec, trace, test::smallMementoConfig(), opts);
    EXPECT_NE(a.digest, 0u);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(digestToHex(a.digest).size(), 16u);
}

TEST(DigestTest, DifferentConfigurationsProduceDifferentDigests)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    RunOptions opts;
    opts.computeDigest = true;

    const RunResult base =
        Experiment::runOne(spec, trace, test::smallConfig(), opts);
    const RunResult memento =
        Experiment::runOne(spec, trace, test::smallMementoConfig(), opts);
    EXPECT_NE(base.digest, memento.digest);
}

TEST(DigestTest, DigestSeesMachineStateMutation)
{
    Machine m(test::smallMementoConfig());
    runTiny(m, Language::Python);
    const std::uint64_t before = digestMachine(m);
    MementoSpace *space = m.mementoSpace();
    ASSERT_NE(space, nullptr);
    ASSERT_FALSE(space->arenas.empty());
    space->arenas.begin()->second.bitmap.flip(0);
    EXPECT_NE(digestMachine(m), before);
}

TEST(DigestTest, DigestSkippedUnlessRequested)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    const RunResult r =
        Experiment::runOne(spec, trace, test::smallConfig());
    EXPECT_EQ(r.digest, 0u);
}

} // namespace
} // namespace memento
