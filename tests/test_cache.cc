/**
 * @file
 * Unit tests for the cache model, DRAM model, and the inclusive
 * hierarchy (hit/miss behaviour, LRU, inclusion maintenance,
 * writeback traffic, and the Memento bypass path).
 */

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/cache_hierarchy.h"
#include "mem/dram.h"
#include "test_util.h"

namespace memento {
namespace {

using test::smallConfig;

class CacheTest : public ::testing::Test
{
  protected:
    StatRegistry stats;
    // 4 KiB, 4-way, 64 B lines -> 16 sets.
    Cache cache{"c", CacheConfig{4 << 10, 4, 3}, stats};

    /** Address falling in @p set with tag nonce @p n. */
    static Addr
    addrInSet(std::uint64_t set, std::uint64_t n)
    {
        return (set << kLineShift) + (n << (kLineShift + 4));
    }
};

TEST_F(CacheTest, MissThenHitAfterInstall)
{
    EXPECT_FALSE(cache.access(0x1000, false));
    cache.install(0x1000, false);
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_EQ(stats.value("c.hits"), 1u);
    EXPECT_EQ(stats.value("c.misses"), 1u);
}

TEST_F(CacheTest, SameLineDifferentBytesHit)
{
    cache.install(0x1000, false);
    EXPECT_TRUE(cache.access(0x103F, false));
    EXPECT_TRUE(cache.access(0x1001, true));
}

TEST_F(CacheTest, WriteSetsDirtyAndEvictionReportsIt)
{
    Addr target = addrInSet(7, 1);
    cache.install(target, false);
    EXPECT_TRUE(cache.access(target, true)); // Dirty now.

    // Fill the set until the dirty line is evicted.
    bool saw_dirty_victim = false;
    for (std::uint64_t n = 2; n < 8; ++n) {
        Cache::Eviction ev = cache.install(addrInSet(7, n), false);
        if (ev.valid && ev.lineAddr == lineBase(target)) {
            EXPECT_TRUE(ev.dirty);
            saw_dirty_victim = true;
        }
    }
    EXPECT_TRUE(saw_dirty_victim);
}

TEST_F(CacheTest, LruEvictsOldest)
{
    // Fill one set with 4 lines, touch the first to refresh it, then
    // install a 5th: the second line (now LRU) must be evicted.
    std::vector<Addr> addrs;
    for (std::uint64_t n = 0; n < 4; ++n) {
        Addr a = addrInSet(5, n + 1);
        addrs.push_back(a);
        cache.install(a, false);
    }
    EXPECT_TRUE(cache.access(addrs[0], false)); // Refresh LRU order.

    Cache::Eviction ev = cache.install(addrInSet(5, 9), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, lineBase(addrs[1]));
    EXPECT_TRUE(cache.contains(addrs[0]));
    EXPECT_FALSE(cache.contains(addrs[1]));
}

TEST_F(CacheTest, DirtyEvictionFlagged)
{
    for (std::uint64_t n = 0; n < 4; ++n)
        cache.install(addrInSet(3, n + 1), false);
    cache.access(addrInSet(3, 1), true); // Dirty, and refreshes.

    // Evict three clean ones; dirty line remains until last.
    unsigned dirty_evictions = 0;
    for (std::uint64_t n = 10; n < 14; ++n) {
        Cache::Eviction ev = cache.install(addrInSet(3, n), false);
        if (ev.valid && ev.dirty)
            ++dirty_evictions;
    }
    EXPECT_EQ(dirty_evictions, 1u);
}

TEST_F(CacheTest, InvalidateReturnsDirtiness)
{
    cache.install(0x2000, false);
    EXPECT_FALSE(cache.invalidate(0x2000));
    EXPECT_FALSE(cache.contains(0x2000));

    cache.install(0x3000, true);
    EXPECT_TRUE(cache.invalidate(0x3000));
    EXPECT_FALSE(cache.invalidate(0x3000)); // Already gone.
}

TEST_F(CacheTest, InstallExistingLineMergesDirty)
{
    cache.install(0x4000, true);
    Cache::Eviction ev = cache.install(0x4000, false);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(cache.invalidate(0x4000)); // Still dirty.
}

TEST_F(CacheTest, FlushAllCountsDirtyLines)
{
    cache.install(0x1000, true);
    cache.install(0x2000, false);
    cache.install(0x3000, true);
    EXPECT_EQ(cache.flushAll(), 2u);
    EXPECT_EQ(cache.residentLines(), 0u);
}

TEST(CacheGeometry, ParamSweepResidency)
{
    // Property: a cache never holds more lines than its capacity and
    // re-accessing installed lines within capacity always hits.
    for (unsigned ways : {1u, 2u, 4u, 8u}) {
        for (std::uint64_t kb : {1u, 4u, 16u}) {
            StatRegistry stats;
            Cache cache("c", CacheConfig{kb << 10, ways, 1}, stats);
            const std::uint64_t lines = (kb << 10) / kLineSize;
            for (std::uint64_t i = 0; i < 4 * lines; ++i)
                cache.install(i * kLineSize, false);
            EXPECT_LE(cache.residentLines(), lines);

            // Sequential fill of exactly one set's worth always hits.
            for (unsigned w = 0; w < ways; ++w)
                cache.install((w * lines / ways) * kLineSize, false);
            for (unsigned w = 0; w < ways; ++w)
                EXPECT_TRUE(
                    cache.access((w * lines / ways) * kLineSize, false));
        }
    }
}

// ---------------------------------------------------------------------
// DRAM model
// ---------------------------------------------------------------------

TEST(Dram, RowHitFasterThanMiss)
{
    StatRegistry stats;
    DramConfig cfg;
    Dram dram(cfg, stats);
    Cycles first = dram.access(0x10000, false, 0);
    Cycles second = dram.access(0x10000 + kLineSize * cfg.banks, false,
                                first); // Same bank, same row region?
    (void)second;
    // First access opens the row (miss); an access to the same row on
    // the same bank afterwards is a hit.
    Cycles third = dram.access(0x10000, false, 10'000);
    EXPECT_GT(first, third);
    EXPECT_EQ(stats.value("dram.row_hits") +
                  stats.value("dram.row_misses"),
              3u);
}

TEST(Dram, TrafficAccounting)
{
    StatRegistry stats;
    Dram dram(DramConfig{}, stats);
    dram.access(0x0, false, 0);
    dram.access(0x40, true, 0);
    EXPECT_EQ(dram.totalBytes(), 2 * kLineSize);
    EXPECT_EQ(dram.readCount(), 1u);
    EXPECT_EQ(dram.writeCount(), 1u);
}

TEST(Dram, WritebacksReturnZeroLatency)
{
    StatRegistry stats;
    Dram dram(DramConfig{}, stats);
    EXPECT_EQ(dram.access(0x80, true, 0), 0u);
    EXPECT_GT(dram.access(0x80, false, 0), 0u);
}

TEST(Dram, BankQueuingPenalty)
{
    StatRegistry stats;
    DramConfig cfg;
    Dram dram(cfg, stats);
    // Two immediate accesses to the same bank and row: the second
    // queues behind the first.
    Cycles a = dram.access(0x0, false, 0);
    Cycles b = dram.access(0x0, false, 0);
    EXPECT_EQ(b, cfg.hitLatency + cfg.bankBusyPenalty);
    (void)a;
}

// ---------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------

class HierarchyTest : public ::testing::Test
{
  protected:
    StatRegistry stats;
    MachineConfig cfg = smallConfig();
    CacheHierarchy hier{cfg, stats};
};

TEST_F(HierarchyTest, ColdMissGoesToDram)
{
    AccessResult res = hier.access(0x10000, AccessType::Read, 0);
    EXPECT_EQ(res.servicedByLevel, 4u);
    EXPECT_EQ(stats.value("dram.reads"), 1u);
    // Latency covers every level plus DRAM.
    EXPECT_GE(res.latency, cfg.l1d.latency + cfg.l2.latency +
                               cfg.llc.latency + cfg.dram.hitLatency);
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    hier.access(0x10000, AccessType::Read, 0);
    AccessResult res = hier.access(0x10000, AccessType::Read, 100);
    EXPECT_EQ(res.servicedByLevel, 1u);
    EXPECT_EQ(res.latency, cfg.l1d.latency);
}

TEST_F(HierarchyTest, FetchUsesL1I)
{
    hier.access(0x20000, AccessType::Fetch, 0);
    EXPECT_EQ(stats.value("l1i.misses"), 1u);
    EXPECT_EQ(stats.value("l1d.misses"), 0u);
    AccessResult res = hier.access(0x20000, AccessType::Fetch, 10);
    EXPECT_EQ(res.servicedByLevel, 1u);
}

TEST_F(HierarchyTest, BypassInstantiatesAtLlcWithoutDram)
{
    AccessAttrs attrs;
    attrs.bypassCandidate = true;
    AccessResult res = hier.access(0x30000, AccessType::Write, 0, attrs);
    EXPECT_TRUE(res.bypassed);
    EXPECT_EQ(res.servicedByLevel, 3u);
    EXPECT_EQ(stats.value("dram.reads"), 0u);
    EXPECT_EQ(hier.bypassedLines(), 1u);

    // The line is now resident: subsequent access hits L1.
    AccessResult again = hier.access(0x30000, AccessType::Read, 10);
    EXPECT_EQ(again.servicedByLevel, 1u);
}

TEST_F(HierarchyTest, BypassIgnoredOnResidentLine)
{
    hier.access(0x40000, AccessType::Read, 0);
    AccessAttrs attrs;
    attrs.bypassCandidate = true;
    AccessResult res = hier.access(0x40000, AccessType::Read, 10, attrs);
    EXPECT_FALSE(res.bypassed);
    EXPECT_EQ(res.servicedByLevel, 1u);
}

TEST_F(HierarchyTest, DirtyDataEventuallyWritesBack)
{
    // Write a large footprint so dirty lines cascade out of the LLC.
    const std::uint64_t llc_lines = cfg.llc.sizeBytes / kLineSize;
    for (std::uint64_t i = 0; i < llc_lines * 4; ++i)
        hier.access(0x100000 + i * kLineSize, AccessType::Write, i * 10);
    EXPECT_GT(stats.value("dram.writes"), 0u);
}

TEST_F(HierarchyTest, InclusionBackInvalidatesInnerLevels)
{
    // Fill far beyond LLC capacity, then verify no line is L1-resident
    // that is not also LLC-resident (spot check on a recent victim).
    const std::uint64_t llc_lines = cfg.llc.sizeBytes / kLineSize;
    Addr first = 0x200000;
    hier.access(first, AccessType::Read, 0);
    for (std::uint64_t i = 1; i <= llc_lines * 2; ++i)
        hier.access(first + i * kLineSize, AccessType::Read, i * 10);
    // The first line was certainly evicted from the LLC; inclusion
    // means it cannot be in the L1 anymore.
    EXPECT_FALSE(hier.llc().contains(first));
    EXPECT_FALSE(hier.l1d().contains(first));
    EXPECT_FALSE(hier.l2().contains(first));
}

TEST_F(HierarchyTest, InstallLineMakesL1HitWithoutDram)
{
    const std::uint64_t reads_before = stats.value("dram.reads");
    hier.installLine(0x50000, 0);
    EXPECT_EQ(stats.value("dram.reads"), reads_before);
    AccessResult res = hier.access(0x50000, AccessType::Read, 5);
    EXPECT_EQ(res.servicedByLevel, 1u);
}

TEST_F(HierarchyTest, WriteAllocatesIntoL1)
{
    hier.access(0x60000, AccessType::Write, 0);
    EXPECT_TRUE(hier.l1d().contains(0x60000));
    EXPECT_TRUE(hier.llc().contains(0x60000));
}

} // namespace
} // namespace memento
