/**
 * @file
 * Unit tests for the simulation kernel: cycle ledger, stats, RNG,
 * configuration, and size classes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.h"
#include "sim/cycles.h"
#include "sim/rng.h"
#include "sim/size_class.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {
namespace {

TEST(Types, PageAndLineMath)
{
    EXPECT_EQ(pageBase(0x1234), 0x1000u);
    EXPECT_EQ(pageBase(0x1000), 0x1000u);
    EXPECT_EQ(lineBase(0x12345), 0x12340u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 8), 16u);
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(SizeClass, RoundTrip)
{
    EXPECT_EQ(sizeClassIndex(1), 0u);
    EXPECT_EQ(sizeClassIndex(8), 0u);
    EXPECT_EQ(sizeClassIndex(9), 1u);
    EXPECT_EQ(sizeClassIndex(512), 63u);
    EXPECT_EQ(sizeClassBytes(0), 8u);
    EXPECT_EQ(sizeClassBytes(63), 512u);
    EXPECT_TRUE(isSmallSize(512));
    EXPECT_FALSE(isSmallSize(513));
    // Every size in [1, 512] maps to a class whose size covers it.
    for (std::uint64_t size = 1; size <= kMaxSmallSize; ++size) {
        const unsigned cls = sizeClassIndex(size);
        EXPECT_LT(cls, kNumSmallClasses);
        EXPECT_GE(sizeClassBytes(cls), size);
        EXPECT_LT(sizeClassBytes(cls) - size, kSizeClassStep);
    }
}

TEST(CycleLedger, ChargesCurrentCategory)
{
    CycleLedger ledger;
    ledger.charge(10);
    EXPECT_EQ(ledger.total(), 10u);
    EXPECT_EQ(ledger.category(CycleCategory::AppCompute), 10u);

    {
        CategoryScope scope(ledger, CycleCategory::UserAlloc);
        ledger.charge(5);
        {
            CategoryScope inner(ledger, CycleCategory::KernelFault);
            ledger.charge(3);
        }
        ledger.charge(2);
    }
    ledger.charge(1);

    EXPECT_EQ(ledger.total(), 21u);
    EXPECT_EQ(ledger.category(CycleCategory::UserAlloc), 7u);
    EXPECT_EQ(ledger.category(CycleCategory::KernelFault), 3u);
    EXPECT_EQ(ledger.category(CycleCategory::AppCompute), 11u);
}

TEST(CycleLedger, MemoryManagementTotal)
{
    CycleLedger ledger;
    ledger.charge(5, CycleCategory::UserAlloc);
    ledger.charge(7, CycleCategory::KernelFault);
    ledger.charge(11, CycleCategory::AppCompute);
    ledger.charge(13, CycleCategory::HwPage);
    EXPECT_EQ(ledger.memoryManagementTotal(), 25u);
}

TEST(CycleLedger, ResetClearsEverything)
{
    CycleLedger ledger;
    ledger.charge(5, CycleCategory::UserFree);
    ledger.reset();
    EXPECT_EQ(ledger.total(), 0u);
    EXPECT_EQ(ledger.category(CycleCategory::UserFree), 0u);
}

TEST(Stats, CountersPersistAndDump)
{
    StatRegistry stats;
    Counter a = stats.counter("x.a");
    Counter b = stats.counter("x.b");
    a += 3;
    ++b;
    b.raiseTo(10);
    b.raiseTo(5); // No effect.
    EXPECT_EQ(stats.value("x.a"), 3u);
    EXPECT_EQ(stats.value("x.b"), 10u);
    EXPECT_EQ(stats.value("missing"), 0u);
    EXPECT_DOUBLE_EQ(stats.ratio("x.a", "x.b"), 0.3);

    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("x.a 3"), std::string::npos);

    // Handles stay valid after more registrations.
    for (int i = 0; i < 100; ++i)
        stats.counter("y." + std::to_string(i));
    a += 1;
    EXPECT_EQ(stats.value("x.a"), 4u);

    stats.resetAll();
    EXPECT_EQ(stats.value("x.a"), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_seed = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const std::uint64_t r = rng.nextRange(5, 9);
        EXPECT_GE(r, 5u);
        EXPECT_LE(r, 9u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(11);
    std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.nextWeighted(weights), 1u);
}

TEST(Rng, GeometricMeanRoughlyCorrect)
{
    Rng rng(3);
    const double p = 0.25;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    const double mean = sum / n;
    // Expected mean (1-p)/p = 3.
    EXPECT_NEAR(mean, 3.0, 0.15);
}

TEST(Config, Table3Defaults)
{
    MachineConfig cfg = defaultConfig();
    EXPECT_FALSE(cfg.memento.enabled);
    EXPECT_EQ(cfg.l1d.sizeBytes, 32u << 10);
    EXPECT_EQ(cfg.l1d.ways, 8u);
    EXPECT_EQ(cfg.l1d.numSets(), 64u);
    EXPECT_EQ(cfg.llc.sizeBytes, 2u << 20);
    EXPECT_EQ(cfg.llc.ways, 16u);
    EXPECT_EQ(cfg.l1Tlb.entries, 64u);
    EXPECT_EQ(cfg.l2Tlb.entries, 2048u);
    EXPECT_EQ(cfg.memento.numSizeClasses, 64u);
    EXPECT_EQ(cfg.memento.maxSmallSize, 512u);
    EXPECT_EQ(cfg.memento.objectsPerArena, 256u);
    EXPECT_EQ(cfg.memento.hotLatency, 2u);
    EXPECT_EQ(cfg.memento.aacLatency, 1u);

    MachineConfig mcfg = mementoConfig();
    EXPECT_TRUE(mcfg.memento.enabled);
}

TEST(Config, CycleTimeConversions)
{
    MachineConfig cfg = defaultConfig();
    // 3 GHz: 1 ms = 3M cycles.
    EXPECT_EQ(cfg.msToCycles(1.0), 3'000'000u);
    EXPECT_DOUBLE_EQ(cfg.cyclesToMs(3'000'000), 1.0);
}

TEST(Config, MementoRegionLayout)
{
    MachineConfig cfg = defaultConfig();
    const Addr end = cfg.layout.mementoRegionEnd(64);
    EXPECT_EQ(end - cfg.layout.mementoRegionStart,
              64ull * cfg.layout.perClassRegionBytes);
}

} // namespace
} // namespace memento
