/**
 * @file
 * Tests for the analysis utilities: histograms, trace profiling,
 * pricing, the CACTI-lite model, and text reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "an/cacti_lite.h"
#include "an/histogram.h"
#include "an/lifetime.h"
#include "an/pricing.h"
#include "an/report.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

TEST(HistogramTest, BucketEdgesAndLabels)
{
    Histogram h({1, 10, 100});
    EXPECT_EQ(h.buckets(), 3u);
    EXPECT_EQ(h.label(0), "[1, 9]");
    EXPECT_EQ(h.label(2), "[100, Inf]");

    h.add(1);
    h.add(9);
    h.add(10);
    h.add(1'000'000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_DOUBLE_EQ(h.percent(0), 50.0);
}

TEST(HistogramTest, WeightsAndMerge)
{
    Histogram a({1, 10});
    Histogram b({1, 10});
    a.add(5, 3);
    b.add(20, 2);
    a.merge(b);
    EXPECT_EQ(a.count(0), 3u);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.total(), 5u);
}

TEST(HistogramTest, PaperBucketings)
{
    Histogram size = Histogram::allocationSize();
    EXPECT_EQ(size.buckets(), 9u);
    EXPECT_EQ(size.label(0), "[1, 512]");
    EXPECT_EQ(size.label(8), "[4097, Inf]");

    Histogram life = Histogram::lifetime();
    EXPECT_EQ(life.buckets(), 17u);
    EXPECT_EQ(life.label(0), "[1, 16]");
    EXPECT_EQ(life.label(16), "[257, Inf]");
}

TEST(ProfileTest, CountsAndJointClassification)
{
    Trace trace = {
        {OpKind::Compute, 1000, 0, 0},
        {OpKind::Malloc, 64, 1, 0},   // Small, freed quickly.
        {OpKind::Malloc, 64, 2, 0},   // Small, never freed.
        {OpKind::Free, 0, 1, 0},
        {OpKind::Malloc, 2048, 3, 0}, // Large, freed quickly.
        {OpKind::Free, 0, 3, 0},
        {OpKind::FunctionEnd, 0, 0, 0},
    };
    TraceProfile profile = profileTrace(trace);
    EXPECT_EQ(profile.allocations, 3u);
    EXPECT_EQ(profile.frees, 2u);
    EXPECT_DOUBLE_EQ(profile.joint.smallShort, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(profile.joint.smallLong, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(profile.joint.largeShort, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(profile.joint.largeLong, 0.0);
    EXPECT_DOUBLE_EQ(profile.mallocPki, 3.0);
}

TEST(ProfileTest, DistanceIsPerSizeClass)
{
    // Object 1 (class 8B) survives 2 allocations of ITS class even
    // though other-class allocations happen in between.
    Trace trace = {
        {OpKind::Malloc, 8, 1, 0},
        {OpKind::Malloc, 256, 2, 0},
        {OpKind::Malloc, 256, 3, 0},
        {OpKind::Malloc, 8, 4, 0},
        {OpKind::Free, 0, 1, 0},
        {OpKind::FunctionEnd, 0, 0, 0},
    };
    TraceProfile profile = profileTrace(trace);
    // Distance 1 lands in the [1,16] bucket.
    EXPECT_GE(profile.lifetimeHist.count(0), 1u);
}

TEST(ProfileTest, NeverFreedLandsInTail)
{
    Trace trace = {{OpKind::Malloc, 8, 1, 0},
                   {OpKind::FunctionEnd, 0, 0, 0}};
    TraceProfile profile = profileTrace(trace);
    EXPECT_EQ(profile.lifetimeHist.count(16), 1u); // [257, Inf].
}

TEST(ProfileTest, GeneratedTraceRoughlyMatchesLifetimeModel)
{
    WorkloadSpec spec;
    spec.id = "prof";
    spec.numAllocs = 20000;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 64}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 1024}});
    spec.lifetime = {.pShort = 0.75, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.0;
    spec.seed = 11;
    Trace trace = TraceGenerator(spec).generate();
    TraceProfile profile = profileTrace(trace);
    // ~75% of allocations should die within the short window; the
    // geometric tail past 16 is small.
    EXPECT_NEAR(profile.lifetimeHist.percent(0), 75.0, 5.0);
    EXPECT_NEAR(profile.joint.smallLong, 0.25, 0.05);
}

TEST(PricingTest, MsGranularityRoundsUp)
{
    PricingModel pricing;
    const double one_ms = pricing.runtimeCostUsd(0.2, 1024);
    EXPECT_DOUBLE_EQ(one_ms, pricing.runtimeCostUsd(1.0, 1024));
    EXPECT_LT(one_ms, pricing.runtimeCostUsd(1.01, 1024));
}

TEST(PricingTest, ScalesWithMemory)
{
    PricingModel pricing;
    EXPECT_NEAR(pricing.runtimeCostUsd(10, 2048) /
                    pricing.runtimeCostUsd(10, 1024),
                2.0, 1e-9);
}

TEST(PricingTest, InvocationFeeAddsFixedCost)
{
    PricingModel pricing;
    const double runtime = pricing.runtimeCostUsd(5, 128);
    EXPECT_DOUBLE_EQ(pricing.totalCostUsd(5, 128),
                     runtime + pricing.usdPerInvocation);
}

TEST(CactiTest, ReproducesTable3Anchors)
{
    CactiLite cacti(22.0);
    SramCost hot = cacti.hotCost();
    EXPECT_NEAR(hot.areaMm2, 0.0084, 1e-4);
    EXPECT_NEAR(hot.powerMw, 1.32, 1e-2);
    SramCost aac = cacti.aacCost();
    EXPECT_NEAR(aac.areaMm2, 0.0023, 1e-4);
    EXPECT_NEAR(aac.powerMw, 0.43, 1e-2);
}

TEST(CactiTest, MonotoneInSizeAndNode)
{
    CactiLite cacti(22.0);
    EXPECT_GT(cacti.estimate(8192).areaMm2,
              cacti.estimate(2048).areaMm2);
    CactiLite bigger(32.0);
    EXPECT_GT(bigger.estimate(4096).areaMm2,
              cacti.estimate(4096).areaMm2);
}

TEST(ReportTest, TableAlignsColumns)
{
    TextTable t({"A", "LongHeader"});
    t.newRow();
    t.cell("x");
    t.cell(std::uint64_t{42});
    t.newRow();
    t.cell(1.5, 1);
    t.cell("y");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(ReportTest, PercentAndBars)
{
    EXPECT_EQ(percentStr(0.163), "16.3%");
    EXPECT_EQ(percentStr(1.0, 0), "100%");
    EXPECT_EQ(asciiBar(0.5, 4), "##..");
    EXPECT_EQ(asciiBar(-1.0, 4), "....");
    EXPECT_EQ(asciiBar(2.0, 4), "####");
}

} // namespace
} // namespace memento
