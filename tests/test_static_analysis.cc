/**
 * @file
 * Golden diagnostics for the static-analysis layer. Every rule id in
 * the sa/diag.h registry is triggered by a minimal malformed input —
 * a hand-built op trace for the trace checker, a config snippet for
 * the linter — and the test asserts the exact rule, severity, and
 * location (op index / line number) of the finding. Rendering, --allow
 * suppression, and --werror promotion are exercised on the same
 * reports, including byte-exact text and JSON output.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <string_view>

#include "sa/config_lint.h"
#include "sa/diag.h"
#include "sa/trace_check.h"
#include "wl/trace.h"

namespace memento {
namespace {

// ---------------------------------------------------------------------
// Trace-building shorthand.
// ---------------------------------------------------------------------

TraceOp
M(std::uint64_t id, std::uint64_t size)
{
    return {OpKind::Malloc, size, id, 0};
}
TraceOp
F(std::uint64_t id)
{
    return {OpKind::Free, 0, id, 0};
}
TraceOp
L(std::uint64_t id, std::uint64_t off)
{
    return {OpKind::Load, 0, id, off};
}
TraceOp
S(std::uint64_t id, std::uint64_t off)
{
    return {OpKind::Store, 0, id, off};
}
TraceOp
E()
{
    return {OpKind::FunctionEnd, 0, 0, 0};
}

std::string
renderText(const DiagReport &report, const DiagPolicy &policy = {})
{
    std::ostringstream os;
    report.printText(os, policy);
    return os.str();
}

DiagReport
checkOps(const Trace &trace, const TraceCheckPolicy &policy = {})
{
    DiagReport report;
    checkTrace(trace, policy, "trace", report);
    return report;
}

DiagReport
lint(const std::string &text)
{
    DiagReport report;
    std::istringstream in(text);
    lintConfigStream(in, "conf", report);
    return report;
}

void
expectDiag(const DiagReport &report, std::size_t i,
           std::string_view rule, DiagSeverity severity,
           std::uint64_t location)
{
    ASSERT_LT(i, report.diags().size()) << renderText(report);
    const Diag &d = report.diags()[i];
    EXPECT_EQ(d.ruleId, rule) << d.message;
    EXPECT_EQ(d.severity, severity) << d.message;
    EXPECT_EQ(d.location, location) << d.message;
}

/** The report holds exactly one finding, with these golden fields. */
void
expectOnly(const DiagReport &report, std::string_view rule,
           DiagSeverity severity, std::uint64_t location)
{
    ASSERT_EQ(report.diags().size(), 1u) << renderText(report);
    expectDiag(report, 0, rule, severity, location);
}

// ---------------------------------------------------------------------
// Rule registry.
// ---------------------------------------------------------------------

TEST(DiagRegistry, RuleIdsAreUniqueAndFindable)
{
    std::set<std::string_view> seen;
    for (const DiagRule &rule : allDiagRules()) {
        EXPECT_TRUE(seen.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        EXPECT_EQ(findDiagRule(rule.id), &rule);
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
    }
    EXPECT_EQ(findDiagRule("no-such-rule"), nullptr);
}

// ---------------------------------------------------------------------
// Trace checker goldens: one malformed trace per rule id.
// ---------------------------------------------------------------------

TEST(TraceCheck, CleanTraceHasNoFindings)
{
    const DiagReport r =
        checkOps({M(1, 16), S(1, 0), L(1, 15), F(1), M(2, 256), E()});
    EXPECT_TRUE(r.empty()) << renderText(r);
    EXPECT_TRUE(r.clean());
}

TEST(TraceCheck, DoubleFree)
{
    const DiagReport r = checkOps({M(1, 16), F(1), F(1), E()});
    expectOnly(r, "trace-double-free", DiagSeverity::Error, 2);
    EXPECT_NE(r.diags()[0].message.find("freed at op 1"),
              std::string::npos);
}

TEST(TraceCheck, FreeOfNeverAllocated)
{
    expectOnly(checkOps({F(7), E()}), "trace-free-unallocated",
               DiagSeverity::Error, 0);
}

TEST(TraceCheck, UseAfterFreeOfReusedHandle)
{
    const DiagReport r = checkOps({M(1, 16), F(1), L(1, 0), E()});
    expectOnly(r, "trace-use-after-free", DiagSeverity::Error, 2);
    EXPECT_NE(r.diags()[0].message.find("after free at op 1"),
              std::string::npos);
}

TEST(TraceCheck, FreedHandleReuseIsLegalAndRetires)
{
    // Re-allocating a freed id starts a new object: accesses are fine,
    // and the old free site no longer poisons it.
    const DiagReport r =
        checkOps({M(1, 16), F(1), M(1, 32), L(1, 31), F(1), E()});
    EXPECT_TRUE(r.empty()) << renderText(r);
}

TEST(TraceCheck, UseOfNeverAllocated)
{
    expectOnly(checkOps({S(9, 8), E()}), "trace-use-unallocated",
               DiagSeverity::Error, 0);
}

TEST(TraceCheck, OutOfBoundsAccess)
{
    // Offset 16 on a 16-byte object is one past the end; 15 is fine.
    expectOnly(checkOps({M(1, 16), L(1, 16), F(1), E()}),
               "trace-out-of-bounds", DiagSeverity::Error, 1);
    EXPECT_TRUE(checkOps({M(1, 16), L(1, 15), F(1), E()}).empty());
}

TEST(TraceCheck, DuplicateLiveObjectId)
{
    const DiagReport r = checkOps({M(1, 16), M(1, 32), E()});
    expectOnly(r, "trace-duplicate-id", DiagSeverity::Error, 1);
}

TEST(TraceCheck, SizeClassViolationZeroByte)
{
    expectOnly(checkOps({M(1, 0), E()}), "trace-size-class",
               DiagSeverity::Error, 0);
}

TEST(TraceCheck, SizeClassViolationBeyondRegion)
{
    // Default policy reserves 1 GiB per class; a larger object cannot
    // be routed anywhere.
    expectOnly(checkOps({M(1, (1ull << 30) + 1), E()}),
               "trace-size-class", DiagSeverity::Error, 0);
}

TEST(TraceCheck, ArenaOversubscription)
{
    // Tiny region: one 2-object arena per class, so the third live
    // 8-byte object exceeds the class capacity. Reported once.
    TraceCheckPolicy policy;
    policy.objectsPerArena = 2;
    policy.perClassRegionBytes = 16;
    const DiagReport r =
        checkOps({M(1, 8), M(2, 8), M(3, 8), M(4, 8), E()}, policy);
    expectOnly(r, "trace-arena-oversubscription", DiagSeverity::Error, 2);
    EXPECT_EQ(policy.classCapacity(0), 2u);
}

TEST(TraceCheck, ArenaOccupancyDropsOnFree)
{
    TraceCheckPolicy policy;
    policy.objectsPerArena = 2;
    policy.perClassRegionBytes = 16;
    // Never more than two live at once: churn through six objects.
    const DiagReport r = checkOps({M(1, 8), M(2, 8), F(1), M(3, 8), F(2),
                                   M(4, 8), F(3), F(4), E()},
                                  policy);
    EXPECT_TRUE(r.empty()) << renderText(r);
}

TEST(TraceCheck, OpsAfterFunctionEnd)
{
    const DiagReport r = checkOps({M(1, 16), E(), M(2, 16), E()});
    expectOnly(r, "trace-function-boundary", DiagSeverity::Error, 1);
}

TEST(TraceCheck, TruncatedStream)
{
    expectOnly(checkOps({M(1, 16), F(1)}), "trace-truncated",
               DiagSeverity::Error, 2);
}

TEST(TraceCheck, TruncatedStreamWithLeak)
{
    const DiagReport r = checkOps({M(1, 16), S(1, 0)});
    ASSERT_EQ(r.diags().size(), 2u) << renderText(r);
    expectDiag(r, 0, "trace-truncated", DiagSeverity::Error, 2);
    expectDiag(r, 1, "trace-leak", DiagSeverity::Warning, 0);
    EXPECT_EQ(r.errors(), 1u);
    EXPECT_EQ(r.warnings(), 1u);
}

TEST(TraceCheck, EmptyStream)
{
    expectOnly(checkOps({}), "trace-truncated", DiagSeverity::Error,
               Diag::kNoLocation);
}

TEST(TraceCheck, StreamParseError)
{
    std::istringstream in("M 16 1 0\nbogus record here\n");
    DiagReport r;
    checkTraceStream(in, TraceCheckPolicy{}, "file.trace", r);
    expectOnly(r, "trace-parse", DiagSeverity::Error, 2);
}

TEST(TraceCheck, StreamCleanRoundTrip)
{
    std::istringstream in("M 16 1 0\nL 0 1 8\nF 0 1 0\nE 0 0 0\n");
    DiagReport r;
    checkTraceStream(in, TraceCheckPolicy{}, "file.trace", r);
    EXPECT_TRUE(r.empty()) << renderText(r);
}

TEST(TraceCheck, RecoversAndReportsEveryViolation)
{
    // The checker never stops at the first finding: a double free and
    // a later out-of-bounds access in one stream both surface.
    const DiagReport r =
        checkOps({M(1, 16), F(1), F(1), M(2, 8), L(2, 64), F(2), E()});
    ASSERT_EQ(r.diags().size(), 2u) << renderText(r);
    expectDiag(r, 0, "trace-double-free", DiagSeverity::Error, 2);
    expectDiag(r, 1, "trace-out-of-bounds", DiagSeverity::Error, 4);
}

// ---------------------------------------------------------------------
// Config linter goldens: one bad snippet per rule id.
// ---------------------------------------------------------------------

TEST(ConfigLint, CleanFileHasNoFindings)
{
    const DiagReport r = lint("# comment\n"
                              "memento.enabled = true\n"
                              "memento.bypass = on\n"
                              "dram.size = 2g\n");
    EXPECT_TRUE(r.empty()) << renderText(r);
}

TEST(ConfigLint, MissingEquals)
{
    expectOnly(lint("this is not an assignment\n"), "config-parse",
               DiagSeverity::Error, 1);
}

TEST(ConfigLint, UnknownKeySuggestsNearMiss)
{
    const DiagReport r = lint("core.freq_gz = 3\n");
    expectOnly(r, "config-unknown-key", DiagSeverity::Error, 1);
    EXPECT_NE(r.diags()[0].message.find("did you mean 'core.freq_ghz'"),
              std::string::npos)
        << r.diags()[0].message;
}

TEST(ConfigLint, UnknownKeyWithoutPlausibleSuggestion)
{
    const DiagReport r = lint("zzz.qqq = 1\n");
    expectOnly(r, "config-unknown-key", DiagSeverity::Error, 1);
    EXPECT_EQ(r.diags()[0].message.find("did you mean"),
              std::string::npos)
        << r.diags()[0].message;
}

TEST(ConfigLint, DuplicateKeyWarnsAtLaterLine)
{
    const DiagReport r =
        lint("check.interval = 1\ncheck.interval = 2\n");
    expectOnly(r, "config-duplicate-key", DiagSeverity::Warning, 2);
    EXPECT_NE(r.diags()[0].message.find("overrides line 1"),
              std::string::npos);
}

TEST(ConfigLint, BadValue)
{
    expectOnly(lint("memento.enabled = maybe\n"), "config-bad-value",
               DiagSeverity::Error, 1);
}

TEST(ConfigLint, OutOfRangeValue)
{
    const DiagReport r = lint("core.base_ipc = 900\n");
    expectOnly(r, "config-out-of-range", DiagSeverity::Error, 1);
    EXPECT_NE(r.diags()[0].message.find("out of range"),
              std::string::npos);
}

TEST(ConfigLint, HeapBaseInsideMementoRegion)
{
    const DiagReport r =
        lint("layout.memento_region_start = 0x20000000000\n"
             "layout.heap_base = 0x20000080000\n");
    expectOnly(r, "config-region-overlap", DiagSeverity::Error, 2);
}

TEST(ConfigLint, DisjointLayoutIsClean)
{
    const DiagReport r =
        lint("layout.memento_region_start = 0x20000000000\n"
             "layout.heap_base = 0x30000000000\n");
    EXPECT_TRUE(r.empty()) << renderText(r);
}

TEST(ConfigLint, MementoHardwareKeyWhileDisabled)
{
    expectOnly(lint("memento.bypass = true\n"),
               "config-bypass-no-memento", DiagSeverity::Warning, 1);
    EXPECT_TRUE(
        lint("memento.enabled = true\nmemento.bypass = true\n").empty());
}

TEST(ConfigLint, CheckIntervalBeyondWatchdog)
{
    const DiagReport r =
        lint("check.interval = 200\ncheck.max_ops = 100\n");
    expectOnly(r, "config-check-conflict", DiagSeverity::Warning, 1);
    EXPECT_TRUE(
        lint("check.interval = 50\ncheck.max_ops = 100\n").empty());
}

TEST(ConfigLint, ShardIndexMustBeBelowShardCount)
{
    // Fires at the later of the two lines that form the conflict.
    const DiagReport r =
        lint("sweep.shard_index = 3\nsweep.shard_count = 2\n");
    expectOnly(r, "config-shard-range", DiagSeverity::Error, 2);
    EXPECT_TRUE(
        lint("sweep.shard_index = 1\nsweep.shard_count = 2\n").empty());
    // Index alone against the default count of 1 is still a conflict.
    expectOnly(lint("sweep.shard_index = 1\n"), "config-shard-range",
               DiagSeverity::Error, 1);
}

TEST(ConfigLint, RetryWithoutKeepGoingWarns)
{
    expectOnly(lint("sweep.retry = 3\n"), "config-retry-no-keep-going",
               DiagSeverity::Warning, 1);
    EXPECT_TRUE(
        lint("sweep.retry = 3\nsweep.keep_going = true\n").empty());
    EXPECT_TRUE(lint("sweep.retry = 0\n").empty());
}

TEST(ConfigLint, SweepKeyTypoGetsADidYouMean)
{
    const DiagReport r = lint("sweep.cache_dri = /tmp/store\n");
    expectOnly(r, "config-unknown-key", DiagSeverity::Error, 1);
    EXPECT_NE(r.diags()[0].message.find("sweep.cache_dir"),
              std::string::npos)
        << r.diags()[0].message;
}

// ---------------------------------------------------------------------
// Policy: suppression, promotion, rendering.
// ---------------------------------------------------------------------

TEST(DiagPolicy, AllowSuppressesRule)
{
    const DiagReport r = checkOps({M(1, 16), F(1), F(1), E()});
    DiagPolicy policy;
    policy.allowed.insert("trace-double-free");
    EXPECT_EQ(r.errors(policy), 0u);
    EXPECT_TRUE(r.clean(policy));
    EXPECT_EQ(renderText(r, policy), "");
}

TEST(DiagPolicy, WerrorPromotesWarnings)
{
    const DiagReport r = checkOps({M(1, 16)}); // truncated + leak
    DiagPolicy werror;
    werror.werror = true;
    EXPECT_EQ(r.errors(), 1u);
    EXPECT_EQ(r.warnings(), 1u);
    EXPECT_EQ(r.errors(werror), 2u);
    EXPECT_EQ(r.warnings(werror), 0u);
    EXPECT_FALSE(r.clean(werror));
    EXPECT_NE(renderText(r, werror).find("error: 1 object(s) still"),
              std::string::npos);
}

TEST(DiagRender, GoldenTextLine)
{
    const DiagReport r = checkOps({M(1, 16), F(1), F(1), E()});
    EXPECT_EQ(renderText(r),
              "trace:2: error: double free of object 1 (freed at op 1) "
              "[trace-double-free]\n");
}

TEST(DiagRender, GoldenJson)
{
    const DiagReport r = checkOps({M(1, 16), F(1), F(1), E()});
    std::ostringstream os;
    r.printJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"schema_version\": 1,\n"
              "  \"kind\": \"diagnostics\",\n"
              "  \"findings\": [\n"
              "    {\n"
              "      \"rule\": \"trace-double-free\",\n"
              "      \"severity\": \"error\",\n"
              "      \"subject\": \"trace\",\n"
              "      \"location\": 2,\n"
              "      \"message\": \"double free of object 1 (freed at "
              "op 1)\"\n"
              "    }\n"
              "  ],\n"
              "  \"errors\": 1,\n"
              "  \"warnings\": 0,\n"
              "  \"notes\": 0\n"
              "}");
}

TEST(DiagRender, EmptyJsonHasEmptyFindings)
{
    DiagReport r;
    std::ostringstream os;
    r.printJson(os);
    EXPECT_NE(os.str().find("\"findings\": []"), std::string::npos);
    EXPECT_NE(os.str().find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(os.str().find("\"errors\": 0"), std::string::npos);
}

TEST(DiagRender, JsonEscapesSpecialCharacters)
{
    DiagReport r;
    r.add("config-parse", "a\"b\\c", 1, "tab\there");
    std::ostringstream os;
    r.printJson(os);
    EXPECT_NE(os.str().find("a\\\"b\\\\c"), std::string::npos);
    EXPECT_NE(os.str().find("tab\\there"), std::string::npos);
}

} // namespace
} // namespace memento
