/**
 * @file
 * Cross-module integration and property tests: translation coherence,
 * traffic conservation, Memento across every size class, GC/scavenge
 * and decay interplay with the VM, and the breakdown attribution.
 */

#include <gtest/gtest.h>

#include <set>

#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "machine/machine.h"
#include "os/kernel_cost.h"
#include "os/process.h"
#include "rt/gomalloc.h"
#include "test_util.h"
#include "wl/trace_generator.h"

namespace memento {
namespace {

// ---------------------------------------------------------------------
// Process / kernel cost model
// ---------------------------------------------------------------------

TEST(ProcessTest, RegistersInitializedFromLayout)
{
    MachineConfig cfg = test::smallMementoConfig();
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 28, stats);
    Process proc(7, "test", cfg, buddy, stats);
    EXPECT_EQ(proc.pid(), 7);
    EXPECT_EQ(proc.name(), "test");
    EXPECT_EQ(proc.mementoRegs().mrs, cfg.layout.mementoRegionStart);
    EXPECT_EQ(proc.mementoRegs().mre,
              cfg.layout.mementoRegionEnd(cfg.memento.numSizeClasses));
    EXPECT_EQ(proc.mementoRegs().mptr, 0u); // Set when a space binds.
}

TEST(KernelCostTest, ContextSwitchScalesWithHotEntries)
{
    MachineConfig cfg;
    KernelCostModel costs(cfg);
    test::TestEnv env;
    costs.chargeContextSwitch(env, 0);
    const Cycles bare = env.ledger().total();
    test::TestEnv env2;
    costs.chargeContextSwitch(env2, 64);
    EXPECT_EQ(env2.ledger().total(),
              bare + 64 * cfg.memento.hotLatency);
    EXPECT_EQ(env2.ledger().category(CycleCategory::ContextSwitch),
              env2.ledger().total());
}

TEST(KernelCostTest, ContainerSetupIsExpensive)
{
    MachineConfig cfg;
    KernelCostModel costs(cfg);
    test::TestEnv env;
    costs.chargeContainerSetup(env);
    // Millions of instructions -> millions of cycles at IPC 2.
    EXPECT_GT(env.ledger().total(), 1'000'000u);
}

// ---------------------------------------------------------------------
// Translation coherence
// ---------------------------------------------------------------------

TEST(TranslationTest, RepeatedAccessesAreStable)
{
    Machine m(test::smallConfig());
    WorkloadSpec spec;
    spec.id = "t";
    spec.lang = Language::Cpp;
    spec.staticWsBytes = 64 << 10;
    m.createProcess(spec);
    Addr heap = m.process().vm().mmap(32 * kPageSize, nullptr);

    // Touch all pages twice; the second sweep must not fault.
    for (Addr va = heap; va < heap + 32 * kPageSize; va += kPageSize)
        m.appAccess(va, AccessType::Write);
    const std::uint64_t faults = m.process().vm().faultCount();
    EXPECT_EQ(faults, 32u);
    for (Addr va = heap; va < heap + 32 * kPageSize; va += kPageSize)
        m.appAccess(va, AccessType::Read);
    EXPECT_EQ(m.process().vm().faultCount(), faults);
}

TEST(TranslationTest, MadvisedPageRefaultsAfterTlbShootdown)
{
    Machine m(test::smallConfig());
    WorkloadSpec spec;
    spec.id = "t";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    VirtualMemory &vm = m.process().vm();
    Addr heap = vm.mmap(kPageSize, nullptr);

    m.appAccess(heap, AccessType::Write);
    EXPECT_EQ(vm.faultCount(), 1u);
    vm.madviseFree(heap, kPageSize, &m);
    // The shootdown removed the TLB entry: the next touch must fault
    // again rather than use a stale translation.
    m.appAccess(heap, AccessType::Read);
    EXPECT_EQ(vm.faultCount(), 2u);
}

// ---------------------------------------------------------------------
// Memento across every size class
// ---------------------------------------------------------------------

class AllClassesTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AllClassesTest, AllocFillFreeCycleWorks)
{
    const unsigned cls = GetParam();
    const std::uint64_t size = sizeClassBytes(cls);
    Machine m(test::smallMementoConfig());
    WorkloadSpec spec;
    spec.id = "cls";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    Allocator &alloc = m.allocator();

    // Fill more than one arena, touch every object, free everything.
    std::vector<Addr> ptrs;
    for (unsigned i = 0; i < 300; ++i) {
        Addr p = alloc.malloc(size, m);
        m.appAccess(p, AccessType::Write);
        m.appAccess(p + size - 1, AccessType::Read);
        ptrs.push_back(p);
    }
    std::set<Addr> unique(ptrs.begin(), ptrs.end());
    EXPECT_EQ(unique.size(), ptrs.size());
    for (Addr p : ptrs)
        alloc.free(p, m);
    EXPECT_EQ(alloc.liveBytes(), 0u);
    // No OS page faults were needed for any of it.
    EXPECT_EQ(m.cycleLedger().category(CycleCategory::KernelFault), 0u);
}

INSTANTIATE_TEST_SUITE_P(SizeClasses, AllClassesTest,
                         ::testing::Values(0u, 1u, 3u, 7u, 15u, 31u,
                                           47u, 63u));

// ---------------------------------------------------------------------
// Traffic conservation property
// ---------------------------------------------------------------------

TEST(TrafficTest, DramBytesMatchAccessCounts)
{
    Machine m(test::smallConfig());
    WorkloadSpec spec;
    spec.id = "t";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    Addr heap = m.process().vm().mmap(1 << 20, nullptr);
    for (Addr va = heap; va < heap + (1 << 20); va += kLineSize)
        m.appAccess(va, AccessType::Read);
    const auto &dram = m.hierarchy().memCtrl().dram();
    EXPECT_EQ(dram.totalBytes(),
              (dram.readCount() + dram.writeCount()) * kLineSize);
    EXPECT_GT(dram.readCount(), 0u);
}

TEST(TrafficTest, LlcSizedWorkingSetStopsMissing)
{
    MachineConfig cfg = test::smallConfig();
    Machine m(cfg);
    WorkloadSpec spec;
    spec.id = "t";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    // Working set = half the LLC.
    const std::uint64_t ws = cfg.llc.sizeBytes / 2;
    Addr heap = m.process().vm().mmap(ws, nullptr);
    for (int pass = 0; pass < 3; ++pass)
        for (Addr va = heap; va < heap + ws; va += kLineSize)
            m.appAccess(va, AccessType::Read);
    const std::uint64_t reads_after_warm =
        m.hierarchy().memCtrl().dram().readCount();
    for (Addr va = heap; va < heap + ws; va += kLineSize)
        m.appAccess(va, AccessType::Read);
    // Fully cache-resident now: no further DRAM reads.
    EXPECT_EQ(m.hierarchy().memCtrl().dram().readCount(),
              reads_after_warm);
}

// ---------------------------------------------------------------------
// Breakdown attribution
// ---------------------------------------------------------------------

TEST(BreakdownTest, ZeroSavingsGiveZeroShares)
{
    Comparison cmp;
    cmp.base.cycles = 100;
    cmp.memento.cycles = 100;
    cmp.mementoNoBypass.cycles = 100;
    Breakdown bd = computeBreakdown(cmp);
    EXPECT_EQ(bd.savedCycles, 0u);
    EXPECT_EQ(bd.objAlloc + bd.objFree + bd.pageMgmt + bd.bypass, 0.0);
}

TEST(BreakdownTest, AttributesToTheRightMechanism)
{
    Comparison cmp;
    cmp.base.cycles = 1000;
    cmp.memento.cycles = 800;
    cmp.mementoNoBypass.cycles = 850;
    // Baseline spent 100 in user alloc; Memento spends 10 in hw alloc.
    cmp.base.byCategory[static_cast<int>(CycleCategory::UserAlloc)] =
        100;
    cmp.memento.byCategory[static_cast<int>(CycleCategory::HwAlloc)] =
        10;
    Breakdown bd = computeBreakdown(cmp);
    EXPECT_GT(bd.objAlloc, 0.5);
    EXPECT_GT(bd.bypass, 0.0);
    EXPECT_EQ(bd.savedCycles, 200u);
}

// ---------------------------------------------------------------------
// GC + decay against the VM
// ---------------------------------------------------------------------

TEST(RuntimeVmInterplay, GoScavengeReturnsPagesToOs)
{
    // Run against a real Machine so the allocator's object-zeroing
    // writes actually demand-fault pages.
    MachineConfig cfg = test::smallConfig();
    cfg.tuning.goGcTriggerBytes = 128 << 10;
    Machine m(cfg);
    WorkloadSpec spec;
    spec.id = "go-scav";
    spec.lang = Language::Golang;
    spec.domain = Domain::Platform; // GC enabled.
    spec.staticWsBytes = 64 << 10;  // Keep residency heap-dominated.
    m.createProcess(spec);
    Allocator &alloc = m.allocator();
    VirtualMemory &vm = m.process().vm();

    // Allocate a wave, kill it all, keep churning so GC runs and the
    // scavenger returns the idle spans' pages.
    std::vector<Addr> wave;
    for (int i = 0; i < 4000; ++i)
        wave.push_back(alloc.malloc(64, m));
    for (Addr p : wave)
        alloc.free(p, m);
    const std::uint64_t faults_before_churn = vm.faultCount();
    for (int i = 0; i < 4000; ++i)
        alloc.free(alloc.malloc(64, m), m);

    EXPECT_GT(m.stats().value("gomalloc.gc_runs"), 0u);
    // Scavenged spans demand-fault back in when reused.
    EXPECT_GT(vm.faultCount(), faults_before_churn);
    // Residency stays far below the total bytes ever allocated.
    EXPECT_LT(vm.residentUserPages() * kPageSize, 4000u * 64 * 2);
}

TEST(RuntimeVmInterplay, MementoNeverTouchesTheOsForSmallObjects)
{
    WorkloadSpec spec;
    spec.id = "pure-small";
    spec.lang = Language::Python;
    spec.numAllocs = 3000;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 512}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 1024}});
    spec.lifetime = {.pShort = 0.7, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.0; // Small objects only.
    spec.rpcBytes = 0;
    spec.seed = 5;
    const Trace trace = TraceGenerator(spec).generate();

    RunResult mem = Experiment::runOne(spec, trace, mementoConfig());
    EXPECT_EQ(mem.pageFaults, 0u);
    EXPECT_EQ(mem.mmapCalls, 0u);
    EXPECT_EQ(mem.category(CycleCategory::KernelFault), 0u);
    EXPECT_EQ(mem.category(CycleCategory::KernelMmap), 0u);
}

TEST(RuntimeVmInterplay, BaselinePaysKernelForTheSameTrace)
{
    WorkloadSpec spec;
    spec.id = "pure-small";
    spec.lang = Language::Python;
    spec.numAllocs = 3000;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 512}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 1024}});
    spec.lifetime = {.pShort = 0.7, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.0;
    spec.rpcBytes = 0;
    spec.seed = 5;
    const Trace trace = TraceGenerator(spec).generate();

    RunResult base = Experiment::runOne(spec, trace, defaultConfig());
    EXPECT_GT(base.pageFaults, 0u);
    EXPECT_GT(base.category(CycleCategory::KernelFault), 0u);
}

// ---------------------------------------------------------------------
// Eager arena prefetch ablation
// ---------------------------------------------------------------------

TEST(AblationTest, EagerPrefetchRaisesAllocHitRate)
{
    WorkloadSpec spec;
    spec.id = "prefetch";
    spec.lang = Language::Cpp;
    spec.numAllocs = 5000;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 64, 64}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 1024}});
    spec.lifetime = {.pShort = 0.0, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.0;
    spec.rpcBytes = 0;
    spec.seed = 9;
    const Trace trace = TraceGenerator(spec).generate();

    MachineConfig eager = mementoConfig();
    MachineConfig lazy = mementoConfig();
    lazy.memento.eagerArenaPrefetch = false;

    RunResult with = Experiment::runOne(spec, trace, eager);
    RunResult without = Experiment::runOne(spec, trace, lazy);
    EXPECT_LT(with.hotAllocMisses, without.hotAllocMisses);
    EXPECT_EQ(with.objAllocs, without.objAllocs);
}

} // namespace
} // namespace memento
