/**
 * @file
 * Unit and property tests for the Memento hardware: arena geometry,
 * HOT, hardware object allocator, hardware page allocator, bypass
 * unit, and the MementoAllocator adapter.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hw/bypass.h"
#include "hw/hot.h"
#include "hw/hw_object_allocator.h"
#include "hw/hw_page_allocator.h"
#include "hw/memento_allocator.h"
#include "sim/rng.h"
#include "test_util.h"

namespace memento {
namespace {

using test::TestEnv;

// ---------------------------------------------------------------------
// Arena geometry (§3.2 address arithmetic)
// ---------------------------------------------------------------------

class GeometryTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = test::smallMementoConfig();
    ArenaGeometry geo{cfg.memento, cfg.layout};
};

TEST_F(GeometryTest, RegionBounds)
{
    EXPECT_TRUE(geo.inRegion(geo.regionStart()));
    EXPECT_TRUE(geo.inRegion(geo.regionEnd() - 1));
    EXPECT_FALSE(geo.inRegion(geo.regionStart() - 1));
    EXPECT_FALSE(geo.inRegion(geo.regionEnd()));
}

TEST_F(GeometryTest, ArenaSpansArePageMultiples)
{
    for (unsigned cls = 0; cls < geo.numClasses(); ++cls) {
        EXPECT_EQ(geo.arenaSpan(cls) % kPageSize, 0u);
        EXPECT_GE(geo.arenaSpan(cls),
                  ArenaGeometry::kHeaderBytes +
                      geo.objectsPerArena() * sizeClassBytes(cls));
    }
}

TEST_F(GeometryTest, SmallestAndLargestClassSpans)
{
    EXPECT_EQ(geo.arenaSpan(0), kPageSize);          // 64 + 256*8.
    EXPECT_EQ(geo.arenaSpan(63), alignUp(64 + 256 * 512, kPageSize));
}

/** Round-trip property across every class and many object indices. */
class GeometryRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GeometryRoundTrip, ObjectAddressRoundTrips)
{
    MachineConfig cfg = test::smallMementoConfig();
    ArenaGeometry geo(cfg.memento, cfg.layout);
    const unsigned cls = GetParam();

    for (unsigned arena_idx : {0u, 1u, 7u, 100u}) {
        const Addr base =
            geo.classBase(cls) + arena_idx * geo.arenaSpan(cls);
        EXPECT_EQ(geo.classOf(base), cls);
        EXPECT_EQ(geo.arenaBaseOf(base), base);
        for (unsigned idx : {0u, 1u, 100u, 255u}) {
            const Addr obj = geo.objAddr(base, cls, idx);
            EXPECT_EQ(geo.classOf(obj), cls);
            EXPECT_EQ(geo.arenaBaseOf(obj), base);
            EXPECT_EQ(geo.objIndexOf(obj), idx);
            // Interior bytes of the object resolve to the same index.
            const Addr mid = obj + sizeClassBytes(cls) / 2;
            EXPECT_EQ(geo.objIndexOf(mid), idx);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, GeometryRoundTrip,
                         ::testing::Values(0u, 1u, 7u, 31u, 62u, 63u));

// ---------------------------------------------------------------------
// HOT
// ---------------------------------------------------------------------

TEST(HotTable, HitRatesAndFlush)
{
    StatRegistry stats;
    MementoConfig cfg;
    Hot hot(cfg, stats);

    hot.entry(3).valid = true;
    hot.entry(3).arenaVa = 0x1000;
    hot.recordAlloc(true);
    hot.recordAlloc(true);
    hot.recordAlloc(false);
    hot.recordFree(true);
    hot.recordFree(false);

    EXPECT_NEAR(hot.allocHitRate(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(hot.freeHitRate(), 0.5, 1e-9);

    EXPECT_EQ(hot.flush(), 1u);
    EXPECT_FALSE(hot.entry(3).valid);
    EXPECT_EQ(hot.flush(), 0u);
}

// ---------------------------------------------------------------------
// Hardware object + page allocator integration
// ---------------------------------------------------------------------

class HwAllocTest : public ::testing::Test
{
  protected:
    HwAllocTest()
        : cfg(test::smallMementoConfig()),
          geo(cfg.memento, cfg.layout),
          buddy(1ull << 22, 1ull << 30, stats),
          hot(cfg.memento, stats),
          pageAlloc(cfg, geo, buddy, stats),
          objAlloc(cfg, geo, hot, pageAlloc, stats),
          space(geo, pageAlloc.poolFrames())
    {
    }

    MachineConfig cfg;
    ArenaGeometry geo;
    StatRegistry stats;
    BuddyAllocator buddy;
    Hot hot;
    HwPageAllocator pageAlloc;
    HwObjectAllocator objAlloc;
    MementoSpace space;
    TestEnv env;
};

TEST_F(HwAllocTest, FirstAllocCreatesArenaAndMisses)
{
    Addr a = objAlloc.objAlloc(space, 64, env);
    EXPECT_TRUE(geo.inRegion(a));
    EXPECT_EQ(geo.classOf(a), sizeClassIndex(64));
    EXPECT_EQ(hot.allocMisses(), 1u);
    EXPECT_EQ(stats.value("hwpage.arena_grants"), 1u);
}

TEST_F(HwAllocTest, SubsequentAllocsHitInHot)
{
    objAlloc.objAlloc(space, 64, env);
    for (int i = 0; i < 100; ++i)
        objAlloc.objAlloc(space, 64, env);
    EXPECT_EQ(hot.allocHits(), 100u);
    EXPECT_EQ(hot.allocMisses(), 1u);
}

TEST_F(HwAllocTest, AllocationsAreDistinctSlots)
{
    std::set<Addr> seen;
    for (int i = 0; i < 600; ++i) {
        Addr a = objAlloc.objAlloc(space, 32, env);
        EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
    }
}

TEST_F(HwAllocTest, HotHitChargesOnlyHotLatency)
{
    objAlloc.objAlloc(space, 64, env); // Warm the entry.
    const Cycles before = env.ledger().total();
    objAlloc.objAlloc(space, 64, env);
    EXPECT_EQ(env.ledger().total() - before, cfg.memento.hotLatency);
}

TEST_F(HwAllocTest, FreeHitClearsBitmapCheaply)
{
    Addr a = objAlloc.objAlloc(space, 64, env);
    const Cycles before = env.ledger().total();
    EXPECT_EQ(objAlloc.objFree(space, a, env), FreeStatus::Ok);
    EXPECT_EQ(env.ledger().total() - before, cfg.memento.hotLatency);
    EXPECT_EQ(hot.freeHits(), 1u);
    // The slot is reusable.
    Addr b = objAlloc.objAlloc(space, 64, env);
    EXPECT_EQ(a, b);
}

TEST_F(HwAllocTest, DoubleFreeRaisesException)
{
    Addr a = objAlloc.objAlloc(space, 64, env);
    EXPECT_EQ(objAlloc.objFree(space, a, env), FreeStatus::Ok);
    EXPECT_EQ(objAlloc.objFree(space, a, env),
              FreeStatus::NotAllocated);
}

TEST_F(HwAllocTest, FreeInUnknownArenaRaises)
{
    EXPECT_EQ(objAlloc.objFree(space, geo.regionStart() + 64, env),
              FreeStatus::UnknownArena);
}

TEST_F(HwAllocTest, ArenaExhaustionRollsToNewArena)
{
    const unsigned capacity = geo.objectsPerArena();
    std::vector<Addr> ptrs;
    for (unsigned i = 0; i < capacity + 1; ++i)
        ptrs.push_back(objAlloc.objAlloc(space, 16, env));
    EXPECT_EQ(stats.value("hwpage.arena_grants"), 2u);
    EXPECT_NE(geo.arenaBaseOf(ptrs.front()),
              geo.arenaBaseOf(ptrs.back()));
    // With eager prefetch the post-fill alloc still hits.
    EXPECT_GE(hot.allocHits(), capacity - 1);
}

TEST_F(HwAllocTest, FreeMissFetchesHeaderFromMemory)
{
    // Fill one arena (class 16B), roll into the second, then free an
    // object of the first (no longer HOT-resident).
    const unsigned capacity = geo.objectsPerArena();
    std::vector<Addr> first_arena;
    for (unsigned i = 0; i < capacity + 8; ++i) {
        Addr a = objAlloc.objAlloc(space, 16, env);
        if (i < capacity)
            first_arena.push_back(a);
    }
    env.physReads.clear();
    EXPECT_EQ(objAlloc.objFree(space, first_arena[3], env),
              FreeStatus::Ok);
    EXPECT_EQ(hot.freeMisses(), 1u);
    EXPECT_FALSE(env.physReads.empty()); // Header fetch.
}

TEST_F(HwAllocTest, EmptyNonResidentArenaIsReleased)
{
    const unsigned capacity = geo.objectsPerArena();
    std::vector<Addr> first_arena;
    for (unsigned i = 0; i < capacity + 8; ++i) {
        Addr a = objAlloc.objAlloc(space, 16, env);
        if (i < capacity)
            first_arena.push_back(a);
    }
    for (Addr a : first_arena)
        EXPECT_EQ(objAlloc.objFree(space, a, env), FreeStatus::Ok);
    EXPECT_EQ(stats.value("hwpage.arena_frees"), 1u);
    EXPECT_GT(stats.value("hwpage.shootdowns"), 0u);
    // Its memory returned to the pool; the arena is gone from the map.
    EXPECT_EQ(space.arenas.count(geo.arenaBaseOf(first_arena[0])), 0u);
}

TEST_F(HwAllocTest, ResidentArenaSurvivesBecomingEmpty)
{
    Addr a = objAlloc.objAlloc(space, 64, env);
    EXPECT_EQ(objAlloc.objFree(space, a, env), FreeStatus::Ok);
    // Still resident in the HOT: kept to avoid thrash.
    EXPECT_EQ(stats.value("hwpage.arena_frees"), 0u);
    EXPECT_EQ(space.arenas.count(geo.arenaBaseOf(a)), 1u);
}

TEST_F(HwAllocTest, ReleaseAllArenasEmptiesSpace)
{
    for (int i = 0; i < 1000; ++i)
        objAlloc.objAlloc(space, 8 + (i % 64) * 8, env);
    objAlloc.releaseAllArenas(space, env);
    EXPECT_TRUE(space.arenas.empty());
    for (const auto &list : space.availList)
        EXPECT_TRUE(list.empty());
    EXPECT_EQ(pageAlloc.residentArenaPages(), 0u);
}

TEST_F(HwAllocTest, ListOpsAreRare)
{
    Rng rng(5);
    std::vector<Addr> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng.nextBool(0.55)) {
            live.push_back(
                objAlloc.objAlloc(space, rng.nextRange(1, 512), env));
        } else {
            std::size_t pick = rng.nextBelow(live.size());
            EXPECT_EQ(objAlloc.objFree(space, live[pick], env),
                      FreeStatus::Ok);
            live.erase(live.begin() + pick);
        }
    }
    const double alloc_ops =
        static_cast<double>(objAlloc.allocListOps()) /
        (hot.allocHits() + hot.allocMisses());
    EXPECT_LT(alloc_ops, 0.05);
}

TEST_F(HwAllocTest, FragmentationMetricTracksLiveSlots)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 128; ++i)
        ptrs.push_back(objAlloc.objAlloc(space, 64, env));
    const double before = objAlloc.inactiveSlotFraction(space);
    for (int i = 0; i < 64; ++i)
        objAlloc.objFree(space, ptrs[i], env);
    EXPECT_GT(objAlloc.inactiveSlotFraction(space), before);
}

// ---------------------------------------------------------------------
// Hardware page allocator specifics
// ---------------------------------------------------------------------

TEST_F(HwAllocTest, ArenaGrantBacksOnlyHeaderPage)
{
    auto grant = pageAlloc.requestArena(space, 63, env);
    EXPECT_TRUE(space.mpt.isMapped(grant.va));
    EXPECT_FALSE(space.mpt.isMapped(grant.va + kPageSize));
    EXPECT_EQ(space.mpt.translate(grant.va), grant.headerPa);
}

TEST_F(HwAllocTest, PopulateOnWalkBacksPage)
{
    auto grant = pageAlloc.requestArena(space, 63, env);
    Addr body_page = grant.va + kPageSize;
    Addr frame = pageAlloc.populateOnWalk(space, body_page + 100, env);
    EXPECT_NE(frame, kNullAddr);
    EXPECT_EQ(space.mpt.translate(body_page), frame);
    EXPECT_EQ(stats.value("hwpage.walk_populates"), 1u);
}

TEST_F(HwAllocTest, FreeArenaReturnsPagesToPool)
{
    auto grant = pageAlloc.requestArena(space, 63, env);
    pageAlloc.populateOnWalk(space, grant.va + kPageSize, env);
    const std::uint64_t pool_before = pageAlloc.poolFreePages();
    pageAlloc.freeArena(space, grant.va, env);
    // At least the two backed pages return (pruned page-table nodes
    // may come back too).
    EXPECT_GE(pageAlloc.poolFreePages(), pool_before + 2);
    EXPECT_FALSE(space.mpt.isMapped(grant.va));
    EXPECT_EQ(env.tlbInvalidations.size(), 2u);
}

TEST_F(HwAllocTest, AacHitsAfterFirstUse)
{
    pageAlloc.requestArena(space, 10, env);
    pageAlloc.requestArena(space, 10, env);
    EXPECT_EQ(stats.value("aac.misses"), 1u);
    EXPECT_EQ(stats.value("aac.hits"), 1u);
}

TEST_F(HwAllocTest, PoolRefillsDrawFromBuddy)
{
    // The initial refill happened when the space's page table took its
    // root frame; draining below the low-water mark triggers another.
    const std::uint64_t refills_before =
        stats.value("hwpage.pool_refills");
    for (int i = 0; i < 600; ++i)
        pageAlloc.requestArena(space, 0, env);
    EXPECT_GT(stats.value("hwpage.pool_refills"), refills_before);
    EXPECT_GE(stats.value("hwpage.agg_os_pages"),
              buddy.allocatedPages());
}

// ---------------------------------------------------------------------
// Bypass unit
// ---------------------------------------------------------------------

TEST_F(HwAllocTest, BypassFirstTouchOnlyOnce)
{
    BypassUnit bypass(cfg.memento, geo, stats);
    Addr a = objAlloc.objAlloc(space, 64, env);
    EXPECT_TRUE(bypass.onAccess(space, a));
    EXPECT_FALSE(bypass.onAccess(space, a)); // Line now counted.
}

TEST_F(HwAllocTest, BypassSequentialLinesAllEligible)
{
    BypassUnit bypass(cfg.memento, geo, stats);
    // 512-byte objects: 8 lines each, touched in order.
    Addr a = objAlloc.objAlloc(space, 512, env);
    for (unsigned line = 0; line < 8; ++line)
        EXPECT_TRUE(bypass.onAccess(space, a + line * kLineSize));
}

TEST_F(HwAllocTest, BypassDisabledNeverEligible)
{
    MementoConfig disabled = cfg.memento;
    disabled.bypassEnabled = false;
    BypassUnit bypass(disabled, geo, stats);
    Addr a = objAlloc.objAlloc(space, 64, env);
    EXPECT_FALSE(bypass.onAccess(space, a));
}

TEST_F(HwAllocTest, FreeRewindsBypassCounterHighWater)
{
    BypassUnit bypass(cfg.memento, geo, stats);
    Addr a = objAlloc.objAlloc(space, 512, env);
    for (unsigned line = 0; line < 8; ++line)
        bypass.onAccess(space, a + line * kLineSize);
    objAlloc.objFree(space, a, env);
    Addr b = objAlloc.objAlloc(space, 512, env);
    ASSERT_EQ(a, b); // Same slot reused.
    // The counter rewound on free: the fresh object bypasses again.
    EXPECT_TRUE(bypass.onAccess(space, b));
}

// ---------------------------------------------------------------------
// MementoAllocator adapter
// ---------------------------------------------------------------------

TEST_F(HwAllocTest, AdapterRoutesBySizeAndRegion)
{
    BuddyAllocator buddy2(1ull << 22, 1ull << 30, stats);
    VirtualMemory vm(cfg, buddy2, stats, "vmx");
    MementoAllocator adapter(objAlloc, space, vm, stats);

    Addr small = adapter.malloc(128, env);
    EXPECT_TRUE(geo.inRegion(small));
    Addr big = adapter.malloc(4096, env);
    EXPECT_FALSE(geo.inRegion(big));
    EXPECT_EQ(adapter.liveBytes(), 128u + 4096u);

    adapter.free(small, env);
    adapter.free(big, env);
    EXPECT_EQ(adapter.liveBytes(), 0u);

    adapter.malloc(64, env);
    adapter.functionExit(env);
    EXPECT_EQ(adapter.liveBytes(), 0u);
    EXPECT_TRUE(space.arenas.empty());
}

// ---------------------------------------------------------------------
// Multi-threaded frees (§4)
// ---------------------------------------------------------------------

TEST_F(HwAllocTest, LocalFreeIsNotRemote)
{
    Addr a = objAlloc.objAlloc(space, 64, env, /*thread=*/1);
    EXPECT_EQ(objAlloc.objFree(space, a, env, /*thread=*/1),
              FreeStatus::Ok);
    EXPECT_EQ(objAlloc.remoteFrees(), 0u);
}

TEST_F(HwAllocTest, CrossThreadFreeTakesCoherencePath)
{
    Addr a = objAlloc.objAlloc(space, 64, env, /*thread=*/1);
    env.physWrites.clear();
    const Cycles before = env.ledger().total();
    EXPECT_EQ(objAlloc.objFree(space, a, env, /*thread=*/2),
              FreeStatus::Ok);
    EXPECT_EQ(objAlloc.remoteFrees(), 1u);
    // The remote path costs more than a plain HOT hit: BusRdX on the
    // header line plus the serialized RMW.
    EXPECT_GT(env.ledger().total() - before, cfg.memento.hotLatency);
    EXPECT_FALSE(env.physWrites.empty());
}

TEST_F(HwAllocTest, RemoteFreeStillCorrect)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 100; ++i)
        ptrs.push_back(objAlloc.objAlloc(space, 32, env, /*thread=*/0));
    for (Addr p : ptrs)
        EXPECT_EQ(objAlloc.objFree(space, p, env, /*thread=*/7),
                  FreeStatus::Ok);
    EXPECT_EQ(objAlloc.remoteFrees(), 100u);
    // Memory is reusable afterwards.
    Addr again = objAlloc.objAlloc(space, 32, env, /*thread=*/0);
    EXPECT_EQ(again, ptrs.front());
}

// ---------------------------------------------------------------------
// Property: random hardware traffic maintains bitmap consistency
// ---------------------------------------------------------------------

class HwPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HwPropertyTest, BitmapMatchesLiveSet)
{
    MachineConfig cfg = test::smallMementoConfig();
    ArenaGeometry geo(cfg.memento, cfg.layout);
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 30, stats);
    Hot hot(cfg.memento, stats);
    HwPageAllocator pageAlloc(cfg, geo, buddy, stats);
    HwObjectAllocator objAlloc(cfg, geo, hot, pageAlloc, stats);
    MementoSpace space(geo, pageAlloc.poolFrames());
    TestEnv env;

    Rng rng(GetParam());
    std::set<Addr> live;
    for (int i = 0; i < 10000; ++i) {
        if (live.empty() || rng.nextBool(0.55)) {
            Addr a =
                objAlloc.objAlloc(space, rng.nextRange(1, 512), env);
            ASSERT_TRUE(live.insert(a).second);
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBelow(live.size()));
            ASSERT_EQ(objAlloc.objFree(space, *it, env), FreeStatus::Ok);
            live.erase(it);
        }
    }

    // The sum of set bitmap bits equals the live object count.
    std::uint64_t bits = 0;
    for (const auto &[va, state] : space.arenas) {
        bits += state.allocated;
        ASSERT_EQ(state.bitmap.count(), state.allocated);
    }
    EXPECT_EQ(bits, live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwPropertyTest,
                         ::testing::Values(3u, 9u, 27u, 81u));

} // namespace
} // namespace memento
