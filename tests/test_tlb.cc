/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include "mem/tlb.h"

namespace memento {
namespace {

class TlbTest : public ::testing::Test
{
  protected:
    StatRegistry stats;
    Tlb tlb{"t", TlbConfig{16, 4, 1}, stats};
};

TEST_F(TlbTest, MissThenHit)
{
    EXPECT_FALSE(tlb.lookup(0x5000).has_value());
    tlb.insert(0x5000, 0x9000);
    auto hit = tlb.lookup(0x5123);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0x9000u);
    EXPECT_EQ(stats.value("t.hits"), 1u);
    EXPECT_EQ(stats.value("t.misses"), 1u);
}

TEST_F(TlbTest, UpdateInPlace)
{
    tlb.insert(0x5000, 0x9000);
    tlb.insert(0x5000, 0xA000);
    EXPECT_EQ(*tlb.lookup(0x5000), 0xA000u);
}

TEST_F(TlbTest, InvalidatePage)
{
    tlb.insert(0x5000, 0x9000);
    tlb.invalidatePage(0x5FFF);
    EXPECT_FALSE(tlb.lookup(0x5000).has_value());
}

TEST_F(TlbTest, FlushAll)
{
    for (Addr p = 0; p < 8; ++p)
        tlb.insert(p << kPageShift, (p + 100) << kPageShift);
    tlb.flushAll();
    for (Addr p = 0; p < 8; ++p)
        EXPECT_FALSE(tlb.lookup(p << kPageShift).has_value());
}

TEST_F(TlbTest, EvictsLruWithinSet)
{
    // 16 entries, 4 ways -> 4 sets; pages with the same (page % 4) map
    // to the same set.
    std::vector<Addr> pages;
    for (int i = 0; i < 4; ++i)
        pages.push_back((4ull * i) << kPageShift);
    for (Addr p : pages)
        tlb.insert(p, p + kPageSize);
    tlb.lookup(pages[0]); // Refresh.
    tlb.insert((4ull * 10) << kPageShift, 0x1000);
    EXPECT_TRUE(tlb.lookup(pages[0]).has_value());
    EXPECT_FALSE(tlb.lookup(pages[1]).has_value());
}

TEST_F(TlbTest, PageOffsetIgnoredOnInsert)
{
    tlb.insert(0x7ABC, 0x3DEF);
    auto hit = tlb.lookup(0x7000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0x3000u); // Physical page base, not the raw value.
}

TEST_F(TlbTest, HugeEntryCoversWholeBlock)
{
    const std::uint64_t huge = 1ull << kHugePageShift;
    tlb.insert(0x4000'0000, 0x1200'0000, kHugePageShift);
    auto hit = tlb.translate(0x4000'0000 + huge - 5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0x1200'0000 + huge - 5);
    // Outside the block: miss.
    EXPECT_FALSE(tlb.translate(0x4000'0000 + huge).has_value());
}

TEST_F(TlbTest, MixedGranularitiesCoexist)
{
    tlb.insert(0x5000, 0x9000);
    tlb.insert(0x4000'0000, 0x1200'0000, kHugePageShift);
    EXPECT_EQ(*tlb.translate(0x5123), 0x9123u);
    EXPECT_TRUE(tlb.translate(0x4010'0000).has_value());
    tlb.invalidatePage(0x4000'0000);
    EXPECT_FALSE(tlb.translate(0x4010'0000).has_value());
    EXPECT_TRUE(tlb.translate(0x5000).has_value());
}

TEST(TlbGeometry, NonDivisibleEntriesRoundDown)
{
    StatRegistry stats;
    // Table 3's 2048-entry 12-way TLB: sets round down to 170.
    Tlb tlb("t", TlbConfig{2048, 12, 7}, stats);
    // Capacity still works for a burst of insert/lookup pairs.
    for (Addr p = 0; p < 100; ++p) {
        tlb.insert(p << kPageShift, (p + 5) << kPageShift);
        EXPECT_TRUE(tlb.lookup(p << kPageShift).has_value());
    }
}

TEST(TlbGeometry, SweepConfigurations)
{
    for (unsigned entries : {8u, 64u, 256u}) {
        for (unsigned ways : {1u, 2u, 4u}) {
            StatRegistry stats;
            Tlb tlb("t", TlbConfig{entries, ways, 1}, stats);
            // Inserting up to one set of pages per set keeps them all.
            const unsigned sets = entries / ways;
            for (unsigned w = 0; w < ways; ++w) {
                Addr page = static_cast<Addr>(w) * sets;
                tlb.insert(page << kPageShift, 0x1000);
            }
            for (unsigned w = 0; w < ways; ++w) {
                Addr page = static_cast<Addr>(w) * sets;
                EXPECT_TRUE(tlb.lookup(page << kPageShift).has_value());
            }
        }
    }
}

} // namespace
} // namespace memento
