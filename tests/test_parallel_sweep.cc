/**
 * @file
 * Differential tests for the parallel sweep engine (machine/sweep.h).
 *
 * The engine's contract is that parallelism is unobservable: a sweep
 * at --jobs N produces the same per-run digests, the same aggregate
 * metrics, and the same failure report as the serial sweep, for every
 * workload and under injected faults. These tests pin that contract by
 * running the same task lists at jobs {1, 2, 4, 8} and comparing
 * RunResults field-by-field, plus watchdog/cancellation behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "machine/experiment.h"
#include "machine/sweep.h"
#include "sim/error.h"
#include "test_util.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

/** Shrink a paper workload so a test run takes milliseconds. */
WorkloadSpec
downscale(const WorkloadSpec &spec)
{
    WorkloadSpec s = spec;
    s.numAllocs = std::min<std::uint64_t>(s.numAllocs, 2000);
    s.staticWsBytes = std::min<std::uint64_t>(s.staticWsBytes, 64 << 10);
    s.rpcBytes = std::min<std::uint64_t>(s.rpcBytes, 4 << 10);
    return s;
}

/** The four config variants every workload is swept under. */
std::vector<SweepTask>
tasksFor(const WorkloadSpec &spec)
{
    RunOptions ro;
    ro.computeDigest = true;

    const MachineConfig base = test::smallConfig();
    const MachineConfig memento = test::smallMementoConfig();
    MachineConfig no_bypass = memento;
    no_bypass.memento.bypassEnabled = false;
    // A faulted variant keeps the failure path inside the differential
    // check: the corrupt record must fail identically at any N.
    MachineConfig faulted = memento;
    faulted.inject.traceCorruptAt = 120;
    faulted.inject.workload = spec.id;

    return {{spec, base, ro, nullptr, {}},
            {spec, memento, ro, nullptr, {}},
            {spec, no_bypass, ro, nullptr, {}},
            {spec, faulted, ro, nullptr, {}}};
}

std::vector<SweepOutcome>
sweepAt(unsigned jobs, const std::vector<SweepTask> &tasks,
        bool keep_going = true)
{
    SweepOptions so;
    so.jobs = jobs;
    so.keepGoing = keep_going;
    SweepEngine engine(so);
    return engine.run(tasks);
}

void
expectSameOutcome(const SweepOutcome &got, const SweepOutcome &want,
                  const std::string &ctx)
{
    ASSERT_EQ(got.skipped, want.skipped) << ctx;
    EXPECT_EQ(got.result.digest, want.result.digest) << ctx;
    EXPECT_EQ(got.result.cycles, want.result.cycles) << ctx;
    ASSERT_EQ(got.result.failed(), want.result.failed()) << ctx;
    if (got.result.failed() && want.result.failed()) {
        EXPECT_EQ(got.result.error->category, want.result.error->category)
            << ctx;
        EXPECT_EQ(got.result.error->message, want.result.error->message)
            << ctx;
        EXPECT_EQ(got.result.error->opIndex, want.result.error->opIndex)
            << ctx;
    }
    // Field-wise sweep over every metric, digest included.
    EXPECT_TRUE(got.result == want.result) << ctx << ": RunResult differs";
}

class ParallelSweepDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParallelSweepDeterminism, MatchesSerialAtAnyJobCount)
{
    const WorkloadSpec spec = downscale(workloadById(GetParam()));
    const std::vector<SweepTask> tasks = tasksFor(spec);

    const std::vector<SweepOutcome> serial = sweepAt(1, tasks);
    ASSERT_EQ(serial.size(), tasks.size());

    // The faulted variant (task 3) must have failed and its siblings
    // survived — per-worker SimError capture, not pool teardown.
    EXPECT_FALSE(serial[0].result.failed()) << serial[0].result.error->message;
    EXPECT_FALSE(serial[1].result.failed());
    EXPECT_FALSE(serial[2].result.failed());
    ASSERT_TRUE(serial[3].result.failed());
    EXPECT_EQ(serial[3].result.error->category, ErrorCategory::Trace);

    for (unsigned jobs : {2u, 4u, 8u}) {
        const std::vector<SweepOutcome> parallel = sweepAt(jobs, tasks);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            expectSameOutcome(parallel[i], serial[i],
                              spec.id + " task " + std::to_string(i) +
                                  " jobs " + std::to_string(jobs));
        }
    }
}

std::vector<std::string>
allWorkloadIds()
{
    std::vector<std::string> ids;
    for (const WorkloadSpec &spec : allWorkloads())
        ids.push_back(spec.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelSweepDeterminism,
    ::testing::ValuesIn(allWorkloadIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** The whole suite at once, with faults, keep-going: reports match. */
TEST(ParallelSweepEngine, FullSweepFailureReportMatchesSerial)
{
    RunOptions ro;
    ro.computeDigest = true;
    const MachineConfig base = test::smallConfig();
    const MachineConfig memento = test::smallMementoConfig();

    std::vector<SweepTask> tasks;
    for (const WorkloadSpec &full : allWorkloads()) {
        const WorkloadSpec spec = downscale(full);
        tasks.push_back({spec, base, ro, nullptr, {}});
        MachineConfig cfg = memento;
        // Fault two of the workloads so the report is non-trivial.
        if (spec.id == "aes" || spec.id == "bfs") {
            cfg.inject.traceCorruptAt = 200;
            cfg.inject.workload = spec.id;
        }
        tasks.push_back({spec, cfg, ro, nullptr, {}});
    }

    const auto serial = sweepAt(1, tasks, /*keep_going=*/true);
    const auto parallel = sweepAt(8, tasks, /*keep_going=*/true);
    ASSERT_EQ(parallel.size(), serial.size());

    // The merged failure report (workload, category, message, op) is
    // derived purely from outcome order, so outcome equality implies
    // report equality — assert both anyway.
    std::vector<std::string> serial_report, parallel_report;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectSameOutcome(parallel[i], serial[i],
                          "task " + std::to_string(i));
        for (const auto *out : {&serial[i], &parallel[i]}) {
            auto &report =
                out == &serial[i] ? serial_report : parallel_report;
            if (out->result.failed())
                report.push_back(
                    out->result.workload + "/" +
                    std::string(
                        errorCategoryName(out->result.error->category)) +
                    "/" + out->result.error->message + "/" +
                    std::to_string(out->result.error->opIndex));
        }
    }
    EXPECT_EQ(serial_report, parallel_report);
    EXPECT_EQ(serial_report.size(), 2u);
}

/** Without keep-going, the reported prefix matches the serial sweep. */
TEST(ParallelSweepEngine, CancellationPreservesSerialPrefix)
{
    RunOptions ro;
    ro.computeDigest = true;
    const MachineConfig memento = test::smallMementoConfig();

    std::vector<SweepTask> tasks;
    std::size_t fail_at = 0;
    std::size_t idx = 0;
    for (const WorkloadSpec &full : allWorkloads()) {
        const WorkloadSpec spec = downscale(full);
        MachineConfig cfg = memento;
        if (idx == 10) { // Fail in the middle of the sweep.
            cfg.inject.traceCorruptAt = 200;
            cfg.inject.workload = spec.id;
            fail_at = idx;
        }
        tasks.push_back({spec, cfg, ro, nullptr, {}});
        ++idx;
    }

    const auto serial = sweepAt(1, tasks, /*keep_going=*/false);
    const auto parallel = sweepAt(4, tasks, /*keep_going=*/false);

    // Serial semantics: everything before the failure ran, the failure
    // is recorded, everything after was cancelled.
    for (std::size_t i = 0; i < fail_at; ++i) {
        EXPECT_FALSE(serial[i].skipped);
        expectSameOutcome(parallel[i], serial[i],
                          "prefix task " + std::to_string(i));
    }
    ASSERT_TRUE(serial[fail_at].result.failed());
    expectSameOutcome(parallel[fail_at], serial[fail_at], "failing task");
    for (std::size_t i = fail_at + 1; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].skipped);
        // A parallel sibling may have started before the failure was
        // observed; either way it must never have failed spuriously
        // and the merge never reports past fail_at.
        if (!parallel[i].skipped) {
            EXPECT_FALSE(parallel[i].result.failed());
        }
    }
}

TEST(ParallelSweepEngine, TraceGeneratedOncePerWorkload)
{
    RunOptions ro;
    const MachineConfig base = test::smallConfig();
    const MachineConfig memento = test::smallMementoConfig();

    std::vector<SweepTask> tasks;
    std::vector<std::string> ids = {"aes", "jl", "silo"};
    for (const std::string &id : ids) {
        const WorkloadSpec spec = downscale(workloadById(id));
        tasks.push_back({spec, base, ro, nullptr, {}});
        tasks.push_back({spec, memento, ro, nullptr, {}});
        tasks.push_back({spec, memento, ro, nullptr, {}});
    }

    SweepOptions so;
    so.jobs = 4;
    SweepEngine engine(so);
    const auto outcomes = engine.run(tasks);
    for (const SweepOutcome &out : outcomes)
        EXPECT_FALSE(out.result.failed());
    EXPECT_EQ(engine.traceCache().generations(), ids.size())
        << "each workload's trace must be synthesized exactly once";
}

TEST(ParallelSweepEngine, EmptyTaskListIsANoOp)
{
    SweepEngine engine;
    EXPECT_TRUE(engine.run({}).empty());
}

TEST(ParallelSweepEngine, CompareSweepMatchesSerialCompare)
{
    const MachineConfig base = test::smallConfig();
    const MachineConfig memento = test::smallMementoConfig();
    std::vector<WorkloadSpec> specs = {downscale(workloadById("aes")),
                                       downscale(workloadById("jl"))};

    SweepOptions so;
    so.jobs = 4;
    SweepEngine engine(so);
    const auto outcomes =
        compareSweep(specs, base, memento, RunOptions{}, engine);
    ASSERT_EQ(outcomes.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_FALSE(outcomes[i].error.has_value());
        const Comparison serial =
            Experiment::compare(specs[i], base, memento, RunOptions{});
        EXPECT_TRUE(outcomes[i].cmp.base == serial.base);
        EXPECT_TRUE(outcomes[i].cmp.memento == serial.memento);
        EXPECT_TRUE(outcomes[i].cmp.mementoNoBypass ==
                    serial.mementoNoBypass);
    }
}

/**
 * The pool watchdog: a run that would grind forever times out inside
 * its worker with ErrorCategory::Timeout while siblings complete.
 */
TEST(SweepWatchdog, HungRunTimesOutWhileSiblingsFinish)
{
    WorkloadSpec hung = downscale(workloadById("silo"));
    WorkloadSpec tiny = downscale(workloadById("aes"));
    tiny.numAllocs = 20;

    // Size the budget between the sibling's trace and the hung trace.
    const std::size_t tiny_ops = TraceGenerator(tiny).generate().size();
    const std::size_t hung_ops = TraceGenerator(hung).generate().size();
    const std::uint64_t budget = tiny_ops + 32;
    ASSERT_GT(hung_ops, budget);

    RunOptions ro;
    const MachineConfig cfg = test::smallMementoConfig();
    std::vector<SweepTask> tasks = {{hung, cfg, ro, nullptr, {}},
                                    {tiny, cfg, ro, nullptr, {}},
                                    {tiny, test::smallConfig(), ro,
                                     nullptr, {}}};

    SweepOptions so;
    so.jobs = 3;
    so.keepGoing = true;
    so.watchdogMaxOps = budget;
    SweepEngine engine(so);
    const auto outcomes = engine.run(tasks);

    ASSERT_TRUE(outcomes[0].result.failed());
    EXPECT_EQ(outcomes[0].result.error->category, ErrorCategory::Timeout);
    ASSERT_TRUE(outcomes[0].result.error->hasOpIndex());
    EXPECT_EQ(outcomes[0].result.error->opIndex, budget);
    EXPECT_FALSE(outcomes[1].result.failed());
    EXPECT_FALSE(outcomes[2].result.failed());
}

TEST(SweepWatchdog, TaskOwnBudgetBeatsPoolDefault)
{
    WorkloadSpec spec = downscale(workloadById("aes"));
    MachineConfig cfg = test::smallConfig();
    cfg.check.maxOps = 64; // Tighter than the pool's default below.

    SweepOptions so;
    so.keepGoing = true;
    so.watchdogMaxOps = 1'000'000;
    SweepEngine engine(so);
    const auto outcomes = engine.run({{spec, cfg, RunOptions{}, nullptr, {}}});

    ASSERT_TRUE(outcomes[0].result.failed());
    EXPECT_EQ(outcomes[0].result.error->category, ErrorCategory::Timeout);
    EXPECT_EQ(outcomes[0].result.error->opIndex, 64u);
}

TEST(SweepWatchdog, CycleBudgetFires)
{
    WorkloadSpec spec = downscale(workloadById("aes"));

    SweepOptions so;
    so.keepGoing = true;
    so.watchdogMaxCycles = 1000; // Trips within the RPC bookend.
    SweepEngine engine(so);
    const auto outcomes = engine.run(
        {{spec, test::smallConfig(), RunOptions{}, nullptr, {}}});

    ASSERT_TRUE(outcomes[0].result.failed());
    EXPECT_EQ(outcomes[0].result.error->category, ErrorCategory::Timeout);
}

} // namespace
} // namespace memento
