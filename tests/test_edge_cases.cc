/**
 * @file
 * Edge cases and failure-injection tests collected during development:
 * bypass-counter range limits, region exhaustion, double frees through
 * the public allocator API, TLB shootdown correctness under arena
 * reuse, and glibc growth-path corner cases.
 */

#include <gtest/gtest.h>

#include "hw/bypass.h"
#include "hw/hw_object_allocator.h"
#include "hw/hw_page_allocator.h"
#include "machine/experiment.h"
#include "machine/machine.h"
#include "rt/glibc_large.h"
#include "sim/error.h"
#include "test_util.h"
#include "wl/trace_generator.h"

namespace memento {
namespace {

using test::TestEnv;

// ---------------------------------------------------------------------
// Bypass counter range (11 bits => line indices above 2047 never
// bypass; the largest arena spans 2112 lines).
// ---------------------------------------------------------------------

TEST(BypassRange, LinesBeyondCounterRangeNeverBypass)
{
    MachineConfig cfg = test::smallMementoConfig();
    ArenaGeometry geo(cfg.memento, cfg.layout);
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 28, stats);
    Hot hot(cfg.memento, stats);
    HwPageAllocator page_alloc(cfg, geo, buddy, stats);
    HwObjectAllocator obj_alloc(cfg, geo, hot, page_alloc, stats);
    MementoSpace space(geo, page_alloc.poolFrames());
    BypassUnit bypass(cfg.memento, geo, stats);
    TestEnv env;

    // Class 63 (512 B objects): the arena spans 2112 lines; the last
    // objects' lines exceed the 11-bit counter and must be refused.
    ASSERT_GT(geo.arenaSpan(63) / kLineSize, BypassUnit::kCounterMax);
    Addr last_obj = kNullAddr;
    for (unsigned i = 0; i < geo.objectsPerArena(); ++i)
        last_obj = obj_alloc.objAlloc(space, 512, env);
    // The final line of the last object lies beyond the counter range.
    const Addr last_byte = last_obj + 511;
    ASSERT_GT(geo.lineIndexOf(last_byte), BypassUnit::kCounterMax);
    EXPECT_FALSE(bypass.onAccess(space, last_byte));

    // Early objects of the same arena still bypass.
    Addr first_obj = geo.objAddr(geo.arenaBaseOf(last_obj), 63, 0);
    EXPECT_TRUE(bypass.onAccess(space, first_obj));
}

TEST(BypassRange, AccessToUnknownArenaIsNotEligible)
{
    MachineConfig cfg = test::smallMementoConfig();
    ArenaGeometry geo(cfg.memento, cfg.layout);
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 28, stats);
    HwPageAllocator page_alloc(cfg, geo, buddy, stats);
    MementoSpace space(geo, page_alloc.poolFrames());
    BypassUnit bypass(cfg.memento, geo, stats);
    // In-region address with no live arena behind it.
    EXPECT_FALSE(bypass.onAccess(space, geo.regionStart() + 64));
}

// ---------------------------------------------------------------------
// Public allocator API misuse
// ---------------------------------------------------------------------

TEST(ApiMisuseDeath, MementoDoubleFreePanics)
{
    Machine m(test::smallMementoConfig());
    WorkloadSpec spec;
    spec.id = "misuse";
    spec.lang = Language::Python;
    m.createProcess(spec);
    Addr a = m.allocator().malloc(64, m);
    m.allocator().free(a, m);
    EXPECT_DEATH(m.allocator().free(a, m), "free");
}

TEST(ApiMisuseDeath, ZeroSizeMallocIsFatal)
{
    Machine m(test::smallConfig());
    WorkloadSpec spec;
    spec.id = "misuse";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    EXPECT_DEATH(m.allocator().malloc(0, m), "zero-size");
}

// ---------------------------------------------------------------------
// TLB shootdown correctness under arena reuse
// ---------------------------------------------------------------------

TEST(ShootdownTest, ReusedPoolFrameNeverServedThroughStaleTlb)
{
    // Fill an arena, touch its pages (TLB entries formed), free it
    // (pages return to the pool with shootdowns), allocate a different
    // class (pool frames reused at new VAs): the old VAs must not
    // translate anymore.
    Machine m(test::smallMementoConfig());
    WorkloadSpec spec;
    spec.id = "shoot";
    spec.lang = Language::Cpp;
    m.createProcess(spec);
    Allocator &alloc = m.allocator();

    const unsigned capacity =
        m.config().memento.objectsPerArena;
    std::vector<Addr> first;
    for (unsigned i = 0; i < capacity + 4; ++i) {
        Addr a = alloc.malloc(256, m);
        m.appAccess(a, AccessType::Write);
        if (i < capacity)
            first.push_back(a);
    }
    for (Addr a : first)
        alloc.free(a, m); // Drains the retired arena -> freed + shootdown.

    // New allocations in another class reuse the pool frames.
    for (int i = 0; i < 64; ++i) {
        Addr b = alloc.malloc(32, m);
        m.appAccess(b, AccessType::Write);
    }
    // The stale VAs fall in the Memento region; walking them would
    // repopulate fresh pages rather than alias the reused frames.
    // (Machine-level invariant: no crash, consistent accounting.)
    EXPECT_GT(m.stats().value("hwpage.shootdowns"), 0u);
}

// ---------------------------------------------------------------------
// glibc growth-path corners
// ---------------------------------------------------------------------

class GlibcEdge : public ::testing::Test
{
  protected:
    GlibcEdge()
        : buddy(1ull << 22, 1ull << 28, stats),
          vm(cfg, buddy, stats, "vm"),
          alloc(vm, stats, "g")
    {
    }

    MachineConfig cfg;
    StatRegistry stats;
    BuddyAllocator buddy;
    VirtualMemory vm;
    GlibcLargeAlloc alloc;
    TestEnv env;
};

TEST_F(GlibcEdge, RequestBiggerThanTopGrowth)
{
    // A 3 MiB request exceeds the 1 MiB top increment and the mmap
    // threshold: it must get its own mapping and free cleanly.
    Addr a = alloc.malloc(3 << 20, env);
    EXPECT_TRUE(alloc.owns(a));
    alloc.free(a, env);
    EXPECT_FALSE(alloc.owns(a));
}

TEST_F(GlibcEdge, ManySizesNoOverlapAcrossGrowth)
{
    std::vector<std::pair<Addr, std::uint64_t>> live;
    for (int i = 0; i < 300; ++i) {
        std::uint64_t size = 600 + (i * 97) % 50000;
        Addr a = alloc.malloc(size, env);
        for (auto &[base, len] : live) {
            EXPECT_TRUE(a + size <= base || base + len <= a)
                << "overlap at iteration " << i;
        }
        live.push_back({a, size});
    }
    for (auto &[base, len] : live)
        alloc.free(base, env);
    EXPECT_EQ(alloc.liveBytes(), 0u);
}

// ---------------------------------------------------------------------
// Region capacity guard
// ---------------------------------------------------------------------

TEST(RegionExhaustion, BumpPastClassRegionThrows)
{
    MachineConfig cfg = test::smallMementoConfig();
    // Shrink the per-class region so exhaustion is reachable: 2 pages
    // per class while class-0 arenas take 1 page each.
    cfg.layout.perClassRegionBytes = 2 * kPageSize;
    ArenaGeometry geo(cfg.memento, cfg.layout);
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 28, stats);
    HwPageAllocator page_alloc(cfg, geo, buddy, stats);
    MementoSpace space(geo, page_alloc.poolFrames());
    TestEnv env;
    page_alloc.requestArena(space, 0, env);
    page_alloc.requestArena(space, 0, env);
    try {
        page_alloc.requestArena(space, 0, env);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::OutOfMemory);
        EXPECT_NE(std::string(e.what()).find("region exhausted"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Trace replay equivalence through the real machine
// ---------------------------------------------------------------------

TEST(ReplayTest, SerializedTraceReproducesCycleCounts)
{
    WorkloadSpec spec = workloadById("aes");
    spec.numAllocs = 3000; // Keep the test fast.
    const Trace original = TraceGenerator(spec).generate();

    std::stringstream ss;
    writeTrace(original, ss);
    const Trace replayed = readTrace(ss);

    RunResult a = Experiment::runOne(spec, original, defaultConfig());
    RunResult b = Experiment::runOne(spec, replayed, defaultConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
}

} // namespace
} // namespace memento
