/**
 * @file
 * Tests for the shared declarative CLI options API (cli/options.h).
 *
 * The contract under test: every command parses through one flag
 * table, commands only accept the flags they declare, old flag
 * spellings keep working, and user errors exit through the fatal()
 * path (exit code 1) with an actionable message.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "cli/options.h"

namespace memento {
namespace {

const CommandSpec &
command(std::string_view name)
{
    const CommandSpec *spec = findCommand(name);
    EXPECT_NE(spec, nullptr) << name;
    return *spec;
}

TEST(CliOptions, EveryDeclaredFlagIsRegistered)
{
    for (const CommandSpec &cmd : allCommands()) {
        for (std::string_view flag : cmd.flags)
            EXPECT_NE(findFlag(flag), nullptr)
                << "command " << cmd.name << " declares unknown flag "
                << flag;
    }
}

TEST(CliOptions, LegacyFlagSpellingsAllExist)
{
    // The pre-redesign front end accepted exactly these spellings;
    // they must keep working verbatim.
    for (const char *flag :
         {"--config", "--set", "--memento", "--cold", "--trace",
          "--stats", "--keep-going", "--digest", "--jobs", "--json",
          "--allow", "--werror"})
        EXPECT_NE(findFlag(flag), nullptr) << flag;
}

TEST(CliOptions, ParseAppliesRunFlags)
{
    const CliOptions opts = parseCommandOptions(
        command("run"),
        {"run", "aes", "--memento", "--digest", "--jobs", "2"}, 2);
    EXPECT_TRUE(opts.memento);
    EXPECT_TRUE(opts.cfg.memento.enabled);
    EXPECT_TRUE(opts.digest);
    EXPECT_EQ(opts.jobs, 2u);
    EXPECT_FALSE(opts.json);
}

TEST(CliOptions, ParseAppliesBenchFlags)
{
    const CliOptions opts = parseCommandOptions(
        command("bench"),
        {"bench", "--smoke", "--repeat", "5", "--out", "x.json"}, 1);
    EXPECT_TRUE(opts.smoke);
    EXPECT_EQ(opts.repeats, 5u);
    EXPECT_EQ(opts.outFile, "x.json");
}

TEST(CliOptions, ParseAppliesFleetFlags)
{
    const CliOptions opts = parseCommandOptions(
        command("fleet"),
        {"fleet", "--cores", "4", "--invocations", "300", "--arrival",
         "bursty", "--rate", "1500", "--jobs", "2"},
        1);
    EXPECT_EQ(opts.cfg.fleet.cores, 4u);
    EXPECT_EQ(opts.cfg.fleet.invocations, 300u);
    EXPECT_EQ(opts.cfg.fleet.arrival, "bursty");
    EXPECT_DOUBLE_EQ(opts.cfg.fleet.ratePerSec, 1500.0);
    EXPECT_EQ(opts.jobs, 2u);
}

TEST(CliOptions, DefaultsMatchDocumentedBehaviour)
{
    const CliOptions opts;
    EXPECT_EQ(opts.outFile, "BENCH_PR8.json");
    EXPECT_EQ(opts.repeats, 3u);
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_FALSE(opts.cfg.memento.enabled);
}

TEST(CliOptions, HelpRequestShortCircuitsParsing)
{
    const CliOptions opts = parseCommandOptions(
        command("run"), {"run", "aes", "--help", "--jobs", "bogus"}, 2);
    EXPECT_TRUE(opts.helpRequested);
}

using CliOptionsDeath = ::testing::Test;

TEST(CliOptionsDeath, UnacceptedFlagIsFatal)
{
    // `run` does not declare --out; the shared parser must say so.
    EXPECT_EXIT(parseCommandOptions(command("run"),
                                    {"run", "aes", "--out", "x.json"}, 2),
                ::testing::ExitedWithCode(1), "does not accept --out");
}

TEST(CliOptionsDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(
        parseCommandOptions(command("run"), {"run", "aes", "--bogus"}, 2),
        ::testing::ExitedWithCode(1), "unknown option --bogus");
}

TEST(CliOptionsDeath, MissingValueIsFatal)
{
    EXPECT_EXIT(
        parseCommandOptions(command("run"), {"run", "aes", "--jobs"}, 2),
        ::testing::ExitedWithCode(1), "missing N after --jobs");
}

TEST(CliOptionsDeath, NonPositiveJobsIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(command("run"),
                                    {"run", "aes", "--jobs", "0"}, 2),
                ::testing::ExitedWithCode(1), "positive count");
}

TEST(CliOptions, CacheFlagsApplyToTheSweepPolicy)
{
    const CliOptions opts = parseCommandOptions(
        command("run"),
        {"run", "all", "--cache", "/tmp/store", "--shard", "1/4",
         "--retry", "3", "--revalidate"},
        2);
    EXPECT_EQ(opts.cfg.sweep.cacheDir, "/tmp/store");
    EXPECT_EQ(opts.cfg.sweep.shardIndex, 1u);
    EXPECT_EQ(opts.cfg.sweep.shardCount, 4u);
    EXPECT_EQ(opts.cfg.sweep.retries, 3u);
    EXPECT_TRUE(opts.revalidate);
    EXPECT_FALSE(opts.noCache);
}

TEST(CliOptions, NoCacheBeatsCacheRegardlessOfOrder)
{
    const CliOptions opts = parseCommandOptions(
        command("run"),
        {"run", "all", "--no-cache", "--cache", "/tmp/store"}, 2);
    EXPECT_TRUE(opts.noCache);
    EXPECT_TRUE(opts.cfg.sweep.cacheDir.empty());
}

TEST(CliOptions, MergeCommandIsRegistered)
{
    const CommandSpec &merge = command("merge");
    EXPECT_EQ(merge.positionals, 2u);
    EXPECT_TRUE(merge.flags.empty());
}

TEST(CliOptionsDeath, ShardFormatErrorsAreFatal)
{
    for (const char *bad : {"2", "a/b", "/2", "1/", "3/2", "2/2",
                            "-1/2", "0/0", "0/5000"}) {
        EXPECT_EXIT(parseCommandOptions(
                        command("run"), {"run", "all", "--shard", bad}, 2),
                    ::testing::ExitedWithCode(1), "--shard")
            << bad;
    }
}

TEST(CliOptionsDeath, RetryOutOfRangeIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(command("run"),
                                    {"run", "all", "--retry", "17"}, 2),
                ::testing::ExitedWithCode(1), "--retry");
    EXPECT_EXIT(parseCommandOptions(command("run"),
                                    {"run", "all", "--retry", "x"}, 2),
                ::testing::ExitedWithCode(1), "--retry");
}

TEST(CliOptionsDeath, EmptyCacheDirIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(command("run"),
                                    {"run", "all", "--cache", ""}, 2),
                ::testing::ExitedWithCode(1), "--cache");
}

TEST(CliOptionsDeath, BenchRejectsRetry)
{
    // bench has no per-cell retry semantics; the declarative command
    // table must reject the flag rather than silently ignoring it.
    EXPECT_EXIT(parseCommandOptions(command("bench"),
                                    {"bench", "--retry", "2"}, 1),
                ::testing::ExitedWithCode(1), "does not accept --retry");
}

TEST(CliOptions, HelpRendererListsOnlyAcceptedFlags)
{
    std::ostringstream os;
    printCommandHelp(os, command("lint-config"));
    const std::string help = os.str();
    EXPECT_NE(help.find("--json"), std::string::npos);
    EXPECT_NE(help.find("--werror"), std::string::npos);
    EXPECT_EQ(help.find("--jobs"), std::string::npos);
    EXPECT_EQ(help.find("--digest"), std::string::npos);
}

TEST(CliOptions, UsagePageListsEveryCommand)
{
    std::ostringstream os;
    printUsage(os);
    const std::string usage = os.str();
    for (const CommandSpec &cmd : allCommands())
        EXPECT_NE(usage.find(std::string(cmd.name)), std::string::npos)
            << cmd.name;
}

} // namespace
} // namespace memento
