/**
 * @file
 * Unit and property tests for the physical buddy allocator.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "os/buddy_allocator.h"
#include "sim/rng.h"

namespace memento {
namespace {

constexpr Addr kBase = 1ull << 22;
constexpr std::uint64_t kSize = 16ull << 20; // 16 MiB = 4096 pages.

class BuddyTest : public ::testing::Test
{
  protected:
    StatRegistry stats;
    BuddyAllocator buddy{kBase, kSize, stats};
};

TEST_F(BuddyTest, AllocateReturnsAlignedBlocks)
{
    for (unsigned order = 0; order <= BuddyAllocator::kMaxOrder;
         ++order) {
        Addr block = buddy.allocate(order);
        ASSERT_NE(block, kNullAddr);
        EXPECT_EQ((block - kBase) % (kPageSize << order), 0u);
        buddy.free(block, order);
    }
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST_F(BuddyTest, PagesAreDistinct)
{
    std::vector<Addr> pages;
    for (int i = 0; i < 256; ++i)
        pages.push_back(buddy.allocatePage());
    std::sort(pages.begin(), pages.end());
    EXPECT_TRUE(std::adjacent_find(pages.begin(), pages.end()) ==
                pages.end());
    EXPECT_EQ(buddy.allocatedPages(), 256u);
}

TEST_F(BuddyTest, FreeCoalescesBackToFull)
{
    std::vector<Addr> pages;
    for (int i = 0; i < 1024; ++i)
        pages.push_back(buddy.allocatePage());
    for (Addr p : pages)
        buddy.freePage(p);
    EXPECT_EQ(buddy.allocatedPages(), 0u);
    EXPECT_TRUE(buddy.checkInvariants());
    // After full coalescing, a max-order block must be allocatable.
    Addr big = buddy.allocate(BuddyAllocator::kMaxOrder);
    EXPECT_NE(big, kNullAddr);
}

TEST_F(BuddyTest, ExhaustionReturnsNull)
{
    const std::uint64_t total = buddy.totalPages();
    std::vector<Addr> pages;
    for (std::uint64_t i = 0; i < total; ++i) {
        Addr p = buddy.allocatePage();
        ASSERT_NE(p, kNullAddr);
        pages.push_back(p);
    }
    EXPECT_EQ(buddy.allocatePage(), kNullAddr);
    EXPECT_EQ(buddy.freePages(), 0u);
    for (Addr p : pages)
        buddy.freePage(p);
    EXPECT_EQ(buddy.freePages(), total);
}

TEST_F(BuddyTest, PeakTracksHighWater)
{
    Addr a = buddy.allocatePage();
    Addr b = buddy.allocatePage();
    buddy.freePage(a);
    buddy.freePage(b);
    EXPECT_EQ(buddy.peakAllocatedPages(), 2u);
}

TEST_F(BuddyTest, MixedOrdersDoNotOverlap)
{
    std::map<Addr, std::uint64_t> live; // base -> bytes
    Rng rng(99);
    std::vector<std::pair<Addr, unsigned>> blocks;
    for (int i = 0; i < 300; ++i) {
        unsigned order = static_cast<unsigned>(rng.nextBelow(6));
        Addr block = buddy.allocate(order);
        if (block == kNullAddr)
            continue;
        const std::uint64_t bytes = kPageSize << order;
        // Check overlap against all live blocks.
        auto next = live.lower_bound(block);
        if (next != live.end()) {
            ASSERT_GE(next->first, block + bytes);
        }
        if (next != live.begin()) {
            auto prev = std::prev(next);
            ASSERT_LE(prev->first + prev->second, block);
        }
        live[block] = bytes;
        blocks.push_back({block, order});
        // Randomly free some.
        if (rng.nextBool(0.4) && !blocks.empty()) {
            auto pick = blocks.begin() + rng.nextBelow(blocks.size());
            buddy.free(pick->first, pick->second);
            live.erase(pick->first);
            blocks.erase(pick);
        }
    }
    for (auto &[block, order] : blocks)
        buddy.free(block, order);
    EXPECT_TRUE(buddy.checkInvariants());
    EXPECT_EQ(buddy.allocatedPages(), 0u);
}

/** Property sweep: random alloc/free traffic preserves the invariant
 *  free+live == total for several seeds. */
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuddyPropertyTest, RandomTrafficKeepsInvariants)
{
    StatRegistry stats;
    BuddyAllocator buddy(kBase, 8ull << 20, stats);
    Rng rng(GetParam());
    std::vector<std::pair<Addr, unsigned>> live;
    for (int i = 0; i < 2000; ++i) {
        if (live.empty() || rng.nextBool(0.55)) {
            unsigned order = static_cast<unsigned>(rng.nextBelow(4));
            Addr block = buddy.allocate(order);
            if (block != kNullAddr)
                live.push_back({block, order});
        } else {
            std::size_t pick = rng.nextBelow(live.size());
            buddy.free(live[pick].first, live[pick].second);
            live.erase(live.begin() + pick);
        }
    }
    EXPECT_TRUE(buddy.checkInvariants());
    for (auto &[block, order] : live)
        buddy.free(block, order);
    EXPECT_TRUE(buddy.checkInvariants());
    EXPECT_EQ(buddy.allocatedPages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace memento
