/**
 * @file
 * Self-benchmark harness tests.
 *
 * The bench contract: performance numbers (ops/s, percentiles, wall
 * seconds) are free to vary run to run, but everything simulated —
 * per-workload cycle counts and machine-state digests — must be
 * byte-identical at any --jobs level and across repeated invocations.
 * The JSON document must carry the versioned envelope.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "bench/bench_harness.h"

namespace memento {
namespace {

BenchOptions
smokeOptions(unsigned jobs)
{
    BenchOptions opts;
    opts.smoke = true;
    opts.repeats = 1;
    opts.jobs = jobs;
    return opts;
}

TEST(BenchHarness, SmokeSweepMeasuresEveryWorkload)
{
    const BenchReport report = runBench(smokeOptions(1));
    ASSERT_EQ(report.workloads.size(), 3u);
    for (const WorkloadBench &wb : report.workloads) {
        EXPECT_FALSE(wb.id.empty());
        EXPECT_GT(wb.traceOps, 0u);
        EXPECT_GT(wb.cycles, 0u);
        EXPECT_NE(wb.digest, 0u);
        EXPECT_GT(wb.opsPerSec, 0.0);
        EXPECT_GT(wb.p50OpNs, 0.0);
        EXPECT_GE(wb.p99OpNs, wb.p50OpNs);
    }
    EXPECT_GT(report.totalOps, 0u);
    EXPECT_GT(report.totalCycles, 0u);
    EXPECT_GT(report.jobs1WallSec, 0.0);
    EXPECT_GT(report.jobsNWallSec, 0.0);
}

TEST(BenchHarness, SimulatedResultsIdenticalAtAnyJobCount)
{
    // Perf numbers are excluded from the comparison by construction:
    // only ids, cycle counts, and digests are checked.
    const BenchReport a = runBench(smokeOptions(1));
    for (unsigned jobs : {2u, 8u}) {
        const BenchReport b = runBench(smokeOptions(jobs));
        ASSERT_EQ(a.workloads.size(), b.workloads.size());
        for (std::size_t i = 0; i < a.workloads.size(); ++i) {
            EXPECT_EQ(a.workloads[i].id, b.workloads[i].id);
            EXPECT_EQ(a.workloads[i].traceOps, b.workloads[i].traceOps);
            EXPECT_EQ(a.workloads[i].cycles, b.workloads[i].cycles)
                << a.workloads[i].id << " at jobs=" << jobs;
            EXPECT_EQ(a.workloads[i].digest, b.workloads[i].digest)
                << a.workloads[i].id << " at jobs=" << jobs;
        }
        EXPECT_EQ(a.totalCycles, b.totalCycles);
    }
}

TEST(BenchHarness, JsonDocumentCarriesVersionedEnvelope)
{
    BenchReport report;
    report.repeats = 3;
    report.smoke = true;
    report.jobsN = 4;
    WorkloadBench wb;
    wb.id = "aes";
    wb.traceOps = 100;
    wb.cycles = 2000;
    wb.digest = 0x1234;
    wb.opsPerSec = 1.5e6;
    wb.p50OpNs = 250.0;
    wb.p99OpNs = 900.0;
    report.workloads.push_back(wb);
    report.totalOps = 100;
    report.totalCycles = 2000;

    std::ostringstream os;
    writeBenchJson(os, report);
    const std::string doc = os.str();

    EXPECT_EQ(doc.rfind("{\n  \"schema_version\": 1,\n"
                        "  \"kind\": \"bench\",\n",
                        0),
              0u)
        << doc;
    EXPECT_NE(doc.find("\"git_sha\": "), std::string::npos);
    EXPECT_NE(doc.find("\"build_flags\": "), std::string::npos);
    EXPECT_NE(doc.find("\"workloads\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"id\": \"aes\""), std::string::npos);
    EXPECT_NE(doc.find("\"trace_ops\": 100"), std::string::npos);
    EXPECT_NE(doc.find("\"cycles\": 2000"), std::string::npos);
    EXPECT_NE(doc.find("\"digest\": \"0000000000001234\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ops_per_sec\": 1500000"), std::string::npos);
    EXPECT_NE(doc.find("\"totals\": {"), std::string::npos);
    EXPECT_EQ(doc.back(), '}');
}

} // namespace
} // namespace memento
