/**
 * @file
 * Integration tests for the Machine: translation path (TLBs, walks,
 * faults), Memento-region handling, Env semantics, process creation
 * and context switching, and the executor.
 */

#include <gtest/gtest.h>

#include "machine/function_executor.h"
#include "machine/machine.h"
#include "sim/error.h"
#include "test_util.h"
#include "wl/trace_generator.h"

namespace memento {
namespace {

WorkloadSpec
tinySpec(Language lang, std::uint64_t allocs = 500)
{
    WorkloadSpec spec;
    spec.id = "tiny";
    spec.lang = lang;
    spec.numAllocs = allocs;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 128}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 2048}});
    spec.lifetime = {.pShort = 0.8, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 50;
    spec.staticWsBytes = 64 << 10;
    spec.rpcBytes = 1024;
    spec.seed = 42;
    return spec;
}

TEST(MachineTest, ChargeInstructionsUsesBaseIpc)
{
    Machine m(test::smallConfig());
    m.appCompute(100);
    // IPC 2.0 -> 50 cycles.
    EXPECT_EQ(m.cycleLedger().total(), 50u);
    EXPECT_EQ(m.instructions(), 100u);
    EXPECT_EQ(m.cycleLedger().category(CycleCategory::AppCompute), 50u);
}

TEST(MachineTest, FirstTouchFaultsThenTlbHits)
{
    Machine m(test::smallConfig());
    m.createProcess(tinySpec(Language::Cpp));
    Addr heap = m.process().vm().mmap(4 * kPageSize, nullptr);

    const std::uint64_t faults_before = m.process().vm().faultCount();
    m.appAccess(heap, AccessType::Read);
    EXPECT_EQ(m.process().vm().faultCount(), faults_before + 1);

    // Second access: TLB hit, no new fault.
    m.appAccess(heap + 8, AccessType::Read);
    EXPECT_EQ(m.process().vm().faultCount(), faults_before + 1);
    EXPECT_GT(m.stats().value("l1tlb.hits"), 0u);
}

TEST(MachineTest, SegfaultRaisesTraceError)
{
    Machine m(test::smallConfig());
    m.createProcess(tinySpec(Language::Cpp));
    try {
        m.appAccess(0xDEAD'0000'0000ull, AccessType::Read);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Trace);
        EXPECT_NE(std::string(e.what()).find("segfault"),
                  std::string::npos);
    }
}

TEST(MachineTest, MementoRegionWalksBypassKernel)
{
    Machine m(test::smallMementoConfig());
    m.createProcess(tinySpec(Language::Python));
    Allocator &alloc = m.allocator();
    EXPECT_EQ(alloc.name(), "memento");

    Addr obj = alloc.malloc(64, m);
    const std::uint64_t faults_before = m.process().vm().faultCount();
    m.appAccess(obj, AccessType::Write);
    m.appAccess(obj, AccessType::Read);
    // The region access never reaches the OS fault handler.
    EXPECT_EQ(m.process().vm().faultCount(), faults_before);
    EXPECT_EQ(m.cycleLedger().category(CycleCategory::KernelFault), 0u);
}

TEST(MachineTest, MementoBodyPagesPopulateOnFirstTouch)
{
    MachineConfig cfg = test::smallMementoConfig();
    Machine m(cfg);
    m.createProcess(tinySpec(Language::Python));
    Allocator &alloc = m.allocator();

    // Class 63 arenas span multiple pages: allocate enough objects to
    // cross into a lazily-backed body page and touch one.
    Addr obj = kNullAddr;
    for (int i = 0; i < 16; ++i)
        obj = alloc.malloc(512, m);
    const std::uint64_t populates_before =
        m.stats().value("hwpage.walk_populates");
    m.appAccess(obj, AccessType::Write);
    EXPECT_GT(m.stats().value("hwpage.walk_populates"),
              populates_before);
}

TEST(MachineTest, BypassClassifiedOnRegionStores)
{
    Machine m(test::smallMementoConfig());
    m.createProcess(tinySpec(Language::Python));
    Addr obj = m.allocator().malloc(64, m);
    const std::uint64_t before = m.hierarchy().bypassedLines();
    m.appAccess(obj, AccessType::Write);
    EXPECT_GT(m.hierarchy().bypassedLines(), before);
}

TEST(MachineTest, AllocatorSelectionFollowsLanguage)
{
    for (auto [lang, name] :
         {std::pair{Language::Python, "pymalloc"},
          std::pair{Language::Cpp, "jemalloc"},
          std::pair{Language::Golang, "gomalloc"}}) {
        Machine m(test::smallConfig());
        m.createProcess(tinySpec(lang));
        EXPECT_EQ(m.allocator().name(), name);
    }
}

TEST(MachineTest, ContextSwitchFlushesHotAndTlbs)
{
    Machine m(test::smallMementoConfig());
    unsigned p0 = m.createProcess(tinySpec(Language::Python));
    unsigned p1 = m.createProcess(tinySpec(Language::Python));

    m.allocator().malloc(64, m); // Warms HOT entry for class 8.
    const Cycles before = m.cycleLedger().total();
    m.switchTo(p1);
    EXPECT_GT(m.cycleLedger().category(CycleCategory::ContextSwitch),
              0u);
    EXPECT_GT(m.cycleLedger().total(), before);
    EXPECT_EQ(m.stats().value("hot.flushes"), 1u);

    // The two processes have independent Memento spaces.
    Addr other = m.allocator().malloc(64, m);
    m.switchTo(p0);
    Addr mine = m.allocator().malloc(64, m);
    EXPECT_NE(other, kNullAddr);
    EXPECT_NE(mine, kNullAddr);
}

TEST(MachineTest, SwitchToSameProcessIsFree)
{
    Machine m(test::smallConfig());
    unsigned p0 = m.createProcess(tinySpec(Language::Cpp));
    const Cycles before = m.cycleLedger().total();
    m.switchTo(p0);
    EXPECT_EQ(m.cycleLedger().total(), before);
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

TEST(ExecutorTest, RunsTraceToCompletion)
{
    WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    Machine m(test::smallConfig());
    m.createProcess(spec);
    FunctionExecutor ex(m);
    ex.run(spec, trace);
    EXPECT_EQ(ex.liveObjects(), 0u);
    EXPECT_EQ(m.allocator().liveBytes(), 0u);
    EXPECT_GT(m.cycleLedger().total(), 0u);
}

TEST(ExecutorTest, RpcChargedWhenEnabled)
{
    WorkloadSpec spec = tinySpec(Language::Cpp, 10);
    const Trace trace = TraceGenerator(spec).generate();
    Machine m(test::smallConfig());
    m.createProcess(spec);
    FunctionExecutor ex(m);
    ex.run(spec, trace);
    EXPECT_GT(m.cycleLedger().category(CycleCategory::Rpc), 0u);

    Machine m2(test::smallConfig());
    m2.createProcess(spec);
    FunctionExecutor ex2(m2);
    RunOptions opts;
    opts.chargeRpc = false;
    ex2.run(spec, trace, opts);
    EXPECT_EQ(m2.cycleLedger().category(CycleCategory::Rpc), 0u);
}

TEST(ExecutorTest, ColdStartAddsContainerSetup)
{
    WorkloadSpec spec = tinySpec(Language::Cpp, 10);
    const Trace trace = TraceGenerator(spec).generate();

    Machine warm(test::smallConfig());
    warm.createProcess(spec);
    FunctionExecutor we(warm);
    we.run(spec, trace);

    Machine cold(test::smallConfig());
    cold.createProcess(spec);
    FunctionExecutor ce(cold);
    RunOptions opts;
    opts.coldStart = true;
    ce.run(spec, trace, opts);

    EXPECT_GT(cold.cycleLedger().total(), warm.cycleLedger().total());
    EXPECT_GT(cold.cycleLedger().category(CycleCategory::KernelOther),
              warm.cycleLedger().category(CycleCategory::KernelOther));
}

TEST(ExecutorTest, RunRangeInterleavesAcrossProcesses)
{
    WorkloadSpec spec = tinySpec(Language::Python, 200);
    const Trace trace = TraceGenerator(spec).generate();
    Machine m(test::smallMementoConfig());
    unsigned p0 = m.createProcess(spec);
    unsigned p1 = m.createProcess(spec);
    FunctionExecutor e0(m), e1(m);

    std::size_t half = trace.size() / 2;
    m.switchTo(p0);
    e0.runRange(spec, trace, 0, half);
    m.switchTo(p1);
    e1.runRange(spec, trace, 0, half);
    m.switchTo(p0);
    e0.runRange(spec, trace, half, trace.size());
    m.switchTo(p1);
    e1.runRange(spec, trace, half, trace.size());

    EXPECT_EQ(e0.liveObjects(), 0u);
    EXPECT_EQ(e1.liveObjects(), 0u);
}

TEST(ExecutorTest, FragSampleCapturedBeforeTeardown)
{
    WorkloadSpec spec = tinySpec(Language::Python);
    spec.lifetime.pShort = 0.5; // Leave some live objects at exit.
    const Trace trace = TraceGenerator(spec).generate();
    Machine m(test::smallConfig());
    m.createProcess(spec);
    FunctionExecutor ex(m);
    ex.run(spec, trace);
    EXPECT_GT(ex.fragSample(), 0.0);
    EXPECT_LT(ex.fragSample(), 1.0);
}

} // namespace
} // namespace memento
