/**
 * @file
 * Tests for the determinism & thread-safety source linter
 * (sa/source_lint.h, `memento_sim lint-src`).
 *
 * Four layers under test:
 *   1. The tests/sa_corpus/ regression corpus: every rule fires on its
 *      minimal true positive (bad.cc) and stays silent on the content-
 *      level near-miss (ok.cc), driven by one TEST_P over the catalog.
 *   2. Tokenizer discipline: trigger tokens inside string literals, raw
 *      strings, and comments must never produce findings, and inline
 *      `lint-src: allow(...)` comments suppress exactly their line.
 *   3. The full pipeline: lintSourcePaths() renders byte-identical
 *      reports at --jobs 1/2/4 (the same contract as `check all`).
 *   4. DiagPolicy edges on the new rules: --werror never promotes
 *      Note, --allow removes findings from every count, and the text
 *      and JSON renderings agree on error/warning/note totals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli/options.h"
#include "sa/diag.h"
#include "sa/source_lint.h"

#ifndef MEMENTO_TEST_CORPUS_DIR
#error "MEMENTO_TEST_CORPUS_DIR must point at tests/sa_corpus"
#endif

namespace memento {
namespace {

const std::string kCorpusDir = MEMENTO_TEST_CORPUS_DIR;

// Ad-hoc snippets lint under a subject path with no scope-exempt
// segments, so every rule is active — same as the corpus layout.
DiagReport
lintSnippet(std::string_view text, const std::string &subject = "snippet.cc")
{
    DiagReport report;
    lintSourceText(text, subject, report);
    return report;
}

std::size_t
countRule(const DiagReport &report, std::string_view rule)
{
    return static_cast<std::size_t>(
        std::count_if(report.diags().begin(), report.diags().end(),
                      [&](const Diag &d) { return d.ruleId == rule; }));
}

std::string
renderText(const DiagReport &report, const DiagPolicy &policy = {})
{
    std::ostringstream os;
    report.printText(os, policy);
    return os.str();
}

// ---------------------------------------------------------------------
// Corpus: one true positive + one near-miss per rule.
// ---------------------------------------------------------------------

// src-include-cycle is cross-file and has its own test below.
const char *const kPerFileRules[] = {
    "src-unordered-iteration",
    "src-pointer-key-order",
    "src-unseeded-random",
    "src-wallclock-in-sim",
    "src-naked-cout",
    "src-mutex-unannotated",
    "src-fatal-in-library",
    "src-float-accumulation-in-digest",
    "src-todo-without-issue",
};

class SourceLintCorpus : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SourceLintCorpus, BadSnippetFiresTheRule)
{
    const std::string rule = GetParam();
    const std::string path = kCorpusDir + "/" + rule + "/bad.cc";
    DiagReport report;
    lintSourceFile(path, path, report);
    EXPECT_GE(countRule(report, rule), 1u) << renderText(report);
}

TEST_P(SourceLintCorpus, NearMissStaysSilent)
{
    const std::string rule = GetParam();
    const std::string path = kCorpusDir + "/" + rule + "/ok.cc";
    DiagReport report;
    lintSourceFile(path, path, report);
    EXPECT_EQ(countRule(report, rule), 0u) << renderText(report);
}

INSTANTIATE_TEST_SUITE_P(Rules, SourceLintCorpus,
                         ::testing::ValuesIn(kPerFileRules),
                         [](const auto &info) {
                             std::string name = info.param;
                             std::replace(name.begin(), name.end(), '-',
                                          '_');
                             return name;
                         });

TEST(SourceLintCorpus, IncludeCycleFiresOnceAnchoredAtSmallestMember)
{
    DiagReport report;
    lintSourcePaths({kCorpusDir + "/src-include-cycle"}, 1, report);
    ASSERT_EQ(countRule(report, "src-include-cycle"), 1u)
        << renderText(report);
    const auto it = std::find_if(
        report.diags().begin(), report.diags().end(),
        [](const Diag &d) { return d.ruleId == "src-include-cycle"; });
    EXPECT_EQ(it->subject, "bad_a.h");
    // The acyclic ok_a.h -> ok_b.h chain must not contribute.
    EXPECT_EQ(renderText(report).find("ok_"), std::string::npos);
}

TEST(SourceLintCorpus, EverySrcRuleIsRegistered)
{
    for (const char *rule : kPerFileRules)
        EXPECT_NE(findDiagRule(rule), nullptr) << rule;
    EXPECT_NE(findDiagRule("src-include-cycle"), nullptr);
}

// ---------------------------------------------------------------------
// Tokenizer discipline: literals and comments are inert.
// ---------------------------------------------------------------------

TEST(SourceLintTokenizer, TriggerWordsInsideStringLiteralsAreInert)
{
    const DiagReport report = lintSnippet(
        "const char *kHelp =\n"
        "    \"rand() system_clock std::cout fatal() abort()\";\n");
    EXPECT_TRUE(report.empty()) << renderText(report);
}

TEST(SourceLintTokenizer, TriggerWordsInsideRawStringsAreInert)
{
    const DiagReport report = lintSnippet(
        "const char *kDoc = R\"(rand() is bad; so is std::cout and\n"
        "#include \"bad_b.h\" — none of this is code)\";\n");
    EXPECT_TRUE(report.empty()) << renderText(report);
}

TEST(SourceLintTokenizer, TriggerWordsInsideCommentsAreInert)
{
    const DiagReport report = lintSnippet(
        "// rand() and std::cout in a line comment\n"
        "/* system_clock in a block\n"
        "   comment spanning lines: abort() */\n"
        "int x = 0;\n");
    EXPECT_TRUE(report.empty()) << renderText(report);
}

TEST(SourceLintTokenizer, EscapedQuotesDoNotEndTheLiteral)
{
    const DiagReport report = lintSnippet(
        "const char *s = \"say \\\"rand()\\\" loudly\";\n");
    EXPECT_TRUE(report.empty()) << renderText(report);
}

TEST(SourceLintTokenizer, MemberCallsAndDeclarationsAreNotFreeCalls)
{
    // rng.rand() is a member call; `std::uint64_t rand()` declares a
    // method; only `return rand();` is a free-call expression.
    EXPECT_EQ(countRule(lintSnippet("void f(Rng &rng) { rng.rand(); }\n"),
                        "src-unseeded-random"),
              0u);
    EXPECT_EQ(countRule(lintSnippet("std::uint64_t rand();\n"),
                        "src-unseeded-random"),
              0u);
    EXPECT_EQ(countRule(lintSnippet("int f() { return rand(); }\n"),
                        "src-unseeded-random"),
              1u);
}

TEST(SourceLintTokenizer, InlineAllowSuppressesExactlyItsLine)
{
    const char *without = "void f() { std::cout << 1; }\n"
                          "void g() { std::cout << 2; }\n";
    const char *with =
        "void f() { std::cout << 1; } // lint-src: allow(src-naked-cout)\n"
        "void g() { std::cout << 2; }\n";
    EXPECT_EQ(countRule(lintSnippet(without), "src-naked-cout"), 2u);
    const DiagReport report = lintSnippet(with);
    ASSERT_EQ(countRule(report, "src-naked-cout"), 1u)
        << renderText(report);
    EXPECT_EQ(report.diags().front().location, 2u);
}

TEST(SourceLintTokenizer, UnorderedIterationNeedsAnUnorderedDecl)
{
    const char *unordered = "std::unordered_map<int, int> m;\n"
                            "void f() {\n"
                            "    for (const auto &kv : m)\n"
                            "        (void)kv;\n"
                            "}\n";
    const char *ordered = "std::map<int, int> m;\n"
                          "void f() {\n"
                          "    for (const auto &kv : m)\n"
                          "        (void)kv;\n"
                          "}\n";
    EXPECT_EQ(countRule(lintSnippet(unordered), "src-unordered-iteration"),
              1u);
    EXPECT_EQ(countRule(lintSnippet(ordered), "src-unordered-iteration"),
              0u);
}

// ---------------------------------------------------------------------
// Pipeline: byte-identical reports at any --jobs level.
// ---------------------------------------------------------------------

TEST(SourceLintPipeline, ReportIsByteIdenticalAcrossJobLevels)
{
    std::vector<std::string> renders;
    std::size_t files = 0;
    for (unsigned jobs : {1u, 2u, 4u}) {
        DiagReport report;
        const std::size_t n = lintSourcePaths({kCorpusDir}, jobs, report);
        if (files == 0)
            files = n;
        EXPECT_EQ(n, files) << "file count drifts with --jobs " << jobs;
        renders.push_back(renderText(report));
    }
    EXPECT_FALSE(renders[0].empty()); // The corpus is full of positives.
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

TEST(SourceLintPipeline, CollectSourceFilesIsSortedAndKeyed)
{
    const auto files =
        collectSourceFiles({kCorpusDir + "/src-include-cycle"});
    ASSERT_EQ(files.size(), 4u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    // Keys are relative to the argument root, how includes are spelled.
    EXPECT_EQ(files[0].second, "bad_a.h");
    EXPECT_EQ(files[3].second, "ok_b.h");
}

// ---------------------------------------------------------------------
// DiagPolicy edges on the new rules.
// ---------------------------------------------------------------------

TEST(SourceLintPolicy, WerrorPromotesWarningsButNeverNotes)
{
    // One warning (naked cout) + one note (untracked TODO).
    const DiagReport report =
        lintSnippet("void f() { std::cout << 1; }\n"
                    "// TODO: tighten this bound\n");
    ASSERT_EQ(report.warnings(), 1u);
    ASSERT_EQ(report.notes(), 1u);
    ASSERT_EQ(report.errors(), 0u);

    DiagPolicy werror;
    werror.werror = true;
    EXPECT_EQ(report.errors(werror), 1u);   // the warning, promoted
    EXPECT_EQ(report.warnings(werror), 0u);
    EXPECT_EQ(report.notes(werror), 1u);    // notes stay advisory
    EXPECT_FALSE(report.clean(werror));
}

TEST(SourceLintPolicy, NoteOnlyReportStaysCleanUnderWerror)
{
    const DiagReport report =
        lintSnippet("// FIXME: no issue reference here\nint x;\n");
    ASSERT_EQ(report.notes(), 1u);
    DiagPolicy werror;
    werror.werror = true;
    EXPECT_TRUE(report.clean(werror));
    EXPECT_NE(renderText(report, werror).find("note:"), std::string::npos);
}

TEST(SourceLintPolicy, AllowRemovesFindingsFromEveryRendering)
{
    const DiagReport report = lintSnippet("void f() { std::cout << 1; }\n");
    ASSERT_EQ(report.warnings(), 1u);
    DiagPolicy policy;
    policy.allowed.insert("src-naked-cout");
    EXPECT_EQ(report.warnings(policy), 0u);
    EXPECT_TRUE(renderText(report, policy).empty());
    std::ostringstream json;
    report.printJson(json, policy);
    EXPECT_EQ(json.str().find("src-naked-cout"), std::string::npos);
}

TEST(SourceLintPolicy, TextAndJsonAgreeOnCounts)
{
    // One of each severity: unseeded rand (error), naked cout
    // (warning), untracked TODO (note).
    const DiagReport report =
        lintSnippet("void f() { std::cout << 1; }\n"
                    "int g() { return rand(); }\n"
                    "// TODO: someday\n");
    ASSERT_EQ(report.errors(), 1u);
    ASSERT_EQ(report.warnings(), 1u);
    ASSERT_EQ(report.notes(), 1u);

    const std::string text = renderText(report);
    const auto countWord = [&](std::string_view needle) {
        std::size_t n = 0;
        for (std::size_t at = text.find(needle); at != std::string::npos;
             at = text.find(needle, at + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(countWord(" error: "), report.errors());
    EXPECT_EQ(countWord(" warning: "), report.warnings());
    EXPECT_EQ(countWord(" note: "), report.notes());

    std::ostringstream json;
    report.printJson(json, {});
    EXPECT_NE(json.str().find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"warnings\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"notes\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------
// CLI parsing: comma --allow lists and variadic paths.
// ---------------------------------------------------------------------

const CommandSpec &
command(std::string_view name)
{
    const CommandSpec *spec = findCommand(name);
    EXPECT_NE(spec, nullptr) << name;
    return *spec;
}

TEST(SourceLintCli, CommaSeparatedAllowListParses)
{
    const CliOptions opts = parseCommandOptions(
        command("lint-src"),
        {"lint-src", "src", "--allow",
         "src-naked-cout,src-todo-without-issue", "--allow",
         "src-unordered-iteration"},
        1);
    EXPECT_EQ(opts.diagPolicy.allowed.size(), 3u);
    EXPECT_TRUE(opts.diagPolicy.suppressed("src-naked-cout"));
    EXPECT_TRUE(opts.diagPolicy.suppressed("src-todo-without-issue"));
    EXPECT_TRUE(opts.diagPolicy.suppressed("src-unordered-iteration"));
}

TEST(SourceLintCli, VariadicPathsCollectInCliOrder)
{
    const CliOptions opts = parseCommandOptions(
        command("lint-src"),
        {"lint-src", "src/sa", "tools", "--jobs", "2", "--werror"}, 1);
    ASSERT_EQ(opts.paths.size(), 2u);
    EXPECT_EQ(opts.paths[0], "src/sa");
    EXPECT_EQ(opts.paths[1], "tools");
    EXPECT_EQ(opts.jobs, 2u);
    EXPECT_TRUE(opts.diagPolicy.werror);
}

TEST(SourceLintCli, RulesCommandIsRegistered)
{
    const CliOptions opts =
        parseCommandOptions(command("rules"), {"rules", "--json"}, 1);
    EXPECT_TRUE(opts.json);
}

using SourceLintCliDeath = ::testing::Test;

TEST(SourceLintCliDeath, UnknownRuleInCommaListIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(
                    command("lint-src"),
                    {"lint-src", "src", "--allow",
                     "src-naked-cout,src-bogus-rule"},
                    1),
                ::testing::ExitedWithCode(1), "unknown rule");
}

TEST(SourceLintCliDeath, EmptyAllowEntryIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(command("lint-src"),
                                    {"lint-src", "src", "--allow",
                                     "src-naked-cout,,src-wallclock-in-sim"},
                                    1),
                ::testing::ExitedWithCode(1), "--allow");
}

TEST(SourceLintCliDeath, BarePathOnNonVariadicCommandIsFatal)
{
    EXPECT_EXIT(parseCommandOptions(command("rules"),
                                    {"rules", "stray-arg"}, 1),
                ::testing::ExitedWithCode(1), "unknown option");
}

} // namespace
} // namespace memento
