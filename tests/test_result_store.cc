/**
 * @file
 * Unit tests for the content-addressed result store
 * (machine/result_store.h): exact round-trips, key sensitivity (and
 * the deliberate *in*sensitivity to sweep execution policy),
 * corruption quarantine, merge semantics, and the canonical-config
 * tripwire that keeps cache keys honest as MachineConfig grows.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "machine/result_store.h"
#include "sim/atomic_io.h"
#include "sim/config.h"
#include "sim/config_canon.h"
#include "sim/error.h"
#include "test_util.h"

namespace memento {
namespace {

namespace fs = std::filesystem;

/** A unique store directory per test, removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("memento-store-test-" + std::to_string(::getpid()) +
                  "-" + tag + "-" + std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }

    ~TempStoreDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

ResultStore
openStore(const TempStoreDir &dir)
{
    // Pin the code version so keys are stable within the test no
    // matter what state the enclosing git checkout is in.
    return ResultStore({.dir = dir.path(), .codeVersion = "test-sha"});
}

/** A RunResult with every field distinct and non-trivial. */
RunResult
richResult()
{
    RunResult r;
    r.workload = "aes";
    r.cycles = 0x1234'5678'9abc'def0ull;
    for (std::size_t i = 0; i < r.byCategory.size(); ++i)
        r.byCategory[i] = 1000 + i;
    r.instructions = 11;
    r.dramBytes = 12;
    r.dramReads = 13;
    r.dramWrites = 14;
    r.bypassedLines = 15;
    r.aggUserPages = 16;
    r.aggKernelPages = 17;
    r.peakResidentPages = 18;
    r.pageFaults = 19;
    r.mmapCalls = 20;
    r.poolRefills = 21;
    r.hotAllocHits = 22;
    r.hotAllocMisses = 23;
    r.hotFreeHits = 24;
    r.hotFreeMisses = 25;
    r.allocListOps = 26;
    r.freeListOps = 27;
    r.objAllocs = 28;
    r.objFrees = 29;
    r.hotValidEntries = 30;
    // A fraction that does not round-trip through short decimal: the
    // store must preserve the exact bit pattern.
    r.fragInactiveFraction = 0.1 + 0.2;
    r.digest = 0xfeed'beef'cafe'f00dull;
    return r;
}

TEST(ResultStore, RunCellRoundTripsExactly)
{
    TempStoreDir dir("roundtrip");
    ResultStore store = openStore(dir);

    const RunResult want = richResult();
    const CellKey key = store.runCellKey("aes", test::smallConfig(),
                                         RunOptions{});
    store.storeRun(key, want, 3);

    RunResult got;
    unsigned attempts = 0;
    ASSERT_TRUE(store.loadRun(key, got, attempts));
    EXPECT_TRUE(got == want);
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.fragInactiveFraction),
              std::bit_cast<std::uint64_t>(want.fragInactiveFraction));

    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ResultStore, CachedFailureIsFirstClass)
{
    TempStoreDir dir("failure");
    ResultStore store = openStore(dir);

    RunResult want = richResult();
    want.error = RunError{ErrorCategory::Trace,
                          "corrupt record at op 120", 120};
    const CellKey key = store.runCellKey("bfs", test::smallConfig(),
                                         RunOptions{});
    store.storeRun(key, want, 4);

    RunResult got;
    unsigned attempts = 0;
    ASSERT_TRUE(store.loadRun(key, got, attempts));
    ASSERT_TRUE(got.failed());
    EXPECT_EQ(got.error->category, ErrorCategory::Trace);
    EXPECT_EQ(got.error->message, "corrupt record at op 120");
    EXPECT_EQ(got.error->opIndex, 120u);
    EXPECT_EQ(attempts, 4u);
    EXPECT_TRUE(got == want);
}

TEST(ResultStore, MissingCellIsAMiss)
{
    TempStoreDir dir("miss");
    ResultStore store = openStore(dir);

    RunResult got;
    unsigned attempts = 0;
    EXPECT_FALSE(store.loadRun(CellKey{42}, got, attempts));
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(ResultStore, KeysSeparateEverythingThatChangesResults)
{
    TempStoreDir dir("keys");
    ResultStore store = openStore(dir);

    const MachineConfig cfg = test::smallConfig();
    const RunOptions ro;
    const CellKey base = store.runCellKey("aes", cfg, ro);

    // Workload.
    EXPECT_FALSE(base == store.runCellKey("bfs", cfg, ro));

    // Any result-affecting config field.
    MachineConfig bigger_l1 = cfg;
    bigger_l1.l1d.sizeBytes *= 2;
    EXPECT_FALSE(base == store.runCellKey("aes", bigger_l1, ro));
    MachineConfig memento_on = cfg;
    memento_on.memento.enabled = true;
    EXPECT_FALSE(base == store.runCellKey("aes", memento_on, ro));
    MachineConfig faulted = cfg;
    faulted.inject.traceCorruptAt = 7;
    EXPECT_FALSE(base == store.runCellKey("aes", faulted, ro));

    // Run options.
    RunOptions cold = ro;
    cold.coldStart = true;
    EXPECT_FALSE(base == store.runCellKey("aes", cfg, cold));
    RunOptions digest = ro;
    digest.computeDigest = true;
    EXPECT_FALSE(base == store.runCellKey("aes", cfg, digest));

    // Salt (the --digest second run).
    EXPECT_FALSE(base == store.runCellKey("aes", cfg, ro, "digest-rerun"));

    // Code version.
    ResultStore other({.dir = dir.path(), .codeVersion = "other-sha"});
    EXPECT_FALSE(base == other.runCellKey("aes", cfg, ro));
}

TEST(ResultStore, SweepPolicyAndStoreFaultsDoNotChangeKeys)
{
    TempStoreDir dir("policy");
    ResultStore store = openStore(dir);

    const MachineConfig cfg = test::smallConfig();
    const CellKey base = store.runCellKey("aes", cfg, RunOptions{});

    // The whole point of the store: a resumed, re-sharded, retried, or
    // crash-injected sweep must hit the cells its predecessor wrote.
    MachineConfig policy = cfg;
    policy.sweep.cacheDir = "/somewhere/else";
    policy.sweep.shardIndex = 1;
    policy.sweep.shardCount = 4;
    policy.sweep.retries = 9;
    policy.sweep.keepGoing = true;
    policy.inject.storeTornWriteAt = 3;
    policy.inject.storeKillAt = 5;
    EXPECT_EQ(canonicalConfigText(cfg), canonicalConfigText(policy));
    EXPECT_TRUE(base == store.runCellKey("aes", policy, RunOptions{}));
}

TEST(ResultStore, DerivedKeysSeparateParts)
{
    TempStoreDir dir("derived");
    ResultStore store = openStore(dir);

    const CellKey a = store.derivedKey({"bench-workload", "aes", "3"});
    EXPECT_FALSE(a == store.derivedKey({"bench-workload", "aes", "4"}));
    EXPECT_FALSE(a == store.derivedKey({"bench-workload", "bfs", "3"}));
    // Length-prefixed parts: ("ab","c") must not alias ("a","bc").
    EXPECT_FALSE(store.derivedKey({"ab", "c"}) ==
                 store.derivedKey({"a", "bc"}));
}

// ---- Corruption handling --------------------------------------------

/** Store one cell and return its on-disk path. */
std::string
storeOneCell(ResultStore &store, CellKey &key)
{
    key = store.runCellKey("aes", test::smallConfig(), RunOptions{});
    store.storeRun(key, richResult(), 1);
    return store.dir() + "/" + key.hex() + ".cell";
}

void
expectQuarantinedMiss(ResultStore &store, const CellKey &key)
{
    RunResult got;
    unsigned attempts = 0;
    EXPECT_FALSE(store.loadRun(key, got, attempts));
    EXPECT_EQ(store.stats().quarantined, 1u);
    // The damaged record moved aside; the slot is free for recompute.
    EXPECT_FALSE(fs::exists(store.dir() + "/" + key.hex() + ".cell"));
    EXPECT_TRUE(fs::exists(store.dir() + "/" + key.hex() + ".quarantined"));

    // Recompute + store + load works again.
    store.storeRun(key, richResult(), 2);
    EXPECT_TRUE(store.loadRun(key, got, attempts));
    EXPECT_EQ(attempts, 2u);
}

TEST(ResultStore, BitFlipIsQuarantinedNotFatal)
{
    TempStoreDir dir("bitflip");
    ResultStore store = openStore(dir);
    CellKey key;
    const std::string path = storeOneCell(store, key);

    std::string record;
    ASSERT_TRUE(readFile(path, record));
    record[record.size() / 2] ^= 0x40; // Flip one payload bit.
    std::ofstream(path, std::ios::binary | std::ios::trunc) << record;

    expectQuarantinedMiss(store, key);
}

TEST(ResultStore, TruncatedRecordIsQuarantined)
{
    TempStoreDir dir("trunc");
    ResultStore store = openStore(dir);
    CellKey key;
    const std::string path = storeOneCell(store, key);

    std::string record;
    ASSERT_TRUE(readFile(path, record));
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << record.substr(0, record.size() / 2);

    expectQuarantinedMiss(store, key);
}

TEST(ResultStore, GarbageHeaderIsQuarantined)
{
    TempStoreDir dir("garbage");
    ResultStore store = openStore(dir);
    CellKey key;
    const std::string path = storeOneCell(store, key);

    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << "this is not a result cell\nat all";

    expectQuarantinedMiss(store, key);
}

TEST(ResultStore, WrongCellKindIsDamage)
{
    TempStoreDir dir("kind");
    ResultStore store = openStore(dir);

    const CellKey key = store.derivedKey({"some", "cell"});
    store.storeCell(key, "bench", "{\"id\": \"aes\"}");

    // Asking for the same key under a different kind must not return
    // the bench payload as a run payload.
    std::string payload;
    EXPECT_FALSE(store.loadCell(key, "run", payload));
    EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST(ResultStore, UnparseableRunPayloadIsQuarantined)
{
    TempStoreDir dir("payload");
    ResultStore store = openStore(dir);

    // A structurally valid cell (header + checksum OK) whose payload
    // is not a RunResult: loadCell succeeds, loadRun must quarantine.
    const CellKey key = store.runCellKey("aes", test::smallConfig(),
                                         RunOptions{});
    store.storeCell(key, "run", "{\"workload\": \"aes\"}");

    RunResult got;
    unsigned attempts = 0;
    EXPECT_FALSE(store.loadRun(key, got, attempts));
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultStore, NoTemporaryFilesLeftBehind)
{
    TempStoreDir dir("tmpfiles");
    ResultStore store = openStore(dir);

    for (int i = 0; i < 8; ++i) {
        RunResult r = richResult();
        r.cycles = i;
        store.storeRun(store.derivedKey({"cell", std::to_string(i)}), r,
                       1);
    }

    std::size_t cells = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir.path())) {
        EXPECT_EQ(e.path().extension(), ".cell")
            << "unexpected file in store: " << e.path();
        ++cells;
    }
    EXPECT_EQ(cells, 8u);
    EXPECT_EQ(store.listCellFiles().size(), 8u);
}

// ---- Merge -----------------------------------------------------------

TEST(ResultStore, MergeIsAValidatedUnion)
{
    TempStoreDir dst_dir("merge-dst");
    TempStoreDir src_dir("merge-src");
    ResultStore dst = openStore(dst_dir);
    ResultStore src = openStore(src_dir);

    // dst holds cells {A}; src holds {A, B, C} with C corrupted.
    const CellKey a = dst.derivedKey({"cell", "a"});
    const CellKey b = dst.derivedKey({"cell", "b"});
    const CellKey c = dst.derivedKey({"cell", "c"});
    RunResult r = richResult();
    dst.storeRun(a, r, 1);
    src.storeRun(a, r, 1);
    r.cycles = 2;
    src.storeRun(b, r, 1);
    r.cycles = 3;
    src.storeRun(c, r, 1);
    std::ofstream(src_dir.path() + "/" + c.hex() + ".cell",
                  std::ios::binary | std::ios::trunc)
        << "torn";

    const MergeStats stats = dst.mergeFrom(src_dir.path());
    EXPECT_EQ(stats.merged, 1u);     // B.
    EXPECT_EQ(stats.duplicates, 1u); // A.
    EXPECT_EQ(stats.corrupt, 1u);    // C.

    RunResult got;
    unsigned attempts = 0;
    EXPECT_TRUE(dst.loadRun(a, got, attempts));
    EXPECT_TRUE(dst.loadRun(b, got, attempts));
    EXPECT_EQ(got.cycles, 2u);
    EXPECT_FALSE(dst.loadRun(c, got, attempts));
}

TEST(ResultStore, MergeRepairsACorruptDestinationRecord)
{
    TempStoreDir dst_dir("repair-dst");
    TempStoreDir src_dir("repair-src");
    ResultStore dst = openStore(dst_dir);
    ResultStore src = openStore(src_dir);

    const CellKey key = dst.derivedKey({"cell", "x"});
    src.storeRun(key, richResult(), 1);
    std::ofstream(dst_dir.path() + "/" + key.hex() + ".cell",
                  std::ios::binary | std::ios::trunc)
        << "damaged";

    const MergeStats stats = dst.mergeFrom(src_dir.path());
    EXPECT_EQ(stats.merged, 1u);
    EXPECT_EQ(stats.duplicates, 0u);

    RunResult got;
    unsigned attempts = 0;
    EXPECT_TRUE(dst.loadRun(key, got, attempts));
}

TEST(ResultStore, MergeOfMissingDirectoryThrowsConfigError)
{
    TempStoreDir dir("merge-bad");
    ResultStore store = openStore(dir);
    try {
        store.mergeFrom(dir.path() + "/definitely-not-here");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

// ---- Revalidation ----------------------------------------------------

TEST(ResultStore, RevalidateSampleIsDeterministicInTheKey)
{
    TempStoreDir dir("sample");
    ResultStore store = openStore(dir);

    EXPECT_FALSE(store.inRevalidateSample(CellKey{12}, 0));
    EXPECT_TRUE(store.inRevalidateSample(CellKey{12}, 1));
    EXPECT_TRUE(store.inRevalidateSample(CellKey{12}, 4));
    EXPECT_FALSE(store.inRevalidateSample(CellKey{13}, 4));
    // Stable across store instances (it is pure in the key).
    ResultStore other({.dir = dir.path(), .codeVersion = "test-sha"});
    EXPECT_EQ(store.inRevalidateSample(CellKey{12}, 4),
              other.inRevalidateSample(CellKey{12}, 4));
}

// ---- The canonical-config tripwire ----------------------------------

/**
 * If this assertion fires, a field was added to (or removed from)
 * MachineConfig. Decide whether it changes run results:
 *
 *  - result-affecting  -> serialize it in canonicalConfigText()
 *  - execution policy  -> leave it out, like sweep.* / inject.store_*
 *
 * and then update the expected size here. Skipping this check silently
 * aliases cache cells across configs that compute different results.
 */
TEST(CanonCoversConfig, SizeofTripwire)
{
    EXPECT_EQ(sizeof(MachineConfig), 712u)
        << "MachineConfig changed: audit canonicalConfigText() before "
           "bumping this constant (see the comment above this test)";
}

TEST(CanonCoversConfig, EveryResultAffectingSectionIsSerialized)
{
    // Spot-check one field per config section: flipping it must change
    // the canonical text (complete-over-results, per config_canon.h).
    const MachineConfig base = test::smallConfig();
    const std::string canon = canonicalConfigText(base);

    auto changed = [&](auto mutate) {
        MachineConfig cfg = base;
        mutate(cfg);
        return canonicalConfigText(cfg) != canon;
    };

    EXPECT_TRUE(changed([](MachineConfig &c) { c.core.issueWidth++; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.l1d.sizeBytes *= 2; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.l1Tlb.entries *= 2; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.dram.banks++; }));
    EXPECT_TRUE(
        changed([](MachineConfig &c) { c.kernel.mmapInstructions++; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.memento.enabled = true; }));
    EXPECT_TRUE(
        changed([](MachineConfig &c) { c.tuning.pymallocArenaBytes *= 2; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.layout.heapBase += 4096; }));
    EXPECT_TRUE(changed([](MachineConfig &c) { c.check.maxOps = 99; }));
    EXPECT_TRUE(
        changed([](MachineConfig &c) { c.inject.traceCorruptAt = 99; }));
}

} // namespace
} // namespace memento
