/**
 * @file
 * End-to-end experiment invariants: the paired baseline/Memento runs
 * must agree on the work performed, and the paper's headline effects
 * must hold directionally even at tiny scale.
 */

#include <gtest/gtest.h>

#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "wl/trace_generator.h"

namespace memento {
namespace {

WorkloadSpec
smallWorkload(Language lang)
{
    WorkloadSpec spec;
    spec.id = "e2e";
    spec.lang = lang;
    spec.numAllocs = 4000;
    spec.sizeDist = SizeDistribution(
        {SizeBucket{0.7, 16, 128}, SizeBucket{0.3, 129, 512}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 4096}});
    spec.lifetime = {.pShort = lang == Language::Golang ? 0.0 : 0.8,
                     .meanShortDistance = 4.0,
                     .pLongFreed = 0.0,
                     .meanLongDistance = 100.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 120;
    spec.staticWsBytes = 256 << 10;
    spec.rpcBytes = 2048;
    spec.seed = 77;
    return spec;
}

class ExperimentTest : public ::testing::TestWithParam<Language>
{
};

TEST_P(ExperimentTest, MementoWinsAndReducesKernelWork)
{
    Comparison cmp = Experiment::compareDefault(smallWorkload(GetParam()));

    // Memento must be faster on allocation-heavy work.
    EXPECT_GT(cmp.speedup(), 1.0);
    // The kernel memory-management cycles must collapse.
    EXPECT_LT(cmp.memento.kernelMmCycles(), cmp.base.kernelMmCycles());
    // Memento replaces userspace allocator work with hardware work.
    EXPECT_LT(cmp.memento.userMmCycles(), cmp.base.userMmCycles());
    EXPECT_GT(cmp.memento.hwMmCycles(), 0u);
    EXPECT_EQ(cmp.base.hwMmCycles(), 0u);
    // Fewer page faults on the Memento machine.
    EXPECT_LE(cmp.memento.pageFaults, cmp.base.pageFaults);
}

TEST_P(ExperimentTest, PairedRunsDoTheSameApplicationWork)
{
    const WorkloadSpec spec = smallWorkload(GetParam());
    Comparison cmp = Experiment::compareDefault(spec);
    // Identical traces: identical application compute cycles.
    EXPECT_EQ(cmp.base.category(CycleCategory::AppCompute),
              cmp.memento.category(CycleCategory::AppCompute));
    EXPECT_EQ(cmp.base.category(CycleCategory::Rpc),
              cmp.memento.category(CycleCategory::Rpc));
    // Same number of small allocations performed.
    EXPECT_EQ(cmp.base.objAllocs, cmp.memento.objAllocs);
}

TEST_P(ExperimentTest, BypassSavesTrafficNotCorrectness)
{
    Comparison cmp = Experiment::compareDefault(smallWorkload(GetParam()));
    EXPECT_GT(cmp.memento.bypassedLines, 0u);
    EXPECT_EQ(cmp.mementoNoBypass.bypassedLines, 0u);
    EXPECT_LE(cmp.memento.dramBytes, cmp.mementoNoBypass.dramBytes);
}

TEST_P(ExperimentTest, BreakdownSharesAreNormalized)
{
    Comparison cmp = Experiment::compareDefault(smallWorkload(GetParam()));
    Breakdown bd = computeBreakdown(cmp);
    const double sum =
        bd.objAlloc + bd.objFree + bd.pageMgmt + bd.bypass;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(bd.objAlloc, 0.0);
    EXPECT_GE(bd.objFree, 0.0);
    EXPECT_GE(bd.pageMgmt, 0.0);
    EXPECT_GE(bd.bypass, 0.0);
    EXPECT_GT(bd.savedCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Languages, ExperimentTest,
                         ::testing::Values(Language::Python,
                                           Language::Cpp,
                                           Language::Golang));

TEST(ExperimentInvariants, DramBytesAreLineGranular)
{
    Comparison cmp =
        Experiment::compareDefault(smallWorkload(Language::Python));
    for (const RunResult *r :
         {&cmp.base, &cmp.memento, &cmp.mementoNoBypass}) {
        EXPECT_EQ(r->dramBytes % kLineSize, 0u);
        EXPECT_EQ(r->dramBytes,
                  (r->dramReads + r->dramWrites) * kLineSize);
    }
}

TEST(ExperimentInvariants, HotHitRateIsHighOnChurn)
{
    Comparison cmp =
        Experiment::compareDefault(smallWorkload(Language::Cpp));
    const double alloc_rate =
        static_cast<double>(cmp.memento.hotAllocHits) /
        (cmp.memento.hotAllocHits + cmp.memento.hotAllocMisses);
    EXPECT_GT(alloc_rate, 0.97);
}

TEST(ExperimentInvariants, MallaccModeUsesSoftwarePaths)
{
    MachineConfig mallacc = mementoConfig();
    mallacc.memento.mallaccMode = true;
    const WorkloadSpec spec = smallWorkload(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    RunResult res = Experiment::runOne(spec, trace, mallacc);
    // No HOT activity: Mallacc is a software allocator accelerator.
    EXPECT_EQ(res.hotAllocHits + res.hotAllocMisses, 0u);
    EXPECT_EQ(res.hwMmCycles(), 0u);
}

TEST(ExperimentInvariants, ColdStartSlowerThanWarm)
{
    const WorkloadSpec spec = smallWorkload(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    RunResult warm = Experiment::runOne(spec, trace, defaultConfig());
    RunOptions cold_opts;
    cold_opts.coldStart = true;
    RunResult cold =
        Experiment::runOne(spec, trace, defaultConfig(), cold_opts);
    EXPECT_GT(cold.cycles, warm.cycles);
}

TEST(ExperimentInvariants, IdenticalConfigsGiveIdenticalResults)
{
    const WorkloadSpec spec = smallWorkload(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    RunResult a = Experiment::runOne(spec, trace, defaultConfig());
    RunResult b = Experiment::runOne(spec, trace, defaultConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.pageFaults, b.pageFaults);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(ExperimentInvariants, MapPopulateRaisesFootprintLowersFaults)
{
    const WorkloadSpec spec = smallWorkload(Language::Golang);
    const Trace trace = TraceGenerator(spec).generate();
    RunResult lazy = Experiment::runOne(spec, trace, defaultConfig());
    MachineConfig pop = defaultConfig();
    pop.kernel.mapPopulate = true;
    RunResult eager = Experiment::runOne(spec, trace, pop);
    EXPECT_LT(eager.pageFaults, lazy.pageFaults);
    EXPECT_GT(eager.peakResidentPages, lazy.peakResidentPages);
}

} // namespace
} // namespace memento
