/**
 * @file
 * Golden-schema tests for the shared JSON serializer (sim/json.h).
 *
 * Every --json surface of the simulator renders through JsonWriter, so
 * these tests pin the exact byte-level shape of the output: envelope,
 * indentation, number formatting, and escaping. A change that breaks a
 * golden string here is a schema change and must bump
 * kJsonSchemaVersion.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/json.h"

namespace memento {
namespace {

TEST(JsonWriter, GoldenDocumentShape)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "bench");
    w.member("count", std::uint64_t{42});
    w.member("ratio", 0.5);
    w.member("on", true);
    w.key("items").beginArray();
    w.value("a");
    w.beginObject();
    w.member("id", "b");
    w.endObject();
    w.endArray();
    w.key("empty").beginArray().endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());

    const std::string expected = "{\n"
                                 "  \"schema_version\": 1,\n"
                                 "  \"kind\": \"bench\",\n"
                                 "  \"count\": 42,\n"
                                 "  \"ratio\": 0.5,\n"
                                 "  \"on\": true,\n"
                                 "  \"items\": [\n"
                                 "    \"a\",\n"
                                 "    {\n"
                                 "      \"id\": \"b\"\n"
                                 "    }\n"
                                 "  ],\n"
                                 "  \"empty\": []\n"
                                 "}";
    EXPECT_EQ(os.str(), expected);
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("s", "quote\" slash\\ newline\n tab\t bell\x07");
    w.endObject();
    EXPECT_NE(os.str().find("quote\\\" slash\\\\ newline\\n tab\\t "
                            "bell\\u0007"),
              std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("nan", std::nan(""));
    w.member("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_NE(os.str().find("\"nan\": null"), std::string::npos);
    EXPECT_NE(os.str().find("\"inf\": null"), std::string::npos);
}

TEST(JsonWriter, IncompleteUntilEveryFrameClosed)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("a").beginArray();
    EXPECT_FALSE(w.complete());
    w.endArray();
    EXPECT_FALSE(w.complete());
    w.endObject();
    EXPECT_TRUE(w.complete());
}

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world_42"), "hello world_42");
}

} // namespace
} // namespace memento
