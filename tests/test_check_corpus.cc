/**
 * @file
 * Corpus sweep for the static trace checker: every trace the project
 * can synthesize — the 23 built-in paper workloads and the 200 seeded
 * fuzz specs — must pass `check` with zero findings, under both the
 * default policy and the exact policy `check` derives from the
 * default machine configuration. This is the "no false positives"
 * contract that lets CI run `check all --werror`.
 *
 * The built-in sweep also replays through parallelFor at two worker
 * counts and asserts the merged, rendered report is byte-identical —
 * the determinism property the CLI's `check all --jobs N` relies on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "machine/sweep.h"
#include "sa/diag.h"
#include "sa/trace_check.h"
#include "test_util.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

constexpr int kShards = 8;
constexpr int kSeedsPerShard = 25; // Mirrors the trace fuzzer's corpus.

std::string
renderText(const DiagReport &report)
{
    std::ostringstream os;
    report.printText(os);
    return os.str();
}

TEST(CheckCorpus, AllBuiltinWorkloadsCheckClean)
{
    const TraceCheckPolicy policy =
        TraceCheckPolicy::fromConfig(defaultConfig());
    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = TraceGenerator(spec).generate();
        DiagReport report;
        checkTrace(trace, policy, spec.id, report);
        EXPECT_TRUE(report.empty())
            << spec.id << ":\n" << renderText(report);
    }
}

class CheckFuzzCorpus : public ::testing::TestWithParam<int>
{
};

TEST_P(CheckFuzzCorpus, FuzzTracesCheckClean)
{
    const int shard = GetParam();
    const TraceCheckPolicy policy; // Paper defaults.
    for (int s = 0; s < kSeedsPerShard; ++s) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(shard) * kSeedsPerShard + s;
        const WorkloadSpec spec = test::randomSpec(seed);
        const Trace trace = TraceGenerator(spec).generate();
        DiagReport report;
        checkTrace(trace, policy, spec.id, report);
        EXPECT_TRUE(report.empty())
            << spec.id << ":\n" << renderText(report);
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, CheckFuzzCorpus,
                         ::testing::Range(0, kShards));

/** The `check all` recipe at a given worker count, rendered. */
std::string
renderSweep(const std::vector<WorkloadSpec> &specs, unsigned jobs)
{
    const TraceCheckPolicy policy =
        TraceCheckPolicy::fromConfig(defaultConfig());
    std::vector<DiagReport> slots(specs.size());
    parallelFor(specs.size(), jobs, [&](std::size_t i) {
        // Poison one workload so the merged report is non-trivial and
        // ordering actually matters.
        Trace trace = TraceGenerator(specs[i]).generate();
        if (i % 5 == 0 && !trace.empty())
            trace.pop_back(); // Drop FunctionEnd: truncation + leak.
        checkTrace(trace, policy, specs[i].id, slots[i]);
    });
    DiagReport merged;
    for (const DiagReport &slot : slots)
        merged.append(slot);
    std::ostringstream os;
    merged.printText(os);
    os << merged.errors() << " error(s), " << merged.warnings()
       << " warning(s)\n";
    return os.str();
}

TEST(CheckCorpus, ParallelSweepIsByteIdenticalAtAnyJobsLevel)
{
    const std::vector<WorkloadSpec> specs = allWorkloads();
    const std::string serial = renderSweep(specs, 1);
    EXPECT_FALSE(serial.empty());
    // The poisoned workloads must actually report, or the test proves
    // nothing about merge ordering.
    EXPECT_NE(serial.find("trace-truncated"), std::string::npos);
    EXPECT_EQ(serial, renderSweep(specs, 2));
    EXPECT_EQ(serial, renderSweep(specs, 4));
    EXPECT_EQ(serial, renderSweep(specs, 16));
}

} // namespace
} // namespace memento
