/**
 * @file
 * Property sweep over all 23 paper workloads: each generated trace
 * must satisfy the structural invariants the paper's characterization
 * depends on (§2.2), and each must execute to completion on both
 * machines.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "an/lifetime.h"
#include "machine/experiment.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

class WorkloadPropertyTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadSpec &spec() const { return workloadById(GetParam()); }
};

TEST_P(WorkloadPropertyTest, TraceIsWellFormed)
{
    const Trace trace = TraceGenerator(spec()).generate();
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.back().kind, OpKind::FunctionEnd);

    std::unordered_map<std::uint64_t, std::uint64_t> live; // id -> size
    std::unordered_set<std::uint64_t> ever;
    for (const TraceOp &op : trace) {
        switch (op.kind) {
          case OpKind::Malloc:
            ASSERT_GE(op.value, 1u);
            ASSERT_TRUE(ever.insert(op.objId).second);
            live[op.objId] = op.value;
            break;
          case OpKind::Free:
            ASSERT_EQ(live.erase(op.objId), 1u);
            break;
          case OpKind::Load:
          case OpKind::Store: {
            auto it = live.find(op.objId);
            ASSERT_NE(it, live.end());
            ASSERT_LT(op.offset, it->second);
            break;
          }
          case OpKind::StaticLoad:
          case OpKind::StaticStore:
            ASSERT_LT(op.offset % spec().staticWsBytes,
                      spec().staticWsBytes);
            break;
          default:
            break;
        }
    }
}

TEST_P(WorkloadPropertyTest, SmallAllocationsDominate)
{
    // Fig. 2's premise: the overwhelming share of allocations is small.
    const Trace trace = TraceGenerator(spec()).generate();
    const TraceProfile profile = profileTrace(trace);
    EXPECT_GT(profile.sizeHist.percent(0), 88.0)
        << spec().id << " has too many large allocations";
}

TEST_P(WorkloadPropertyTest, LifetimeMatchesLanguageStory)
{
    const Trace trace = TraceGenerator(spec()).generate();
    const TraceProfile profile = profileTrace(trace);
    const double short_pct = profile.lifetimeHist.percent(0);
    if (spec().domain == Domain::Function &&
        spec().lang == Language::Golang) {
        // Go functions: GC never runs, everything batch-freed at exit.
        EXPECT_LT(short_pct, 5.0) << spec().id;
    } else if (spec().lang == Language::Cpp &&
               spec().domain != Domain::Platform) {
        // C++ (functions and data processing): mostly short-lived.
        EXPECT_GT(short_pct, 55.0) << spec().id;
    } else if (spec().domain == Domain::Platform) {
        // Platform ops: long-lived until GC.
        EXPECT_LT(short_pct, 15.0) << spec().id;
    } else {
        // Python: primarily short-lived with a long tail.
        EXPECT_GT(short_pct, 45.0) << spec().id;
    }
}

TEST_P(WorkloadPropertyTest, DeterministicTraceGeneration)
{
    const Trace a = TraceGenerator(spec()).generate();
    const Trace b = TraceGenerator(spec()).generate();
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b);
}

std::vector<std::string>
allIds()
{
    std::vector<std::string> ids;
    for (const WorkloadSpec &w : allWorkloads())
        ids.push_back(w.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadPropertyTest, ::testing::ValuesIn(allIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace memento
