/**
 * @file
 * Unit and property tests for the software allocator models
 * (pymalloc, jemalloc, gomalloc, glibc-large) and the shared
 * Allocator contract.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "rt/glibc_large.h"
#include "rt/gomalloc.h"
#include "rt/jemalloc.h"
#include "rt/pymalloc.h"
#include "rt/tcmalloc.h"
#include "hw/mallacc.h"
#include "sim/rng.h"
#include "sim/size_class.h"
#include "test_util.h"

namespace memento {
namespace {

using test::TestEnv;

/** Fixture owning the OS plumbing every allocator needs. */
class AllocatorFixture : public ::testing::Test
{
  protected:
    AllocatorFixture()
        : buddy(1ull << 22, 1ull << 30, stats),
          vm(cfg, buddy, stats, "vm")
    {
    }

    MachineConfig cfg;
    StatRegistry stats;
    BuddyAllocator buddy;
    VirtualMemory vm;
    TestEnv env;
};

// ---------------------------------------------------------------------
// pymalloc
// ---------------------------------------------------------------------

class PyMallocTest : public AllocatorFixture
{
  protected:
    PyMalloc alloc{vm, stats};
};

TEST_F(PyMallocTest, SmallAllocationsComeFromPools)
{
    Addr a = alloc.malloc(24, env);
    Addr b = alloc.malloc(24, env);
    EXPECT_NE(a, b);
    EXPECT_TRUE(alloc.isLive(a));
    EXPECT_EQ(alloc.liveBytes(), 48u);
    // Same size class allocates from the same 4 KiB pool initially.
    EXPECT_EQ(a & ~(kPageSize - 1), b & ~(kPageSize - 1));
}

TEST_F(PyMallocTest, FreeReusesBlockLifo)
{
    // Keep one object live so the pool (and arena) survive the free.
    Addr keep = alloc.malloc(32, env);
    (void)keep;
    Addr a = alloc.malloc(32, env);
    alloc.free(a, env);
    EXPECT_FALSE(alloc.isLive(a));
    Addr b = alloc.malloc(32, env);
    EXPECT_EQ(a, b); // freeblock head reuse.
}

TEST_F(PyMallocTest, DifferentClassesUseDifferentPools)
{
    Addr a = alloc.malloc(8, env);
    Addr b = alloc.malloc(512, env);
    EXPECT_NE(pageBase(a), pageBase(b));
}

TEST_F(PyMallocTest, ArenaMmappedOnDemandAndReleasedWhenEmpty)
{
    EXPECT_EQ(alloc.arenaCount(), 0u);
    std::vector<Addr> ptrs;
    for (int i = 0; i < 100; ++i)
        ptrs.push_back(alloc.malloc(64, env));
    EXPECT_EQ(alloc.arenaCount(), 1u);
    for (Addr p : ptrs)
        alloc.free(p, env);
    // All pools free -> arena munmapped.
    EXPECT_EQ(alloc.arenaCount(), 0u);
    EXPECT_EQ(stats.value("pymalloc.arena_munmaps"), 1u);
}

TEST_F(PyMallocTest, LargeAllocationsBypassPools)
{
    Addr big = alloc.malloc(4096, env);
    EXPECT_TRUE(alloc.isLive(big));
    EXPECT_EQ(stats.value("pymalloc.small_mallocs"), 0u);
    EXPECT_EQ(stats.value("pymalloc.large_mallocs"), 1u);
    alloc.free(big, env);
    EXPECT_FALSE(alloc.isLive(big));
}

TEST_F(PyMallocTest, FunctionExitReleasesEverything)
{
    for (int i = 0; i < 500; ++i)
        alloc.malloc(8 + (i % 64) * 8, env);
    alloc.malloc(100000, env);
    alloc.functionExit(env);
    EXPECT_EQ(alloc.liveBytes(), 0u);
    EXPECT_EQ(alloc.arenaCount(), 0u);
    // Teardown is OS work, not userspace frees.
    EXPECT_EQ(stats.value("pymalloc.small_frees"), 0u);
}

TEST_F(PyMallocTest, AllocationChargesUserAllocCategory)
{
    alloc.malloc(40, env);
    EXPECT_GT(env.ledger().category(CycleCategory::UserAlloc), 0u);
    EXPECT_EQ(env.ledger().category(CycleCategory::UserFree), 0u);
}

TEST_F(PyMallocTest, PoolExhaustionMovesToNextPool)
{
    // A 4 KiB pool of 504-byte blocks holds 8 objects; the 9th must
    // come from a second pool.
    std::vector<Addr> ptrs;
    for (int i = 0; i < 9; ++i)
        ptrs.push_back(alloc.malloc(504, env));
    EXPECT_NE(pageBase(ptrs.front()), pageBase(ptrs.back()));
}

TEST_F(PyMallocTest, ArenaObjectSlotsAreRecycled)
{
    // Regression: a malloc/free ping-pong at an arena boundary churns
    // one arena per cycle; the arena_object slots must be recycled
    // (CPython's unused_arena_objects) instead of exhausting the table.
    for (int i = 0; i < 10000; ++i) {
        Addr a = alloc.malloc(64, env);
        alloc.free(a, env);
    }
    EXPECT_EQ(alloc.liveBytes(), 0u);
    EXPECT_GT(stats.value("pymalloc.arena_munmaps"), 1000u);
}

TEST_F(PyMallocTest, InactiveSlotFractionReflectsFrees)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 64; ++i)
        ptrs.push_back(alloc.malloc(64, env));
    const double before = alloc.inactiveSlotFraction();
    for (int i = 0; i < 32; ++i)
        alloc.free(ptrs[i], env);
    EXPECT_GT(alloc.inactiveSlotFraction(), before);
}

// ---------------------------------------------------------------------
// jemalloc
// ---------------------------------------------------------------------

class JeMallocTest : public AllocatorFixture
{
  protected:
    JeMalloc alloc{vm, stats};
};

TEST_F(JeMallocTest, TcacheServesRepeatedAllocFree)
{
    Addr a = alloc.malloc(48, env);
    alloc.free(a, env);
    Addr b = alloc.malloc(48, env);
    EXPECT_EQ(a, b); // LIFO tcache reuse.
    EXPECT_EQ(stats.value("jemalloc.tcache_fills"), 1u);
}

TEST_F(JeMallocTest, FillsComeInBatches)
{
    for (int i = 0; i < 33; ++i)
        alloc.malloc(48, env);
    // Batch of 32 per fill: 33 allocations need 2 fills.
    EXPECT_EQ(stats.value("jemalloc.tcache_fills"), 2u);
}

TEST_F(JeMallocTest, FlushHappensWhenTcacheOverflows)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 100; ++i)
        ptrs.push_back(alloc.malloc(48, env));
    for (Addr p : ptrs)
        alloc.free(p, env);
    EXPECT_GT(stats.value("jemalloc.tcache_flushes"), 0u);
}

TEST_F(JeMallocTest, PrefaultedChunkAvoidsFaults)
{
    // The first chunk is pre-mapped and pre-faulted at init: small
    // allocations must not fault.
    for (int i = 0; i < 1000; ++i)
        alloc.malloc(16 + (i % 32) * 8, env);
    EXPECT_EQ(vm.faultCount(), 0u);
}

TEST_F(JeMallocTest, PurgeReturnsDrainedPages)
{
    JeMalloc::Params params;
    params.purgeIntervalOps = 64;
    params.tcacheMax = 8;
    params.batch = 8;
    JeMalloc purging(vm, stats, params);
    // Churn one class so pages drain and purge.
    for (int round = 0; round < 50; ++round) {
        std::vector<Addr> ptrs;
        for (int i = 0; i < 40; ++i)
            ptrs.push_back(purging.malloc(128, env));
        for (Addr p : ptrs)
            purging.free(p, env);
    }
    EXPECT_GT(stats.value("jemalloc.purges"), 0u);
    EXPECT_GT(stats.value("jemalloc.purged_pages"), 0u);
}

TEST_F(JeMallocTest, LargeGoesToGlibcPath)
{
    Addr big = alloc.malloc(2000, env);
    EXPECT_TRUE(alloc.isLive(big));
    EXPECT_EQ(stats.value("jemalloc.small_mallocs"), 0u);
    alloc.free(big, env);
}

TEST_F(JeMallocTest, FunctionExitUnmapsChunks)
{
    alloc.malloc(64, env);
    alloc.functionExit(env);
    EXPECT_EQ(alloc.liveBytes(), 0u);
    EXPECT_GT(stats.value("vm.munmap_calls"), 0u);
}

// ---------------------------------------------------------------------
// gomalloc
// ---------------------------------------------------------------------

class GoMallocTest : public AllocatorFixture
{
  protected:
    GoMalloc alloc{vm, stats};
};

TEST_F(GoMallocTest, FreeIsDeferredDeath)
{
    Addr a = alloc.malloc(64, env);
    const Cycles before = env.ledger().total();
    alloc.free(a, env);
    // Becoming garbage costs (almost) nothing and performs no frees.
    EXPECT_EQ(env.ledger().total(), before);
    EXPECT_FALSE(alloc.isLive(a));
    EXPECT_EQ(stats.value("gomalloc.deaths"), 1u);
}

TEST_F(GoMallocTest, NoGcWithoutTrigger)
{
    for (int i = 0; i < 5000; ++i) {
        Addr a = alloc.malloc(64, env);
        alloc.free(a, env);
    }
    EXPECT_EQ(alloc.gcCycles(), 0u);
}

TEST_F(GoMallocTest, GcSweepsDeadObjectsAndReusesMemory)
{
    GoMalloc::Params params;
    params.gcTriggerBytes = 64 << 10;
    GoMalloc gc_alloc(vm, stats, params);
    std::vector<Addr> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(gc_alloc.malloc(64, env));
    for (Addr p : first)
        gc_alloc.free(p, env);
    // Keep allocating past the trigger: GC must run and recycle.
    for (int i = 0; i < 2000; ++i)
        gc_alloc.free(gc_alloc.malloc(64, env), env);
    EXPECT_GT(gc_alloc.gcCycles(), 0u);
    EXPECT_GT(stats.value("gomalloc.swept_objects"), 0u);
}

TEST_F(GoMallocTest, ObjectZeroingTouchesObject)
{
    env.virtWrites.clear();
    Addr a = alloc.malloc(64, env);
    bool touched = false;
    for (Addr w : env.virtWrites)
        touched |= (w == a);
    EXPECT_TRUE(touched);
}

TEST_F(GoMallocTest, ArenasAreLargeReservations)
{
    alloc.malloc(64, env);
    EXPECT_EQ(stats.value("gomalloc.arena_mmaps"), 1u);
    // 64 MiB reservation, lazily backed.
    EXPECT_LT(vm.residentUserPages(), 100u);
}

TEST_F(GoMallocTest, FunctionExitBatchFrees)
{
    for (int i = 0; i < 1000; ++i)
        alloc.malloc(96, env);
    alloc.functionExit(env);
    EXPECT_EQ(alloc.liveBytes(), 0u);
    // Batch free happens via munmap of the reservations.
    EXPECT_GT(env.ledger().category(CycleCategory::KernelMmap), 0u);
}

// ---------------------------------------------------------------------
// tcmalloc
// ---------------------------------------------------------------------

class TcMallocTest : public AllocatorFixture
{
  protected:
    TcMalloc alloc{vm, stats};
};

TEST_F(TcMallocTest, CacheServesLifoReuse)
{
    Addr a = alloc.malloc(48, env);
    alloc.free(a, env);
    Addr b = alloc.malloc(48, env);
    EXPECT_EQ(a, b);
}

TEST_F(TcMallocTest, RefillsComeInTransferBatches)
{
    for (int i = 0; i < 17; ++i)
        alloc.malloc(48, env);
    // Transfer batch of 16: 17 allocations need 2 refills.
    EXPECT_EQ(stats.value("tcmalloc.refills"), 2u);
}

TEST_F(TcMallocTest, PopFollowsFreeListPointerInObject)
{
    Addr a = alloc.malloc(64, env);
    env.virtReads.clear();
    alloc.free(a, env);
    Addr b = alloc.malloc(64, env);
    ASSERT_EQ(a, b);
    // The pop dereferenced the object (the load Mallacc removes).
    bool touched = false;
    for (Addr r : env.virtReads)
        touched |= (r == a);
    EXPECT_TRUE(touched);
}

TEST_F(TcMallocTest, ReleaseWhenCacheOverflows)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 80; ++i)
        ptrs.push_back(alloc.malloc(32, env));
    for (Addr p : ptrs)
        alloc.free(p, env);
    EXPECT_GT(stats.value("tcmalloc.releases"), 0u);
    // Released objects are reusable via the central list.
    for (int i = 0; i < 80; ++i)
        EXPECT_NE(alloc.malloc(32, env), kNullAddr);
}

TEST_F(TcMallocTest, PageHeapGrowsInLargeIncrements)
{
    alloc.malloc(64, env);
    EXPECT_EQ(stats.value("tcmalloc.heap_grows"), 1u);
    EXPECT_GT(stats.value("vm.mmap_calls"), 0u);
}

TEST_F(TcMallocTest, FunctionExitUnmapsRegions)
{
    for (int i = 0; i < 500; ++i)
        alloc.malloc(8 + (i % 64) * 8, env);
    const std::uint64_t munmaps = stats.value("vm.munmap_calls");
    alloc.functionExit(env);
    EXPECT_EQ(alloc.liveBytes(), 0u);
    EXPECT_GT(stats.value("vm.munmap_calls"), munmaps);
    // Reusable after teardown.
    EXPECT_NE(alloc.malloc(64, env), kNullAddr);
}

TEST_F(TcMallocTest, MallaccIdealizationIsCheaper)
{
    test::TestEnv e1, e2;
    StatRegistry stats2;
    BuddyAllocator buddy2(1ull << 22, 1ull << 30, stats2);
    VirtualMemory vm2(cfg, buddy2, stats2, "vm2");
    MallaccAllocator ideal(vm2, stats2);

    // Warm both so the comparison is fast-path-only.
    for (int i = 0; i < 64; ++i) {
        alloc.free(alloc.malloc(64, e1), e1);
        ideal.free(ideal.malloc(64, e2), e2);
    }
    const Cycles before1 = e1.ledger().total();
    const Cycles before2 = e2.ledger().total();
    for (int i = 0; i < 100; ++i) {
        alloc.free(alloc.malloc(64, e1), e1);
        ideal.free(ideal.malloc(64, e2), e2);
    }
    EXPECT_LT(e2.ledger().total() - before2,
              e1.ledger().total() - before1);
}

// ---------------------------------------------------------------------
// glibc large
// ---------------------------------------------------------------------

class GlibcTest : public AllocatorFixture
{
  protected:
    GlibcLargeAlloc alloc{vm, stats, "g"};
};

TEST_F(GlibcTest, MediumSizesReuseFreedChunks)
{
    Addr a = alloc.malloc(4096, env);
    alloc.free(a, env);
    Addr b = alloc.malloc(4000, env);
    EXPECT_EQ(a, b); // First-fit finds the coalesced chunk.
}

TEST_F(GlibcTest, HugeSizesGetOwnMapping)
{
    const std::uint64_t mmaps_before = stats.value("vm.mmap_calls");
    Addr a = alloc.malloc(256 << 10, env);
    EXPECT_EQ(stats.value("vm.mmap_calls"), mmaps_before + 1);
    const std::uint64_t munmaps_before = stats.value("vm.munmap_calls");
    alloc.free(a, env);
    EXPECT_EQ(stats.value("vm.munmap_calls"), munmaps_before + 1);
}

TEST_F(GlibcTest, CoalescingMergesNeighbours)
{
    Addr a = alloc.malloc(1024, env);
    Addr b = alloc.malloc(1024, env);
    Addr c = alloc.malloc(1024, env);
    (void)c;
    alloc.free(a, env);
    alloc.free(b, env);
    // A single chunk now spans a+b: allocating 2000 bytes fits there.
    Addr d = alloc.malloc(2000, env);
    EXPECT_EQ(d, a);
}

TEST_F(GlibcTest, OwnsOnlyLivePointers)
{
    Addr a = alloc.malloc(1000, env);
    EXPECT_TRUE(alloc.owns(a));
    EXPECT_FALSE(alloc.owns(a + 8));
    alloc.free(a, env);
    EXPECT_FALSE(alloc.owns(a));
}

// ---------------------------------------------------------------------
// Cross-allocator property tests
// ---------------------------------------------------------------------

enum class Kind { Py, Je, Go, Tc };

class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint64_t>>
{
};

TEST_P(AllocatorPropertyTest, RandomTrafficNeverOverlapsLiveObjects)
{
    auto [kind, seed] = GetParam();
    MachineConfig cfg;
    StatRegistry stats;
    BuddyAllocator buddy(1ull << 22, 1ull << 30, stats);
    VirtualMemory vm(cfg, buddy, stats, "vm");
    TestEnv env;

    std::unique_ptr<Allocator> alloc;
    switch (kind) {
      case Kind::Py:
        alloc = std::make_unique<PyMalloc>(vm, stats);
        break;
      case Kind::Je:
        alloc = std::make_unique<JeMalloc>(vm, stats);
        break;
      case Kind::Go:
        alloc = std::make_unique<GoMalloc>(vm, stats);
        break;
      case Kind::Tc:
        alloc = std::make_unique<TcMalloc>(vm, stats);
        break;
    }

    Rng rng(seed);
    std::map<Addr, std::uint64_t> live; // base -> size
    std::vector<Addr> order;
    std::uint64_t live_bytes = 0;

    for (int i = 0; i < 8000; ++i) {
        if (order.empty() || rng.nextBool(0.58)) {
            std::uint64_t size = rng.nextBool(0.97)
                                     ? rng.nextRange(1, 512)
                                     : rng.nextRange(513, 8192);
            Addr p = alloc->malloc(size, env);
            ASSERT_NE(p, kNullAddr);
            // Overlap check against neighbours in address order.
            auto next = live.lower_bound(p);
            if (next != live.end()) {
                ASSERT_GE(next->first, p + size)
                    << "overlap at iteration " << i;
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, p);
            }
            live[p] = size;
            order.push_back(p);
            live_bytes += size;
            ASSERT_TRUE(alloc->isLive(p));
        } else {
            std::size_t pick = rng.nextBelow(order.size());
            Addr p = order[pick];
            std::uint64_t size = live.at(p);
            alloc->free(p, env);
            ASSERT_FALSE(alloc->isLive(p));
            live.erase(p);
            order.erase(order.begin() + pick);
            live_bytes -= size;
        }
        ASSERT_EQ(alloc->liveBytes(), live_bytes);
    }

    alloc->functionExit(env);
    EXPECT_EQ(alloc->liveBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAllocators, AllocatorPropertyTest,
    ::testing::Combine(::testing::Values(Kind::Py, Kind::Je,
                                         Kind::Go, Kind::Tc),
                       ::testing::Values(1u, 2u, 3u, 4u)));

} // namespace
} // namespace memento
