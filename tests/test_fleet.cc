/**
 * @file
 * Property and differential tests for the fleet-scale node simulation
 * (src/fleet): arrival-process determinism, exact scheduler semantics
 * on hand-built traces, the cost-model contract against a live
 * Machine, and byte-identity of the full `fleet` pipeline across
 * worker counts and result-store resumes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "fleet/arrivals.h"
#include "fleet/fleet.h"
#include "machine/function_executor.h"
#include "machine/machine.h"
#include "machine/result_store.h"
#include "os/kernel_cost.h"
#include "sim/error.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {
namespace {

namespace fs = std::filesystem;

/** A unique store directory per test, removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("memento-fleet-test-" + std::to_string(::getpid()) +
                  "-" + tag + "-" + std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }

    ~TempStoreDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A small fleet config over one cheap workload. */
MachineConfig
smallFleetConfig()
{
    MachineConfig cfg = defaultConfig();
    cfg.fleet.mix = "aes";
    cfg.fleet.invocations = 200;
    cfg.fleet.cores = 4;
    cfg.fleet.ratePerSec = 4000.0;
    return cfg;
}

// ---- Arrival processes ----------------------------------------------

TEST(FleetArrivals, DeterministicPerSeedAndSortedByTime)
{
    for (const char *kind : {"poisson", "bursty", "diurnal"}) {
        MachineConfig cfg = defaultConfig();
        cfg.fleet.arrival = kind;
        cfg.fleet.invocations = 500;
        cfg.fleet.seed = 42;

        const std::vector<Arrival> a = generateArrivals(cfg, 5);
        const std::vector<Arrival> b = generateArrivals(cfg, 5);
        ASSERT_EQ(a.size(), 500u) << kind;
        ASSERT_EQ(b.size(), a.size()) << kind;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].atCycles, b[i].atCycles) << kind;
            EXPECT_EQ(a[i].workloadIndex, b[i].workloadIndex) << kind;
            EXPECT_LT(a[i].workloadIndex, 5u) << kind;
            if (i > 0) {
                EXPECT_GE(a[i].atCycles, a[i - 1].atCycles) << kind;
            }
        }

        cfg.fleet.seed = 43;
        const std::vector<Arrival> c = generateArrivals(cfg, 5);
        bool differs = false;
        for (std::size_t i = 0; i < a.size() && !differs; ++i)
            differs = a[i].atCycles != c[i].atCycles ||
                      a[i].workloadIndex != c[i].workloadIndex;
        EXPECT_TRUE(differs)
            << kind << ": different seeds produced identical traces";
    }
}

TEST(FleetArrivals, MeanRateIsPreservedByEveryProcess)
{
    // All three processes are mean-preserving: N arrivals at rate R
    // should span roughly N/R seconds. The bound is deliberately loose
    // (3x either way) — this guards the rate normalization, not the
    // variance.
    for (const char *kind : {"poisson", "bursty", "diurnal"}) {
        MachineConfig cfg = defaultConfig();
        cfg.fleet.arrival = kind;
        cfg.fleet.invocations = 2000;
        cfg.fleet.ratePerSec = 1000.0;

        const std::vector<Arrival> a = generateArrivals(cfg, 1);
        const double span_sec =
            cfg.cyclesToMs(a.back().atCycles) / 1000.0;
        const double expect_sec = 2000.0 / 1000.0;
        EXPECT_GT(span_sec, expect_sec / 3.0) << kind;
        EXPECT_LT(span_sec, expect_sec * 3.0) << kind;
    }
}

TEST(FleetArrivals, UnknownKindThrowsConfigError)
{
    MachineConfig cfg = defaultConfig();
    cfg.fleet.arrival = "uniform";
    try {
        generateArrivals(cfg, 1);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

// ---- Cost-model contract against a live Machine ---------------------

TEST(FleetCostModel, SwitchCostMatchesKernelCostModelOnRealMachine)
{
    // Run two function instances round-robin on one simulated core
    // (the sens_multiproc recipe) and check that every context
    // switch's measured ContextSwitch-category cost equals
    // fleetSwitchCost() for the HOT residue observed just before the
    // switch. This pins the fleet scheduler to the machine's own cost
    // model: if chargeContextSwitch ever changes, this fails.
    const MachineConfig cfg = mementoConfig();
    const std::vector<WorkloadSpec> functions =
        workloadsByDomain(Domain::Function);
    const WorkloadSpec &wa = functions[0];
    const WorkloadSpec &wb = functions[1];

    Machine machine(cfg);
    machine.createProcess(wa);
    machine.createProcess(wb);
    const Trace ta = TraceGenerator(wa).generate();
    const Trace tb = TraceGenerator(wb).generate();
    FunctionExecutor ea(machine);
    FunctionExecutor eb(machine);

    constexpr std::size_t kSlice = 1500;
    std::size_t ca = 0, cb = 0;
    unsigned switches_checked = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned p = 0; p < 2; ++p) {
            const Trace &trace = p == 0 ? ta : tb;
            std::size_t &cursor = p == 0 ? ca : cb;
            if (cursor >= trace.size())
                continue;
            progress = true;

            const std::uint64_t hot_valid =
                machine.hot() != nullptr ? machine.hot()->validEntries()
                                         : 0;
            const Cycles cs_before = machine.cycleLedger().category(
                CycleCategory::ContextSwitch);
            machine.switchTo(p);
            const Cycles charged = machine.cycleLedger().category(
                                       CycleCategory::ContextSwitch) -
                                   cs_before;
            if (charged != 0) { // switchTo(same) is free
                EXPECT_EQ(charged, fleetSwitchCost(cfg, hot_valid));
                ++switches_checked;
            }

            const std::size_t end =
                std::min(cursor + kSlice, trace.size());
            (p == 0 ? ea : eb).runRange(p == 0 ? wa : wb, trace, cursor,
                                        end);
            cursor = end;
        }
    }
    EXPECT_GE(switches_checked, 4u);
}

TEST(FleetCostModel, ColdSetupCostMatchesContainerSetupCharge)
{
    const MachineConfig cfg = defaultConfig();
    Machine machine(cfg);
    machine.createProcess(workloadsByDomain(Domain::Function)[0]);
    const Cycles before = machine.cycleLedger().total();
    machine.kernelCosts().chargeContainerSetup(machine);
    const Cycles charged = machine.cycleLedger().total() - before;
    EXPECT_EQ(charged, fleetColdSetupCost(cfg));
}

TEST(FleetCostModel, MementoReclaimIsArenaGranular)
{
    MachineConfig base = defaultConfig();
    MachineConfig mem = mementoConfig();
    // 256 objects x 512 B per arena = 32 pages per arena span.
    const std::uint64_t pages = 640;
    const Cycles base_cost = fleetReclaimCost(base, pages);
    const Cycles mem_cost = fleetReclaimCost(mem, pages);
    EXPECT_LT(mem_cost, base_cost);
    // Exact formulae (instructions / baseIpc, rounded like the
    // machine's chargeInstructions).
    const auto cycles_of = [](const MachineConfig &cfg,
                              std::uint64_t units) {
        const InstCount instr =
            cfg.kernel.munmapBaseInstructions +
            cfg.kernel.munmapPerPageInstructions * units;
        return static_cast<Cycles>(
            static_cast<double>(instr) / cfg.core.baseIpc + 0.5);
    };
    EXPECT_EQ(base_cost, cycles_of(base, 640));
    EXPECT_EQ(mem_cost, cycles_of(mem, 640 / 32));
}

// ---- Scheduler semantics on hand-built traces -----------------------

/** One-workload profile with round numbers for exact expectations. */
std::vector<FleetProfile>
singleProfile(Cycles service, std::uint64_t pages,
              std::uint64_t hot_valid = 0)
{
    FleetProfile p;
    p.id = "unit";
    p.serviceCycles = service;
    p.pages = pages;
    p.hotValidEntries = hot_valid;
    return {p};
}

MachineConfig
handConfig(unsigned cores, double keep_alive_ms,
           std::uint64_t budget_pages)
{
    MachineConfig cfg = defaultConfig();
    cfg.fleet.cores = cores;
    cfg.fleet.keepAliveMs = keep_alive_ms;
    cfg.fleet.memoryBudgetPages = budget_pages;
    return cfg;
}

TEST(FleetScheduler, WarmHitWithinKeepAliveColdStartAfterExpiry)
{
    const MachineConfig cfg = handConfig(1, 1.0 /* ms */, 0);
    const Cycles service = 1000;
    const Cycles keep_alive = cfg.msToCycles(cfg.fleet.keepAliveMs);
    const Cycles cs = fleetSwitchCost(cfg, 0);
    const Cycles setup = fleetColdSetupCost(cfg);
    const Cycles end0 = cs + setup + service;

    std::vector<Arrival> arrivals;
    arrivals.push_back({0, 0});            // cold start
    arrivals.push_back({end0 + 1, 0});     // idle, warm hit
    const Cycles end1 = end0 + 1 + service; // no switch: same instance
    arrivals.push_back({end1 + keep_alive, 0}); // expired: cold again

    const FleetMetrics m =
        simulateFleet(arrivals, singleProfile(service, 10), cfg);
    EXPECT_EQ(m.arrivals, 3u);
    EXPECT_EQ(m.completed, 3u);
    EXPECT_EQ(m.rejected, 0u);
    EXPECT_EQ(m.coldStarts, 2u);
    EXPECT_EQ(m.warmHits, 1u);
    EXPECT_EQ(m.expirations, 1u);
    EXPECT_EQ(m.evictions, 0u);
    // Exact latencies: the sorted set is {service, cs+setup+service x2}
    // (second cold start pays the same switch cost: the core's HOT
    // residue is 0 either way).
    EXPECT_EQ(m.p50Cycles, cs + setup + service);
    EXPECT_EQ(m.p99Cycles, cs + setup + service);
    EXPECT_EQ(m.peakRssPages, 10u);
}

TEST(FleetScheduler, SwitchCostChargedOnlyWhenCoreChangesInstance)
{
    // Two workload profiles pinned to one core: alternating arrivals
    // must pay the switch cost every time, while repeated arrivals of
    // one workload (same instance) must not.
    const MachineConfig cfg = handConfig(1, 1e6, 0);
    const Cycles service = 500;
    std::vector<FleetProfile> profiles =
        singleProfile(service, 1, /*hot_valid=*/7);
    profiles.push_back(profiles[0]);
    profiles[1].id = "unit2";

    // Arrivals far enough apart that the node is idle in between.
    std::vector<Arrival> alternating;
    for (std::size_t i = 0; i < 6; ++i)
        alternating.push_back({i * 1'000'000'000ull, i % 2});
    const FleetMetrics alt = simulateFleet(alternating, profiles, cfg);

    std::vector<Arrival> pinned;
    for (std::size_t i = 0; i < 6; ++i)
        pinned.push_back({i * 1'000'000'000ull, 0});
    const FleetMetrics pin = simulateFleet(pinned, profiles, cfg);

    // Alternating: every arrival after the first switches instances
    // and flushes the previous instance's 7 HOT entries.
    EXPECT_EQ(alt.p99Cycles,
              fleetSwitchCost(cfg, 7) + fleetColdSetupCost(cfg) +
                  service);
    // Pinned: one cold start, then pure service time.
    EXPECT_EQ(pin.p50Cycles, service);
    EXPECT_EQ(pin.coldStarts, 1u);
    EXPECT_EQ(pin.warmHits, 5u);
}

TEST(FleetScheduler, BudgetEvictsIdleLruThenRejects)
{
    const MachineConfig cfg = handConfig(2, 1e6 /* effectively forever */,
                                         100);
    const Cycles service = 1000;
    std::vector<FleetProfile> profiles = singleProfile(service, 60);
    profiles.push_back(profiles[0]);
    profiles[1].id = "unit2";
    profiles[1].pages = 50;

    std::vector<Arrival> arrivals;
    arrivals.push_back({0, 0}); // A: rss 60
    // B arrives after A went idle: 60 + 50 > 100, A is idle -> evicted.
    arrivals.push_back({1'000'000'000ull, 1});
    // Two simultaneous A's much later: first colds (B evicted),
    // second cannot fit while the first is busy -> rejected.
    arrivals.push_back({2'000'000'000ull, 0});
    arrivals.push_back({2'000'000'000ull, 0});

    const FleetMetrics m = simulateFleet(arrivals, profiles, cfg);
    EXPECT_EQ(m.completed, 3u);
    EXPECT_EQ(m.rejected, 1u);
    EXPECT_EQ(m.coldStarts, 3u);
    EXPECT_EQ(m.evictions, 2u);
    EXPECT_LE(m.peakRssPages, 100u);
}

TEST(FleetScheduler, OversizedInstanceIsRejectedOutright)
{
    const MachineConfig cfg = handConfig(1, 1.0, 50);
    std::vector<Arrival> arrivals{{0, 0}};
    const FleetMetrics m =
        simulateFleet(arrivals, singleProfile(1000, 60), cfg);
    EXPECT_EQ(m.completed, 0u);
    EXPECT_EQ(m.rejected, 1u);
    EXPECT_EQ(m.peakRssPages, 0u);
}

TEST(FleetScheduler, RepeatRunsProduceIdenticalMetricsAndDigest)
{
    MachineConfig cfg = smallFleetConfig();
    cfg.fleet.memoryBudgetPages = 400;
    const std::vector<Arrival> arrivals = generateArrivals(cfg, 1);
    const std::vector<FleetProfile> profiles = singleProfile(50'000, 141);
    const FleetMetrics a = simulateFleet(arrivals, profiles, cfg);
    const FleetMetrics b = simulateFleet(arrivals, profiles, cfg);
    EXPECT_TRUE(a == b);
    EXPECT_NE(a.digest, 0u);
}

// ---- Full pipeline: determinism across jobs, seeds, cores -----------

using DetParam = std::tuple<std::uint64_t /*seed*/, unsigned /*cores*/>;

class FleetDeterminism : public testing::TestWithParam<DetParam>
{
};

TEST_P(FleetDeterminism, OutputByteIdenticalAcrossJobLevels)
{
    const auto [seed, cores] = GetParam();
    MachineConfig cfg = smallFleetConfig();
    cfg.fleet.seed = seed;
    cfg.fleet.cores = cores;

    std::string first_text, first_json;
    std::uint64_t first_digest = 0;
    for (const unsigned jobs : {1u, 2u, 8u}) {
        FleetOptions opts;
        opts.cfg = cfg;
        opts.jobs = jobs;
        const FleetReport report = runFleet(opts);

        std::ostringstream text, json;
        printFleetText(text, report, cfg);
        writeFleetJson(json, report, cfg);
        if (jobs == 1) {
            first_text = text.str();
            first_json = json.str();
            first_digest = report.metrics.digest;
            EXPECT_NE(first_digest, 0u);
            continue;
        }
        EXPECT_EQ(text.str(), first_text) << "jobs=" << jobs;
        EXPECT_EQ(json.str(), first_json) << "jobs=" << jobs;
        EXPECT_EQ(report.metrics.digest, first_digest)
            << "jobs=" << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCores, FleetDeterminism,
    testing::Combine(testing::Values<std::uint64_t>(1, 7),
                     testing::Values<unsigned>(1, 4)));

TEST(FleetPipeline, ResumeFromStoreIsByteIdentical)
{
    TempStoreDir dir("fleet-resume");
    MachineConfig cfg = smallFleetConfig();

    const auto render = [&cfg](const FleetReport &report) {
        std::ostringstream text, json;
        printFleetText(text, report, cfg);
        writeFleetJson(json, report, cfg);
        return text.str() + json.str();
    };

    std::string fresh;
    {
        ResultStore store(
            {.dir = dir.path(), .codeVersion = "fleet-test"});
        FleetOptions opts;
        opts.cfg = cfg;
        opts.jobs = 2;
        opts.store = &store;
        const FleetReport report = runFleet(opts);
        EXPECT_FALSE(report.fromCache);
        fresh = render(report);
    }
    {
        ResultStore store(
            {.dir = dir.path(), .codeVersion = "fleet-test"});
        FleetOptions opts;
        opts.cfg = cfg;
        opts.jobs = 1;
        opts.store = &store;
        const FleetReport report = runFleet(opts);
        EXPECT_TRUE(report.fromCache);
        EXPECT_EQ(render(report), fresh);
        EXPECT_GT(store.stats().hits, 0u);
    }
}

TEST(FleetPipeline, SummaryCellKeySeparatesFleetShapes)
{
    TempStoreDir dir("fleet-keys");
    ResultStore store({.dir = dir.path(), .codeVersion = "fleet-test"});
    MachineConfig cfg = smallFleetConfig();

    FleetOptions opts;
    opts.cfg = cfg;
    opts.jobs = 1;
    opts.store = &store;
    const FleetReport a = runFleet(opts);

    // A different arrival seed is a different fleet cell: the second
    // run must NOT be served from the first run's summary.
    opts.cfg.fleet.seed = 99;
    const FleetReport b = runFleet(opts);
    EXPECT_FALSE(b.fromCache);
    EXPECT_NE(a.metrics.digest, b.metrics.digest);
}

TEST(FleetPipeline, JsonCarriesVersionedEnvelopeAndDigest)
{
    MachineConfig cfg = smallFleetConfig();
    cfg.fleet.invocations = 50;
    FleetOptions opts;
    opts.cfg = cfg;
    const FleetReport report = runFleet(opts);

    std::ostringstream os;
    writeFleetJson(os, report, cfg);
    const std::string doc = os.str();
    EXPECT_EQ(doc.rfind("{\n  \"schema_version\": 1,\n"
                        "  \"kind\": \"fleet\",\n",
                        0),
              0u)
        << doc;
    EXPECT_NE(doc.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"p99_ms\": "), std::string::npos);
    EXPECT_NE(doc.find("\"throughput_rps\": "), std::string::npos);
    EXPECT_NE(doc.find("\"packing_density\": "), std::string::npos);
    EXPECT_NE(doc.find("\"digest\": \""), std::string::npos);

    std::ostringstream text;
    printFleetText(text, report, cfg);
    EXPECT_NE(text.str().find("fleet digest "), std::string::npos);
}

TEST(FleetPipeline, UnknownArrivalKindThrowsBeforeProfiling)
{
    MachineConfig cfg = smallFleetConfig();
    cfg.fleet.arrival = "lognormal";
    FleetOptions opts;
    opts.cfg = cfg;
    try {
        runFleet(opts);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

} // namespace
} // namespace memento
