// True positive: a work marker with no issue reference — untrackable
// debt that outlives everyone's memory of it.

// TODO: handle huge-page spans here
int
spanPages(int bytes)
{
    return (bytes + 4095) / 4096;
}
