// Near-miss: the marker is anchored to a tracked issue, so the debt
// has an owner and a paper trail.

// TODO(#142): handle huge-page spans here
int
spanPages(int bytes)
{
    return (bytes + 4095) / 4096;
}
