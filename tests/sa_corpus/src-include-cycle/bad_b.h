// The other half of the deliberate include cycle.
#ifndef SA_CORPUS_BAD_B_H
#define SA_CORPUS_BAD_B_H

#include "bad_a.h"

struct BadB
{
    int b = 0;
};

#endif // SA_CORPUS_BAD_B_H
