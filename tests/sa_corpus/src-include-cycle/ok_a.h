// Near-miss: a two-file chain in one direction only — ok_a.h includes
// ok_b.h, and ok_b.h breaks the back-reference with a forward
// declaration. No cycle.
#ifndef SA_CORPUS_OK_A_H
#define SA_CORPUS_OK_A_H

#include "ok_b.h"

struct OkA
{
    OkB b;
};

#endif // SA_CORPUS_OK_A_H
