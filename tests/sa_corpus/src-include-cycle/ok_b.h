// Leaf of the acyclic near-miss pair: refers back to OkA only through
// a forward declaration, never an include.
#ifndef SA_CORPUS_OK_B_H
#define SA_CORPUS_OK_B_H

struct OkA;

struct OkB
{
    OkA *owner = nullptr;
};

#endif // SA_CORPUS_OK_B_H
