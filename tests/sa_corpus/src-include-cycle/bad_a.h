// Half of a deliberate include cycle: bad_a.h <-> bad_b.h.
#ifndef SA_CORPUS_BAD_A_H
#define SA_CORPUS_BAD_A_H

#include "bad_b.h"

struct BadA
{
    int a = 0;
};

#endif // SA_CORPUS_BAD_A_H
