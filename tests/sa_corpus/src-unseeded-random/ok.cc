// Near-miss: a member function named rand() on an explicitly seeded
// generator object — exactly the sim/rng.h pattern the rule wants.
#include <cstdint>

class SeededRng
{
  public:
    explicit SeededRng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    rand()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 33;
    }

  private:
    std::uint64_t state_;
};

unsigned
pickVictim(SeededRng &rng, unsigned n)
{
    return static_cast<unsigned>(rng.rand() % n);
}
