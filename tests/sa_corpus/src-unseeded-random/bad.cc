// True positive: rand() draws from hidden global state, so a replay
// from the same spec seed produces a different trace.
#include <cstdlib>

unsigned
pickVictim(unsigned n)
{
    return static_cast<unsigned>(std::rand()) % n;
}
