// True positive: fatal_if() in model-layer code kills the whole
// process, so one bad cell takes a --keep-going sweep down with it.
#include "sim/logging.h"

void
reservePages(unsigned pages)
{
    fatal_if(pages == 0, "reserving zero pages");
}
