// Near-miss: model code raises SimError (recoverable per-cell) for
// run failures and panics only on genuine invariant violations.
#include "sim/error.h"
#include "sim/logging.h"

void
reservePages(unsigned pages, unsigned budget)
{
    if (pages > budget)
        throw SimError(ErrorCategory::OutOfMemory,
                       "page reservation exceeds the node budget");
    panic_if(pages == 0, "reservation request lost its page count");
}
