// Near-miss: steady_clock measures elapsed host time for
// self-benchmarking; it never lands in simulated results, and the
// rule leaves it alone. A `time_point` member name is also not a
// time() call.
#include <chrono>
#include <cstdint>

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - since)
            .count());
}
