// True positive: system_clock is host wall-clock time; a simulated
// timestamp derived from it changes on every run and every machine.
#include <chrono>
#include <cstdint>

std::uint64_t
stampResult()
{
    return static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
}
