// Near-miss: the function takes a std::ostream& so the caller decides
// where (and under which serialization) the text lands — the repo's
// TextTable/report convention.
#include <cstdint>
#include <ostream>

void
reportProgress(std::ostream &os, std::uint64_t done, std::uint64_t total)
{
    os << done << "/" << total << " cells\n";
}
