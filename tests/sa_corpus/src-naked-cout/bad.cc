// True positive: writing straight to std::cout from library code; two
// sweep workers doing this interleave their lines mid-record.
#include <cstdint>
#include <iostream>

void
reportProgress(std::uint64_t done, std::uint64_t total)
{
    std::cout << done << "/" << total << " cells\n";
}
