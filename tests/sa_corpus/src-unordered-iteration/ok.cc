// Near-miss: same shape, but the container is an ordered std::map, so
// iteration order is the key order — deterministic by construction.
// Membership probes against an unordered map (find/count, no
// iteration) are also fine.
#include <cstdint>
#include <map>
#include <unordered_map>

std::uint64_t
sumAndEmit(const std::map<std::uint64_t, std::uint64_t> &live,
           const std::unordered_map<std::uint64_t, std::uint64_t> &index)
{
    std::uint64_t acc = 0;
    for (const auto &[id, len] : live)
        acc = acc * 31 + id + len;
    if (index.find(acc) != index.end())
        ++acc;
    return acc;
}
