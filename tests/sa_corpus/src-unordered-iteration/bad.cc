// True positive: range-for over an unordered map feeds output, so the
// line order depends on the library's hash function.
#include <cstdint>
#include <unordered_map>

std::uint64_t
sumAndEmit(const std::unordered_map<std::uint64_t, std::uint64_t> &live)
{
    std::uint64_t acc = 0;
    for (const auto &[id, len] : live)
        acc = acc * 31 + id + len;
    return acc;
}
