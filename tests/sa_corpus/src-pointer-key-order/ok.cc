// Near-miss: the map is keyed by a stable integer id; the pointer only
// appears in the *mapped* type, which does not drive iteration order.
#include <cstdint>
#include <map>

struct Obj
{
    int v = 0;
};

int
firstValue(const std::map<std::uint64_t, Obj *> &by_id)
{
    return by_id.empty() ? 0 : by_id.begin()->second->v;
}
