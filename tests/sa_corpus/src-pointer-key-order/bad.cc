// True positive: a std::map keyed by a raw pointer orders itself by
// allocator address — a different order every run.
#include <map>

struct Obj
{
    int v = 0;
};

int
firstValue(const std::map<Obj *, int> &by_ptr)
{
    return by_ptr.empty() ? 0 : by_ptr.begin()->second;
}
