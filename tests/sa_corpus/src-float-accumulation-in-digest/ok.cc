// Near-miss: the float is quantized to an integer *before* the digest
// call, so only integer state reaches the accumulator.
#include <cstdint>

#include "val/digest.h"

unsigned long long
digestUtilization(double utilization)
{
    const std::uint64_t permille =
        static_cast<std::uint64_t>(utilization * 1000.0);
    memento::DigestBuilder d;
    d.add(permille);
    return d.value();
}
