// True positive: a double fed straight into the FNV-1a digest makes
// the digest depend on FP rounding mode and summation order.
#include "val/digest.h"

unsigned long long
digestUtilization(double utilization)
{
    memento::DigestBuilder d;
    d.add(utilization * 1000.0);
    return d.value();
}
