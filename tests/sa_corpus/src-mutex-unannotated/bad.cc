// True positive: the class holds a mutex, but counter_ names no
// synchronization — a reader cannot tell whether mu_ protects it.
#include <cstdint>
#include <mutex>

class HitCounter
{
  public:
    void
    bump()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counter_;
    }

  private:
    std::mutex mu_;
    std::uint64_t counter_ = 0;
};
