// Near-miss: every data member next to the mutex either names its
// guard, is immutable after construction, or is itself atomic.
#include <atomic>
#include <cstdint>
#include <mutex>

#include "sim/thread_annotations.h"

class HitCounter
{
  public:
    explicit HitCounter(std::uint64_t limit) : limit_(limit) {}

    void
    bump()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counter_;
        peeks_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    std::uint64_t limit_ MEMENTO_READONLY_AFTER_INIT;
    std::mutex mu_;
    std::uint64_t counter_ MEMENTO_GUARDED_BY(mu_) = 0;
    std::atomic<std::uint64_t> peeks_{0};
};
