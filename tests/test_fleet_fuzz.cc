/**
 * @file
 * Fuzzed conservation invariants for the fleet scheduler: 100 seeded
 * random (arrival trace, profile set, fleet config) triples, each
 * checked against the invariants the scheduler must hold regardless of
 * shape — every arrival completes or is rejected exactly once, every
 * completion is either a cold start or a warm hit, node RSS never
 * exceeds the memory budget, percentiles are ordered, and a repeat run
 * is bit-identical down to the fleet-state digest.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/arrivals.h"
#include "fleet/fleet.h"
#include "sim/rng.h"

namespace memento {
namespace {

/** Random profile set: 1-4 workloads with varied footprints. */
std::vector<FleetProfile>
fuzzProfiles(Rng &rng)
{
    const std::size_t n = 1 + rng.nextBelow(4);
    std::vector<FleetProfile> profiles;
    for (std::size_t i = 0; i < n; ++i) {
        FleetProfile p;
        p.id = "fuzz" + std::to_string(i);
        p.serviceCycles = rng.nextRange(100, 2'000'000);
        p.pages = rng.nextRange(1, 2000);
        p.hotValidEntries = rng.nextBelow(64);
        profiles.push_back(p);
    }
    return profiles;
}

/** Random fleet shape: cores, arrival process, keep-alive, budget. */
MachineConfig
fuzzConfig(Rng &rng, std::uint64_t seed)
{
    static const char *kKinds[] = {"poisson", "bursty", "diurnal"};
    MachineConfig cfg = defaultConfig();
    cfg.fleet.seed = seed;
    cfg.fleet.cores = static_cast<unsigned>(rng.nextRange(1, 8));
    cfg.fleet.invocations = rng.nextRange(50, 400);
    cfg.fleet.ratePerSec =
        static_cast<double>(rng.nextRange(100, 50'000));
    cfg.fleet.arrival = kKinds[rng.nextBelow(3)];
    cfg.fleet.keepAliveMs =
        rng.nextBool(0.3) ? 0.0
                          : static_cast<double>(rng.nextRange(1, 50));
    cfg.fleet.memoryBudgetPages =
        rng.nextBool(0.4) ? 0 : rng.nextRange(500, 20'000);
    return cfg;
}

TEST(FleetFuzz, ConservationInvariantsHoldOverRandomTraces)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ull);
        const MachineConfig cfg = fuzzConfig(rng, seed);
        const std::vector<FleetProfile> profiles = fuzzProfiles(rng);
        const std::vector<Arrival> arrivals =
            generateArrivals(cfg, profiles.size());
        ASSERT_EQ(arrivals.size(), cfg.fleet.invocations)
            << "seed " << seed;

        const FleetMetrics m = simulateFleet(arrivals, profiles, cfg);
        SCOPED_TRACE("seed " + std::to_string(seed) + " arrival " +
                     cfg.fleet.arrival + " cores " +
                     std::to_string(cfg.fleet.cores) + " budget " +
                     std::to_string(cfg.fleet.memoryBudgetPages));

        // Every arrival is accounted for exactly once.
        EXPECT_EQ(m.arrivals, arrivals.size());
        EXPECT_EQ(m.completed + m.rejected, m.arrivals);
        // Every completion is a cold start or a warm hit.
        EXPECT_EQ(m.coldStarts + m.warmHits, m.completed);
        // An instance expires or is evicted at most once, and only
        // after it was cold-started.
        EXPECT_LE(m.evictions + m.expirations, m.coldStarts);
        // The pressure policy is a hard cap.
        if (cfg.fleet.memoryBudgetPages != 0) {
            EXPECT_LE(m.peakRssPages, cfg.fleet.memoryBudgetPages);
        }
        // Percentiles come from one sorted latency vector.
        if (m.completed != 0) {
            EXPECT_LE(m.p50Cycles, m.p99Cycles);
            EXPECT_LE(m.p99Cycles, m.p999Cycles);
            EXPECT_LE(m.p999Cycles, m.makespanCycles);
            EXPECT_GT(m.peakRssPages, 0u);
        } else {
            EXPECT_EQ(m.p999Cycles, 0u);
        }
        // Residency area is bounded by (live instances) x makespan;
        // live instances never exceed completed cold starts.
        if (m.makespanCycles != 0) {
            EXPECT_LE(m.residencyCycleArea,
                      static_cast<std::uint64_t>(m.coldStarts) *
                          m.makespanCycles);
        }

        // Determinism: the same inputs reproduce every field,
        // including the digest.
        const FleetMetrics again =
            simulateFleet(arrivals, profiles, cfg);
        EXPECT_TRUE(m == again);
        EXPECT_NE(m.digest, 0u);
    }
}

} // namespace
} // namespace memento
