/**
 * @file
 * Tests for the configuration-file parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config_file.h"
#include "sim/error.h"

namespace memento {
namespace {

TEST(ConfigFile, ParsesTypesAndSuffixes)
{
    MachineConfig cfg = defaultConfig();
    std::istringstream is(R"(
# comment line
core.freq_ghz = 2.5
l1d.size = 64k          # inline comment
llc.size = 4m
dram.size = 32g
memento.enabled = true
memento.bypass = off
kernel.fault_instructions = 1234
)");
    applyConfigStream(is, cfg);
    EXPECT_DOUBLE_EQ(cfg.core.freqGhz, 2.5);
    EXPECT_EQ(cfg.l1d.sizeBytes, 64u << 10);
    EXPECT_EQ(cfg.llc.sizeBytes, 4u << 20);
    EXPECT_EQ(cfg.dram.sizeBytes, 32ull << 30);
    EXPECT_TRUE(cfg.memento.enabled);
    EXPECT_FALSE(cfg.memento.bypassEnabled);
    EXPECT_EQ(cfg.kernel.faultInstructions, 1234u);
}

TEST(ConfigFile, SingleOptionOverride)
{
    MachineConfig cfg = defaultConfig();
    applyConfigOption("memento.objects_per_arena", "128", cfg);
    applyConfigOption("tuning.pymalloc_arena", "512k", cfg);
    applyConfigOption("core.store_hidden", "0.5", cfg);
    EXPECT_EQ(cfg.memento.objectsPerArena, 128u);
    EXPECT_EQ(cfg.tuning.pymallocArenaBytes, 512u << 10);
    EXPECT_DOUBLE_EQ(cfg.core.storeLatencyHiddenFraction, 0.5);
}

TEST(ConfigFile, BooleanSpellings)
{
    MachineConfig cfg = defaultConfig();
    for (const char *yes : {"true", "on", "1", "yes"}) {
        cfg.memento.enabled = false;
        applyConfigOption("memento.enabled", yes, cfg);
        EXPECT_TRUE(cfg.memento.enabled) << yes;
    }
    for (const char *no : {"false", "off", "0", "no"}) {
        cfg.memento.enabled = true;
        applyConfigOption("memento.enabled", no, cfg);
        EXPECT_FALSE(cfg.memento.enabled) << no;
    }
}

TEST(ConfigFileError, UnknownKeyThrows)
{
    MachineConfig cfg = defaultConfig();
    EXPECT_THROW(applyConfigOption("l1d.sizze", "64k", cfg), SimError);
    try {
        applyConfigOption("l1d.sizze", "64k", cfg);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
        EXPECT_NE(std::string(e.what()).find("unknown key"),
                  std::string::npos);
    }
}

TEST(ConfigFileError, MalformedValueThrows)
{
    MachineConfig cfg = defaultConfig();
    EXPECT_THROW(applyConfigOption("l1d.size", "sixty-four", cfg),
                 SimError);
    EXPECT_THROW(applyConfigOption("core.freq_ghz", "fast", cfg),
                 SimError);
    EXPECT_THROW(applyConfigOption("memento.enabled", "maybe", cfg),
                 SimError);
}

TEST(ConfigFileError, MissingEqualsThrows)
{
    MachineConfig cfg = defaultConfig();
    std::istringstream is("l1d.size 64k\n");
    try {
        applyConfigStream(is, cfg);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
        EXPECT_NE(std::string(e.what()).find("missing '='"),
                  std::string::npos);
    }
}

TEST(ConfigFile, EmptyAndCommentOnlyStreamsAreFine)
{
    MachineConfig cfg = defaultConfig();
    std::istringstream is("\n\n# nothing here\n   \n");
    applyConfigStream(is, cfg);
    EXPECT_EQ(cfg.l1d.sizeBytes, 32u << 10); // Unchanged defaults.
}

TEST(ConfigFile, ParsedConfigDrivesRealMachineGeometry)
{
    MachineConfig cfg = defaultConfig();
    std::istringstream is("l1d.size = 16k\nl1d.ways = 4\n");
    applyConfigStream(is, cfg);
    EXPECT_EQ(cfg.l1d.numSets(), (16u << 10) / (4 * 64));
}

} // namespace
} // namespace memento
