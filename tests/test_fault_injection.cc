/**
 * @file
 * Deterministic fault-injection tests: every inject.* fault must surface
 * as a structured, recoverable SimError captured by the fault-tolerant
 * runner (Experiment::tryRunOne), never as an abort, and a plan scoped
 * to another workload must leave the run untouched.
 */

#include <gtest/gtest.h>

#include <string>

#include "machine/experiment.h"
#include "sim/config.h"
#include "sim/error.h"
#include "test_util.h"
#include "wl/trace_generator.h"

namespace memento {
namespace {

WorkloadSpec
tinySpec(Language lang, const std::string &id = "tiny")
{
    WorkloadSpec spec;
    spec.id = id;
    spec.lang = lang;
    spec.numAllocs = 400;
    spec.sizeDist = SizeDistribution({SizeBucket{1.0, 16, 128}});
    spec.largeDist = SizeDistribution({SizeBucket{1.0, 520, 2048}});
    spec.lifetime = {.pShort = 0.8, .meanShortDistance = 4.0,
                     .pLongFreed = 0.0, .meanLongDistance = 100.0};
    spec.pLarge = 0.01;
    spec.computePerAlloc = 50;
    spec.staticWsBytes = 64 << 10;
    spec.rpcBytes = 1024;
    spec.seed = 42;
    return spec;
}

// ---------------------------------------------------------------------
// Fault matrix: each armed inject.* key yields its expected category.
// ---------------------------------------------------------------------

struct FaultCase
{
    const char *name;
    bool memento; ///< Memento config + Python, else baseline + C++.
    std::uint64_t FaultPlan::*field;
    std::uint64_t at;
    std::uint64_t checkInterval; ///< Armed for corruption detection.
    ErrorCategory expected;
    const char *substr;
};

constexpr FaultCase kFaultCases[] = {
    {"PoolExhaust", true, &FaultPlan::poolExhaustAtPage, 4, 0,
     ErrorCategory::OutOfMemory, "pool exhausted"},
    {"MmapFail", false, &FaultPlan::mmapFailAt, 2, 0,
     ErrorCategory::OutOfMemory, "mmap failed"},
    {"TraceTruncate", false, &FaultPlan::traceTruncateAt, 50, 0,
     ErrorCategory::Trace, "truncated"},
    {"TraceCorrupt", false, &FaultPlan::traceCorruptAt, 20, 0,
     ErrorCategory::Trace, "unknown object"},
    {"ArenaBitFlip", true, &FaultPlan::arenaBitFlipAt, 10, 1,
     ErrorCategory::Corruption, "invariant check failed"},
};

class FaultMatrixTest : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(FaultMatrixTest, CapturedAsStructuredFailure)
{
    const FaultCase &fc = GetParam();
    const WorkloadSpec spec =
        tinySpec(fc.memento ? Language::Python : Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg =
        fc.memento ? test::smallMementoConfig() : test::smallConfig();
    cfg.inject.*fc.field = fc.at;
    cfg.check.interval = fc.checkInterval;

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.error->category, fc.expected) << res.error->message;
    EXPECT_NE(res.error->message.find(fc.substr), std::string::npos)
        << res.error->message;
}

INSTANTIATE_TEST_SUITE_P(
    Faults, FaultMatrixTest, ::testing::ValuesIn(kFaultCases),
    [](const ::testing::TestParamInfo<FaultCase> &info) {
        return std::string(info.param.name);
    });

// ---------------------------------------------------------------------
// Failure localisation and partial metrics
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, TraceCorruptionTagsOffendingOp)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallConfig();
    cfg.inject.traceCorruptAt = 20; // 1-based op 20 = index 19.

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    ASSERT_TRUE(res.error->hasOpIndex());
    EXPECT_EQ(res.error->opIndex, 19u);
    // The partial window up to the fault is still reported.
    EXPECT_GT(res.cycles, 0u);
}

TEST(FaultInjectionTest, SetupFailureCapturedWithoutMetrics)
{
    const WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallMementoConfig();
    cfg.inject.poolExhaustAtPage = 1; // Fires creating the process.

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.error->category, ErrorCategory::OutOfMemory);
    EXPECT_FALSE(res.error->hasOpIndex());
}

TEST(FaultInjectionTest, RunOneThrowsWhatTryRunOneCaptures)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallConfig();
    cfg.inject.traceCorruptAt = 20;

    try {
        Experiment::runOne(spec, trace, cfg);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Trace);
        EXPECT_EQ(e.opIndex(), 19u);
    }
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(WatchdogTest, OpBudgetExceededRaisesTimeout)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallConfig();
    cfg.check.maxOps = 10;

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.error->category, ErrorCategory::Timeout);
    EXPECT_NE(res.error->message.find("watchdog"), std::string::npos);
    EXPECT_EQ(res.error->opIndex, 10u);
}

TEST(WatchdogTest, CycleBudgetExceededRaisesTimeout)
{
    const WorkloadSpec spec = tinySpec(Language::Cpp);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallConfig();
    cfg.check.maxCycles = 100; // Exhausted within the first few ops.

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.error->category, ErrorCategory::Timeout);
}

// ---------------------------------------------------------------------
// Workload scoping and sweep isolation
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, PlanScopedToOtherWorkloadIsStripped)
{
    const WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallMementoConfig();
    cfg.inject.traceCorruptAt = 20;
    cfg.inject.workload = "other"; // Not this run's workload.

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    EXPECT_FALSE(res.failed()) << res.error->message;
    EXPECT_GT(res.cycles, 0u);
}

TEST(FaultInjectionTest, PlanScopedToMatchingWorkloadApplies)
{
    const WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallMementoConfig();
    cfg.inject.traceCorruptAt = 20;
    cfg.inject.workload = spec.id;

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.error->category, ErrorCategory::Trace);
}

TEST(FaultInjectionTest, SweepIsolatesFailureToTargetedWorkload)
{
    // A keep-going sweep with a plan targeting one workload must finish
    // the others cleanly and report exactly one structured failure.
    MachineConfig cfg = test::smallMementoConfig();
    cfg.inject.traceCorruptAt = 20;
    cfg.inject.workload = "tiny-b";

    unsigned failures = 0;
    for (const char *id : {"tiny-a", "tiny-b", "tiny-c"}) {
        const WorkloadSpec spec = tinySpec(Language::Python, id);
        const Trace trace = TraceGenerator(spec).generate();
        const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
        if (res.failed()) {
            ++failures;
            EXPECT_EQ(spec.id, "tiny-b");
            EXPECT_EQ(res.error->category, ErrorCategory::Trace);
            EXPECT_EQ(res.error->opIndex, 19u);
        } else {
            EXPECT_GT(res.cycles, 0u);
        }
    }
    EXPECT_EQ(failures, 1u);
}

// ---------------------------------------------------------------------
// Healthy runs under the checking machinery
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, PeriodicChecksPassOnHealthyRun)
{
    const WorkloadSpec spec = tinySpec(Language::Python);
    const Trace trace = TraceGenerator(spec).generate();
    MachineConfig cfg = test::smallMementoConfig();
    cfg.check.interval = 64;

    const RunResult res = Experiment::tryRunOne(spec, trace, cfg);
    EXPECT_FALSE(res.failed()) << res.error->message;
}

} // namespace
} // namespace memento
