/**
 * @file
 * Crash-safety and resumability tests for the sweep engine's result
 * store integration (machine/sweep.h + machine/result_store.h).
 *
 * The contract under test: a sweep killed at ANY instant — even with a
 * half-written record left under a final cell name — resumes to the
 * exact outcomes of an uninterrupted sweep, at any job count. The
 * kill is real: these tests fork, let the crash injections _exit the
 * child mid-sweep, and resume against the store the corpse left
 * behind.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "machine/result_store.h"
#include "machine/sweep.h"
#include "sim/error.h"
#include "test_util.h"
#include "wl/workloads.h"

namespace memento {
namespace {

namespace fs = std::filesystem;

/** A unique store directory per test, removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (fs::temp_directory_path() /
                 ("memento-resume-test-" + std::to_string(::getpid()) +
                  "-" + tag + "-" + std::to_string(counter++)))
                    .string();
        fs::remove_all(path_);
    }

    ~TempStoreDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Shrink a paper workload so a test run takes milliseconds. */
WorkloadSpec
downscale(const WorkloadSpec &spec)
{
    WorkloadSpec s = spec;
    s.numAllocs = std::min<std::uint64_t>(s.numAllocs, 1500);
    s.staticWsBytes = std::min<std::uint64_t>(s.staticWsBytes, 64 << 10);
    s.rpcBytes = std::min<std::uint64_t>(s.rpcBytes, 4 << 10);
    return s;
}

/** Six deterministic cells: three workloads x {base, memento}. */
std::vector<SweepTask>
smallTaskList()
{
    RunOptions ro;
    ro.computeDigest = true;
    std::vector<SweepTask> tasks;
    for (const char *id : {"aes", "jl", "silo"}) {
        const WorkloadSpec spec = downscale(workloadById(id));
        tasks.push_back({spec, test::smallConfig(), ro, nullptr, {}});
        tasks.push_back(
            {spec, test::smallMementoConfig(), ro, nullptr, {}});
    }
    return tasks;
}

std::vector<SweepOutcome>
sweepWith(const std::vector<SweepTask> &tasks, SweepOptions so)
{
    SweepEngine engine(std::move(so));
    return engine.run(tasks);
}

/** The uninterrupted no-store reference for @p tasks. */
std::vector<SweepOutcome>
reference(const std::vector<SweepTask> &tasks)
{
    SweepOptions so;
    so.jobs = 1;
    so.keepGoing = true;
    return sweepWith(tasks, so);
}

void
expectSameResults(const std::vector<SweepOutcome> &got,
                  const std::vector<SweepOutcome> &want,
                  const std::string &ctx)
{
    ASSERT_EQ(got.size(), want.size()) << ctx;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_FALSE(got[i].skipped) << ctx << " task " << i;
        EXPECT_TRUE(got[i].result == want[i].result)
            << ctx << ": task " << i << " diverges";
    }
}

/**
 * Fork, run the sweep in the child against a store armed with @p
 * crash_opts, and return the child's exit status. The injections
 * _exit(121/137) mid-sweep; a child that survives exits 0.
 */
int
runSweepInChildThatCrashes(const std::vector<SweepTask> &tasks,
                           ResultStoreOptions crash_opts, unsigned jobs)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ResultStore store(std::move(crash_opts));
        SweepOptions so;
        so.jobs = jobs;
        so.keepGoing = true;
        so.store = &store;
        SweepEngine engine(std::move(so));
        engine.run(tasks);
        ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
}

TEST(CrashResume, KillMidSweepThenResumeMatchesReference)
{
    TempStoreDir dir("kill");
    const std::vector<SweepTask> tasks = smallTaskList();
    const std::vector<SweepOutcome> want = reference(tasks);

    // The child dies by _exit right after its third completed store —
    // the moment SIGKILL would strike — leaving exactly three durable
    // cells behind.
    const int status = runSweepInChildThatCrashes(
        tasks, {.dir = dir.path(), .codeVersion = "test-sha", .killAt = 3},
        2);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);
    EXPECT_EQ(ResultStore({.dir = dir.path(), .codeVersion = "test-sha"})
                  .listCellFiles()
                  .size(),
              3u);

    // Resume at a different job count: identical outcomes, three of
    // them straight from the corpse's store.
    ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions so;
    so.jobs = 3;
    so.keepGoing = true;
    so.store = &store;
    const std::vector<SweepOutcome> got = sweepWith(tasks, so);
    expectSameResults(got, want, "resume after kill");

    std::size_t cached = 0;
    for (const SweepOutcome &out : got)
        cached += out.fromCache ? 1 : 0;
    EXPECT_EQ(cached, 3u);
    EXPECT_EQ(store.stats().hits, 3u);
    EXPECT_EQ(store.stats().quarantined, 0u);
}

TEST(CrashResume, TornRecordIsQuarantinedAndRecomputedOnResume)
{
    TempStoreDir dir("torn");
    const std::vector<SweepTask> tasks = smallTaskList();
    const std::vector<SweepOutcome> want = reference(tasks);

    // The child tears its second store in half under the FINAL cell
    // name (simulating the worst a broken filesystem can do) and dies.
    const int status = runSweepInChildThatCrashes(
        tasks,
        {.dir = dir.path(), .codeVersion = "test-sha", .tornWriteAt = 2},
        1);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 121);
    // One complete cell plus one torn record under a final name.
    EXPECT_EQ(ResultStore({.dir = dir.path(), .codeVersion = "test-sha"})
                  .listCellFiles()
                  .size(),
              2u);

    ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions so;
    so.jobs = 2;
    so.keepGoing = true;
    so.store = &store;
    const std::vector<SweepOutcome> got = sweepWith(tasks, so);
    expectSameResults(got, want, "resume after torn write");

    // The torn record was detected, quarantined, and recomputed.
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, tasks.size() - 1);
}

TEST(ResumeSweep, CacheHitsAreIdenticalAtAnyJobCount)
{
    TempStoreDir dir("jobs");
    const std::vector<SweepTask> tasks = smallTaskList();
    const std::vector<SweepOutcome> want = reference(tasks);

    ResultStore seed({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions fill;
    fill.jobs = 1;
    fill.keepGoing = true;
    fill.store = &seed;
    expectSameResults(sweepWith(tasks, fill), want, "filling sweep");

    for (unsigned jobs : {1u, 2u, 4u}) {
        ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
        SweepOptions so;
        so.jobs = jobs;
        so.keepGoing = true;
        so.store = &store;
        const std::vector<SweepOutcome> got = sweepWith(tasks, so);
        expectSameResults(got, want,
                          "cached at jobs " + std::to_string(jobs));
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_TRUE(got[i].fromCache) << "jobs " << jobs << " task "
                                          << i;
        EXPECT_EQ(store.stats().hits, tasks.size());
        EXPECT_EQ(store.stats().misses, 0u);
    }
}

/** A task list whose middle task fails on every attempt. */
std::vector<SweepTask>
taskListWithDeterministicFailure()
{
    std::vector<SweepTask> tasks = smallTaskList();
    tasks[2].cfg.inject.traceCorruptAt = 200;
    tasks[2].cfg.inject.workload = tasks[2].spec.id;
    return tasks;
}

TEST(ResumeSweep, RetryAttemptsAreDeterministicAtAnyJobCount)
{
    const std::vector<SweepTask> tasks =
        taskListWithDeterministicFailure();

    for (unsigned jobs : {1u, 2u, 4u}) {
        SweepOptions so;
        so.jobs = jobs;
        so.keepGoing = true;
        so.retries = 2;
        const std::vector<SweepOutcome> got = sweepWith(tasks, so);
        for (std::size_t i = 0; i < got.size(); ++i) {
            if (i == 2) {
                ASSERT_TRUE(got[i].result.failed()) << "jobs " << jobs;
                EXPECT_EQ(got[i].result.error->category,
                          ErrorCategory::Trace);
                // Deterministic failure: first try + both retries.
                EXPECT_EQ(got[i].attempts, 3u) << "jobs " << jobs;
            } else {
                EXPECT_FALSE(got[i].result.failed())
                    << "jobs " << jobs << " task " << i;
                EXPECT_EQ(got[i].attempts, 1u)
                    << "jobs " << jobs << " task " << i;
            }
        }
    }
}

TEST(ResumeSweep, CachedFailureKeepsItsRecordedAttempts)
{
    TempStoreDir dir("cached-failure");
    const std::vector<SweepTask> tasks =
        taskListWithDeterministicFailure();

    ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions so;
    so.jobs = 2;
    so.keepGoing = true;
    so.retries = 2;
    so.store = &store;
    const std::vector<SweepOutcome> first = sweepWith(tasks, so);
    ASSERT_TRUE(first[2].result.failed());
    EXPECT_EQ(first[2].attempts, 3u);
    EXPECT_FALSE(first[2].fromCache);

    // The re-run serves the failure from the store without burning new
    // attempts; the recorded count survives the round-trip.
    const std::vector<SweepOutcome> second = sweepWith(tasks, so);
    ASSERT_TRUE(second[2].result.failed());
    EXPECT_TRUE(second[2].fromCache);
    EXPECT_EQ(second[2].attempts, 3u);
    EXPECT_TRUE(second[2].result == first[2].result);
}

TEST(ResumeSweep, ShardedStoresMergeToTheFullSweep)
{
    TempStoreDir dir0("shard0");
    TempStoreDir dir1("shard1");
    TempStoreDir merged_dir("shard-merged");
    const std::vector<SweepTask> tasks = smallTaskList();
    const std::vector<SweepOutcome> want = reference(tasks);

    // Two "machines" each compute the even / odd half of the sweep
    // into their own store.
    for (unsigned shard : {0u, 1u}) {
        std::vector<SweepTask> part;
        for (std::size_t i = 0; i < tasks.size(); ++i)
            if (i % 2 == shard)
                part.push_back(tasks[i]);
        ResultStore store({.dir = shard == 0 ? dir0.path() : dir1.path(),
                           .codeVersion = "test-sha"});
        SweepOptions so;
        so.jobs = 2;
        so.keepGoing = true;
        so.store = &store;
        sweepWith(part, so);
        EXPECT_EQ(store.stats().stores, tasks.size() / 2);
    }

    ResultStore merged(
        {.dir = merged_dir.path(), .codeVersion = "test-sha"});
    const MergeStats m0 = merged.mergeFrom(dir0.path());
    const MergeStats m1 = merged.mergeFrom(dir1.path());
    EXPECT_EQ(m0.merged + m1.merged, tasks.size());
    EXPECT_EQ(m0.corrupt + m1.corrupt, 0u);

    // The merged store replays the full sweep without computing a cell.
    SweepOptions so;
    so.jobs = 4;
    so.keepGoing = true;
    so.store = &merged;
    const std::vector<SweepOutcome> got = sweepWith(tasks, so);
    expectSameResults(got, want, "merged shards");
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].fromCache) << "task " << i;
}

TEST(ResumeSweep, RevalidateDetectsDoctoredRecordAndHealsTheStore)
{
    TempStoreDir dir("revalidate");
    std::vector<SweepTask> tasks = {smallTaskList()[0]};
    const std::vector<SweepOutcome> want = reference(tasks);

    ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions fill;
    fill.jobs = 1;
    fill.keepGoing = true;
    fill.store = &store;
    sweepWith(tasks, fill);

    // Doctor the cached cell: same key, subtly different result. The
    // record itself stays checksum-valid — only recomputation can
    // catch this.
    const CellKey key = store.runCellKey(tasks[0].spec.id, tasks[0].cfg,
                                         tasks[0].opts);
    RunResult doctored;
    unsigned attempts = 1;
    ASSERT_TRUE(store.loadRun(key, doctored, attempts));
    doctored.cycles += 1;
    store.storeRun(key, doctored, attempts);

    // A revalidating sweep recomputes the hit, sees the divergence,
    // fails the cell loudly, and heals the store.
    SweepOptions audit = fill;
    audit.revalidateEvery = 1;
    const std::vector<SweepOutcome> caught = sweepWith(tasks, audit);
    ASSERT_TRUE(caught[0].result.failed());
    EXPECT_EQ(caught[0].result.error->category,
              ErrorCategory::Corruption);
    EXPECT_EQ(store.stats().quarantined, 1u);

    // Healed: the next revalidating sweep passes its audit.
    ResultStore healed({.dir = dir.path(), .codeVersion = "test-sha"});
    SweepOptions again;
    again.jobs = 1;
    again.keepGoing = true;
    again.store = &healed;
    again.revalidateEvery = 1;
    const std::vector<SweepOutcome> got = sweepWith(tasks, again);
    expectSameResults(got, want, "after healing");
    EXPECT_EQ(healed.stats().revalidated, 1u);
    EXPECT_EQ(healed.stats().quarantined, 0u);
}

TEST(ResumeSweep, StopFlagSkipsEverythingNotYetStarted)
{
    TempStoreDir dir("stop");
    const std::vector<SweepTask> tasks = smallTaskList();

    ResultStore store({.dir = dir.path(), .codeVersion = "test-sha"});
    std::atomic<bool> stop{true}; // Raised before the sweep begins.
    SweepOptions so;
    so.jobs = 2;
    so.keepGoing = true;
    so.store = &store;
    so.stopFlag = &stop;
    const std::vector<SweepOutcome> got = sweepWith(tasks, so);

    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].skipped) << "task " << i;
    EXPECT_EQ(store.stats().stores, 0u);
    EXPECT_TRUE(store.listCellFiles().empty());
}

} // namespace
} // namespace memento
