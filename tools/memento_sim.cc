/**
 * @file
 * memento_sim — the command-line front end of the simulator.
 *
 *   memento_sim list
 *       List the built-in workloads with their key statistics.
 *
 *   memento_sim run <workload>|all [options]
 *       Run one workload (or every workload) and dump the results.
 *
 *   memento_sim compare <workload>|all [options]
 *       Paired baseline vs Memento (and bypass-off) runs.
 *
 *   memento_sim trace <workload> <file>
 *       Synthesize the workload's operation trace into <file>
 *       (replayable with run --trace).
 *
 *   memento_sim check <workload>|all [--trace FILE] [options]
 *       Static pre-flight analysis: abstract-interpret the workload's
 *       trace (or a recorded trace file) over shadow allocation state
 *       only — no caches, no DRAM, no cycle ledger — and report every
 *       memory-discipline violation with a rule id, severity, and the
 *       exact op index. ~100x cheaper than run; `check all` fans out
 *       over the work-stealing pool with byte-identical output at any
 *       --jobs level. Exits non-zero when any error remains.
 *
 *   memento_sim lint-config <file> [options]
 *       Validate a `key = value` config file against the declared
 *       schema: unknown keys (with "did you mean" suggestions),
 *       duplicates, malformed or out-of-range values, and cross-key
 *       contradictions. Exits non-zero when any error remains.
 *
 * Options:
 *   --config FILE     apply `key = value` lines (see sim/config_file.h)
 *   --set key=value   single override (repeatable, applied after file)
 *   --memento         enable the Memento hardware (run only)
 *   --cold            charge container set-up (cold start)
 *   --trace FILE      replay a recorded trace instead of synthesizing
 *   --stats           dump every raw counter after the run
 *   --keep-going      survive failing runs: finish the sweep, then print
 *                     a structured failure report and exit non-zero
 *   --digest          run each workload twice and compare machine-state
 *                     digests (determinism check)
 *   --jobs N          run the sweep on N worker threads (default: the
 *                     hardware concurrency). Output, digests, and the
 *                     failure report are byte-identical at any N.
 *   --json            render check / lint-config findings as a JSON
 *                     array instead of sanitizer-style text
 *   --allow RULE      suppress findings of a rule id (repeatable)
 *   --werror          treat analysis warnings as errors
 *
 * A failing run (out of memory, bad trace, corruption detected by the
 * invariant checker, watchdog timeout) raises SimError; without
 * --keep-going the first failure stops the sweep. Simulator bugs still
 * panic and user errors on the command line are still fatal.
 *
 * Sweeps (run all / compare all) fan individual runs out over the
 * machine/sweep.h work-stealing pool and merge results back in
 * workload order, so parallelism never changes what gets printed.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <iostream>
#include <string>
#include <vector>

#include "an/lifetime.h"
#include "an/report.h"
#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "machine/machine.h"
#include "machine/sweep.h"
#include "sa/config_lint.h"
#include "sa/diag.h"
#include "sa/trace_check.h"
#include "sim/config_file.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "val/digest.h"
#include "wl/trace_generator.h"

using namespace memento;

namespace {

struct CliOptions
{
    MachineConfig cfg = defaultConfig();
    bool memento = false;
    bool cold = false;
    bool dumpStats = false;
    bool keepGoing = false;
    bool digest = false;
    bool json = false;
    unsigned jobs = 0; ///< Sweep worker threads; 0 = hw concurrency.
    std::string traceFile;
    DiagPolicy diagPolicy; ///< --allow / --werror (check, lint-config).
};

/** One failed run, kept for the end-of-sweep report. */
struct FailureRecord
{
    std::string workload;
    RunError error;
};

void
printFailureReport(const std::vector<FailureRecord> &failures)
{
    std::cout << "\n" << failures.size() << " run(s) failed:\n";
    TextTable t({"workload", "category", "op", "error"});
    for (const FailureRecord &f : failures) {
        t.newRow();
        t.cell(f.workload);
        t.cell(std::string(errorCategoryName(f.error.category)));
        t.cell(f.error.hasOpIndex() ? std::to_string(f.error.opIndex)
                                    : std::string("-"));
        t.cell(f.error.message);
    }
    t.print(std::cout);
}

void
usage()
{
    std::cerr
        << "usage: memento_sim <command> [args]\n"
           "  list                      list built-in workloads\n"
           "  run <workload> [opts]     run one configuration\n"
           "  compare <workload>|all    paired baseline vs Memento\n"
           "  trace <workload> <file>   write the workload's trace\n"
           "  check <workload>|all      static trace analysis (no sim)\n"
           "  lint-config <file>        validate a config file\n"
           "options: --config FILE, --set key=value, --memento, --cold,\n"
           "         --trace FILE, --stats, --keep-going, --digest,\n"
           "         --jobs N, --json, --allow RULE, --werror\n";
}

CliOptions
parseOptions(const std::vector<std::string> &args, std::size_t from)
{
    CliOptions opts;
    for (std::size_t i = from; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            fatal_if(i + 1 >= args.size(), "missing value after ", arg);
            return args[++i];
        };
        if (arg == "--config") {
            applyConfigFile(next(), opts.cfg);
        } else if (arg == "--set") {
            const std::string &kv = next();
            const std::size_t eq = kv.find('=');
            fatal_if(eq == std::string::npos,
                     "--set expects key=value, got ", kv);
            applyConfigOption(kv.substr(0, eq), kv.substr(eq + 1),
                              opts.cfg);
        } else if (arg == "--memento") {
            opts.memento = true;
        } else if (arg == "--cold") {
            opts.cold = true;
        } else if (arg == "--stats") {
            opts.dumpStats = true;
        } else if (arg == "--keep-going") {
            opts.keepGoing = true;
        } else if (arg == "--digest") {
            opts.digest = true;
        } else if (arg == "--jobs") {
            const std::string &v = next();
            char *end = nullptr;
            const long n = std::strtol(v.c_str(), &end, 10);
            fatal_if(end == v.c_str() || *end != '\0' || n < 1 ||
                         n > 4096,
                     "--jobs expects a positive thread count, got ", v);
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--trace") {
            opts.traceFile = next();
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--werror") {
            opts.diagPolicy.werror = true;
        } else if (arg == "--allow") {
            const std::string &rule = next();
            fatal_if(findDiagRule(rule) == nullptr,
                     "--allow: unknown rule '", rule,
                     "' (see the rule table in README.md)");
            opts.diagPolicy.allowed.insert(rule);
        } else {
            fatal("unknown option ", arg);
        }
    }
    if (opts.memento)
        opts.cfg.memento.enabled = true;
    return opts;
}

Trace
traceFor(const WorkloadSpec &spec, const CliOptions &opts)
{
    if (opts.traceFile.empty())
        return TraceGenerator(spec).generate();
    std::ifstream in(opts.traceFile);
    fatal_if(!in, "cannot open trace file ", opts.traceFile);
    return readTrace(in);
}

int
cmdList()
{
    TextTable t({"id", "group", "lang", "allocs", "MallocPKI",
                 "<=512B", "short-lived", "description"});
    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = TraceGenerator(spec).generate();
        const TraceProfile profile = profileTrace(trace);
        t.newRow();
        t.cell(spec.id);
        t.cell(domainName(spec.domain));
        t.cell(languageName(spec.lang));
        t.cell(profile.allocations);
        t.cell(profile.mallocPki, 2);
        t.cell(percentStr(profile.sizeHist.percent(0) / 100.0));
        t.cell(percentStr(profile.lifetimeHist.percent(0) / 100.0));
        t.cell(spec.description);
    }
    t.print(std::cout);
    return 0;
}

void
printRun(const MachineConfig &cfg, const RunResult &res)
{
    TextTable t({"Metric", "Value"});
    t.newRow(); t.cell("cycles"); t.cell(res.cycles);
    t.newRow(); t.cell("execution ms"); t.cell(res.executionMs(cfg), 3);
    t.newRow(); t.cell("instructions"); t.cell(res.instructions);
    t.newRow(); t.cell("DRAM bytes"); t.cell(res.dramBytes);
    t.newRow(); t.cell("page faults"); t.cell(res.pageFaults);
    t.newRow(); t.cell("mmap calls"); t.cell(res.mmapCalls);
    t.newRow(); t.cell("peak pages"); t.cell(res.peakResidentPages);
    t.newRow(); t.cell("user MM cycles"); t.cell(res.userMmCycles());
    t.newRow(); t.cell("kernel MM cycles"); t.cell(res.kernelMmCycles());
    t.newRow(); t.cell("hw MM cycles"); t.cell(res.hwMmCycles());
    if (res.objAllocs > 0) {
        t.newRow(); t.cell("small allocs"); t.cell(res.objAllocs);
        t.newRow(); t.cell("small frees"); t.cell(res.objFrees);
    }
    if (res.hotAllocHits + res.hotAllocMisses > 0) {
        t.newRow();
        t.cell("HOT alloc hit rate");
        t.cell(percentStr(static_cast<double>(res.hotAllocHits) /
                          (res.hotAllocHits + res.hotAllocMisses)));
        t.newRow();
        t.cell("bypassed lines");
        t.cell(res.bypassedLines);
    }
    t.print(std::cout);
}

int
cmdRun(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all") {
        fatal_if(!opts.traceFile.empty(),
                 "--trace replays one workload, not 'all'");
        fatal_if(opts.dumpStats, "--stats dumps one workload, not 'all'");
        specs = allWorkloads();
    } else {
        specs.push_back(workloadById(id));
    }

    RunOptions run_opts;
    run_opts.coldStart = opts.cold;
    run_opts.computeDigest = opts.digest;

    if (opts.dumpStats) {
        // Re-run with a live machine so raw counters can be dumped.
        const WorkloadSpec &spec = specs.front();
        const Trace trace = traceFor(spec, opts);
        Machine machine(opts.cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        executor.run(spec, trace, run_opts);
        machine.stats().dump(std::cout);
        return 0;
    }

    // Fan the sweep out over the work-stealing pool: one task per run
    // (a digest check is two runs, dispatched as sibling tasks). The
    // merge below reports strictly in workload order, so the output is
    // byte-identical at any --jobs level.
    const std::size_t runs_per = opts.digest ? 2 : 1;
    std::shared_ptr<const Trace> replay;
    if (!opts.traceFile.empty()) {
        std::ifstream in(opts.traceFile);
        fatal_if(!in, "cannot open trace file ", opts.traceFile);
        replay = std::make_shared<const Trace>(readTrace(in));
    }
    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size() * runs_per);
    for (const WorkloadSpec &spec : specs)
        for (std::size_t r = 0; r < runs_per; ++r)
            tasks.push_back({spec, opts.cfg, run_opts, replay});

    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    sweep_opts.keepGoing = opts.keepGoing;
    SweepEngine engine(sweep_opts);
    const std::vector<SweepOutcome> outcomes = engine.run(tasks);

    std::vector<FailureRecord> failures;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const WorkloadSpec &spec = specs[i];
        const RunResult &res = outcomes[i * runs_per].result;
        std::cout << "workload " << spec.id << " ("
                  << (opts.cfg.memento.enabled ? "memento" : "baseline")
                  << ")";
        if (res.failed()) {
            std::cout << ": FAILED ("
                      << errorCategoryName(res.error->category) << ")\n";
            failures.push_back({spec.id, *res.error});
            if (!opts.keepGoing)
                break;
            continue;
        }
        std::cout << "\n";
        printRun(opts.cfg, res);

        if (opts.digest) {
            // Paired run: an identical workload under an identical
            // configuration must reproduce the machine state exactly.
            const RunResult &again = outcomes[i * runs_per + 1].result;
            if (again.failed() || again.digest != res.digest) {
                RunError err;
                err.category = ErrorCategory::Internal;
                err.message =
                    again.failed()
                        ? "paired digest run failed: " +
                              again.error->message
                        : "state digest mismatch: " +
                              digestToHex(res.digest) + " vs " +
                              digestToHex(again.digest) +
                              " (nondeterministic state)";
                failures.push_back({spec.id, err});
                if (!opts.keepGoing)
                    break;
            } else {
                std::cout << "state digest " << digestToHex(res.digest)
                          << " (reproduced across paired runs)\n";
            }
        }
    }

    if (!failures.empty()) {
        printFailureReport(failures);
        return 1;
    }
    return 0;
}

int
cmdCompare(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all")
        specs = allWorkloads();
    else
        specs.push_back(workloadById(id));

    MachineConfig base_cfg = opts.cfg;
    base_cfg.memento.enabled = false;
    MachineConfig memento_cfg = opts.cfg;
    memento_cfg.memento.enabled = true;

    RunOptions run_opts;
    run_opts.coldStart = opts.cold;

    // Each workload's (baseline, memento, no-bypass) triple fans out
    // as three tasks sharing one cached trace; the progress line fires
    // as a workload's first task starts (serialized by the engine).
    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    sweep_opts.keepGoing = opts.keepGoing;
    sweep_opts.onTaskStart = [](const SweepTask &task, std::size_t idx) {
        if (idx % 3 == 0)
            std::cerr << "  running " << task.spec.id << "...\n";
    };
    SweepEngine engine(sweep_opts);
    const std::vector<ComparisonOutcome> outcomes =
        compareSweep(specs, base_cfg, memento_cfg, run_opts, engine);

    TextTable t({"workload", "speedup", "traffic", "faults base->mem",
                 "alloc/free/page/bypass"});
    std::vector<FailureRecord> failures;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const ComparisonOutcome &out = outcomes[i];
        if (out.error) {
            failures.push_back({specs[i].id, *out.error});
            if (!opts.keepGoing)
                break;
            continue;
        }
        const Comparison &cmp = out.cmp;
        Breakdown bd = computeBreakdown(cmp);
        t.newRow();
        t.cell(cmp.spec.id);
        t.cell(cmp.speedup(), 3);
        t.cell(percentStr(cmp.bandwidthReduction()));
        t.cell(std::to_string(cmp.base.pageFaults) + "->" +
               std::to_string(cmp.memento.pageFaults));
        t.cell(percentStr(bd.objAlloc, 0) + "/" +
               percentStr(bd.objFree, 0) + "/" +
               percentStr(bd.pageMgmt, 0) + "/" +
               percentStr(bd.bypass, 0));
    }
    t.print(std::cout);
    if (!failures.empty()) {
        printFailureReport(failures);
        return 1;
    }
    return 0;
}

/** Render a finished report and map it to an exit status. */
int
finishAnalysis(const DiagReport &report, const CliOptions &opts,
               const std::string &what)
{
    if (opts.json) {
        report.printJson(std::cout, opts.diagPolicy);
        std::cout << "\n";
    } else {
        report.printText(std::cout, opts.diagPolicy);
        std::cout << what << ": " << report.errors(opts.diagPolicy)
                  << " error(s), " << report.warnings(opts.diagPolicy)
                  << " warning(s)\n";
    }
    return report.clean(opts.diagPolicy) ? 0 : 1;
}

int
cmdCheck(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all") {
        fatal_if(!opts.traceFile.empty(),
                 "--trace checks one workload, not 'all'");
        specs = allWorkloads();
    } else {
        specs.push_back(workloadById(id));
    }

    const TraceCheckPolicy policy = TraceCheckPolicy::fromConfig(opts.cfg);

    // One slot per workload, filled by the work-stealing pool and
    // merged in workload order — the same determinism recipe as the
    // sweep engine, so output is byte-identical at any --jobs level.
    std::vector<DiagReport> slots(specs.size());
    parallelFor(specs.size(), opts.jobs, [&](std::size_t i) {
        const WorkloadSpec &spec = specs[i];
        DiagReport &rep = slots[i];
        if (!opts.traceFile.empty()) {
            std::ifstream in(opts.traceFile);
            if (!in) {
                rep.add("trace-parse", opts.traceFile,
                        Diag::kNoLocation, "cannot open trace file");
                return;
            }
            checkTraceStream(in, policy, opts.traceFile, rep);
            return;
        }
        Trace trace = TraceGenerator(spec).generate();
        trace = applyTraceFaultPlan(trace, opts.cfg.inject, spec.id);
        checkTrace(trace, policy, spec.id, rep);
    });

    DiagReport report;
    for (const DiagReport &slot : slots)
        report.append(slot);
    return finishAnalysis(report, opts,
                          "checked " + std::to_string(specs.size()) +
                              " trace(s)");
}

int
cmdLintConfig(const std::string &path, const CliOptions &opts)
{
    DiagReport report;
    lintConfigFile(path, report);
    return finishAnalysis(report, opts, "linted " + path);
}

int
cmdTrace(const std::string &id, const std::string &path)
{
    const WorkloadSpec &spec = workloadById(id);
    const Trace trace = TraceGenerator(spec).generate();
    std::ofstream out(path);
    fatal_if(!out, "cannot open ", path, " for writing");
    writeTrace(trace, out);
    std::cout << "wrote " << trace.size() << " ops to " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        usage();
        return 1;
    }
    const std::string &cmd = args[0];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run" && args.size() >= 2)
            return cmdRun(args[1], parseOptions(args, 2));
        if (cmd == "compare" && args.size() >= 2)
            return cmdCompare(args[1], parseOptions(args, 2));
        if (cmd == "trace" && args.size() >= 3)
            return cmdTrace(args[1], args[2]);
        if (cmd == "check" && args.size() >= 2)
            return cmdCheck(args[1], parseOptions(args, 2));
        if (cmd == "lint-config" && args.size() >= 2)
            return cmdLintConfig(args[1], parseOptions(args, 2));
    } catch (const SimError &e) {
        std::cerr << "memento_sim: error ("
                  << errorCategoryName(e.category()) << "): " << e.what()
                  << "\n";
        return 1;
    }
    usage();
    return 1;
}
