/**
 * @file
 * memento_sim — the command-line front end of the simulator.
 *
 *   memento_sim list
 *       List the built-in workloads with their key statistics.
 *
 *   memento_sim run <workload>|all [options]
 *       Run one workload (or every workload) and dump the results.
 *
 *   memento_sim compare <workload>|all [options]
 *       Paired baseline vs Memento (and bypass-off) runs.
 *
 *   memento_sim trace <workload> <file>
 *       Synthesize the workload's operation trace into <file>
 *       (replayable with run --trace).
 *
 *   memento_sim check <workload>|all [--trace FILE] [options]
 *       Static pre-flight analysis: abstract-interpret the workload's
 *       trace (or a recorded trace file) over shadow allocation state
 *       only — no caches, no DRAM, no cycle ledger — and report every
 *       memory-discipline violation with a rule id, severity, and the
 *       exact op index. ~100x cheaper than run; `check all` fans out
 *       over the work-stealing pool with byte-identical output at any
 *       --jobs level. Exits non-zero when any error remains.
 *
 *   memento_sim lint-config <file> [options]
 *       Validate a `key = value` config file against the declared
 *       schema. Exits non-zero when any error remains.
 *
 *   memento_sim lint-src [paths...] [options]
 *       Determinism & thread-safety lint over the repo's own C++
 *       sources (default path: src). A comment/string-aware tokenizer
 *       drives repo-specific rules — unordered-container iteration,
 *       unseeded randomness, wall-clock reads in simulation code,
 *       unguarded members of mutex-holding classes, include cycles —
 *       reported through the same diagnostic engine as check and
 *       lint-config, so --allow/--werror/--json work unchanged. Files
 *       fan out over parallelFor and merge in sorted path order:
 *       byte-identical output at any --jobs level.
 *
 *   memento_sim rules [--json]
 *       Dump the registered diagnostic rule table (id, severity,
 *       summary). Text output is the markdown table embedded in
 *       README.md; CI regenerates the README section from it so the
 *       docs cannot drift from the registry.
 *
 *   memento_sim bench [options]
 *       Self-benchmark: replay the workload sweep and measure the
 *       simulator itself (ops/s, per-op latency percentiles, serial
 *       and parallel sweep wall time). Always writes the versioned
 *       JSON document to --out (default BENCH_PR8.json); --json also
 *       prints it to stdout instead of the text summary.
 *
 *   memento_sim fleet [options]
 *       Fleet-scale serverless node simulation (src/fleet): an
 *       open-loop arrival process (--arrival poisson|bursty|diurnal,
 *       --rate RPS, --invocations N) dispatched across --cores
 *       simulated cores under keep-alive and memory-budget policies.
 *       Reports p50/p99/p99.9 invocation latency, throughput,
 *       cold-start rate, and packing density, plus an FNV-1a digest of
 *       the complete fleet outcome; every number is derived from
 *       integer cycle counts, so output is byte-identical at any
 *       --jobs level and across --cache resumes.
 *
 *   memento_sim merge <out-dir> <in-dir>...
 *       Merge partial result stores (e.g. from --shard runs on other
 *       machines) into one, validating every record; corrupt source
 *       records are counted and skipped, never copied. Merging from
 *       zero readable cells is an error, not a silent empty store.
 *
 *   memento_sim help [command]
 *       Render the global usage page or one command's options.
 *
 * Crash-safe sweeps: `run all`, `compare all`, and `bench` accept
 * --cache DIR, which persists every completed cell to a
 * content-addressed result store (machine/result_store.h). A killed or
 * interrupted sweep resumes from the cache with byte-identical stdout;
 * --shard I/N partitions a sweep across machines for later `merge`;
 * --retry N isolates flaky cells; --revalidate audits cached results
 * by recomputing a sample. All cache chatter goes to stderr.
 *
 * Every command parses through the shared declarative flag table in
 * src/cli/options.h: one parser, one --help renderer, one error style.
 * `memento_sim help <command>` (or `<command> --help`) lists exactly
 * the flags that command accepts; passing any other flag is an error.
 *
 * The check and lint-config --json findings and the bench document all
 * share the versioned JSON envelope of sim/json.h
 * (`"schema_version"`, `"kind"`).
 *
 * A failing run (out of memory, bad trace, corruption detected by the
 * invariant checker, watchdog timeout) raises SimError; without
 * --keep-going the first failure stops the sweep. Simulator bugs still
 * panic and user errors on the command line are still fatal.
 *
 * Sweeps (run all / compare all / bench) fan individual runs out over
 * the machine/sweep.h work-stealing pool and merge results back in
 * workload order, so parallelism never changes what gets printed.
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "an/lifetime.h"
#include "an/report.h"
#include "bench/bench_harness.h"
#include "cli/options.h"
#include "fleet/fleet.h"
#include "machine/breakdown.h"
#include "machine/experiment.h"
#include "machine/machine.h"
#include "machine/result_store.h"
#include "machine/sweep.h"
#include "sa/config_lint.h"
#include "sa/diag.h"
#include "sa/source_lint.h"
#include "sa/trace_check.h"
#include "sim/atomic_io.h"
#include "sim/json.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "val/digest.h"
#include "wl/trace_generator.h"

using namespace memento;

namespace {

/** One failed run, kept for the end-of-sweep report. */
struct FailureRecord
{
    std::string workload;
    RunError error;
    /** Attempts spent before giving the cell up (--retry). */
    unsigned attempts = 1;
};

void
printFailureReport(const std::vector<FailureRecord> &failures)
{
    std::cout << "\n" << failures.size() << " run(s) failed:\n";
    TextTable t({"workload", "category", "op", "attempts", "error"});
    for (const FailureRecord &f : failures) {
        t.newRow();
        t.cell(f.workload);
        t.cell(std::string(errorCategoryName(f.error.category)));
        t.cell(f.error.hasOpIndex() ? std::to_string(f.error.opIndex)
                                    : std::string("-"));
        t.cell(std::to_string(f.attempts));
        t.cell(f.error.message);
    }
    t.print(std::cout);
}

// ---- Crash-safe sweep plumbing ---------------------------------------

/** SIGINT/SIGTERM latch; the sweep engine polls it between cells. */
std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

/**
 * Open the result store named by --cache / sweep.cache_dir (null when
 * caching is off) and arm the stop-signal latch: with a store, an
 * interrupted sweep's completed cells are durable, so Ctrl-C becomes
 * "flush and resume later" instead of "lose everything".
 */
std::unique_ptr<ResultStore>
makeStore(const CliOptions &opts)
{
    if (opts.cfg.sweep.cacheDir.empty())
        return nullptr;
    ResultStoreOptions so;
    so.dir = opts.cfg.sweep.cacheDir;
    so.tornWriteAt = opts.cfg.inject.storeTornWriteAt;
    so.killAt = opts.cfg.inject.storeKillAt;
    auto store = std::make_unique<ResultStore>(std::move(so));
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    return store;
}

/** Cache/interruption chatter goes to stderr only: stdout must stay
 * byte-identical to an uncached, uninterrupted serial sweep. */
void
reportStoreStats(const ResultStore &store)
{
    const StoreStats s = store.stats();
    std::cerr << "cache " << store.dir() << ": " << s.hits << " hit(s), "
              << s.misses << " miss(es), " << s.stores << " store(s)";
    if (s.quarantined != 0)
        std::cerr << ", " << s.quarantined << " quarantined";
    if (s.revalidated != 0)
        std::cerr << ", " << s.revalidated << " revalidated";
    std::cerr << "\n";
}

/** Interrupted sweep: say how to resume, exit 130, print no report. */
int
reportInterrupted(const ResultStore *store)
{
    std::cerr << "interrupted: completed cells are durable";
    if (store != nullptr)
        std::cerr << " in " << store->dir()
                  << "; re-run with --cache " << store->dir()
                  << " to resume";
    std::cerr << "\n";
    return 130;
}

/**
 * Keep only this shard's workloads (index % count == shard index).
 * Partitioning is by position in the full deterministic workload
 * list, so shards are disjoint and merge-complete by construction.
 */
void
applyShard(std::vector<WorkloadSpec> &specs, const SweepPolicyConfig &sw,
           bool is_all)
{
    // The --shard flag validates I < N at parse time; the config-file
    // path (sweep.shard_index) must be checked here.
    fatal_if(sw.shardIndex >= sw.shardCount, "sweep.shard_index (",
             sw.shardIndex, ") must be below sweep.shard_count (",
             sw.shardCount, ")");
    if (sw.shardCount <= 1)
        return;
    fatal_if(!is_all, "--shard partitions a sweep; use it with 'all'");
    std::vector<WorkloadSpec> mine;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i % sw.shardCount == sw.shardIndex)
            mine.push_back(specs[i]);
    }
    specs = std::move(mine);
}

/** Shared SweepOptions wiring for the cache/retry/revalidate layer. */
void
applySweepPolicy(SweepOptions &sweep_opts, const CliOptions &opts,
                 ResultStore *store)
{
    sweep_opts.keepGoing = opts.keepGoing || opts.cfg.sweep.keepGoing;
    sweep_opts.retries = opts.cfg.sweep.retries;
    sweep_opts.store = store;
    if (store != nullptr) {
        sweep_opts.stopFlag = &g_stop;
        // --revalidate recomputes a deterministic 1-in-4 sample of
        // cache hits; plenty to catch a lying cache without paying for
        // a full recompute.
        sweep_opts.revalidateEvery = opts.revalidate ? 4 : 0;
    }
}

Trace
traceFor(const WorkloadSpec &spec, const CliOptions &opts)
{
    if (opts.traceFile.empty())
        return TraceGenerator(spec).generate();
    std::ifstream in(opts.traceFile);
    fatal_if(!in, "cannot open trace file ", opts.traceFile);
    return readTrace(in);
}

int
cmdList()
{
    TextTable t({"id", "group", "lang", "allocs", "MallocPKI",
                 "<=512B", "short-lived", "description"});
    for (const WorkloadSpec &spec : allWorkloads()) {
        const Trace trace = TraceGenerator(spec).generate();
        const TraceProfile profile = profileTrace(trace);
        t.newRow();
        t.cell(spec.id);
        t.cell(domainName(spec.domain));
        t.cell(languageName(spec.lang));
        t.cell(profile.allocations);
        t.cell(profile.mallocPki, 2);
        t.cell(percentStr(profile.sizeHist.percent(0) / 100.0));
        t.cell(percentStr(profile.lifetimeHist.percent(0) / 100.0));
        t.cell(spec.description);
    }
    t.print(std::cout);
    return 0;
}

void
printRun(const MachineConfig &cfg, const RunResult &res)
{
    TextTable t({"Metric", "Value"});
    t.newRow(); t.cell("cycles"); t.cell(res.cycles);
    t.newRow(); t.cell("execution ms"); t.cell(res.executionMs(cfg), 3);
    t.newRow(); t.cell("instructions"); t.cell(res.instructions);
    t.newRow(); t.cell("DRAM bytes"); t.cell(res.dramBytes);
    t.newRow(); t.cell("page faults"); t.cell(res.pageFaults);
    t.newRow(); t.cell("mmap calls"); t.cell(res.mmapCalls);
    t.newRow(); t.cell("peak pages"); t.cell(res.peakResidentPages);
    t.newRow(); t.cell("user MM cycles"); t.cell(res.userMmCycles());
    t.newRow(); t.cell("kernel MM cycles"); t.cell(res.kernelMmCycles());
    t.newRow(); t.cell("hw MM cycles"); t.cell(res.hwMmCycles());
    if (res.objAllocs > 0) {
        t.newRow(); t.cell("small allocs"); t.cell(res.objAllocs);
        t.newRow(); t.cell("small frees"); t.cell(res.objFrees);
    }
    if (res.hotAllocHits + res.hotAllocMisses > 0) {
        t.newRow();
        t.cell("HOT alloc hit rate");
        t.cell(percentStr(static_cast<double>(res.hotAllocHits) /
                          (res.hotAllocHits + res.hotAllocMisses)));
        t.newRow();
        t.cell("bypassed lines");
        t.cell(res.bypassedLines);
    }
    t.print(std::cout);
}

int
cmdRun(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all") {
        fatal_if(!opts.traceFile.empty(),
                 "--trace replays one workload, not 'all'");
        fatal_if(opts.dumpStats, "--stats dumps one workload, not 'all'");
        specs = allWorkloads();
    } else {
        specs.push_back(workloadById(id));
    }

    RunOptions run_opts;
    run_opts.coldStart = opts.cold;
    run_opts.computeDigest = opts.digest;

    if (opts.dumpStats) {
        // Re-run with a live machine so raw counters can be dumped.
        const WorkloadSpec &spec = specs.front();
        const Trace trace = traceFor(spec, opts);
        Machine machine(opts.cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        executor.run(spec, trace, run_opts);
        machine.stats().dump(std::cout);
        return 0;
    }

    // Fan the sweep out over the work-stealing pool: one task per run
    // (a digest check is two runs, dispatched as sibling tasks). The
    // merge below reports strictly in workload order, so the output is
    // byte-identical at any --jobs level.
    const std::size_t runs_per = opts.digest ? 2 : 1;
    std::shared_ptr<const Trace> replay;
    if (!opts.traceFile.empty()) {
        fatal_if(!opts.cfg.sweep.cacheDir.empty(),
                 "--cache keys cells by workload identity and cannot "
                 "cache --trace replays; drop one of the two");
        std::ifstream in(opts.traceFile);
        fatal_if(!in, "cannot open trace file ", opts.traceFile);
        replay = std::make_shared<const Trace>(readTrace(in));
    }
    applyShard(specs, opts.cfg.sweep, id == "all");
    const std::unique_ptr<ResultStore> store = makeStore(opts);

    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size() * runs_per);
    for (const WorkloadSpec &spec : specs) {
        for (std::size_t r = 0; r < runs_per; ++r) {
            // The paired digest run is a *deliberate* duplicate of the
            // first cell; salt its cache key so both runs stay cached
            // and the determinism check never degenerates into
            // comparing one cached cell with itself.
            tasks.push_back({spec, opts.cfg, run_opts, replay,
                             r == 0 ? std::string() : "digest-rerun"});
        }
    }

    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    applySweepPolicy(sweep_opts, opts, store.get());
    const bool keep_going = sweep_opts.keepGoing;
    SweepEngine engine(sweep_opts);
    const std::vector<SweepOutcome> outcomes = engine.run(tasks);

    if (store != nullptr)
        reportStoreStats(*store);
    if (g_stop.load(std::memory_order_relaxed))
        return reportInterrupted(store.get());

    std::vector<FailureRecord> failures;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const WorkloadSpec &spec = specs[i];
        const SweepOutcome &outcome = outcomes[i * runs_per];
        const RunResult &res = outcome.result;
        std::cout << "workload " << spec.id << " ("
                  << (opts.cfg.memento.enabled ? "memento" : "baseline")
                  << ")";
        if (res.failed()) {
            std::cout << ": FAILED ("
                      << errorCategoryName(res.error->category) << ")\n";
            failures.push_back({spec.id, *res.error, outcome.attempts});
            if (!keep_going)
                break;
            continue;
        }
        std::cout << "\n";
        printRun(opts.cfg, res);

        if (opts.digest) {
            // Paired run: an identical workload under an identical
            // configuration must reproduce the machine state exactly.
            const SweepOutcome &again_out = outcomes[i * runs_per + 1];
            const RunResult &again = again_out.result;
            if (again.failed() || again.digest != res.digest) {
                RunError err;
                err.category = ErrorCategory::Internal;
                err.message =
                    again.failed()
                        ? "paired digest run failed: " +
                              again.error->message
                        : "state digest mismatch: " +
                              digestToHex(res.digest) + " vs " +
                              digestToHex(again.digest) +
                              " (nondeterministic state)";
                failures.push_back({spec.id, err, again_out.attempts});
                if (!keep_going)
                    break;
            } else {
                std::cout << "state digest " << digestToHex(res.digest)
                          << " (reproduced across paired runs)\n";
            }
        }
    }

    if (!failures.empty()) {
        printFailureReport(failures);
        return 1;
    }
    return 0;
}

int
cmdCompare(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all")
        specs = allWorkloads();
    else
        specs.push_back(workloadById(id));

    MachineConfig base_cfg = opts.cfg;
    base_cfg.memento.enabled = false;
    MachineConfig memento_cfg = opts.cfg;
    memento_cfg.memento.enabled = true;

    RunOptions run_opts;
    run_opts.coldStart = opts.cold;

    applyShard(specs, opts.cfg.sweep, id == "all");
    const std::unique_ptr<ResultStore> store = makeStore(opts);

    // Each workload's (baseline, memento, no-bypass) triple fans out
    // as three tasks sharing one cached trace; the progress line fires
    // as a workload's first task starts (serialized by the engine).
    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    applySweepPolicy(sweep_opts, opts, store.get());
    const bool keep_going = sweep_opts.keepGoing;
    sweep_opts.onTaskStart = [](const SweepTask &task, std::size_t idx) {
        if (idx % 3 == 0)
            std::cerr << "  running " << task.spec.id << "...\n";
    };
    SweepEngine engine(sweep_opts);
    const std::vector<ComparisonOutcome> outcomes =
        compareSweep(specs, base_cfg, memento_cfg, run_opts, engine);

    if (store != nullptr)
        reportStoreStats(*store);
    if (g_stop.load(std::memory_order_relaxed))
        return reportInterrupted(store.get());

    TextTable t({"workload", "speedup", "traffic", "faults base->mem",
                 "alloc/free/page/bypass"});
    std::vector<FailureRecord> failures;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const ComparisonOutcome &out = outcomes[i];
        if (out.error) {
            failures.push_back({specs[i].id, *out.error, out.attempts});
            if (!keep_going)
                break;
            continue;
        }
        const Comparison &cmp = out.cmp;
        Breakdown bd = computeBreakdown(cmp);
        t.newRow();
        t.cell(cmp.spec.id);
        t.cell(cmp.speedup(), 3);
        t.cell(percentStr(cmp.bandwidthReduction()));
        t.cell(std::to_string(cmp.base.pageFaults) + "->" +
               std::to_string(cmp.memento.pageFaults));
        t.cell(percentStr(bd.objAlloc, 0) + "/" +
               percentStr(bd.objFree, 0) + "/" +
               percentStr(bd.pageMgmt, 0) + "/" +
               percentStr(bd.bypass, 0));
    }
    t.print(std::cout);
    if (!failures.empty()) {
        printFailureReport(failures);
        return 1;
    }
    return 0;
}

/** Render a finished report and map it to an exit status. */
int
finishAnalysis(const DiagReport &report, const CliOptions &opts,
               const std::string &what)
{
    if (opts.json) {
        report.printJson(std::cout, opts.diagPolicy);
        std::cout << "\n";
    } else {
        report.printText(std::cout, opts.diagPolicy);
        std::cout << what << ": " << report.errors(opts.diagPolicy)
                  << " error(s), " << report.warnings(opts.diagPolicy)
                  << " warning(s)";
        if (report.notes(opts.diagPolicy) != 0)
            std::cout << ", " << report.notes(opts.diagPolicy)
                      << " note(s)";
        std::cout << "\n";
    }
    return report.clean(opts.diagPolicy) ? 0 : 1;
}

int
cmdCheck(const std::string &id, const CliOptions &opts)
{
    std::vector<WorkloadSpec> specs;
    if (id == "all") {
        fatal_if(!opts.traceFile.empty(),
                 "--trace checks one workload, not 'all'");
        specs = allWorkloads();
    } else {
        specs.push_back(workloadById(id));
    }

    const TraceCheckPolicy policy = TraceCheckPolicy::fromConfig(opts.cfg);

    // One slot per workload, filled by the work-stealing pool and
    // merged in workload order — the same determinism recipe as the
    // sweep engine, so output is byte-identical at any --jobs level.
    std::vector<DiagReport> slots(specs.size());
    parallelFor(specs.size(), opts.jobs, [&](std::size_t i) {
        const WorkloadSpec &spec = specs[i];
        DiagReport &rep = slots[i];
        if (!opts.traceFile.empty()) {
            std::ifstream in(opts.traceFile);
            if (!in) {
                rep.add("trace-parse", opts.traceFile,
                        Diag::kNoLocation, "cannot open trace file");
                return;
            }
            checkTraceStream(in, policy, opts.traceFile, rep);
            return;
        }
        Trace trace = TraceGenerator(spec).generate();
        trace = applyTraceFaultPlan(trace, opts.cfg.inject, spec.id);
        checkTrace(trace, policy, spec.id, rep);
    });

    DiagReport report;
    for (const DiagReport &slot : slots)
        report.append(slot);
    return finishAnalysis(report, opts,
                          "checked " + std::to_string(specs.size()) +
                              " trace(s)");
}

int
cmdLintConfig(const std::string &path, const CliOptions &opts)
{
    DiagReport report;
    lintConfigFile(path, report);
    return finishAnalysis(report, opts, "linted " + path);
}

int
cmdLintSrc(const CliOptions &opts)
{
    std::vector<std::string> paths = opts.paths;
    if (paths.empty())
        paths.push_back("src");
    DiagReport report;
    const std::size_t files = lintSourcePaths(paths, opts.jobs, report);
    return finishAnalysis(report, opts,
                          "linted " + std::to_string(files) + " file(s)");
}

int
cmdRules(const CliOptions &opts)
{
    if (opts.json) {
        JsonWriter w(std::cout);
        w.beginObject();
        writeSchemaHeader(w, "rules");
        w.key("rules").beginArray();
        for (const DiagRule &r : allDiagRules()) {
            w.beginObject();
            w.member("id", r.id);
            w.member("severity", severityName(r.severity));
            w.member("summary", r.summary);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::cout << "\n";
        return 0;
    }
    // The text rendering *is* the markdown table embedded in README.md
    // (between the rules:begin/rules:end markers); CI diffs the two.
    std::cout << "| Rule | Severity | Summary |\n"
              << "|------|----------|---------|\n";
    for (const DiagRule &r : allDiagRules())
        std::cout << "| `" << r.id << "` | " << severityName(r.severity)
                  << " | " << r.summary << " |\n";
    return 0;
}

int
cmdTrace(const std::string &id, const std::string &path)
{
    const WorkloadSpec &spec = workloadById(id);
    const Trace trace = TraceGenerator(spec).generate();
    std::ofstream out(path);
    fatal_if(!out, "cannot open ", path, " for writing");
    writeTrace(trace, out);
    std::cout << "wrote " << trace.size() << " ops to " << path << "\n";
    return 0;
}

int
cmdBench(const CliOptions &opts)
{
    const std::unique_ptr<ResultStore> store = makeStore(opts);
    fatal_if(opts.cfg.sweep.shardIndex >= opts.cfg.sweep.shardCount,
             "sweep.shard_index (", opts.cfg.sweep.shardIndex,
             ") must be below sweep.shard_count (",
             opts.cfg.sweep.shardCount, ")");

    BenchOptions bopts;
    bopts.cfg = opts.cfg;
    bopts.smoke = opts.smoke;
    bopts.repeats = opts.repeats;
    bopts.jobs = opts.jobs;
    bopts.store = store.get();
    bopts.shardIndex = opts.cfg.sweep.shardIndex;
    bopts.shardCount = opts.cfg.sweep.shardCount;

    std::cerr << "benchmarking the " << (bopts.smoke ? "smoke" : "full")
              << " sweep (" << bopts.repeats
              << " timed repeat(s) per workload)...\n";
    const BenchReport report = runBench(bopts);
    if (store != nullptr)
        reportStoreStats(*store);

    // The report lands atomically: a reader (or a crash) never sees a
    // half-written BENCH_*.json under the final name.
    std::ostringstream buf;
    writeBenchJson(buf, report);
    buf << "\n";
    writeFileAtomic(opts.outFile, buf.str());

    if (opts.json) {
        writeBenchJson(std::cout, report);
        std::cout << "\n";
    } else {
        printBenchText(std::cout, report);
    }
    std::cerr << "wrote " << opts.outFile << "\n";
    return 0;
}

int
cmdFleet(const CliOptions &opts)
{
    const std::unique_ptr<ResultStore> store = makeStore(opts);

    FleetOptions fopts;
    fopts.cfg = opts.cfg;
    fopts.jobs = opts.jobs;
    fopts.store = store.get();
    const FleetReport report = runFleet(fopts);

    if (store != nullptr)
        reportStoreStats(*store);
    if (report.fromCache)
        std::cerr << "fleet summary served from cache\n";

    // stdout carries only simulated (integer-derived) values: the text
    // and JSON renderings are byte-identical across --jobs levels and
    // across cache resumes.
    if (opts.json)
        writeFleetJson(std::cout, report, opts.cfg);
    else
        printFleetText(std::cout, report, opts.cfg);
    return 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    // args: merge <out-dir> <in-dir>... — variadic positionals, no
    // flags, so this bypasses the table parser.
    for (std::size_t i = 1; i < args.size(); ++i) {
        fatal_if(args[i].size() >= 2 && args[i][0] == '-' &&
                     args[i][1] == '-',
                 "merge accepts no options, got ", args[i]);
    }
    ResultStoreOptions so;
    so.dir = args[1];
    ResultStore store(std::move(so));

    MergeStats total;
    for (std::size_t i = 2; i < args.size(); ++i) {
        const MergeStats s = store.mergeFrom(args[i]);
        std::cerr << "  " << args[i] << ": " << s.merged
                  << " merged, " << s.duplicates << " duplicate(s), "
                  << s.corrupt << " corrupt\n";
        total.merged += s.merged;
        total.duplicates += s.duplicates;
        total.corrupt += s.corrupt;
    }
    // A merge that read zero valid cells is a mistyped path or a wiped
    // shard, not a legitimate empty union: fail loudly instead of
    // leaving a silently empty store a later resume would trust.
    if (total.merged + total.duplicates == 0) {
        std::cerr << "memento_sim: merge: no readable cells in any "
                     "input store ("
                  << total.corrupt
                  << " corrupt); nothing was merged — check the input "
                     "paths\n";
        return 1;
    }
    std::cout << "merged " << total.merged << " cell(s) into " << args[1]
              << " (" << total.duplicates << " duplicate(s), "
              << total.corrupt << " corrupt)\n";
    return 0;
}

int
cmdHelp(const std::vector<std::string> &args)
{
    if (args.size() >= 2) {
        const CommandSpec *spec = findCommand(args[1]);
        if (!spec) {
            std::cerr << "memento_sim: unknown command '" << args[1]
                      << "'\n";
            printUsage(std::cerr);
            return 1;
        }
        printCommandHelp(std::cout, *spec);
        return 0;
    }
    printUsage(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage(std::cerr);
        return 1;
    }
    const std::string &cmd = args[0];
    if (cmd == "--help" || cmd == "-h")
        return cmdHelp({"help"});
    if (cmd == "help")
        return cmdHelp(args);

    const CommandSpec *spec = findCommand(cmd);
    if (!spec) {
        printUsage(std::cerr);
        return 1;
    }
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h") {
            printCommandHelp(std::cout, *spec);
            return 0;
        }
    }
    if (args.size() < 1 + spec->positionals) {
        printCommandHelp(std::cerr, *spec);
        return 1;
    }
    try {
        if (cmd == "merge")
            return cmdMerge(args);
        const CliOptions opts =
            parseCommandOptions(*spec, args, 1 + spec->positionals);
        if (opts.helpRequested) {
            printCommandHelp(std::cout, *spec);
            return 0;
        }
        if (cmd == "list")
            return cmdList();
        if (cmd == "run")
            return cmdRun(args[1], opts);
        if (cmd == "compare")
            return cmdCompare(args[1], opts);
        if (cmd == "trace")
            return cmdTrace(args[1], args[2]);
        if (cmd == "check")
            return cmdCheck(args[1], opts);
        if (cmd == "lint-config")
            return cmdLintConfig(args[1], opts);
        if (cmd == "lint-src")
            return cmdLintSrc(opts);
        if (cmd == "rules")
            return cmdRules(opts);
        if (cmd == "bench")
            return cmdBench(opts);
        if (cmd == "fleet")
            return cmdFleet(opts);
    } catch (const SimError &e) {
        std::cerr << "memento_sim: error ("
                  << errorCategoryName(e.category()) << "): " << e.what()
                  << "\n";
        return 1;
    }
    printUsage(std::cerr);
    return 1;
}
