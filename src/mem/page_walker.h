/**
 * @file
 * Page-table abstraction and the MMU's hardware page walker.
 *
 * Both the OS-managed table (src/os/page_table.h) and the Memento page
 * table built by the hardware page allocator (src/hw) implement
 * PageTableBase. The walker turns a walk into real memory references for
 * each visited PTE line, so page-table locality shows up in the caches
 * exactly like it does on hardware.
 */

#ifndef MEMENTO_MEM_PAGE_WALKER_H
#define MEMENTO_MEM_PAGE_WALKER_H

#include <vector>

#include "mem/cache_hierarchy.h"
#include "sim/types.h"

namespace memento {

/** Result of walking a table for one virtual address. */
struct WalkResult
{
    /** False when the leaf PTE is absent: the OS must handle a fault. */
    bool valid = false;
    /** Physical page base on success. */
    Addr ppage = 0;
    /** Physical addresses of the PTE entries touched, root to leaf. */
    std::vector<Addr> visitedPtes;
};

/** Interface over any radix page table the walker can traverse. */
class PageTableBase
{
  public:
    virtual ~PageTableBase() = default;

    /**
     * Walk the table for @p vaddr without side effects on the caller.
     * Implementations may themselves have side effects: the Memento
     * table auto-populates missing levels during the walk (§3.2).
     */
    virtual WalkResult walk(Addr vaddr) = 0;
};

/** Performs timed walks by touching PTE lines through the hierarchy. */
class PageWalker
{
  public:
    explicit PageWalker(CacheHierarchy &hier) : hier_(hier) {}

    /**
     * Walk @p table for @p vaddr, charging one hierarchy access per
     * visited PTE line.
     *
     * @param[out] latency Accumulated critical-path latency.
     */
    WalkResult
    walk(PageTableBase &table, Addr vaddr, Cycles now, Cycles &latency)
    {
        WalkResult res = table.walk(vaddr);
        latency = 0;
        for (Addr pte : res.visitedPtes) {
            latency +=
                hier_.access(pte, AccessType::Read, now + latency).latency;
        }
        return res;
    }

  private:
    CacheHierarchy &hier_;
};

} // namespace memento

#endif // MEMENTO_MEM_PAGE_WALKER_H
