#include "mem/memory_controller.h"

// Header-only for now; this translation unit anchors the component.
