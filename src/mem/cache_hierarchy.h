/**
 * @file
 * The three-level inclusive cache hierarchy (L1I/L1D + L2 + LLC).
 *
 * Inclusion is maintained by back-invalidating inner levels when the LLC
 * evicts; dirty inner evictions merge downward; LLC dirty evictions write
 * back to DRAM through the MemoryController. The hierarchy also
 * implements the Memento main-memory bypass: a missing line flagged
 * bypassCandidate is instantiated zero-filled at the LLC (§3.3) instead
 * of being fetched, which removes the DRAM read from both the critical
 * path and the traffic totals.
 */

#ifndef MEMENTO_MEM_CACHE_HIERARCHY_H
#define MEMENTO_MEM_CACHE_HIERARCHY_H

#include "mem/access.h"
#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** L1I/L1D + unified L2 + LLC slice in front of the memory controller. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const MachineConfig &cfg, StatRegistry &stats);

    /**
     * Perform a line access on behalf of the core or a hardware unit.
     *
     * @param paddr Physical address (any byte within the line).
     * @param type Read, Write, or Fetch.
     * @param now Current core cycle.
     * @param attrs Bypass eligibility.
     */
    AccessResult access(Addr paddr, AccessType type, Cycles now,
                        AccessAttrs attrs = {});

    /**
     * Instantiate a line dirty at the L1D without fetching it from
     * anywhere (used for full-line stores to freshly allocated memory
     * and for hardware-initialized metadata).
     */
    Cycles installLine(Addr paddr, Cycles now);

    /** Lines instantiated at the LLC via the bypass mechanism. */
    std::uint64_t bypassedLines() const { return bypasses_.value(); }

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }
    const MemoryController &memCtrl() const { return memCtrl_; }

  private:
    /** Handle an eviction out of the L1 (merge into L2). */
    void absorbL1Eviction(const Cache::Eviction &ev, Cycles now);
    /** Handle an eviction out of the L2 (merge into LLC). */
    void absorbL2Eviction(const Cache::Eviction &ev, Cycles now);
    /** Handle an eviction out of the LLC (writeback + back-invalidate). */
    void absorbLlcEviction(const Cache::Eviction &ev, Cycles now);
    /** Install into L1/L2/LLC with inclusion maintenance. */
    void installAllLevels(Cache &l1, Addr paddr, bool dirty, Cycles now);

    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Cache llc_;
    MemoryController memCtrl_;

    Counter bypasses_;
    Counter demandFills_;
};

// ---- Hot-path inline definitions ----
//
// access() and its eviction helpers run once per simulated memory
// reference (tens of millions of times per workload); defining them
// here lets them inline into Machine's access paths together with the
// Cache probes they call.

inline void
CacheHierarchy::absorbL1Eviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid || !ev.dirty)
        return;
    // Inclusive hierarchy: the line is resident in L2 unless a racing
    // back-invalidation removed it; merge the dirty data downward.
    if (l2_.tryMarkDirty(ev.lineAddr))
        return;
    if (!llc_.tryMarkDirty(ev.lineAddr))
        memCtrl_.writeback(ev.lineAddr, now);
}

inline void
CacheHierarchy::absorbL2Eviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid)
        return;
    if (ev.dirty && !llc_.tryMarkDirty(ev.lineAddr))
        memCtrl_.writeback(ev.lineAddr, now);
}

inline void
CacheHierarchy::absorbLlcEviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid)
        return;
    // Back-invalidate inner levels to preserve inclusion; fold their
    // dirtiness into the writeback decision.
    bool dirty = ev.dirty;
    dirty |= l1d_.invalidate(ev.lineAddr);
    dirty |= l1i_.invalidate(ev.lineAddr);
    dirty |= l2_.invalidate(ev.lineAddr);
    if (dirty)
        memCtrl_.writeback(ev.lineAddr, now);
}

inline void
CacheHierarchy::installAllLevels(Cache &l1, Addr paddr, bool dirty,
                                 Cycles now)
{
    absorbLlcEviction(llc_.install(paddr, false), now);
    absorbL2Eviction(l2_.install(paddr, false), now);
    absorbL1Eviction(l1.install(paddr, dirty), now);
}

inline AccessResult
CacheHierarchy::access(Addr paddr, AccessType type, Cycles now,
                       AccessAttrs attrs)
{
    const Addr line = lineBase(paddr);
    const bool is_write = type == AccessType::Write;
    Cache &l1 = type == AccessType::Fetch ? l1i_ : l1d_;

    AccessResult res;
    res.latency = l1.latency();
    if (l1.access(line, is_write)) {
        res.servicedByLevel = 1;
        return res;
    }

    // Every level below a miss has just been probed, so the fills on
    // these paths use installAbsent() (identical semantics, one fewer
    // set scan; see cache.h).
    res.latency += l2_.latency();
    if (l2_.access(line, is_write)) {
        // Refill the L1 from the L2.
        absorbL1Eviction(l1.installAbsent(line, is_write), now);
        res.servicedByLevel = 2;
        return res;
    }

    res.latency += llc_.latency();
    if (llc_.access(line, is_write)) {
        absorbL2Eviction(l2_.installAbsent(line, false), now);
        absorbL1Eviction(l1.installAbsent(line, is_write), now);
        res.servicedByLevel = 3;
        return res;
    }

    if (attrs.bypassCandidate) {
        // §3.3: instantiate the never-written line zero-filled at the
        // LLC; the request propagates normally for coherence but no
        // DRAM fetch happens.
        ++bypasses_;
        absorbLlcEviction(llc_.installAbsent(line, true), now);
        absorbL2Eviction(l2_.installAbsent(line, false), now);
        absorbL1Eviction(l1.installAbsent(line, is_write), now);
        res.servicedByLevel = 3;
        res.bypassed = true;
        return res;
    }

    ++demandFills_;
    res.latency += memCtrl_.fill(line, now + res.latency);
    absorbLlcEviction(llc_.installAbsent(line, false), now);
    absorbL2Eviction(l2_.installAbsent(line, false), now);
    absorbL1Eviction(l1.installAbsent(line, is_write), now);
    res.servicedByLevel = 4;
    return res;
}

inline Cycles
CacheHierarchy::installLine(Addr paddr, Cycles now)
{
    const Addr line = lineBase(paddr);
    if (l1d_.access(line, /*is_write=*/true))
        return l1d_.latency();
    // L2/LLC residency is unknown here, so installAllLevels() keeps the
    // full install() probes for those levels.
    installAllLevels(l1d_, line, /*dirty=*/true, now);
    return l1d_.latency();
}

} // namespace memento

#endif // MEMENTO_MEM_CACHE_HIERARCHY_H
