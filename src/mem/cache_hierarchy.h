/**
 * @file
 * The three-level inclusive cache hierarchy (L1I/L1D + L2 + LLC).
 *
 * Inclusion is maintained by back-invalidating inner levels when the LLC
 * evicts; dirty inner evictions merge downward; LLC dirty evictions write
 * back to DRAM through the MemoryController. The hierarchy also
 * implements the Memento main-memory bypass: a missing line flagged
 * bypassCandidate is instantiated zero-filled at the LLC (§3.3) instead
 * of being fetched, which removes the DRAM read from both the critical
 * path and the traffic totals.
 */

#ifndef MEMENTO_MEM_CACHE_HIERARCHY_H
#define MEMENTO_MEM_CACHE_HIERARCHY_H

#include "mem/access.h"
#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** L1I/L1D + unified L2 + LLC slice in front of the memory controller. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const MachineConfig &cfg, StatRegistry &stats);

    /**
     * Perform a line access on behalf of the core or a hardware unit.
     *
     * @param paddr Physical address (any byte within the line).
     * @param type Read, Write, or Fetch.
     * @param now Current core cycle.
     * @param attrs Bypass eligibility.
     */
    AccessResult access(Addr paddr, AccessType type, Cycles now,
                        AccessAttrs attrs = {});

    /**
     * Instantiate a line dirty at the L1D without fetching it from
     * anywhere (used for full-line stores to freshly allocated memory
     * and for hardware-initialized metadata).
     */
    Cycles installLine(Addr paddr, Cycles now);

    /** Lines instantiated at the LLC via the bypass mechanism. */
    std::uint64_t bypassedLines() const { return bypasses_.value(); }

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }
    const MemoryController &memCtrl() const { return memCtrl_; }

  private:
    /** Handle an eviction out of the L1 (merge into L2). */
    void absorbL1Eviction(const Cache::Eviction &ev, Cycles now);
    /** Handle an eviction out of the L2 (merge into LLC). */
    void absorbL2Eviction(const Cache::Eviction &ev, Cycles now);
    /** Handle an eviction out of the LLC (writeback + back-invalidate). */
    void absorbLlcEviction(const Cache::Eviction &ev, Cycles now);
    /** Install into L1/L2/LLC with inclusion maintenance. */
    void installAllLevels(Cache &l1, Addr paddr, bool dirty, Cycles now);

    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Cache llc_;
    MemoryController memCtrl_;

    Counter bypasses_;
    Counter demandFills_;
};

} // namespace memento

#endif // MEMENTO_MEM_CACHE_HIERARCHY_H
