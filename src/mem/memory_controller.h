/**
 * @file
 * Memory controller: the hierarchy's gateway to DRAM.
 *
 * In the paper the hardware page allocator lives here; in this model the
 * controller owns the DRAM device and exposes the fill/writeback
 * operations the LLC needs, so the HwPageAllocator (src/hw) can be
 * attached next to it by the Machine.
 */

#ifndef MEMENTO_MEM_MEMORY_CONTROLLER_H
#define MEMENTO_MEM_MEMORY_CONTROLLER_H

#include "mem/dram.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** Routes LLC fills and writebacks to DRAM and accounts traffic. */
class MemoryController
{
  public:
    MemoryController(const DramConfig &cfg, StatRegistry &stats)
        : dram_(cfg, stats)
    {
    }

    /** Read the line holding @p paddr; returns critical-path latency. */
    Cycles
    fill(Addr paddr, Cycles now)
    {
        return dram_.access(paddr, /*is_write=*/false, now);
    }

    /** Post a writeback of the line holding @p paddr. */
    void
    writeback(Addr paddr, Cycles now)
    {
        dram_.access(paddr, /*is_write=*/true, now);
    }

    const Dram &dram() const { return dram_; }

  private:
    Dram dram_;
};

} // namespace memento

#endif // MEMENTO_MEM_MEMORY_CONTROLLER_H
