/**
 * @file
 * Set-associative TLB model (used for both the L1 and L2 levels).
 */

#ifndef MEMENTO_MEM_TLB_H
#define MEMENTO_MEM_TLB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** Shift of a 2 MiB huge page. */
inline constexpr unsigned kHugePageShift = 21;

/** One level of virtual-to-physical translation caching. */
class Tlb
{
  public:
    Tlb(const std::string &name, const TlbConfig &cfg, StatRegistry &stats);

    /**
     * Look up the page containing @p vaddr (both 4 KiB and 2 MiB
     * granularities are probed).
     * @return the physical page base on a hit (base of the entry's own
     *         granularity).
     */
    std::optional<Addr> lookup(Addr vaddr);

    /**
     * Insert a translation for the page of @p vaddr at @p shift
     * granularity (4 KiB by default; pass kHugePageShift for THP).
     */
    void insert(Addr vaddr, Addr paddr, unsigned shift = kPageShift);

    /** Translate @p vaddr fully (base + offset) on a hit. */
    std::optional<Addr> translate(Addr vaddr);

    /** Drop the translation for the page of @p vaddr (shootdown). */
    void invalidatePage(Addr vaddr);

    /** Drop every translation (context switch). */
    void flushAll();

    Cycles latency() const { return latency_; }

    std::uint64_t hitCount() const { return hits_.value(); }
    std::uint64_t missCount() const { return misses_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        unsigned shift = kPageShift;
        Addr vpage = 0; ///< vaddr >> shift.
        Addr pbase = 0; ///< Physical base at the entry's granularity.
        std::uint64_t lruStamp = 0;
    };

    Entry *find(Addr vaddr);
    std::uint64_t setIndex(Addr vpage) const;

    std::string name_;
    std::uint64_t numSets_;
    unsigned ways_;
    Cycles latency_;
    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace memento

#endif // MEMENTO_MEM_TLB_H
