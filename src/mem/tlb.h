/**
 * @file
 * Set-associative TLB model (used for both the L1 and L2 levels).
 */

#ifndef MEMENTO_MEM_TLB_H
#define MEMENTO_MEM_TLB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** Shift of a 2 MiB huge page. */
inline constexpr unsigned kHugePageShift = 21;

/** One level of virtual-to-physical translation caching. */
class Tlb
{
  public:
    Tlb(const std::string &name, const TlbConfig &cfg, StatRegistry &stats);

    /**
     * Look up the page containing @p vaddr (both 4 KiB and 2 MiB
     * granularities are probed).
     * @return the physical page base on a hit (base of the entry's own
     *         granularity).
     */
    std::optional<Addr> lookup(Addr vaddr);

    /**
     * Insert a translation for the page of @p vaddr at @p shift
     * granularity (4 KiB by default; pass kHugePageShift for THP).
     */
    void insert(Addr vaddr, Addr paddr, unsigned shift = kPageShift);

    /** Translate @p vaddr fully (base + offset) on a hit. */
    std::optional<Addr> translate(Addr vaddr);

    /** Drop the translation for the page of @p vaddr (shootdown). */
    void invalidatePage(Addr vaddr);

    /** Drop every translation (context switch). */
    void flushAll();

    Cycles latency() const { return latency_; }

    std::uint64_t hitCount() const { return hits_.value(); }
    std::uint64_t missCount() const { return misses_.value(); }

  private:
    struct Entry
    {
        bool valid = false;
        unsigned shift = kPageShift;
        Addr vpage = 0; ///< vaddr >> shift.
        Addr pbase = 0; ///< Physical base at the entry's granularity.
        std::uint64_t lruStamp = 0;
    };

    Entry *find(Addr vaddr);
    Entry *findAt(Addr vaddr, unsigned shift);
    std::uint64_t setIndex(Addr vpage) const;

    std::string name_;
    std::uint64_t numSets_;
    /**
     * numSets_ - 1 when numSets_ is a power of two, else 0. Lets
     * setIndex() replace the hardware divide behind `vpage % numSets_`
     * with a mask for power-of-two geometries (e.g. the L1 TLB, probed
     * tens of millions of times per sweep).
     */
    std::uint64_t setMask_;
    unsigned ways_;
    Cycles latency_;
    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
    /**
     * Resident 2 MiB entries. Lets find() skip the huge-granularity
     * set probe entirely while zero — the common case for workloads
     * that never map THP pages.
     */
    std::uint64_t hugeEntries_ = 0;

    Counter hits_;
    Counter misses_;
};

// ---- Hot-path inline definitions ----

inline std::uint64_t
Tlb::setIndex(Addr vpage) const
{
    return setMask_ ? (vpage & setMask_) : vpage % numSets_;
}

inline Tlb::Entry *
Tlb::findAt(Addr vaddr, unsigned shift)
{
    const Addr vpage = vaddr >> shift;
    Entry *base = &entries_[setIndex(vpage) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.shift == shift && e.vpage == vpage)
            return &e;
    }
    return nullptr;
}

inline Tlb::Entry *
Tlb::find(Addr vaddr)
{
    // Probe order (4 KiB before 2 MiB) matches the original dual-loop
    // scan; the huge probe is elided while no huge entry is resident.
    Entry *e = findAt(vaddr, kPageShift);
    if (!e && hugeEntries_ != 0)
        e = findAt(vaddr, kHugePageShift);
    return e;
}

inline std::optional<Addr>
Tlb::lookup(Addr vaddr)
{
    if (Entry *e = find(vaddr)) {
        e->lruStamp = ++lruClock_;
        ++hits_;
        return e->pbase;
    }
    ++misses_;
    return std::nullopt;
}

inline std::optional<Addr>
Tlb::translate(Addr vaddr)
{
    if (Entry *e = find(vaddr)) {
        e->lruStamp = ++lruClock_;
        ++hits_;
        return e->pbase + (vaddr & ((1ull << e->shift) - 1));
    }
    ++misses_;
    return std::nullopt;
}

} // namespace memento

#endif // MEMENTO_MEM_TLB_H
