#include "mem/cache_hierarchy.h"

namespace memento {

CacheHierarchy::CacheHierarchy(const MachineConfig &cfg, StatRegistry &stats)
    : l1d_("l1d", cfg.l1d, stats),
      l1i_("l1i", cfg.l1i, stats),
      l2_("l2", cfg.l2, stats),
      llc_("llc", cfg.llc, stats),
      memCtrl_(cfg.dram, stats),
      bypasses_(stats.counter("hier.bypassed_lines")),
      demandFills_(stats.counter("hier.demand_fills"))
{
}

void
CacheHierarchy::absorbL1Eviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid || !ev.dirty)
        return;
    // Inclusive hierarchy: the line is resident in L2 unless a racing
    // back-invalidation removed it; merge the dirty data downward.
    if (l2_.contains(ev.lineAddr)) {
        l2_.markDirty(ev.lineAddr);
    } else if (llc_.contains(ev.lineAddr)) {
        llc_.markDirty(ev.lineAddr);
    } else {
        memCtrl_.writeback(ev.lineAddr, now);
    }
}

void
CacheHierarchy::absorbL2Eviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid)
        return;
    if (ev.dirty) {
        if (llc_.contains(ev.lineAddr))
            llc_.markDirty(ev.lineAddr);
        else
            memCtrl_.writeback(ev.lineAddr, now);
    }
}

void
CacheHierarchy::absorbLlcEviction(const Cache::Eviction &ev, Cycles now)
{
    if (!ev.valid)
        return;
    // Back-invalidate inner levels to preserve inclusion; fold their
    // dirtiness into the writeback decision.
    bool dirty = ev.dirty;
    dirty |= l1d_.invalidate(ev.lineAddr);
    dirty |= l1i_.invalidate(ev.lineAddr);
    dirty |= l2_.invalidate(ev.lineAddr);
    if (dirty)
        memCtrl_.writeback(ev.lineAddr, now);
}

void
CacheHierarchy::installAllLevels(Cache &l1, Addr paddr, bool dirty,
                                 Cycles now)
{
    absorbLlcEviction(llc_.install(paddr, false), now);
    absorbL2Eviction(l2_.install(paddr, false), now);
    absorbL1Eviction(l1.install(paddr, dirty), now);
}

AccessResult
CacheHierarchy::access(Addr paddr, AccessType type, Cycles now,
                       AccessAttrs attrs)
{
    const Addr line = lineBase(paddr);
    const bool is_write = type == AccessType::Write;
    Cache &l1 = type == AccessType::Fetch ? l1i_ : l1d_;

    AccessResult res;
    res.latency = l1.latency();
    if (l1.access(line, is_write)) {
        res.servicedByLevel = 1;
        return res;
    }

    res.latency += l2_.latency();
    if (l2_.access(line, is_write)) {
        // Refill the L1 from the L2.
        absorbL1Eviction(l1.install(line, is_write), now);
        res.servicedByLevel = 2;
        return res;
    }

    res.latency += llc_.latency();
    if (llc_.access(line, is_write)) {
        absorbL2Eviction(l2_.install(line, false), now);
        absorbL1Eviction(l1.install(line, is_write), now);
        res.servicedByLevel = 3;
        return res;
    }

    if (attrs.bypassCandidate) {
        // §3.3: instantiate the never-written line zero-filled at the
        // LLC; the request propagates normally for coherence but no
        // DRAM fetch happens.
        ++bypasses_;
        absorbLlcEviction(llc_.install(line, true), now);
        absorbL2Eviction(l2_.install(line, false), now);
        absorbL1Eviction(l1.install(line, is_write), now);
        res.servicedByLevel = 3;
        res.bypassed = true;
        return res;
    }

    ++demandFills_;
    res.latency += memCtrl_.fill(line, now + res.latency);
    installAllLevels(l1, line, is_write, now);
    res.servicedByLevel = 4;
    return res;
}

Cycles
CacheHierarchy::installLine(Addr paddr, Cycles now)
{
    const Addr line = lineBase(paddr);
    if (l1d_.access(line, /*is_write=*/true))
        return l1d_.latency();
    installAllLevels(l1d_, line, /*dirty=*/true, now);
    return l1d_.latency();
}

} // namespace memento
