#include "mem/cache_hierarchy.h"

namespace memento {

CacheHierarchy::CacheHierarchy(const MachineConfig &cfg, StatRegistry &stats)
    : l1d_("l1d", cfg.l1d, stats),
      l1i_("l1i", cfg.l1i, stats),
      l2_("l2", cfg.l2, stats),
      llc_("llc", cfg.llc, stats),
      memCtrl_(cfg.dram, stats),
      bypasses_(stats.counter("hier.bypassed_lines")),
      demandFills_(stats.counter("hier.demand_fills"))
{
}

} // namespace memento
