#include "mem/tlb.h"

#include "sim/logging.h"

namespace memento {

Tlb::Tlb(const std::string &name, const TlbConfig &cfg, StatRegistry &stats)
    : name_(name),
      numSets_(cfg.entries / cfg.ways),
      setMask_(isPowerOfTwo(numSets_) ? numSets_ - 1 : 0),
      ways_(cfg.ways),
      latency_(cfg.latency),
      entries_(numSets_ * cfg.ways),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses"))
{
    // A 2048-entry 12-way TLB (Table 3) is not evenly divisible; round
    // the set count down as real designs do (capacity 2040 here).
    panic_if(cfg.entries < cfg.ways, "tlb ", name, ": too few entries");
}

void
Tlb::insert(Addr vaddr, Addr paddr, unsigned shift)
{
    const Addr vpage = vaddr >> shift;
    Entry *base = &entries_[setIndex(vpage) * ways_];

    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.shift == shift && e.vpage == vpage) {
            victim = &e; // Update in place.
            break;
        }
        if (!e.valid && !victim)
            victim = &e;
    }
    if (!victim) {
        victim = &base[0];
        for (unsigned w = 1; w < ways_; ++w) {
            if (base[w].lruStamp < victim->lruStamp)
                victim = &base[w];
        }
    }
    if (victim->valid && victim->shift == kHugePageShift)
        --hugeEntries_;
    if (shift == kHugePageShift)
        ++hugeEntries_;
    victim->valid = true;
    victim->shift = shift;
    victim->vpage = vpage;
    victim->pbase = paddr & ~((1ull << shift) - 1);
    victim->lruStamp = ++lruClock_;
}

void
Tlb::invalidatePage(Addr vaddr)
{
    for (unsigned shift : {kPageShift, kHugePageShift}) {
        const Addr vpage = vaddr >> shift;
        Entry *base = &entries_[setIndex(vpage) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = base[w];
            if (e.valid && e.shift == shift && e.vpage == vpage) {
                e.valid = false;
                if (shift == kHugePageShift)
                    --hugeEntries_;
            }
        }
    }
}

void
Tlb::flushAll()
{
    for (Entry &e : entries_)
        e.valid = false;
    hugeEntries_ = 0;
}

} // namespace memento
