#include "mem/dram.h"

namespace memento {

Dram::Dram(const DramConfig &cfg, StatRegistry &stats)
    : cfg_(cfg),
      banks_(cfg.banks),
      reads_(stats.counter("dram.reads")),
      writes_(stats.counter("dram.writes")),
      rowHits_(stats.counter("dram.row_hits")),
      rowMisses_(stats.counter("dram.row_misses")),
      bytes_(stats.counter("dram.bytes"))
{
}

Cycles
Dram::access(Addr paddr, bool is_write, Cycles now)
{
    // Interleave lines across banks, rows within a bank are contiguous.
    const std::uint64_t line = paddr >> kLineShift;
    Bank &bank = banks_[line % banks_.size()];
    const std::uint64_t row = paddr / cfg_.rowBytes;

    Cycles latency;
    if (bank.openRow == row) {
        latency = cfg_.hitLatency;
        ++rowHits_;
    } else {
        latency = cfg_.missLatency;
        ++rowMisses_;
        bank.openRow = row;
    }

    // Queue behind an in-flight access to the same bank.
    if (bank.busyUntil > now)
        latency += cfg_.bankBusyPenalty;
    bank.busyUntil = now + latency;

    bytes_ += kLineSize;
    if (is_write) {
        ++writes_;
        return 0; // Writebacks are posted; not on the critical path.
    }
    ++reads_;
    return latency;
}

std::uint64_t
Dram::totalBytes() const
{
    return bytes_.value();
}

} // namespace memento
