#include "mem/cache.h"

#include "sim/logging.h"

namespace memento {

Cache::Cache(const std::string &name, const CacheConfig &cfg,
             StatRegistry &stats)
    : name_(name),
      numSets_(cfg.numSets()),
      ways_(cfg.ways),
      latency_(cfg.latency),
      lines_(numSets_ * ways_),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses")),
      evictions_(stats.counter(name + ".evictions")),
      dirtyEvictions_(stats.counter(name + ".dirty_evictions"))
{
    panic_if(numSets_ == 0, "cache ", name, ": zero sets");
    panic_if(!isPowerOfTwo(numSets_), "cache ", name,
             ": set count must be a power of two");
}

bool
Cache::invalidate(Addr paddr)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            bool was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

std::uint64_t
Cache::flushAll()
{
    std::uint64_t dirty = 0;
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            ++dirty;
        line.valid = false;
        line.dirty = false;
    }
    return dirty;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++n;
    }
    return n;
}

void
Cache::forEachLine(
    const std::function<void(Addr lineAddr, bool dirty)> &fn) const
{
    for (const Line &line : lines_) {
        if (line.valid)
            fn(line.tag << kLineShift, line.dirty);
    }
}

bool
Cache::checkIntegrity(std::vector<std::string> &violations) const
{
    const std::size_t before = violations.size();
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        const Line *base = &lines_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const Line &line = base[w];
            if (!line.valid) {
                if (line.dirty)
                    violations.push_back(name_ + ": invalid line dirty");
                continue;
            }
            if (setIndex(line.tag << kLineShift) != set)
                violations.push_back(
                    name_ + ": tag does not map to its own set");
            for (unsigned v = w + 1; v < ways_; ++v) {
                if (base[v].valid && base[v].tag == line.tag)
                    violations.push_back(
                        name_ + ": duplicate tag within a set");
            }
        }
    }
    return violations.size() == before;
}

} // namespace memento
