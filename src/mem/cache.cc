#include "mem/cache.h"

#include "sim/logging.h"

namespace memento {

Cache::Cache(const std::string &name, const CacheConfig &cfg,
             StatRegistry &stats)
    : name_(name),
      numSets_(cfg.numSets()),
      ways_(cfg.ways),
      latency_(cfg.latency),
      lines_(numSets_ * ways_),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses")),
      evictions_(stats.counter(name + ".evictions")),
      dirtyEvictions_(stats.counter(name + ".dirty_evictions"))
{
    fatal_if(numSets_ == 0, "cache ", name, ": zero sets");
    fatal_if(!isPowerOfTwo(numSets_), "cache ", name,
             ": set count must be a power of two");
}

std::uint64_t
Cache::setIndex(Addr paddr) const
{
    return (paddr >> kLineShift) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr paddr) const
{
    return paddr >> kLineShift;
}

bool
Cache::access(Addr paddr, bool is_write)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            if (is_write)
                line.dirty = true;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Cache::contains(Addr paddr) const
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    const Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

Cache::Eviction
Cache::install(Addr paddr, bool dirty)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];

    // Already resident: just refresh.
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            line.dirty = line.dirty || dirty;
            return {};
        }
    }

    // Find an invalid way, else the LRU victim.
    Line *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    Eviction evicted;
    if (!victim) {
        victim = &base[0];
        for (unsigned w = 1; w < ways_; ++w) {
            if (base[w].lruStamp < victim->lruStamp)
                victim = &base[w];
        }
        evicted.valid = true;
        evicted.lineAddr = victim->tag << kLineShift;
        evicted.dirty = victim->dirty;
        ++evictions_;
        if (victim->dirty)
            ++dirtyEvictions_;
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lruStamp = ++lruClock_;
    return evicted;
}

bool
Cache::invalidate(Addr paddr)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            bool was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
Cache::markDirty(Addr paddr)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return;
        }
    }
}

std::uint64_t
Cache::flushAll()
{
    std::uint64_t dirty = 0;
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            ++dirty;
        line.valid = false;
        line.dirty = false;
    }
    return dirty;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++n;
    }
    return n;
}

void
Cache::forEachLine(
    const std::function<void(Addr lineAddr, bool dirty)> &fn) const
{
    for (const Line &line : lines_) {
        if (line.valid)
            fn(line.tag << kLineShift, line.dirty);
    }
}

bool
Cache::checkIntegrity(std::vector<std::string> &violations) const
{
    const std::size_t before = violations.size();
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        const Line *base = &lines_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const Line &line = base[w];
            if (!line.valid) {
                if (line.dirty)
                    violations.push_back(name_ + ": invalid line dirty");
                continue;
            }
            if (setIndex(line.tag << kLineShift) != set)
                violations.push_back(
                    name_ + ": tag does not map to its own set");
            for (unsigned v = w + 1; v < ways_; ++v) {
                if (base[v].valid && base[v].tag == line.tag)
                    violations.push_back(
                        name_ + ": duplicate tag within a set");
            }
        }
    }
    return violations.size() == before;
}

} // namespace memento
