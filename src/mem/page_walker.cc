#include "mem/page_walker.h"

// Header-only; this translation unit anchors the component.
