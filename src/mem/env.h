/**
 * @file
 * Execution environment interface.
 *
 * Software models (OS kernel paths, userspace allocators) and hardware
 * units execute against this interface: they retire instructions and
 * perform memory references without knowing how the Machine wires the
 * TLBs, caches and DRAM together. The Machine implements it.
 *
 * All charge/access calls add to the machine's cycle ledger under the
 * caller's current CycleCategory.
 */

#ifndef MEMENTO_MEM_ENV_H
#define MEMENTO_MEM_ENV_H

#include "mem/access.h"
#include "sim/cycles.h"
#include "sim/types.h"

namespace memento {

/** The world as seen by an executing software or hardware model. */
class Env
{
  public:
    virtual ~Env() = default;

    /** Retire @p n instructions (cycles = n / baseIpc). */
    virtual void chargeInstructions(InstCount n) = 0;

    /** Charge @p n raw cycles (fixed hardware latencies). */
    virtual void chargeCycles(Cycles n) = 0;

    /**
     * Perform a data reference to virtual address @p vaddr: translation
     * (TLBs, page walk, fault handling) plus the cache access. The full
     * critical-path latency is charged; it is also returned.
     */
    virtual Cycles accessVirtual(Addr vaddr, AccessType type) = 0;

    /**
     * Perform a data reference to physical address @p paddr (hardware
     * units and kernel structures addressed physically). Charged and
     * returned.
     */
    virtual Cycles accessPhysical(Addr paddr, AccessType type,
                                  AccessAttrs attrs = {}) = 0;

    /**
     * Instantiate a line dirty in the L1D without fetching it (hardware
     * metadata initialization, e.g. a fresh arena header). Charged and
     * returned.
     */
    virtual Cycles installPhysical(Addr paddr) = 0;

    /** Current cycle. */
    virtual Cycles now() const = 0;

    /** The machine's cycle ledger (for CategoryScope). */
    virtual CycleLedger &ledger() = 0;

    /** Invalidate the translation for @p vaddr in all TLB levels. */
    virtual void tlbInvalidate(Addr vaddr) = 0;
};

} // namespace memento

#endif // MEMENTO_MEM_ENV_H
