/**
 * @file
 * Banked open-row DRAM model with traffic accounting.
 *
 * A deliberately simple DDR4-3200-like timing model: each access maps to a
 * bank via address interleaving; hitting the bank's open row costs
 * hitLatency, a row conflict costs missLatency, and back-to-back accesses
 * to a busy bank queue behind it. All reads/writes count 64 B of traffic
 * for the bandwidth figures (Fig. 10).
 */

#ifndef MEMENTO_MEM_DRAM_H
#define MEMENTO_MEM_DRAM_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** The main-memory device model. */
class Dram
{
  public:
    Dram(const DramConfig &cfg, StatRegistry &stats);

    /**
     * Perform one line-sized access.
     *
     * @param paddr Physical address of the line.
     * @param is_write True for writebacks, false for fills.
     * @param now Current core cycle (for bank-busy queuing).
     * @return Latency in core cycles. Writebacks return 0: they are off
     *         the critical path but still occupy the bank and count
     *         traffic.
     */
    Cycles access(Addr paddr, bool is_write, Cycles now);

    /** Total bytes moved (reads + writes). */
    std::uint64_t totalBytes() const;

    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycles busyUntil = 0;
    };

    DramConfig cfg_;
    std::vector<Bank> banks_;

    Counter reads_;
    Counter writes_;
    Counter rowHits_;
    Counter rowMisses_;
    Counter bytes_;
};

} // namespace memento

#endif // MEMENTO_MEM_DRAM_H
