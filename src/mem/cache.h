/**
 * @file
 * A functional set-associative cache model (tags only, LRU, write-back).
 *
 * The cache stores no data: it tracks which physical lines are resident
 * and dirty so the hierarchy can compute hit/miss latencies and DRAM
 * traffic. Timing is owned by CacheHierarchy.
 */

#ifndef MEMENTO_MEM_CACHE_H
#define MEMENTO_MEM_CACHE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** One set-associative write-back cache level. */
class Cache
{
  public:
    /** Result of installing a line: the victim, if one was evicted. */
    struct Eviction
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    /**
     * @param name Stat prefix, e.g. "l1d".
     * @param cfg Geometry and latency.
     * @param stats Registry receiving <name>.hits / <name>.misses.
     */
    Cache(const std::string &name, const CacheConfig &cfg,
          StatRegistry &stats);

    // The per-access methods below are defined inline at the bottom of
    // this header: they run tens of millions of times per workload
    // replay and dominate the self-benchmark profile when the compiler
    // cannot see their bodies from CacheHierarchy.

    /**
     * Look up @p paddr; on a hit, update LRU and (for writes) the dirty
     * bit. Does not allocate on miss — the hierarchy installs lines
     * explicitly so it can model bypass and inclusion.
     *
     * @return true on hit.
     */
    bool access(Addr paddr, bool is_write);

    /** True if the line holding @p paddr is resident (no LRU update). */
    bool contains(Addr paddr) const;

    /**
     * Install the line holding @p paddr, evicting the set's LRU entry if
     * the set is full. @p dirty marks the new line dirty on arrival.
     */
    Eviction install(Addr paddr, bool dirty);

    /**
     * install() for a line the caller has just observed missing at this
     * level (an access() or contains() that returned false, with no
     * intervening install): skips the already-resident probe. Victim
     * choice, LRU updates, and eviction accounting are identical to
     * install() on an absent line — this is purely the hot-path form.
     */
    Eviction installAbsent(Addr paddr, bool dirty);

    /**
     * Remove the line holding @p paddr if resident.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr paddr);

    /** Mark the resident line holding @p paddr dirty (no-op if absent). */
    void markDirty(Addr paddr);

    /**
     * Single-scan contains() + markDirty(): mark the resident line
     * holding @p paddr dirty.
     * @return true if the line was resident.
     */
    bool tryMarkDirty(Addr paddr);

    /** Invalidate everything (returns number of dirty lines dropped). */
    std::uint64_t flushAll();

    /** Access latency from the configuration. */
    Cycles latency() const { return latency_; }

    /** Number of resident lines (for tests). */
    std::uint64_t residentLines() const;

    /** Visit every resident line as (line base address, dirty). */
    void forEachLine(
        const std::function<void(Addr lineAddr, bool dirty)> &fn) const;

    /**
     * Verify internal tag/set consistency: every valid line's tag must
     * map back to the set it occupies, and no set may hold the same
     * tag twice. Appends one message per violation to @p violations.
     * @return true when clean.
     */
    bool checkIntegrity(std::vector<std::string> &violations) const;

    const std::string &name() const { return name_; }

  private:
    friend struct InvariantTestPeer; ///< Corruption hooks for val tests.

    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(Addr paddr) const;
    Addr tagOf(Addr paddr) const;

    /** Shared install tail: fill the first invalid way, else evict @p lru. */
    Eviction fillVictim(Line *invalid, Line *lru, Addr tag, bool dirty);

    std::string name_;
    std::uint64_t numSets_;
    unsigned ways_;
    Cycles latency_;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major.
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter evictions_;
    Counter dirtyEvictions_;
};

// ---- Hot-path inline definitions ----

inline std::uint64_t
Cache::setIndex(Addr paddr) const
{
    return (paddr >> kLineShift) & (numSets_ - 1);
}

inline Addr
Cache::tagOf(Addr paddr) const
{
    return paddr >> kLineShift;
}

inline bool
Cache::access(Addr paddr, bool is_write)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            if (is_write)
                line.dirty = true;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

inline bool
Cache::contains(Addr paddr) const
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    const Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

inline Cache::Eviction
Cache::fillVictim(Line *invalid, Line *lru, Addr tag, bool dirty)
{
    // An invalid way wins over the LRU victim; `lru` is the first
    // least-recently-used valid way of the set when none is invalid —
    // the same victim order the pre-fused triple scan produced.
    Line *victim = invalid;
    Eviction evicted;
    if (!victim) {
        victim = lru;
        evicted.valid = true;
        evicted.lineAddr = victim->tag << kLineShift;
        evicted.dirty = victim->dirty;
        ++evictions_;
        if (victim->dirty)
            ++dirtyEvictions_;
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lruStamp = ++lruClock_;
    return evicted;
}

inline Cache::Eviction
Cache::install(Addr paddr, bool dirty)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];

    // One scan finds a resident copy, the first invalid way, and the
    // LRU entry simultaneously (the set was scanned three times here
    // before the bench harness flagged install() as the hottest
    // function in the sweep).
    Line *invalid = nullptr;
    Line *lru = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid) {
            if (line.tag == tag) {
                // Already resident: just refresh.
                line.lruStamp = ++lruClock_;
                line.dirty = line.dirty || dirty;
                return {};
            }
            if (line.lruStamp < lru->lruStamp)
                lru = &line;
        } else if (!invalid) {
            invalid = &line;
        }
    }
    return fillVictim(invalid, lru, tag, dirty);
}

inline Cache::Eviction
Cache::installAbsent(Addr paddr, bool dirty)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];

    Line *invalid = nullptr;
    Line *lru = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid) {
            if (line.lruStamp < lru->lruStamp)
                lru = &line;
        } else if (!invalid) {
            invalid = &line;
        }
    }
    return fillVictim(invalid, lru, tag, dirty);
}

inline bool
Cache::tryMarkDirty(Addr paddr)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return true;
        }
    }
    return false;
}

inline void
Cache::markDirty(Addr paddr)
{
    tryMarkDirty(paddr);
}

} // namespace memento

#endif // MEMENTO_MEM_CACHE_H
