/**
 * @file
 * A functional set-associative cache model (tags only, LRU, write-back).
 *
 * The cache stores no data: it tracks which physical lines are resident
 * and dirty so the hierarchy can compute hit/miss latencies and DRAM
 * traffic. Timing is owned by CacheHierarchy.
 */

#ifndef MEMENTO_MEM_CACHE_H
#define MEMENTO_MEM_CACHE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** One set-associative write-back cache level. */
class Cache
{
  public:
    /** Result of installing a line: the victim, if one was evicted. */
    struct Eviction
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    /**
     * @param name Stat prefix, e.g. "l1d".
     * @param cfg Geometry and latency.
     * @param stats Registry receiving <name>.hits / <name>.misses.
     */
    Cache(const std::string &name, const CacheConfig &cfg,
          StatRegistry &stats);

    /**
     * Look up @p paddr; on a hit, update LRU and (for writes) the dirty
     * bit. Does not allocate on miss — the hierarchy installs lines
     * explicitly so it can model bypass and inclusion.
     *
     * @return true on hit.
     */
    bool access(Addr paddr, bool is_write);

    /** True if the line holding @p paddr is resident (no LRU update). */
    bool contains(Addr paddr) const;

    /**
     * Install the line holding @p paddr, evicting the set's LRU entry if
     * the set is full. @p dirty marks the new line dirty on arrival.
     */
    Eviction install(Addr paddr, bool dirty);

    /**
     * Remove the line holding @p paddr if resident.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr paddr);

    /** Mark the resident line holding @p paddr dirty (no-op if absent). */
    void markDirty(Addr paddr);

    /** Invalidate everything (returns number of dirty lines dropped). */
    std::uint64_t flushAll();

    /** Access latency from the configuration. */
    Cycles latency() const { return latency_; }

    /** Number of resident lines (for tests). */
    std::uint64_t residentLines() const;

    /** Visit every resident line as (line base address, dirty). */
    void forEachLine(
        const std::function<void(Addr lineAddr, bool dirty)> &fn) const;

    /**
     * Verify internal tag/set consistency: every valid line's tag must
     * map back to the set it occupies, and no set may hold the same
     * tag twice. Appends one message per violation to @p violations.
     * @return true when clean.
     */
    bool checkIntegrity(std::vector<std::string> &violations) const;

    const std::string &name() const { return name_; }

  private:
    friend struct InvariantTestPeer; ///< Corruption hooks for val tests.

    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(Addr paddr) const;
    Addr tagOf(Addr paddr) const;

    std::string name_;
    std::uint64_t numSets_;
    unsigned ways_;
    Cycles latency_;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major.
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter evictions_;
    Counter dirtyEvictions_;
};

} // namespace memento

#endif // MEMENTO_MEM_CACHE_H
