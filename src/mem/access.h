/**
 * @file
 * Shared request/result types for the simulated memory hierarchy.
 */

#ifndef MEMENTO_MEM_ACCESS_H
#define MEMENTO_MEM_ACCESS_H

#include "sim/types.h"

namespace memento {

/** Kind of memory reference presented to the hierarchy. */
enum class AccessType {
    Read,
    Write,
    Fetch, ///< Instruction fetch (routed to the L1I).
};

/** Side-band attributes of a reference. */
struct AccessAttrs
{
    /**
     * The line belongs to a freshly allocated Memento object that has
     * never been touched: on a full cache miss it may be instantiated
     * zero-filled at the LLC instead of being read from DRAM (§3.3).
     */
    bool bypassCandidate = false;
};

/** Outcome of one hierarchy access. */
struct AccessResult
{
    /** Critical-path latency of the access. */
    Cycles latency = 0;
    /** Level that supplied the data: 1=L1, 2=L2, 3=LLC, 4=DRAM. */
    unsigned servicedByLevel = 1;
    /** True when the line was instantiated at the LLC via bypass. */
    bool bypassed = false;
};

} // namespace memento

#endif // MEMENTO_MEM_ACCESS_H
