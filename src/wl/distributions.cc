#include "wl/distributions.h"

#include "sim/logging.h"

namespace memento {

SizeDistribution::SizeDistribution(std::vector<SizeBucket> buckets)
    : buckets_(std::move(buckets))
{
    fatal_if(buckets_.empty(), "size distribution with no buckets");
    for (const SizeBucket &b : buckets_) {
        fatal_if(b.lo == 0 || b.hi < b.lo, "bad size bucket");
        weights_.push_back(b.weight);
    }
}

std::uint64_t
SizeDistribution::sample(Rng &rng) const
{
    const SizeBucket &b = buckets_[rng.nextWeighted(weights_)];
    // Sample on an 8-byte lattice so sizes look like rounded requests.
    const std::uint64_t lo_g = (b.lo + 7) / 8;
    const std::uint64_t hi_g = b.hi / 8 > lo_g ? b.hi / 8 : lo_g;
    return rng.nextRange(lo_g, hi_g) * 8;
}

std::uint64_t
LifetimeModel::sampleDistance(Rng &rng) const
{
    if (rng.nextBool(pShort)) {
        // 1 + geometric with the requested mean (mean >= 1).
        const double mean = meanShortDistance > 1.0 ? meanShortDistance
                                                    : 1.0;
        return 1 + rng.nextGeometric(1.0 / mean);
    }
    if (pLongFreed > 0.0 && rng.nextBool(pLongFreed)) {
        const double mean = meanLongDistance > 1.0 ? meanLongDistance
                                                   : 1.0;
        return 1 + rng.nextGeometric(1.0 / mean);
    }
    return 0; // Never freed in-trace: batch-freed at exit.
}

} // namespace memento
