/**
 * @file
 * Allocation-trace operation stream.
 *
 * Workloads are abstract operation streams: compute bursts, loads and
 * stores addressed by object id + offset, mallocs and frees, and a
 * function-end marker. The same stream is replayed against the baseline
 * and the Memento machine so comparisons are exactly paired. Traces can
 * be serialized to a simple line-oriented text format for
 * record/replay.
 */

#ifndef MEMENTO_WL_TRACE_H
#define MEMENTO_WL_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.h"

namespace memento {

/** Trace operation kinds. */
enum class OpKind : std::uint8_t {
    Compute,     ///< Retire `value` application instructions.
    Load,        ///< Read object `objId` at byte `offset`.
    Store,       ///< Write object `objId` at byte `offset`.
    Malloc,      ///< Allocate `value` bytes as object `objId`.
    Free,        ///< Release object `objId`.
    StaticLoad,  ///< Read the static working set at byte `offset`.
    StaticStore, ///< Write the static working set at byte `offset`.
    FunctionEnd, ///< Function completes; batch-free everything live.
};

/** One operation. */
struct TraceOp
{
    OpKind kind = OpKind::Compute;
    std::uint64_t value = 0;  ///< Instructions (Compute) or size (Malloc).
    std::uint64_t objId = 0;  ///< Object identity for Malloc/Free/L/S.
    std::uint64_t offset = 0; ///< Byte offset for Load/Store/Static*.

    bool operator==(const TraceOp &) const = default;
};

/** A full operation stream. */
using Trace = std::vector<TraceOp>;

/** Write @p trace to @p os in the text format. */
void writeTrace(const Trace &trace, std::ostream &os);

/**
 * Parse a trace written by writeTrace(). Throws SimError(Trace) on
 * malformed input (a user error, not a simulator bug), so a sweep can
 * skip the bad trace and continue.
 */
Trace readTrace(std::istream &is);

/**
 * Parse records only, without readTrace()'s completeness check (a
 * recorded invocation must end in FunctionEnd). The static trace
 * checker uses this so a truncated file is diagnosed with proper rule
 * ids instead of rejected at parse time. Unparseable lines throw
 * SimError(Trace) carrying the 1-based line number in opIndex().
 */
Trace readTraceOps(std::istream &is);

/** Count operations of @p kind in @p trace. */
std::uint64_t countOps(const Trace &trace, OpKind kind);

} // namespace memento

#endif // MEMENTO_WL_TRACE_H
