#include "wl/trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/error.h"
#include "sim/logging.h"

namespace memento {
namespace {

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::Compute: return "C";
      case OpKind::Load: return "L";
      case OpKind::Store: return "S";
      case OpKind::Malloc: return "M";
      case OpKind::Free: return "F";
      case OpKind::StaticLoad: return "l";
      case OpKind::StaticStore: return "s";
      case OpKind::FunctionEnd: return "E";
    }
    panic("bad op kind");
}

bool
opFromName(const std::string &name, OpKind &kind)
{
    if (name == "C") kind = OpKind::Compute;
    else if (name == "L") kind = OpKind::Load;
    else if (name == "S") kind = OpKind::Store;
    else if (name == "M") kind = OpKind::Malloc;
    else if (name == "F") kind = OpKind::Free;
    else if (name == "l") kind = OpKind::StaticLoad;
    else if (name == "s") kind = OpKind::StaticStore;
    else if (name == "E") kind = OpKind::FunctionEnd;
    else return false;
    return true;
}

} // namespace

void
writeTrace(const Trace &trace, std::ostream &os)
{
    for (const TraceOp &op : trace) {
        os << opName(op.kind) << ' ' << op.value << ' ' << op.objId << ' '
           << op.offset << '\n';
    }
}

Trace
readTraceOps(std::istream &is)
{
    Trace trace;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        TraceOp op;
        ls >> name >> op.value >> op.objId >> op.offset;
        if (ls.fail() || !opFromName(name, op.kind)) {
            throw SimError(ErrorCategory::Trace,
                           detail::formatMsg("trace parse error at line ",
                                             line_no),
                           line_no);
        }
        trace.push_back(op);
    }
    return trace;
}

Trace
readTrace(std::istream &is)
{
    Trace trace = readTraceOps(is);
    // Serialized traces record complete invocations; a missing
    // FunctionEnd terminator means the file was truncated.
    sim_error_if(trace.empty() ||
                     trace.back().kind != OpKind::FunctionEnd,
                 ErrorCategory::Trace,
                 "trace truncated: missing FunctionEnd terminator after ",
                 trace.size(), " ops");
    return trace;
}

std::uint64_t
countOps(const Trace &trace, OpKind kind)
{
    std::uint64_t n = 0;
    for (const TraceOp &op : trace) {
        if (op.kind == kind)
            ++n;
    }
    return n;
}

} // namespace memento
