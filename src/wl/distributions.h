/**
 * @file
 * Sampling distributions used to synthesize allocation traces.
 *
 * Each paper workload is reduced to the statistics §2.2 measures:
 * an allocation-size mixture and a bimodal lifetime distribution
 * (short-lived objects freed within a few same-class allocations vs.
 * long-lived objects reclaimed only at function exit / by GC).
 */

#ifndef MEMENTO_WL_DISTRIBUTIONS_H
#define MEMENTO_WL_DISTRIBUTIONS_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace memento {

/** A weighted size range [lo, hi] sampled uniformly (8 B granules). */
struct SizeBucket
{
    double weight = 1.0;
    std::uint64_t lo = 8;
    std::uint64_t hi = 64;
};

/** Mixture-of-ranges allocation size distribution. */
class SizeDistribution
{
  public:
    SizeDistribution() = default;
    explicit SizeDistribution(std::vector<SizeBucket> buckets);

    /** Draw one allocation size (bytes, >= 1). */
    std::uint64_t sample(Rng &rng) const;

    const std::vector<SizeBucket> &buckets() const { return buckets_; }

  private:
    std::vector<SizeBucket> buckets_;
    std::vector<double> weights_;
};

/** Bimodal lifetime model in units of same-size-class allocations. */
struct LifetimeModel
{
    /** Probability an object is short-lived. */
    double pShort = 0.7;
    /**
     * Mean of the (1 + geometric) short distance; the paper observes
     * most short-lived objects die within 16 same-class allocations.
     */
    double meanShortDistance = 5.0;
    /**
     * Probability a long-lived object is freed late (large distance)
     * rather than never (OS batch-free at exit).
     */
    double pLongFreed = 0.1;
    /** Mean distance of late-freed long-lived objects. */
    double meanLongDistance = 400.0;

    /**
     * Draw a malloc-free distance; 0 means "never freed in-trace".
     */
    std::uint64_t sampleDistance(Rng &rng) const;
};

} // namespace memento

#endif // MEMENTO_WL_DISTRIBUTIONS_H
