#include "wl/trace_generator.h"

#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/size_class.h"

namespace memento {

Trace
TraceGenerator::generate() const
{
    Rng rng(spec_.seed * 0x9e3779b97f4a7c15ull + 0xD1B54A32D192ED03ull);
    Trace trace;
    trace.reserve(spec_.numAllocs * 8);

    std::uint64_t next_id = 1;

    // Per-size-class allocation counters and death schedules. Deaths
    // are keyed by the class counter value at which they become due.
    std::vector<std::uint64_t> class_count(kNumSmallClasses, 0);
    std::vector<std::map<std::uint64_t, std::vector<std::uint64_t>>>
        due_small(kNumSmallClasses);

    // Large-object deaths scheduled on the global allocation counter.
    std::map<std::uint64_t, std::vector<std::uint64_t>> due_large;

    // Recently allocated live objects (targets for reuse loads).
    struct Recent
    {
        std::uint64_t objId;
        std::uint64_t size;
    };
    std::deque<Recent> recent;
    std::unordered_set<std::uint64_t> freed;

    auto touch_offset = [&](std::uint64_t size, unsigned line) {
        const std::uint64_t off = static_cast<std::uint64_t>(line) *
                                  kLineSize;
        return off < size ? off : size - 1;
    };

    for (std::uint64_t i = 0; i < spec_.numAllocs; ++i) {
        // Application compute between allocation events.
        trace.push_back(
            {OpKind::Compute, spec_.computePerAlloc, 0, 0});

        // Background references into the static working set.
        for (unsigned a = 0; a < spec_.staticAccesses; ++a) {
            const std::uint64_t off = rng.nextBelow(spec_.staticWsBytes);
            trace.push_back({rng.nextBool(0.3) ? OpKind::StaticStore
                                               : OpKind::StaticLoad,
                             0, 0, off});
        }

        // The allocation itself.
        const bool is_large = rng.nextBool(spec_.pLarge);
        const std::uint64_t size = is_large
                                       ? spec_.largeDist.sample(rng)
                                       : spec_.sizeDist.sample(rng);
        const std::uint64_t id = next_id++;
        trace.push_back({OpKind::Malloc, size, id, 0});

        // Initialize the object: stores to its leading lines.
        const unsigned obj_lines =
            static_cast<unsigned>((size + kLineSize - 1) / kLineSize);
        const unsigned stores = spec_.touchStores < obj_lines
                                    ? spec_.touchStores
                                    : obj_lines;
        for (unsigned t = 0; t < stores; ++t)
            trace.push_back(
                {OpKind::Store, 0, id, touch_offset(size, t)});

        // Reuse loads over recently allocated objects.
        recent.push_back({id, size});
        if (recent.size() > 64)
            recent.pop_front();
        for (unsigned t = 0; t < spec_.touchLoads; ++t) {
            // Pick a still-live recent object (never read freed memory).
            const Recent *target = nullptr;
            for (unsigned attempt = 0; attempt < 4 && !target; ++attempt) {
                const Recent &r = recent[rng.nextBelow(recent.size())];
                if (!freed.count(r.objId))
                    target = &r;
            }
            if (!target)
                target = &recent.back(); // The fresh object, never freed.
            const unsigned line = static_cast<unsigned>(rng.nextBelow(
                (target->size + kLineSize - 1) / kLineSize));
            trace.push_back({OpKind::Load, 0, target->objId,
                             touch_offset(target->size, line)});
        }

        // Schedule the death.
        if (!is_large) {
            const unsigned cls = sizeClassIndex(
                size <= kMaxSmallSize ? size : kMaxSmallSize);
            ++class_count[cls];
            const std::uint64_t distance =
                spec_.lifetime.sampleDistance(rng);
            if (distance > 0) {
                due_small[cls][class_count[cls] + distance].push_back(id);
            }
            // Emit deaths that have become due for this class.
            auto &due = due_small[cls];
            while (!due.empty() &&
                   due.begin()->first <= class_count[cls]) {
                for (std::uint64_t dead : due.begin()->second) {
                    trace.push_back({OpKind::Free, 0, dead, 0});
                    freed.insert(dead);
                }
                due.erase(due.begin());
            }
        } else {
            if (rng.nextBool(spec_.pLargeShort)) {
                const std::uint64_t distance =
                    1 + rng.nextGeometric(1.0 / 6.0);
                due_large[i + 1 + distance].push_back(id);
            }
            auto it = due_large.begin();
            while (it != due_large.end() && it->first <= i + 1) {
                for (std::uint64_t dead : it->second) {
                    trace.push_back({OpKind::Free, 0, dead, 0});
                    freed.insert(dead);
                }
                it = due_large.erase(it);
            }
        }

        // Phase burst: allocate a scratch buffer set, touch it, free it
        // wholesale at the end of the phase.
        if (spec_.burstEvery != 0 && (i + 1) % spec_.burstEvery == 0) {
            const std::uint64_t count =
                spec_.burstBytes / spec_.burstObjSize;
            std::vector<std::uint64_t> burst_ids;
            burst_ids.reserve(count);
            for (std::uint64_t b = 0; b < count; ++b) {
                const std::uint64_t bid = next_id++;
                burst_ids.push_back(bid);
                trace.push_back(
                    {OpKind::Malloc, spec_.burstObjSize, bid, 0});
                trace.push_back({OpKind::Store, 0, bid, 0});
            }
            trace.push_back({OpKind::Compute, spec_.computePerAlloc, 0,
                             0});
            for (std::uint64_t bid : burst_ids) {
                trace.push_back({OpKind::Free, 0, bid, 0});
                freed.insert(bid);
            }
        }
    }

    trace.push_back({OpKind::FunctionEnd, 0, 0, 0});
    return trace;
}

std::shared_ptr<const Trace>
TraceCache::get(const WorkloadSpec &spec)
{
    const std::string key = spec.id + '#' + std::to_string(spec.seed) +
                            '#' + std::to_string(spec.numAllocs);
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::shared_ptr<Entry> &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // The map lock is not held while synthesizing: other workloads'
    // first touches proceed concurrently; only same-key late arrivals
    // block here, on the entry's own once_flag.
    std::call_once(entry->once, [&] {
        entry->trace =
            std::make_shared<const Trace>(TraceGenerator(spec).generate());
        generations_.fetch_add(1, std::memory_order_relaxed);
    });
    return entry->trace;
}

} // namespace memento
