#include "wl/workloads.h"

#include "sim/logging.h"

namespace memento {
namespace {

using SB = SizeBucket;

/** Default large-allocation mixture (KB-scale buffers). */
SizeDistribution
defaultLargeDist()
{
    return SizeDistribution({SB{0.70, 520, 2048}, SB{0.25, 2049, 16384},
                             SB{0.05, 16385, 131072}});
}

WorkloadSpec
base(std::string id, std::string desc, Language lang, Domain domain,
     std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.id = std::move(id);
    spec.description = std::move(desc);
    spec.lang = lang;
    spec.domain = domain;
    spec.largeDist = defaultLargeDist();
    spec.seed = seed;
    return spec;
}

std::vector<WorkloadSpec>
buildWorkloads()
{
    std::vector<WorkloadSpec> v;

    // ---------------- Python functions (SeBS / FunctionBench /
    // pyperformance) ----------------
    {
        // dynamic-html: renders templated HTML; streams freshly
        // allocated string buffers (bypass-friendly, biggest speedup).
        auto w = base("html", "SeBS dynamic-html", Language::Python,
                      Domain::Function, 101);
        w.numAllocs = 120'000;
        w.sizeDist = SizeDistribution(
            {SB{0.18, 24, 96}, SB{0.38, 97, 288}, SB{0.44, 289, 512}});
        w.lifetime = {.pShort = 0.76, .meanShortDistance = 4.0,
                      .pLongFreed = 0.30, .meanLongDistance = 500.0};
        w.pLarge = 0.030;
        w.computePerAlloc = 1150;
        w.burstEvery = 8000;
        w.burstBytes = 320 << 10;
        w.touchStores = 6;
        w.touchLoads = 1;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }
    {
        // image-recognition: compute-heavy inference over tensors.
        auto w = base("ir", "SeBS image-recognition", Language::Python,
                      Domain::Function, 102);
        w.numAllocs = 80'000;
        w.sizeDist = SizeDistribution(
            {SB{0.40, 16, 64}, SB{0.35, 65, 240}, SB{0.25, 241, 512}});
        w.lifetime = {.pShort = 0.72, .meanShortDistance = 5.0,
                      .pLongFreed = 0.30, .meanLongDistance = 600.0};
        w.pLarge = 0.050;
        w.computePerAlloc = 3400;
        w.burstEvery = 9000;
        w.burstBytes = 384 << 10;
        w.touchStores = 2;
        w.touchLoads = 3;
        w.staticWsBytes = (3 << 20) / 2;
        w.staticAccesses = 3;
        v.push_back(w);
    }
    {
        // graph-bfs: frontier churn over a static graph image.
        auto w = base("bfs", "SeBS graph-bfs", Language::Python,
                      Domain::Function, 103);
        w.numAllocs = 140'000;
        w.sizeDist = SizeDistribution(
            {SB{0.45, 16, 64}, SB{0.35, 65, 240}, SB{0.20, 241, 512}});
        w.lifetime = {.pShort = 0.70, .meanShortDistance = 6.0,
                      .pLongFreed = 0.10, .meanLongDistance = 800.0};
        w.pLarge = 0.010;
        w.computePerAlloc = 1550;
        w.burstEvery = 9000;
        w.burstBytes = 320 << 10;
        w.touchStores = 1;
        w.touchLoads = 2;
        w.staticWsBytes = (3 << 20) / 2;
        w.staticAccesses = 3;
        v.push_back(w);
    }
    {
        // dna-visualisation: large sequence strings + small records.
        auto w = base("dna", "SeBS dna-visualisation", Language::Python,
                      Domain::Function, 104);
        w.numAllocs = 90'000;
        w.sizeDist = SizeDistribution(
            {SB{0.40, 24, 96}, SB{0.30, 97, 288}, SB{0.30, 289, 512}});
        w.lifetime = {.pShort = 0.74, .meanShortDistance = 5.0,
                      .pLongFreed = 0.06, .meanLongDistance = 700.0};
        w.pLarge = 0.080;
        w.computePerAlloc = 2300;
        w.burstEvery = 7000;
        w.burstBytes = 384 << 10;
        w.touchStores = 3;
        w.touchLoads = 2;
        w.staticWsBytes = (3 << 20) / 2;
        v.push_back(w);
    }
    {
        // pyaes: tiny working set, allocation-dominated (>90% of the
        // gains come from object management, §6.1).
        auto w = base("aes", "FunctionBench pyaes", Language::Python,
                      Domain::Function, 105);
        w.numAllocs = 60'000;
        w.sizeDist = SizeDistribution({SB{0.80, 16, 64}, SB{0.20, 65, 160}});
        w.lifetime = {.pShort = 0.90, .meanShortDistance = 3.0,
                      .pLongFreed = 0.30, .meanLongDistance = 300.0};
        w.pLarge = 0.004;
        w.computePerAlloc = 520;
        w.touchStores = 1;
        w.touchLoads = 1;
        w.staticWsBytes = 128 << 10;
        w.staticAccesses = 1;
        v.push_back(w);
    }
    {
        // feature_reducer: text feature extraction.
        auto w = base("fr", "FunctionBench feature_reducer",
                      Language::Python, Domain::Function, 106);
        w.numAllocs = 100'000;
        w.sizeDist = SizeDistribution(
            {SB{0.45, 24, 96}, SB{0.30, 97, 288}, SB{0.25, 289, 512}});
        w.lifetime = {.pShort = 0.74, .meanShortDistance = 5.0,
                      .pLongFreed = 0.30, .meanLongDistance = 500.0};
        w.pLarge = 0.020;
        w.computePerAlloc = 2000;
        w.burstEvery = 7500;
        w.burstBytes = 320 << 10;
        w.touchStores = 2;
        w.touchLoads = 2;
        w.staticWsBytes = (3 << 20) / 2;
        v.push_back(w);
    }
    {
        // json_loads: parser churn, small dicts/strings, small WS.
        auto w = base("jl", "pyperformance json_loads", Language::Python,
                      Domain::Function, 107);
        w.numAllocs = 150'000;
        w.sizeDist = SizeDistribution({SB{0.75, 16, 96}, SB{0.25, 97, 256}});
        w.lifetime = {.pShort = 0.86, .meanShortDistance = 4.0,
                      .pLongFreed = 0.30, .meanLongDistance = 400.0};
        w.pLarge = 0.003;
        w.computePerAlloc = 640;
        w.touchStores = 1;
        w.touchLoads = 1;
        w.staticWsBytes = 256 << 10;
        w.staticAccesses = 1;
        v.push_back(w);
    }
    {
        // json_dumps: serializer builds many short-lived strings.
        auto w = base("jd", "pyperformance json_dumps", Language::Python,
                      Domain::Function, 108);
        w.numAllocs = 130'000;
        w.sizeDist = SizeDistribution(
            {SB{0.45, 16, 96}, SB{0.30, 97, 288}, SB{0.25, 289, 512}});
        w.lifetime = {.pShort = 0.78, .meanShortDistance = 4.0,
                      .pLongFreed = 0.30, .meanLongDistance = 400.0};
        w.pLarge = 0.015;
        w.computePerAlloc = 1550;
        w.burstEvery = 8500;
        w.burstBytes = 320 << 10;
        w.touchStores = 3;
        w.touchLoads = 1;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }
    {
        // mako: template rendering, string heavy.
        auto w = base("mk", "pyperformance mako", Language::Python,
                      Domain::Function, 109);
        w.numAllocs = 110'000;
        w.sizeDist = SizeDistribution(
            {SB{0.40, 24, 128}, SB{0.35, 129, 320}, SB{0.25, 321, 512}});
        w.lifetime = {.pShort = 0.76, .meanShortDistance = 4.0,
                      .pLongFreed = 0.30, .meanLongDistance = 500.0};
        w.pLarge = 0.020;
        w.computePerAlloc = 1650;
        w.burstEvery = 8000;
        w.burstBytes = 320 << 10;
        w.touchStores = 3;
        w.touchLoads = 2;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }

    // ---------------- C++ functions (DeathStarBench units) -----------
    {
        auto w = base("US", "DeathStarBench UrlShorten", Language::Cpp,
                      Domain::Function, 201);
        w.numAllocs = 100'000;
        w.sizeDist = SizeDistribution({SB{0.75, 8, 64}, SB{0.25, 65, 192}});
        w.lifetime = {.pShort = 0.92, .meanShortDistance = 3.0,
                      .pLongFreed = 0.30, .meanLongDistance = 300.0};
        w.pLarge = 0.003;
        w.largeDist = SizeDistribution({SB{1.0, 520, 4096}});
        w.computePerAlloc = 120;
        w.touchStores = 1;
        w.touchLoads = 1;
        w.staticWsBytes = 512 << 10;
        v.push_back(w);
    }
    {
        auto w = base("UM", "DeathStarBench UserMentions", Language::Cpp,
                      Domain::Function, 202);
        w.numAllocs = 110'000;
        w.sizeDist = SizeDistribution(
            {SB{0.60, 16, 96}, SB{0.30, 97, 256}, SB{0.10, 257, 512}});
        w.lifetime = {.pShort = 0.90, .meanShortDistance = 4.0,
                      .pLongFreed = 0.30, .meanLongDistance = 300.0};
        w.pLarge = 0.004;
        w.largeDist = SizeDistribution({SB{1.0, 520, 4096}});
        w.computePerAlloc = 130;
        w.touchStores = 3;
        w.touchLoads = 3;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }
    {
        auto w = base("CM", "DeathStarBench ComposeMedia", Language::Cpp,
                      Domain::Function, 203);
        w.numAllocs = 120'000;
        w.sizeDist = SizeDistribution(
            {SB{0.45, 32, 128}, SB{0.35, 129, 320}, SB{0.20, 321, 512}});
        w.lifetime = {.pShort = 0.88, .meanShortDistance = 4.0,
                      .pLongFreed = 0.03, .meanLongDistance = 300.0};
        w.pLarge = 0.006;
        w.largeDist = SizeDistribution({SB{1.0, 520, 8192}});
        w.computePerAlloc = 150;
        w.touchStores = 4;
        w.touchLoads = 2;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }
    {
        auto w = base("MI", "DeathStarBench MovieID", Language::Cpp,
                      Domain::Function, 204);
        w.numAllocs = 90'000;
        w.sizeDist = SizeDistribution({SB{0.80, 8, 64}, SB{0.20, 65, 160}});
        w.lifetime = {.pShort = 0.93, .meanShortDistance = 3.0,
                      .pLongFreed = 0.30, .meanLongDistance = 300.0};
        w.pLarge = 0.002;
        w.largeDist = SizeDistribution({SB{1.0, 520, 4096}});
        w.computePerAlloc = 115;
        w.touchStores = 1;
        w.touchLoads = 2;
        w.staticWsBytes = 512 << 10;
        v.push_back(w);
    }

    // ---------------- Golang function ports --------------------------
    // Go objects die only at GC time; functions finish before the first
    // cycle, so no Free events appear and everything is batch-freed.
    {
        auto w = base("html-go", "dynamic-html ported to Go",
                      Language::Golang, Domain::Function, 301);
        w.numAllocs = 100'000;
        w.sizeDist = SizeDistribution(
            {SB{0.45, 24, 96}, SB{0.35, 97, 256}, SB{0.20, 257, 512}});
        w.lifetime = {.pShort = 0.0, .meanShortDistance = 4.0,
                      .pLongFreed = 0.0, .meanLongDistance = 500.0};
        w.pLarge = 0.020;
        w.computePerAlloc = 1300;
        w.touchStores = 3;
        w.touchLoads = 1;
        w.staticWsBytes = 1 << 20;
        v.push_back(w);
    }
    {
        auto w = base("bfs-go", "graph-bfs ported to Go", Language::Golang,
                      Domain::Function, 302);
        w.numAllocs = 120'000;
        w.sizeDist = SizeDistribution({SB{0.70, 16, 48}, SB{0.30, 49, 128}});
        w.lifetime = {.pShort = 0.0, .meanShortDistance = 6.0,
                      .pLongFreed = 0.0, .meanLongDistance = 800.0};
        w.pLarge = 0.008;
        w.computePerAlloc = 820;
        w.touchStores = 1;
        w.touchLoads = 2;
        w.staticWsBytes = 4 << 20;
        w.staticAccesses = 4;
        v.push_back(w);
    }
    {
        auto w = base("aes-go", "pyaes ported to Go", Language::Golang,
                      Domain::Function, 303);
        w.numAllocs = 70'000;
        w.sizeDist = SizeDistribution({SB{0.80, 16, 64}, SB{0.20, 65, 160}});
        w.lifetime = {.pShort = 0.0, .meanShortDistance = 3.0,
                      .pLongFreed = 0.0, .meanLongDistance = 300.0};
        w.pLarge = 0.003;
        w.computePerAlloc = 730;
        w.touchStores = 1;
        w.touchLoads = 1;
        w.staticWsBytes = 128 << 10;
        w.staticAccesses = 1;
        v.push_back(w);
    }

    // ---------------- Data-processing applications (C++) -------------
    // Value-size mixture follows the tiny-object flash-cache study the
    // paper cites for these workloads.
    auto data_proc = [&](std::string id, std::string desc,
                         std::uint64_t seed, InstCount compute,
                         double p_short, unsigned stores) {
        auto w = base(std::move(id), std::move(desc), Language::Cpp,
                      Domain::DataProc, seed);
        w.numAllocs = 180'000;
        w.burstEvery = 1100;
        w.burstBytes = 128 << 10;
        w.sizeDist = SizeDistribution(
            {SB{0.50, 16, 96}, SB{0.35, 97, 256}, SB{0.15, 257, 512}});
        w.lifetime = {.pShort = p_short, .meanShortDistance = 6.0,
                      .pLongFreed = 0.50, .meanLongDistance = 2000.0};
        w.pLarge = 0.030;
        w.computePerAlloc = compute;
        w.touchStores = stores;
        w.touchLoads = 2;
        w.staticWsBytes = 1 << 20;
        w.staticAccesses = 2;
        w.rpcBytes = 0; // Long-running server, no per-run RPC bookends.
        return w;
    };
    v.push_back(data_proc("redis", "Redis mixed PUT-GET (SDS strings)",
                          401, 2200, 0.97, 3));
    v.push_back(data_proc("memcached", "Memcached mixed workload", 402,
                          2500, 0.96, 2));
    v.push_back(data_proc("silo", "Silo in-memory OLTP", 403, 2500, 0.96,
                          2));
    v.push_back(
        data_proc("sqlite3", "SQLite3 SELECT parsing", 404, 2500, 0.97, 2));

    // ---------------- Serverless platform operations (Golang) --------
    // OpenFaaS control-plane paths: long-running Go processes whose GC
    // does run; allocations are small and die only at collection time.
    auto platform = [&](std::string id, std::string desc,
                        std::uint64_t seed, std::uint64_t allocs,
                        InstCount compute) {
        auto w = base(std::move(id), std::move(desc), Language::Golang,
                      Domain::Platform, seed);
        w.numAllocs = allocs;
        w.sizeDist = SizeDistribution(
            {SB{0.65, 16, 96}, SB{0.30, 97, 256}, SB{0.05, 257, 512}});
        w.lifetime = {.pShort = 0.04, .meanShortDistance = 8.0,
                      .pLongFreed = 0.985, .meanLongDistance = 450.0};
        w.pLarge = 0.010;
        w.computePerAlloc = compute;
        w.touchStores = 2;
        w.touchLoads = 2;
        w.staticWsBytes = 6 << 20;
        w.staticAccesses = 4;
        w.rpcBytes = 0;
        w.burstEvery = 1100;
        w.burstBytes = 192 << 10;
        return w;
    };
    v.push_back(platform("up", "OpenFaaS platform start-up", 501, 110'000,
                         10000));
    v.push_back(platform("deploy", "OpenFaaS function deployment", 502,
                         90'000, 10500));
    v.push_back(platform("invoke", "OpenFaaS request routing", 503,
                         80'000, 9600));

    return v;
}

} // namespace

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = buildWorkloads();
    return workloads;
}

const WorkloadSpec &
workloadById(const std::string &id)
{
    for (const WorkloadSpec &w : allWorkloads()) {
        if (w.id == id)
            return w;
    }
    fatal("unknown workload id: ", id);
}

std::vector<WorkloadSpec>
workloadsByDomain(Domain domain)
{
    std::vector<WorkloadSpec> out;
    for (const WorkloadSpec &w : allWorkloads()) {
        if (w.domain == domain)
            out.push_back(w);
    }
    return out;
}

std::string
languageName(Language lang)
{
    switch (lang) {
      case Language::Python: return "Python";
      case Language::Cpp: return "C++";
      case Language::Golang: return "Golang";
    }
    panic("bad language");
}

std::string
domainName(Domain domain)
{
    switch (domain) {
      case Domain::Function: return "Function";
      case Domain::DataProc: return "DataProc";
      case Domain::Platform: return "Platform";
    }
    panic("bad domain");
}

} // namespace memento
