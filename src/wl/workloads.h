/**
 * @file
 * The paper's workload suite, §5: fourteen function benchmarks across
 * Python/C++/Golang, four long-running data-processing applications,
 * and three serverless-platform operations — each reduced to the
 * allocation statistics of §2.2 and synthesized back into operation
 * traces by TraceGenerator.
 *
 * Parameter provenance: size mixtures and lifetime parameters are set
 * so that the per-language aggregates reproduce Figs. 2–3 and Tables
 * 1–2; per-workload compute/touch parameters are set so that the
 * headline results (Figs. 8–14) reproduce the paper's shape. See
 * DESIGN.md §2 (substitutions) and EXPERIMENTS.md.
 */

#ifndef MEMENTO_WL_WORKLOADS_H
#define MEMENTO_WL_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"
#include "wl/distributions.h"

namespace memento {

/** Language runtime of a workload. */
enum class Language { Python, Cpp, Golang };

/** Workload grouping used by the paper's figures. */
enum class Domain { Function, DataProc, Platform };

/** Full parameterization of one synthetic workload. */
struct WorkloadSpec
{
    std::string id;          ///< Short name used in figures ("html").
    std::string description; ///< Where the workload comes from.
    Language lang = Language::Python;
    Domain domain = Domain::Function;

    /** Number of allocation events to synthesize. */
    std::uint64_t numAllocs = 100'000;
    /** Small-allocation size mixture. */
    SizeDistribution sizeDist;
    /** Bimodal lifetime model. */
    LifetimeModel lifetime;
    /** Fraction of allocations larger than 512 B. */
    double pLarge = 0.02;
    /** Size mixture for the large allocations. */
    SizeDistribution largeDist;
    /** Fraction of large allocations that are short-lived. */
    double pLargeShort = 0.9;

    /** Application instructions between allocation events. */
    InstCount computePerAlloc = 150;
    /** Distinct lines stored into a freshly allocated object. */
    unsigned touchStores = 2;
    /** Loads issued to recently allocated objects per event. */
    unsigned touchLoads = 2;

    /** Static (non-heap) working set the app keeps referencing. */
    std::uint64_t staticWsBytes = 1 << 20;
    /** Static working-set accesses per allocation event. */
    unsigned staticAccesses = 2;

    /** RPC input+output bytes (functions fetch/store via Redis, §5). */
    std::uint64_t rpcBytes = 16 << 10;

    /**
     * Phase bursts: every burstEvery allocation events the workload
     * enters a scratch phase that allocates ~burstBytes of
     * burstObjSize objects, touches them once, and frees them all at
     * the end of the phase (request parsing/rendering scratch space).
     * Bursts are what make heaps grow and shrink, driving the
     * allocators' mmap/munmap/decay churn. 0 disables bursts.
     */
    std::uint64_t burstEvery = 0;
    std::uint64_t burstBytes = 0;
    std::uint64_t burstObjSize = 512;

    /** Seed for the workload's private RNG. */
    std::uint64_t seed = 1;
};

/** All 23 workloads in the paper's presentation order. */
const std::vector<WorkloadSpec> &allWorkloads();

/** Lookup by id; fatal() when unknown. */
const WorkloadSpec &workloadById(const std::string &id);

/** All workloads of @p domain, in order. */
std::vector<WorkloadSpec> workloadsByDomain(Domain domain);

/** Display names. */
std::string languageName(Language lang);
std::string domainName(Domain domain);

} // namespace memento

#endif // MEMENTO_WL_WORKLOADS_H
