/**
 * @file
 * Synthesizes operation traces from a WorkloadSpec.
 *
 * The generator reproduces the paper's measured structure: a stream of
 * allocation events separated by compute, each allocating from the
 * spec's size mixture, touching the fresh object, reading recent
 * objects and the static working set, and dying after a malloc-free
 * distance drawn from the bimodal lifetime model (distance counted in
 * same-size-class allocations, exactly the §2.2 metric). Never-freed
 * objects are reclaimed by the FunctionEnd batch free.
 */

#ifndef MEMENTO_WL_TRACE_GENERATOR_H
#define MEMENTO_WL_TRACE_GENERATOR_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/thread_annotations.h"
#include "wl/trace.h"
#include "wl/workloads.h"

namespace memento {

/** Deterministic trace synthesis. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const WorkloadSpec &spec) : spec_(spec) {}

    /** Generate the full trace (same spec + seed => same trace). */
    Trace generate() const;

  private:
    const WorkloadSpec &spec_;
};

/**
 * Thread-safe memoization of TraceGenerator::generate().
 *
 * A sweep runs each workload under several configurations (baseline,
 * Memento, bypass-off, digest pairing); the trace depends only on the
 * spec, so synthesizing it once and sharing it is both a large saving
 * and a correctness aid — every variant replays the *same object*, not
 * merely an equal one. Traces are handed out as shared_ptr<const Trace>
 * so no caller can mutate the shared copy.
 *
 * Concurrent first touches of the same workload synthesize exactly
 * once: late arrivals block on the entry's once_flag until the winner
 * has published the trace.
 */
class TraceCache
{
  public:
    /**
     * The trace for @p spec, synthesizing on first touch. Entries are
     * keyed by (id, seed, numAllocs); one cache must not be fed two
     * different specs that collide on that key.
     */
    std::shared_ptr<const Trace> get(const WorkloadSpec &spec);

    /** Number of actual generate() calls performed (for tests). */
    std::uint64_t generations() const { return generations_.load(); }

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const Trace> trace;
    };

    std::mutex mu_;
    std::map<std::string, std::shared_ptr<Entry>> entries_
        MEMENTO_GUARDED_BY(mu_);
    std::atomic<std::uint64_t> generations_{0};
};

} // namespace memento

#endif // MEMENTO_WL_TRACE_GENERATOR_H
