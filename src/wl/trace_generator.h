/**
 * @file
 * Synthesizes operation traces from a WorkloadSpec.
 *
 * The generator reproduces the paper's measured structure: a stream of
 * allocation events separated by compute, each allocating from the
 * spec's size mixture, touching the fresh object, reading recent
 * objects and the static working set, and dying after a malloc-free
 * distance drawn from the bimodal lifetime model (distance counted in
 * same-size-class allocations, exactly the §2.2 metric). Never-freed
 * objects are reclaimed by the FunctionEnd batch free.
 */

#ifndef MEMENTO_WL_TRACE_GENERATOR_H
#define MEMENTO_WL_TRACE_GENERATOR_H

#include "wl/trace.h"
#include "wl/workloads.h"

namespace memento {

/** Deterministic trace synthesis. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const WorkloadSpec &spec) : spec_(spec) {}

    /** Generate the full trace (same spec + seed => same trace). */
    Trace generate() const;

  private:
    const WorkloadSpec &spec_;
};

} // namespace memento

#endif // MEMENTO_WL_TRACE_GENERATOR_H
