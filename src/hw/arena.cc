#include "hw/arena.h"

// Header-only; this translation unit anchors the component.
