/**
 * @file
 * Memento's hardware page allocator (§3.2), located at the memory
 * controller.
 *
 * Responsibilities: (i) hand out arena virtual addresses by bumping the
 * per-size-class pointers (cached in the AAC); (ii) manage a small pool
 * of OS-replenished physical pages; (iii) build and expand the Memento
 * page table during flagged page walks, backing arena pages on first
 * touch without any kernel involvement; (iv) reclaim arena pages (with
 * TLB shootdowns) when the object allocator frees an arena.
 */

#ifndef MEMENTO_HW_HW_PAGE_ALLOCATOR_H
#define MEMENTO_HW_HW_PAGE_ALLOCATOR_H

#include <vector>

#include "hw/memento_space.h"
#include "mem/env.h"
#include "mem/page_walker.h"
#include "os/buddy_allocator.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** The hardware page allocator plus its physical page pool. */
class HwPageAllocator
{
  public:
    HwPageAllocator(const MachineConfig &cfg, const ArenaGeometry &geometry,
                    BuddyAllocator &buddy, StatRegistry &stats);

    /** FrameSource view of the pool (feeds the Memento page table). */
    FrameSource &poolFrames() { return pool_; }

    /** Result of an arena grant. */
    struct ArenaGrant
    {
        Addr va = 0;       ///< Arena base virtual address.
        Addr headerPa = 0; ///< Physical address backing the first page.
    };

    /**
     * Grant a new class-@p cls arena to the object allocator: bump the
     * class pointer (AAC access) and eagerly back the header page.
     */
    ArenaGrant requestArena(MementoSpace &space, unsigned cls, Env &env);

    /**
     * Handle a flagged page walk that reached an invalid Memento PTE:
     * allocate a frame, expand the table as needed, and return the
     * translation. Charged as hardware work (CycleCategory::HwPage).
     *
     * @return physical page base for @p vaddr.
     */
    Addr populateOnWalk(MementoSpace &space, Addr vaddr, Env &env);

    /**
     * Reclaim every backed page of the arena at @p arena_base,
     * invalidating PTEs and shooting down TLB entries.
     */
    void freeArena(MementoSpace &space, Addr arena_base, Env &env);

    /** Refill/return accounting (tests and Fig. 11). */
    std::uint64_t poolFreePages() const { return pool_.freeCount(); }
    std::uint64_t aggregateArenaPages() const { return aggArena_.value(); }
    std::uint64_t aggregateTablePages() const { return aggTable_.value(); }

    /** Pages currently backing arenas (resident). */
    std::uint64_t residentArenaPages() const { return residentArena_; }

  private:
    /** The OS-replenished physical page pool. */
    class Pool : public FrameSource
    {
      public:
        Pool(const MementoConfig &cfg, const FaultPlan &inject,
             BuddyAllocator &buddy, StatRegistry &stats);

        Addr allocFrame() override;
        void freeFrame(Addr paddr) override;

        std::uint64_t freeCount() const { return frames_.size(); }
        /** Pages the OS has granted the pool (cumulative). */
        std::uint64_t osPagesGranted() const { return osPages_.value(); }
        /** Refills performed since the last drain (charging hook). */
        unsigned drainPendingRefills();

      private:
        void refill();
        /** Return surplus frames to the OS (bounds pool slack). */
        void releaseSurplus();

        const MementoConfig &cfg_;
        const FaultPlan &inject_;
        BuddyAllocator &buddy_;
        std::vector<Addr> frames_;
        unsigned pendingRefills_ = 0;
        Counter refills_;
        Counter framesHandedOut_;
        Counter osPages_;
    };

    /** Charge any OS pool refills that happened during an operation. */
    void chargeRefills(Env &env);

    /** AAC access cost: hit latency, or a memory access on a miss. */
    void chargeAacAccess(unsigned cls, Env &env);

    const MachineConfig &cfg_;
    ArenaGeometry geometry_;
    Pool pool_;

    /** AAC model: direct-mapped validity per size class entry. */
    std::vector<bool> aacValid_;

    std::uint64_t residentArena_ = 0;

    Counter arenaGrants_;
    Counter walkPopulates_;
    Counter arenaFrees_;
    Counter shootdowns_;
    Counter aggArena_;
    Counter aggTable_;
    Counter aacHits_;
    Counter aacMisses_;
};

} // namespace memento

#endif // MEMENTO_HW_HW_PAGE_ALLOCATOR_H
