/**
 * @file
 * Idealized Mallacc comparator (§6.7).
 *
 * Mallacc (Kanev et al., ASPLOS'17) accelerates TCMalloc's userspace
 * fast paths with a small malloc cache. Following the paper's own
 * idealization, this model gives the malloc cache zero latency and a
 * 100% hit rate: the software allocator's fast-path instruction and
 * metadata costs vanish, while slow paths (tcache fills/flushes, slab
 * and chunk management) and *all kernel memory management* remain —
 * which is precisely the gap Memento closes.
 */

#ifndef MEMENTO_HW_MALLACC_H
#define MEMENTO_HW_MALLACC_H

#include "rt/tcmalloc.h"

namespace memento {

/** TCMalloc with a perfect malloc cache = the idealized Mallacc. */
class MallaccAllocator : public TcMalloc
{
  public:
    MallaccAllocator(VirtualMemory &vm, StatRegistry &stats)
        : TcMalloc(vm, stats, idealParams())
    {
    }

    std::string name() const override { return "mallacc-ideal"; }

    /**
     * The idealization: Mallacc's malloc cache (size-class lookup,
     * free-list head caching, sampling) always hits at zero latency,
     * which zeroes the cached-path instructions and short-circuits the
     * dependent free-list load inside the object. The rest of the fast
     * path — metadata updates, list maintenance — and all slow paths
     * (central transfers, span carving, page-heap growth, every kernel
     * operation) stay in software, which is why the paper's idealized
     * Mallacc reaches only about half of Memento's gains on
     * DeathStarBench.
     */
    static Params
    idealParams()
    {
        Params params;
        params.cachedPathInstructions = 0;
        params.popTouchesObject = false;
        return params;
    }
};

} // namespace memento

#endif // MEMENTO_HW_MALLACC_H
