/**
 * @file
 * Memento's hardware object allocator (§3.1, Fig. 6).
 *
 * Executes obj-alloc / obj-free against the HOT. Hits complete in the
 * HOT latency with no memory requests; misses write back the cached
 * header, load the next arena header from the available list (or
 * request a new arena from the hardware page allocator), and perform
 * the full/available list surgery — each step costed as the memory
 * references the hardware would really issue.
 */

#ifndef MEMENTO_HW_HW_OBJECT_ALLOCATOR_H
#define MEMENTO_HW_HW_OBJECT_ALLOCATOR_H

#include "hw/arena.h"
#include "hw/hot.h"
#include "hw/hw_page_allocator.h"
#include "hw/memento_space.h"
#include "mem/env.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** Outcome of an obj-free (§4: bad frees raise a software exception). */
enum class FreeStatus {
    Ok,
    NotAllocated,  ///< Double free / wild pointer within the region.
    UnknownArena,  ///< Address maps to no live arena.
};

/** The per-core hardware object allocator front-end. */
class HwObjectAllocator
{
  public:
    HwObjectAllocator(const MachineConfig &cfg,
                      const ArenaGeometry &geometry, Hot &hot,
                      HwPageAllocator &page_alloc, StatRegistry &stats);

    /**
     * obj-alloc: allocate one object of @p size (<= 512 B) bytes on
     * behalf of @p thread (each thread allocates from its own arenas,
     * §4's multi-threading design).
     * @return the object's virtual address.
     */
    Addr objAlloc(MementoSpace &space, std::uint64_t size, Env &env,
                  unsigned thread = 0);

    /**
     * obj-free: release the object at @p va. A free issued by a thread
     * that does not own the object's arena takes the hardware-only
     * remote path: the HOT acquires the header line exclusively
     * (BusRdX) and performs the read-modify-write atomically, riding
     * the regular coherence protocol (§4).
     */
    FreeStatus objFree(MementoSpace &space, Addr va, Env &env,
                       unsigned thread = 0);

    /** Remote (cross-thread) frees handled via coherence. */
    std::uint64_t remoteFrees() const { return remoteFrees_.value(); }

    /**
     * Batch teardown at function exit: every live arena is handed back
     * to the page allocator wholesale — the low-latency path the paper
     * gives long-lived allocations (§1, §3).
     */
    void releaseAllArenas(MementoSpace &space, Env &env);

    /** Arena-list operations during allocs (Fig. 13 numerator). */
    std::uint64_t allocListOps() const { return allocListOps_.value(); }
    /** Arena-list operations during frees. */
    std::uint64_t freeListOps() const { return freeListOps_.value(); }

    /**
     * Fraction of header slots not active across live arenas (§6.6's
     * fragmentation metric; mixes fragmentation and free memory).
     */
    double inactiveSlotFraction(const MementoSpace &space) const;

    const ArenaGeometry &geometry() const { return geometry_; }

  private:
    /** Load (or create) an arena into the HOT entry for @p cls. */
    ArenaState &installArena(MementoSpace &space, unsigned cls, Env &env);
    /** Move the HOT-resident full arena to the full list and replace. */
    ArenaState &replaceFullArena(MementoSpace &space, unsigned cls,
                                 Env &env, bool eager);
    /** Create a brand-new arena via the page allocator. */
    ArenaState &newArena(MementoSpace &space, unsigned cls, Env &env);

    const MachineConfig &cfg_;
    ArenaGeometry geometry_;
    Hot &hot_;
    HwPageAllocator &pageAlloc_;

    Counter allocListOps_;
    Counter freeListOps_;
    Counter arenasReleased_;
    Counter remoteFrees_;
};

} // namespace memento

#endif // MEMENTO_HW_HW_OBJECT_ALLOCATOR_H
