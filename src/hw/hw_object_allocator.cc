#include "hw/hw_object_allocator.h"

#include <algorithm>
#include <vector>

namespace memento {

HwObjectAllocator::HwObjectAllocator(const MachineConfig &cfg,
                                     const ArenaGeometry &geometry,
                                     Hot &hot, HwPageAllocator &page_alloc,
                                     StatRegistry &stats)
    : cfg_(cfg),
      geometry_(geometry),
      hot_(hot),
      pageAlloc_(page_alloc),
      allocListOps_(stats.counter("hwobj.alloc_list_ops")),
      freeListOps_(stats.counter("hwobj.free_list_ops")),
      arenasReleased_(stats.counter("hwobj.arenas_released")),
      remoteFrees_(stats.counter("hwobj.remote_frees"))
{
}

ArenaState &
HwObjectAllocator::newArena(MementoSpace &space, unsigned cls, Env &env)
{
    auto grant = pageAlloc_.requestArena(space, cls, env);

    ArenaState state;
    state.va = grant.va;
    state.headerPa = grant.headerPa;
    state.szclass = cls;

    // Initialize the header in the cache hierarchy: the hardware writes
    // the VA field and clears the bitmap and list pointers (step 3 of
    // Fig. 6) without fetching stale data from DRAM.
    env.installPhysical(grant.headerPa);

    auto [it, inserted] = space.arenas.emplace(grant.va, state);
    panic_if(!inserted, "memento: duplicate arena at 0x", std::hex,
             grant.va);

    HotEntry &e = hot_.entry(cls);
    e.valid = true;
    e.arenaVa = grant.va;
    e.arenaPa = grant.headerPa;
    return it->second;
}

ArenaState &
HwObjectAllocator::installArena(MementoSpace &space, unsigned cls, Env &env)
{
    auto &avail = space.availList[cls];
    if (!avail.empty()) {
        // Load the head of the available list into the HOT and unlink
        // it (two header-line references).
        ++allocListOps_;
        const Addr va = avail.front();
        avail.pop_front();
        ArenaState &state = space.arenas.at(va);
        env.accessPhysical(state.headerPa, AccessType::Read);
        env.accessPhysical(state.headerPa, AccessType::Write);

        HotEntry &e = hot_.entry(cls);
        e.valid = true;
        e.arenaVa = va;
        e.arenaPa = state.headerPa;
        return state;
    }
    return newArena(space, cls, env);
}

ArenaState &
HwObjectAllocator::replaceFullArena(MementoSpace &space, unsigned cls,
                                    Env &env, bool eager)
{
    HotEntry &e = hot_.entry(cls);
    panic_if(!e.valid, "replaceFullArena with invalid HOT entry");

    // Write the cached header back and insert it at the head of the
    // full list (step 8 of Fig. 6).
    ++allocListOps_;
    ArenaState &old_state = space.arenas.at(e.arenaVa);
    env.accessPhysical(old_state.headerPa, AccessType::Write);
    space.fullList[cls].push_front(e.arenaVa);

    (void)eager; // Timing of eager prefetch equals the demand path here;
                 // the hit/miss classification differs at the call site.
    return installArena(space, cls, env);
}

Addr
HwObjectAllocator::objAlloc(MementoSpace &space, std::uint64_t size,
                            Env &env, unsigned thread)
{
    panic_if(!isSmallSize(size),
             "obj-alloc size outside hardware range: ", size);
    CategoryScope scope(env.ledger(), CycleCategory::HwAlloc);
    env.chargeCycles(hot_.latency());

    const unsigned cls = sizeClassIndex(size);
    const unsigned capacity = geometry_.objectsPerArena();
    HotEntry &e = hot_.entry(cls);

    bool hit = true;
    ArenaState *state = nullptr;
    if (!e.valid) {
        hit = false;
        state = &installArena(space, cls, env);
    } else {
        state = &space.arenas.at(e.arenaVa);
        if (state->full(capacity)) {
            // Only reachable with eager prefetch disabled.
            hit = false;
            state = &replaceFullArena(space, cls, env, /*eager=*/false);
        }
    }

    const unsigned slot = state->findFreeSlot(capacity);
    panic_if(slot >= capacity, "installed arena has no free slot");
    state->bitmap.set(slot);
    ++state->allocated;
    state->ownerThread = thread;
    hot_.recordAlloc(hit);

    const Addr va = geometry_.objAddr(state->va, cls, slot);

    if (state->full(capacity) && cfg_.memento.eagerArenaPrefetch) {
        // Hide the next miss: retire the now-full arena and pull in the
        // next one while the core continues (step 9's optimization).
        replaceFullArena(space, cls, env, /*eager=*/true);
    }
    return va;
}

FreeStatus
HwObjectAllocator::objFree(MementoSpace &space, Addr va, Env &env,
                           unsigned thread)
{
    CategoryScope scope(env.ledger(), CycleCategory::HwFree);
    env.chargeCycles(hot_.latency());

    const unsigned cls = geometry_.classOf(va);
    const Addr arena_base = geometry_.arenaBaseOf(va);
    const unsigned capacity = geometry_.objectsPerArena();

    auto it = space.arenas.find(arena_base);
    if (it == space.arenas.end())
        return FreeStatus::UnknownArena;
    ArenaState &state = it->second;

    const unsigned idx = geometry_.objIndexOf(va);
    if (!state.bitmap.test(idx))
        return FreeStatus::NotAllocated;

    if (state.ownerThread != thread) {
        // Cross-thread free: acquire exclusive ownership of the header
        // line (BusRdX through the hierarchy) before the atomic RMW.
        ++remoteFrees_;
        env.accessPhysical(state.headerPa, AccessType::Write);
        env.chargeCycles(4); // Serialized RMW at the HOT.
    }

    HotEntry &e = hot_.entry(cls);
    const bool hit = e.valid && e.arenaVa == arena_base;
    hot_.recordFree(hit);

    const bool was_full = state.full(capacity);
    if (!hit) {
        // Translate the arena base through the TLB, fetch the header,
        // clear the bit, write it back (step 13 of Fig. 6).
        env.chargeCycles(cfg_.l1Tlb.latency);
        env.accessPhysical(state.headerPa, AccessType::Read);
    }
    state.bitmap.reset(idx);
    --state.allocated;
    if (!hit)
        env.accessPhysical(state.headerPa, AccessType::Write);

    // Bypass-counter maintenance: a freed object surrenders its lines
    // if they were the high-water mark.
    const unsigned first_line = geometry_.lineIndexOf(va);
    const unsigned last_line =
        geometry_.lineIndexOf(va + sizeClassBytes(cls) - 1);
    if (state.bypassCounter == last_line + 1)
        state.bypassCounter = first_line;

    if (was_full && !hit) {
        // The arena sits on the full list (HOT-resident arenas live on
        // no list): move it back onto the available list (head insert).
        ++freeListOps_;
        auto &full = space.fullList[cls];
        for (auto fit = full.begin(); fit != full.end(); ++fit) {
            if (*fit == arena_base) {
                full.erase(fit);
                break;
            }
        }
        space.availList[cls].push_front(arena_base);
        env.accessPhysical(state.headerPa, AccessType::Write);
    }

    if (state.empty() && !hit) {
        // Last live object gone and the arena is not HOT-resident:
        // hand the memory back to the page allocator (§3.2).
        auto &avail = space.availList[cls];
        for (auto ait = avail.begin(); ait != avail.end(); ++ait) {
            if (*ait == arena_base) {
                avail.erase(ait);
                break;
            }
        }
        pageAlloc_.freeArena(space, arena_base, env);
        space.arenas.erase(it);
    }
    return FreeStatus::Ok;
}

void
HwObjectAllocator::releaseAllArenas(MementoSpace &space, Env &env)
{
    // Release in ascending VA order: freeArena rebuilds the page
    // allocator's free lists, so hash-order teardown would leave an
    // implementation-defined free-list order for the next function
    // instance to allocate from.
    std::vector<Addr> vas;
    vas.reserve(space.arenas.size());
    for (const auto &[va, state] :
         space.arenas) // lint-src: allow(src-unordered-iteration)
        vas.push_back(va);
    std::sort(vas.begin(), vas.end());
    for (Addr va : vas) {
        ++arenasReleased_;
        pageAlloc_.freeArena(space, va, env);
    }
    space.arenas.clear();
    for (auto &list : space.availList)
        list.clear();
    for (auto &list : space.fullList)
        list.clear();
    hot_.flush();
}

double
HwObjectAllocator::inactiveSlotFraction(const MementoSpace &space) const
{
    // Slots in arenas holding at least one live object; completely
    // empty arenas are pending release (free memory, not slack).
    const unsigned capacity = geometry_.objectsPerArena();
    std::uint64_t total = 0;
    std::uint64_t active = 0;
    // Commutative integer sums: visit order cannot affect the result.
    for (const auto &[va, state] :
         space.arenas) { // lint-src: allow(src-unordered-iteration)
        if (state.allocated == 0)
            continue;
        total += capacity;
        active += state.allocated;
    }
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(active) / static_cast<double>(total);
}

} // namespace memento
