/**
 * @file
 * Memento arena layout and address arithmetic (§3.1–3.2).
 *
 * The reserved virtual region [MRS, MRE) is divided evenly into 64
 * size-class sub-regions. Within a sub-region, arenas are laid out
 * back-to-back at a fixed per-class span, so hardware can recover the
 * size class and arena base of any object address with shifts and one
 * divide by a constant known in advance — exactly the property §3.2
 * relies on.
 *
 * Arena layout: a 64-byte header (VA field, 256-bit allocation bitmap,
 * 11-bit bypass counter, prev/next list pointers) followed by the body
 * of 256 equal-sized objects; the whole span is rounded up to pages.
 */

#ifndef MEMENTO_HW_ARENA_H
#define MEMENTO_HW_ARENA_H

#include <bitset>
#include <cstdint>

#include "sim/config.h"
#include "sim/logging.h"
#include "sim/size_class.h"
#include "sim/types.h"

namespace memento {

/** Address arithmetic over the Memento region. */
class ArenaGeometry
{
  public:
    /** Header bytes at the start of every arena. */
    static constexpr std::uint64_t kHeaderBytes = 64;

    ArenaGeometry(const MementoConfig &mcfg, const AddressLayout &layout)
        : regionStart_(layout.mementoRegionStart),
          perClassBytes_(layout.perClassRegionBytes),
          numClasses_(mcfg.numSizeClasses),
          objectsPerArena_(mcfg.objectsPerArena)
    {
        // The header's allocation bitmap field is 256 bits (Fig. 5a).
        panic_if(objectsPerArena_ == 0 || objectsPerArena_ > 256,
                 "memento: objectsPerArena must be in [1, 256]");
    }

    Addr regionStart() const { return regionStart_; }
    Addr regionEnd() const
    {
        return regionStart_ + perClassBytes_ * numClasses_;
    }

    /** True when @p va lies in [MRS, MRE). */
    bool
    inRegion(Addr va) const
    {
        return va >= regionStart() && va < regionEnd();
    }

    unsigned numClasses() const { return numClasses_; }
    unsigned objectsPerArena() const { return objectsPerArena_; }

    /** Total bytes (header + body) of a class-@p cls arena, unpadded. */
    std::uint64_t
    arenaPayloadBytes(unsigned cls) const
    {
        return kHeaderBytes + objectsPerArena_ * sizeClassBytes(cls);
    }

    /** Page-rounded virtual span of a class-@p cls arena. */
    std::uint64_t
    arenaSpan(unsigned cls) const
    {
        return alignUp(arenaPayloadBytes(cls), kPageSize);
    }

    /** Size class of an in-region address. */
    unsigned
    classOf(Addr va) const
    {
        panic_if(!inRegion(va), "classOf: address outside Memento region");
        return static_cast<unsigned>((va - regionStart_) / perClassBytes_);
    }

    /** Base virtual address of the arena containing @p va. */
    Addr
    arenaBaseOf(Addr va) const
    {
        const unsigned cls = classOf(va);
        const Addr class_base = regionStart_ + cls * perClassBytes_;
        const std::uint64_t span = arenaSpan(cls);
        return class_base + ((va - class_base) / span) * span;
    }

    /** Object slot index of @p va within its arena. */
    unsigned
    objIndexOf(Addr va) const
    {
        const unsigned cls = classOf(va);
        const Addr body = arenaBaseOf(va) + kHeaderBytes;
        panic_if(va < body, "objIndexOf: address inside arena header");
        return static_cast<unsigned>((va - body) / sizeClassBytes(cls));
    }

    /** Virtual address of slot @p idx in the arena at @p arena_base. */
    Addr
    objAddr(Addr arena_base, unsigned cls, unsigned idx) const
    {
        return arena_base + kHeaderBytes +
               static_cast<std::uint64_t>(idx) * sizeClassBytes(cls);
    }

    /** Cache-line index of @p va within its arena (bypass tracking). */
    unsigned
    lineIndexOf(Addr va) const
    {
        return static_cast<unsigned>((va - arenaBaseOf(va)) >> kLineShift);
    }

    /** First arena base of class @p cls. */
    Addr
    classBase(unsigned cls) const
    {
        return regionStart_ + static_cast<std::uint64_t>(cls) *
                                  perClassBytes_;
    }

  private:
    Addr regionStart_;
    std::uint64_t perClassBytes_;
    unsigned numClasses_;
    unsigned objectsPerArena_;
};

/**
 * Authoritative (memory-resident) state of one arena header. The HOT
 * caches this; hardware reads/writes are charged against the header's
 * physical address.
 */
struct ArenaState
{
    static constexpr unsigned kMaxObjects = 256;

    Addr va = 0;       ///< Base virtual address (header VA field).
    Addr headerPa = 0; ///< Physical address of the header line.
    unsigned szclass = 0;
    /** Owning thread (§4: each thread allocates from its own arenas). */
    unsigned ownerThread = 0;
    std::bitset<kMaxObjects> bitmap;
    unsigned allocated = 0;
    /** 11-bit bypass counter: high-water accessed line index + 1. */
    unsigned bypassCounter = 0;

    bool full(unsigned capacity) const { return allocated == capacity; }
    bool empty() const { return allocated == 0; }

    /** Lowest clear bit, or capacity when full. */
    unsigned
    findFreeSlot(unsigned capacity) const
    {
        for (unsigned i = 0; i < capacity; ++i) {
            if (!bitmap.test(i))
                return i;
        }
        return capacity;
    }
};

} // namespace memento

#endif // MEMENTO_HW_ARENA_H
