#include "hw/mallacc.h"

// Header-only; this translation unit anchors the component.
