#include "hw/memento_allocator.h"

#include "sim/logging.h"
#include "sim/size_class.h"

namespace memento {

MementoAllocator::MementoAllocator(HwObjectAllocator &hw,
                                   MementoSpace &space, VirtualMemory &vm,
                                   StatRegistry &stats)
    : hw_(hw), space_(space), large_(vm, stats, "memento")
{
}

Addr
MementoAllocator::malloc(std::uint64_t size, Env &env)
{
    panic_if(size == 0, "memento: zero-size malloc");
    if (size > kMaxSmallSize)
        return large_.malloc(size, env);

    {
        // The obj-alloc instruction itself plus the size check in the
        // malloc shim (§4's first integration approach).
        CategoryScope scope(env.ledger(), CycleCategory::HwAlloc);
        env.chargeInstructions(3);
    }
    Addr va = hw_.objAlloc(space_, size, env, thread_);
    live_[va] = static_cast<std::uint32_t>(size);
    liveBytes_ += size;
    return va;
}

void
MementoAllocator::free(Addr ptr, Env &env)
{
    if (!hw_.geometry().inRegion(ptr)) {
        large_.free(ptr, env);
        return;
    }
    {
        CategoryScope scope(env.ledger(), CycleCategory::HwFree);
        env.chargeInstructions(3);
    }
    FreeStatus status = hw_.objFree(space_, ptr, env, thread_);
    panic_if(status != FreeStatus::Ok,
             "memento: hardware raised a free exception for 0x", std::hex,
             ptr);
    auto it = live_.find(ptr);
    panic_if(it == live_.end(), "memento: free of untracked pointer");
    liveBytes_ -= it->second;
    live_.erase(it);
}

void
MementoAllocator::functionExit(Env &env)
{
    // Batch free: every arena goes back to the page allocator with
    // hardware latency; no kernel munmap walk happens for the region.
    hw_.releaseAllArenas(space_, env);
    live_.clear();
    liveBytes_ = 0;
    large_.releaseAll(env);
}

double
MementoAllocator::inactiveSlotFraction() const
{
    return hw_.inactiveSlotFraction(space_);
}

bool
MementoAllocator::isLive(Addr ptr) const
{
    return live_.count(ptr) != 0 || large_.owns(ptr);
}

} // namespace memento
