/**
 * @file
 * The software-visible face of Memento: an rt::Allocator whose small
 * path executes the obj-alloc/obj-free ISA extensions and whose large
 * path (>512 B) falls back to the software allocator, following the
 * integration approach chosen in §4 (malloc checks the size; free
 * checks whether the pointer lies in the Memento region).
 */

#ifndef MEMENTO_HW_MEMENTO_ALLOCATOR_H
#define MEMENTO_HW_MEMENTO_ALLOCATOR_H

#include <unordered_map>

#include "hw/hw_object_allocator.h"
#include "rt/allocator.h"
#include "rt/glibc_large.h"

namespace memento {

/** Allocator adapter over the Memento hardware. */
class MementoAllocator : public Allocator
{
  public:
    /**
     * @param hw The core's hardware object allocator.
     * @param space This process's Memento state.
     * @param vm Address space (for the software large-object path).
     */
    MementoAllocator(HwObjectAllocator &hw, MementoSpace &space,
                     VirtualMemory &vm, StatRegistry &stats);

    Addr malloc(std::uint64_t size, Env &env) override;
    void free(Addr ptr, Env &env) override;
    void functionExit(Env &env) override;
    bool isLive(Addr ptr) const override;
    std::uint64_t
    liveBytes() const override
    {
        return liveBytes_ + large_.liveBytes();
    }
    std::string name() const override { return "memento"; }
    double inactiveSlotFraction() const override;

    MementoSpace &space() { return space_; }

    /** Set the executing thread id (multi-threaded workloads, §4). */
    void setThread(unsigned thread) { thread_ = thread; }
    unsigned thread() const { return thread_; }

  private:
    HwObjectAllocator &hw_;
    MementoSpace &space_;
    GlibcLargeAlloc large_;

    std::unordered_map<Addr, std::uint32_t> live_;
    std::uint64_t liveBytes_ = 0;
    unsigned thread_ = 0;
};

} // namespace memento

#endif // MEMENTO_HW_MEMENTO_ALLOCATOR_H
