#include "hw/hw_page_allocator.h"

#include "sim/error.h"
#include "sim/logging.h"

namespace memento {

HwPageAllocator::Pool::Pool(const MementoConfig &cfg,
                            const FaultPlan &inject, BuddyAllocator &buddy,
                            StatRegistry &stats)
    : cfg_(cfg),
      inject_(inject),
      buddy_(buddy),
      refills_(stats.counter("hwpage.pool_refills")),
      framesHandedOut_(stats.counter("hwpage.pool_frames_out")),
      osPages_(stats.counter("hwpage.agg_os_pages"))
{
}

void
HwPageAllocator::Pool::refill()
{
    ++pendingRefills_;
    ++refills_;
    for (unsigned i = 0; i < cfg_.pagePoolRefill; ++i) {
        sim_error_if(inject_.poolExhaustAtPage != 0 &&
                         osPages_.value() >= inject_.poolExhaustAtPage,
                     ErrorCategory::OutOfMemory,
                     "hw page pool exhausted (injected at page ",
                     inject_.poolExhaustAtPage, ")");
        Addr frame = buddy_.allocatePage();
        sim_error_if(frame == kNullAddr, ErrorCategory::OutOfMemory,
                     "out of physical memory (hw page pool refill after ",
                     osPages_.value(), " pages)");
        frames_.push_back(frame);
        ++osPages_;
    }
}

Addr
HwPageAllocator::Pool::allocFrame()
{
    if (frames_.size() <= cfg_.pagePoolLowWater)
        refill();
    Addr frame = frames_.back();
    frames_.pop_back();
    ++framesHandedOut_;
    return frame;
}

void
HwPageAllocator::Pool::releaseSurplus()
{
    // Keep at most a few refill batches of slack; the OS reclaims the
    // rest (the pool stays "small", as the paper requires).
    const std::size_t high_water =
        static_cast<std::size_t>(cfg_.pagePoolRefill) * 3;
    while (frames_.size() > high_water) {
        buddy_.freePage(frames_.back());
        frames_.pop_back();
    }
}

void
HwPageAllocator::Pool::freeFrame(Addr paddr)
{
    frames_.push_back(paddr);
    releaseSurplus();
}

unsigned
HwPageAllocator::Pool::drainPendingRefills()
{
    unsigned n = pendingRefills_;
    pendingRefills_ = 0;
    return n;
}

HwPageAllocator::HwPageAllocator(const MachineConfig &cfg,
                                 const ArenaGeometry &geometry,
                                 BuddyAllocator &buddy, StatRegistry &stats)
    : cfg_(cfg),
      geometry_(geometry),
      pool_(cfg.memento, cfg.inject, buddy, stats),
      aacValid_(cfg.memento.numSizeClasses, false),
      arenaGrants_(stats.counter("hwpage.arena_grants")),
      walkPopulates_(stats.counter("hwpage.walk_populates")),
      arenaFrees_(stats.counter("hwpage.arena_frees")),
      shootdowns_(stats.counter("hwpage.shootdowns")),
      aggArena_(stats.counter("hwpage.agg_arena_pages")),
      aggTable_(stats.counter("hwpage.agg_table_pages")),
      aacHits_(stats.counter("aac.hits")),
      aacMisses_(stats.counter("aac.misses"))
{
}

void
HwPageAllocator::chargeRefills(Env &env)
{
    const unsigned refills = pool_.drainPendingRefills();
    if (refills == 0)
        return;
    // The OS grants the pool a batch of pages. The work is off the
    // hardware's critical path (the paper treats it as on-demand
    // background replenishment), so only a small syscall-like cost is
    // charged.
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    env.chargeCycles(cfg_.kernel.modeSwitchCycles);
    env.chargeInstructions(static_cast<InstCount>(refills) * 2000);
}

void
HwPageAllocator::chargeAacAccess(unsigned cls, Env &env)
{
    if (aacValid_[cls]) {
        ++aacHits_;
        env.chargeCycles(cfg_.memento.aacLatency);
    } else {
        // Miss: the per-class pointer is loaded from the reserved
        // memory block next to the controller — roughly an LLC access.
        ++aacMisses_;
        env.chargeCycles(cfg_.llc.latency);
        aacValid_[cls] = true;
    }
}

HwPageAllocator::ArenaGrant
HwPageAllocator::requestArena(MementoSpace &space, unsigned cls, Env &env)
{
    CategoryScope scope(env.ledger(), CycleCategory::HwPage);
    ++arenaGrants_;
    chargeAacAccess(cls, env);

    ArenaGrant grant;
    grant.va = space.bump[cls];
    sim_error_if(grant.va + geometry_.arenaSpan(cls) >
                     geometry_.classBase(cls + 1),
                 ErrorCategory::OutOfMemory,
                 "memento: size-class ", cls, " region exhausted");
    space.bump[cls] += geometry_.arenaSpan(cls);

    // Eagerly back the first (header) page.
    const std::uint64_t nodes_before = space.mpt.nodePages();
    Addr frame = pool_.allocFrame();
    space.mpt.map(grant.va, frame);
    aggTable_ += space.mpt.nodePages() - nodes_before;
    ++aggArena_;
    ++residentArena_;
    grant.headerPa = frame;

    chargeRefills(env);
    return grant;
}

Addr
HwPageAllocator::populateOnWalk(MementoSpace &space, Addr vaddr, Env &env)
{
    CategoryScope scope(env.ledger(), CycleCategory::HwPage);
    ++walkPopulates_;

    const std::uint64_t nodes_before = space.mpt.nodePages();
    Addr frame = pool_.allocFrame();
    space.mpt.map(pageBase(vaddr), frame);
    aggTable_ += space.mpt.nodePages() - nodes_before;
    ++aggArena_;
    ++residentArena_;

    // Populating the entry is a short read-modify-write at the
    // controller; the PTE line accesses themselves are charged by the
    // page walker.
    env.chargeCycles(4);
    chargeRefills(env);
    return frame;
}

void
HwPageAllocator::freeArena(MementoSpace &space, Addr arena_base, Env &env)
{
    CategoryScope scope(env.ledger(), CycleCategory::HwPage);
    ++arenaFrees_;
    const unsigned cls = geometry_.classOf(arena_base);
    const std::uint64_t span = geometry_.arenaSpan(cls);

    for (Addr va = arena_base; va < arena_base + span; va += kPageSize) {
        unsigned freed_nodes = 0;
        Addr frame = space.mpt.unmap(va, freed_nodes);
        if (frame != kNullAddr) {
            pool_.freeFrame(frame);
            --residentArena_;
            // Invalidate the stale translation on every core that has
            // walked this address space (single core here).
            env.tlbInvalidate(va);
            ++shootdowns_;
            env.chargeCycles(2);
        }
    }
    chargeRefills(env);
}

} // namespace memento
