#include "hw/bypass.h"

// Header-only; this translation unit anchors the component.
