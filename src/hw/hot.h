/**
 * @file
 * The Hardware Object Table (HOT): a per-core direct-mapped metadata
 * cache with one entry per size class (§3.1, Fig. 5b).
 *
 * Each entry caches the most recently used arena header of its class
 * plus the PA field and the heads of the class's available and full
 * lists. Hits complete in hotLatency cycles without memory requests.
 */

#ifndef MEMENTO_HW_HOT_H
#define MEMENTO_HW_HOT_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** One HOT entry (cached arena header + list heads). */
struct HotEntry
{
    bool valid = false;
    Addr arenaVa = 0;   ///< VA field of the cached header.
    Addr arenaPa = 0;   ///< PA of the header in memory.
};

/** The direct-mapped table, indexed by size class. */
class Hot
{
  public:
    Hot(const MementoConfig &cfg, StatRegistry &stats);

    /** Entry for size class @p cls (no associative search needed). */
    HotEntry &entry(unsigned cls) { return entries_[cls]; }
    const HotEntry &entry(unsigned cls) const { return entries_[cls]; }

    /** Record an allocation hit/miss (Fig. 12 numerators). */
    void recordAlloc(bool hit);
    /** Record a free hit/miss. */
    void recordFree(bool hit);

    /**
     * Invalidate all entries (context switch).
     * @return number of entries that were valid (writebacks issued).
     */
    unsigned flush();

    /**
     * Entries currently valid — what flush() would return right now.
     * The fleet scheduler (src/fleet) reads this at function end to
     * price the HOT flush a context switch away from this instance
     * would cost.
     */
    unsigned
    validEntries() const
    {
        unsigned valid = 0;
        for (const HotEntry &e : entries_) {
            if (e.valid)
                ++valid;
        }
        return valid;
    }

    double allocHitRate() const;
    double freeHitRate() const;

    std::uint64_t allocHits() const { return allocHits_.value(); }
    std::uint64_t allocMisses() const { return allocMisses_.value(); }
    std::uint64_t freeHits() const { return freeHits_.value(); }
    std::uint64_t freeMisses() const { return freeMisses_.value(); }

    Cycles latency() const { return latency_; }

  private:
    std::vector<HotEntry> entries_;
    Cycles latency_;

    Counter allocHits_;
    Counter allocMisses_;
    Counter freeHits_;
    Counter freeMisses_;
    Counter flushes_;
};

} // namespace memento

#endif // MEMENTO_HW_HOT_H
