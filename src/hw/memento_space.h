/**
 * @file
 * Per-process Memento state: everything the hardware allocators operate
 * on that belongs to one address space.
 *
 * The HOT and AAC are per-core hardware and get flushed on context
 * switches; this state is the memory-resident truth they cache — arena
 * headers, the per-class available/full arena lists, the per-class
 * arena bump pointers, and the hardware-built Memento page table.
 */

#ifndef MEMENTO_HW_MEMENTO_SPACE_H
#define MEMENTO_HW_MEMENTO_SPACE_H

#include <deque>
#include <unordered_map>
#include <vector>

#include "hw/arena.h"
#include "os/page_table.h"

namespace memento {

/** Per-process Memento allocator state. */
struct MementoSpace
{
    MementoSpace(const ArenaGeometry &geometry, FrameSource &pool_frames)
        : bump(geometry.numClasses()),
          availList(geometry.numClasses()),
          fullList(geometry.numClasses()),
          mpt(pool_frames)
    {
        for (unsigned cls = 0; cls < geometry.numClasses(); ++cls)
            bump[cls] = geometry.classBase(cls);
    }

    /** Next un-handed-out arena VA per size class (§3.2 pointers). */
    std::vector<Addr> bump;

    /** Memory-resident arena headers, keyed by arena base VA. */
    std::unordered_map<Addr, ArenaState> arenas;

    /** Per-class list of arenas with at least one free object. */
    std::vector<std::deque<Addr>> availList;
    /** Per-class list of completely full arenas. */
    std::vector<std::deque<Addr>> fullList;

    /** The hardware-managed Memento page table (MPTR root). */
    PageTable mpt;
};

} // namespace memento

#endif // MEMENTO_HW_MEMENTO_SPACE_H
