/**
 * @file
 * Main-memory bypass unit (§3.3).
 *
 * Tracks, per arena, an 11-bit high-water counter of accessed cache-line
 * indices. A reference to a line whose index is at or above the counter
 * is guaranteed to touch never-before-accessed memory of a freshly
 * allocated object, so on a full cache miss the line may be instantiated
 * zero-filled at the LLC instead of being read from DRAM.
 */

#ifndef MEMENTO_HW_BYPASS_H
#define MEMENTO_HW_BYPASS_H

#include "hw/arena.h"
#include "hw/memento_space.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** Consults and maintains the per-arena bypass counters. */
class BypassUnit
{
  public:
    /** Largest line index an 11-bit counter can track. */
    static constexpr unsigned kCounterMax = 2047;

    BypassUnit(const MementoConfig &cfg, const ArenaGeometry &geometry,
               StatRegistry &stats)
        : enabled_(cfg.bypassEnabled),
          geometry_(geometry),
          candidates_(stats.counter("bypass.candidates"))
    {
    }

    /**
     * Classify an application reference to @p va (inside the Memento
     * region) and advance the counter.
     *
     * @return true when the line is bypass-eligible (never accessed).
     */
    bool
    onAccess(MementoSpace &space, Addr va)
    {
        if (!enabled_)
            return false;
        auto it = space.arenas.find(geometry_.arenaBaseOf(va));
        if (it == space.arenas.end())
            return false;
        ArenaState &state = it->second;

        const unsigned line = geometry_.lineIndexOf(va);
        if (line > kCounterMax)
            return false; // Beyond the counter's range: never bypass.

        const bool eligible = line >= state.bypassCounter;
        if (eligible) {
            state.bypassCounter = line + 1;
            ++candidates_;
        }
        return eligible;
    }

    std::uint64_t candidateCount() const { return candidates_.value(); }

  private:
    bool enabled_;
    ArenaGeometry geometry_;
    Counter candidates_;
};

} // namespace memento

#endif // MEMENTO_HW_BYPASS_H
