#include "hw/hot.h"

namespace memento {

Hot::Hot(const MementoConfig &cfg, StatRegistry &stats)
    : entries_(cfg.numSizeClasses),
      latency_(cfg.hotLatency),
      allocHits_(stats.counter("hot.alloc_hits")),
      allocMisses_(stats.counter("hot.alloc_misses")),
      freeHits_(stats.counter("hot.free_hits")),
      freeMisses_(stats.counter("hot.free_misses")),
      flushes_(stats.counter("hot.flushes"))
{
}

void
Hot::recordAlloc(bool hit)
{
    if (hit)
        ++allocHits_;
    else
        ++allocMisses_;
}

void
Hot::recordFree(bool hit)
{
    if (hit)
        ++freeHits_;
    else
        ++freeMisses_;
}

unsigned
Hot::flush()
{
    unsigned valid = 0;
    for (HotEntry &e : entries_) {
        if (e.valid)
            ++valid;
        e = HotEntry{};
    }
    ++flushes_;
    return valid;
}

double
Hot::allocHitRate() const
{
    const std::uint64_t total = allocHits_.value() + allocMisses_.value();
    return total == 0 ? 1.0
                      : static_cast<double>(allocHits_.value()) / total;
}

double
Hot::freeHitRate() const
{
    const std::uint64_t total = freeHits_.value() + freeMisses_.value();
    return total == 0 ? 1.0
                      : static_cast<double>(freeHits_.value()) / total;
}

} // namespace memento
