/**
 * @file
 * A 4-level x86-64-style radix page table.
 *
 * Each node occupies one physical page (512 x 8-byte entries). The table
 * is functional — mappings are real and queried by the TLB-miss path —
 * and structural: every node has a physical address so page walks touch
 * PTE cache lines like real hardware. Both the OS (CR3) table and
 * Memento's MPTR table (src/hw/hw_page_allocator) are instances of this
 * class; they differ only in who feeds them page frames.
 */

#ifndef MEMENTO_OS_PAGE_TABLE_H
#define MEMENTO_OS_PAGE_TABLE_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "mem/page_walker.h"
#include "sim/types.h"

namespace memento {

/** Supplies/retires physical page frames for page-table nodes. */
class FrameSource
{
  public:
    virtual ~FrameSource() = default;
    /** Allocate a zeroed page frame; kNullAddr when exhausted. */
    virtual Addr allocFrame() = 0;
    /** Return a frame. */
    virtual void freeFrame(Addr paddr) = 0;
};

/** The radix table. Implements the walker-visible interface. */
class PageTable : public PageTableBase
{
  public:
    /** Number of radix levels (PGD, PUD, PMD, PTE). */
    static constexpr unsigned kLevels = 4;
    /** Index bits per level. */
    static constexpr unsigned kBitsPerLevel = 9;
    static constexpr unsigned kEntriesPerNode = 1u << kBitsPerLevel;

    /**
     * @param frames Source of node frames. The root node is allocated
     *               immediately (as the kernel does on fork/exec).
     */
    explicit PageTable(FrameSource &frames);
    ~PageTable() override;

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Map the page of @p vaddr to physical page @p ppage.
     * @return number of new page-table node pages that were created.
     */
    unsigned map(Addr vaddr, Addr ppage);

    /**
     * Unmap the page of @p vaddr, pruning interior nodes that become
     * empty (their frames go back to the FrameSource).
     *
     * @param[out] freed_nodes Number of node pages freed.
     * @return the physical page that was mapped, or kNullAddr if none.
     */
    Addr unmap(Addr vaddr, unsigned &freed_nodes);

    /** Translation for the page of @p vaddr, or kNullAddr. */
    Addr translate(Addr vaddr) const;

    /** True when the page of @p vaddr has a valid leaf entry. */
    bool isMapped(Addr vaddr) const { return translate(vaddr) != 0; }

    /** PageTableBase: structural walk visiting PTE line addresses. */
    WalkResult walk(Addr vaddr) override;

    /**
     * Visit every leaf mapping as (page virtual address, page physical
     * address), in ascending virtual-address order (validation/digest).
     */
    void forEachMapping(
        const std::function<void(Addr vpage, Addr ppage)> &fn) const;

    /** Number of leaf mappings currently live. */
    std::uint64_t mappedPages() const { return mappedPages_; }

    /** Page-table node pages currently allocated (incl. the root). */
    std::uint64_t nodePages() const { return nodePages_; }

    /** Physical address of the root node (the CR3/MPTR value). */
    Addr rootPhys() const;

  private:
    struct Node;

    static unsigned levelIndex(Addr vaddr, unsigned level);
    Node *ensureChild(Node &parent, unsigned idx);

    FrameSource &frames_;
    std::unique_ptr<Node> root_;
    std::uint64_t mappedPages_ = 0;
    std::uint64_t nodePages_ = 0;
};

} // namespace memento

#endif // MEMENTO_OS_PAGE_TABLE_H
