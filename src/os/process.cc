#include "os/process.h"

namespace memento {

Process::Process(int pid, const std::string &name, const MachineConfig &cfg,
                 BuddyAllocator &buddy, StatRegistry &stats)
    : pid_(pid),
      name_(name),
      vm_(std::make_unique<VirtualMemory>(cfg, buddy, stats,
                                          "vm" + std::to_string(pid)))
{
    mementoRegs_.mrs = cfg.layout.mementoRegionStart;
    mementoRegs_.mre =
        cfg.layout.mementoRegionEnd(cfg.memento.numSizeClasses);
}

} // namespace memento
