/**
 * @file
 * Per-process virtual memory: VMAs, mmap/munmap, demand paging.
 *
 * Models the kernel half of memory management that the paper measures:
 * mmap sets up mapping metadata only; the first touch of each page takes
 * a page fault whose handler allocates a frame from the buddy allocator,
 * maps it, and zero-fills it through the cache hierarchy. All costs are
 * charged against the Env under the appropriate kernel CycleCategory.
 *
 * Accounting follows §6.3 of the paper: *aggregate* usage is the
 * cumulative number of physical pages allocated during execution (user
 * and kernel counted separately); resident/peak footprints are also
 * tracked for the pricing model.
 */

#ifndef MEMENTO_OS_VIRTUAL_MEMORY_H
#define MEMENTO_OS_VIRTUAL_MEMORY_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mem/env.h"
#include "mem/tlb.h"
#include "os/buddy_allocator.h"
#include "os/page_table.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace memento {

/** One process's address space and its kernel-side bookkeeping. */
class VirtualMemory : public FrameSource
{
  public:
    /** Physical base of the kernel's struct-page array (vmemmap). */
    static constexpr Addr kStructPageBase = 1ull << 40;

    /**
     * @param prefix Stat prefix, e.g. "vm0".
     */
    VirtualMemory(const MachineConfig &cfg, BuddyAllocator &buddy,
                  StatRegistry &stats, const std::string &prefix);
    ~VirtualMemory() override;

    /**
     * mmap(len): reserve a virtual range on the heap cursor.
     *
     * @param env Charged for the syscall; pass nullptr during machine
     *            set-up to make the call free (pre-existing state).
     * @param populate Eagerly back every page (MAP_POPULATE study).
     * @param align Base alignment (power of two >= page size); callers
     *              that locate metadata by address masking need it.
     * @return base of the new region.
     */
    Addr mmap(std::uint64_t len, Env *env, bool populate = false,
              std::uint64_t align = kPageSize);

    /** munmap(base, len): tear down mappings and free frames. */
    void munmap(Addr base, std::uint64_t len, Env *env);

    /**
     * madvise(MADV_DONTNEED): drop the physical frames backing the
     * range but keep the VMA; the next touch demand-faults a fresh
     * zeroed page. This is the purge path long-running allocators
     * (jemalloc decay, Go scavenger) use to return memory.
     */
    void madviseFree(Addr base, std::uint64_t len, Env *env);

    /**
     * Handle a page fault at @p vaddr (called from the translation path
     * on an invalid OS-table walk).
     *
     * @return false when the address is outside any VMA (a real SEGV —
     *         the simulator treats it as a fatal workload bug).
     */
    bool handleFault(Addr vaddr, Env &env);

    /** True when @p vaddr lies inside a mapped VMA. */
    bool inVma(Addr vaddr) const;

    /**
     * Physical translation for @p vaddr if it is backed by a
     * transparent huge page (the MMU consults this at PMD level).
     */
    std::optional<Addr> lookupHuge(Addr vaddr) const;

    /** Number of live huge-page mappings. */
    std::size_t hugeMappingCount() const { return hugeMappings_.size(); }

    /** The process's OS page table (CR3). */
    PageTable &pageTable() { return *pageTable_; }
    const PageTable &pageTable() const { return *pageTable_; }

    /** FrameSource for page-table node pages (kernel memory). */
    Addr allocFrame() override;
    void freeFrame(Addr paddr) override;

    /** Cumulative user pages ever allocated (Fig. 11 numerator). */
    std::uint64_t aggregateUserPages() const;
    /** Cumulative kernel pages ever allocated. */
    std::uint64_t aggregateKernelPages() const;
    /** Kernel bytes for VMA metadata (cumulative). */
    std::uint64_t aggregateVmaBytes() const;
    /** Current resident user pages. */
    std::uint64_t residentUserPages() const { return residentUser_; }
    /** Current resident kernel pages (page-table nodes). */
    std::uint64_t residentKernelPages() const { return residentKernel_; }
    /** [base, end) of every live VMA, ordered by base (validation). */
    std::vector<std::pair<Addr, Addr>> vmaRanges() const;
    /** Peak resident footprint in pages (user + kernel). */
    std::uint64_t peakResidentPages() const;
    /** Number of live VMAs. */
    std::uint64_t vmaCount() const { return vmas_.size(); }
    /** Demand faults taken. */
    std::uint64_t faultCount() const;

  private:
    struct Vma
    {
        Addr base = 0;
        std::uint64_t length = 0;
        Addr end() const { return base + length; }
    };

    /** Back one page with a zeroed frame; returns node pages created. */
    void backPage(Addr vpage, Env *env, bool bulk = false);
    /** Try to satisfy a fault with a 2 MiB huge page (THP). */
    bool tryHugeFault(Addr vaddr, Env &env);
    /** Break huge pages intersecting [base, base+len) (free frames). */
    void splitHugeRange(Addr base, std::uint64_t len, Env *env);
    /** Touch the frame's struct-page metadata (LRU, memcg, flags). */
    void touchStructPage(Addr frame, Env *env, bool write);
    void updatePeak();

    const MachineConfig &cfg_;
    BuddyAllocator &buddy_;

    std::unique_ptr<PageTable> pageTable_;
    /** VMAs keyed by base address. */
    std::map<Addr, Vma> vmas_;
    /** Huge-page mappings: 2 MiB-aligned va -> 2 MiB-aligned pa. */
    std::map<Addr, Addr> hugeMappings_;
    Addr heapCursor_;

    std::uint64_t residentUser_ = 0;
    std::uint64_t residentKernel_ = 0;

    Counter aggUserPages_;
    Counter aggKernelPages_;
    Counter aggVmaBytes_;
    Counter peakResident_;
    Counter faults_;
    Counter mmapCalls_;
    Counter munmapCalls_;

    /** Kernel metadata bytes modeled per VMA (struct vm_area_struct). */
    static constexpr std::uint64_t kVmaBytes = 200;
};

} // namespace memento

#endif // MEMENTO_OS_VIRTUAL_MEMORY_H
