/**
 * @file
 * The kernel's binary buddy allocator for physical page frames.
 *
 * Functional model of Linux's zoned buddy system restricted to one zone:
 * power-of-two blocks of page frames with split/coalesce on alloc/free.
 * This backs every physical page in the simulation — user heap pages,
 * page-table pages, and the refills granted to Memento's hardware page
 * pool.
 */

#ifndef MEMENTO_OS_BUDDY_ALLOCATOR_H
#define MEMENTO_OS_BUDDY_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace memento {

/** Binary buddy allocator over a contiguous physical frame range. */
class BuddyAllocator
{
  public:
    /** Maximum block order (2^kMaxOrder pages), as in Linux. */
    static constexpr unsigned kMaxOrder = 10;

    /**
     * @param base Physical base address (page-aligned).
     * @param size_bytes Managed bytes (multiple of the max block size).
     */
    BuddyAllocator(Addr base, std::uint64_t size_bytes, StatRegistry &stats);

    /**
     * Allocate a block of 2^order contiguous pages.
     * @return the block's physical base, or kNullAddr when exhausted.
     */
    Addr allocate(unsigned order);

    /** Allocate a single page frame. */
    Addr allocatePage() { return allocate(0); }

    /** Free a block previously returned by allocate(order). */
    void free(Addr addr, unsigned order);

    /** Free a single page frame. */
    void freePage(Addr addr) { free(addr, 0); }

    /** Pages currently allocated. */
    std::uint64_t allocatedPages() const { return allocatedPages_; }

    /** High-water mark of allocated pages. */
    std::uint64_t peakAllocatedPages() const { return peakPages_.value(); }

    /** Total pages managed. */
    std::uint64_t totalPages() const { return totalPages_; }

    /** Free pages remaining. */
    std::uint64_t
    freePages() const
    {
        return totalPages_ - allocatedPages_;
    }

    /** Verify free-list invariants (tests); returns false on corruption. */
    bool checkInvariants() const;

    /**
     * Detailed integrity check: appends one message per violated
     * invariant (misaligned free blocks, page-conservation breakage,
     * free/live overlap) to @p violations.
     * @return true when no violation was found.
     */
    bool checkIntegrity(std::vector<std::string> &violations) const;

    /** True when the page frame at @p paddr lies in a live allocation. */
    bool ownsLivePage(Addr paddr) const;

  private:
    friend struct InvariantTestPeer; ///< Corruption hooks for val tests.

    Addr buddyOf(Addr addr, unsigned order) const;

    Addr base_;
    std::uint64_t totalPages_;
    std::uint64_t allocatedPages_ = 0;

    /** Free blocks per order, keyed by physical base. */
    std::vector<std::set<Addr>> freeLists_;
    /** Order of each outstanding allocation, for validation on free. */
    std::map<Addr, unsigned> liveBlocks_;

    Counter allocCalls_;
    Counter freeCalls_;
    Counter splits_;
    Counter coalesces_;
    Counter peakPages_;
};

} // namespace memento

#endif // MEMENTO_OS_BUDDY_ALLOCATOR_H
