/**
 * @file
 * A simulated process: an address space plus the per-process Memento
 * region registers that the OS spills and restores on context switches.
 */

#ifndef MEMENTO_OS_PROCESS_H
#define MEMENTO_OS_PROCESS_H

#include <memory>
#include <string>

#include "os/virtual_memory.h"
#include "sim/config.h"

namespace memento {

/** Per-process Memento control registers (§3.2). */
struct MementoRegs
{
    Addr mrs = 0;  ///< Memento Region Start.
    Addr mre = 0;  ///< Memento Region End.
    Addr mptr = 0; ///< Memento Page Table Root (0 = none yet).
};

/** One schedulable process with its own address space. */
class Process
{
  public:
    Process(int pid, const std::string &name, const MachineConfig &cfg,
            BuddyAllocator &buddy, StatRegistry &stats);

    int pid() const { return pid_; }
    const std::string &name() const { return name_; }

    VirtualMemory &vm() { return *vm_; }
    const VirtualMemory &vm() const { return *vm_; }

    MementoRegs &mementoRegs() { return mementoRegs_; }
    const MementoRegs &mementoRegs() const { return mementoRegs_; }

  private:
    int pid_;
    std::string name_;
    std::unique_ptr<VirtualMemory> vm_;
    MementoRegs mementoRegs_;
};

} // namespace memento

#endif // MEMENTO_OS_PROCESS_H
