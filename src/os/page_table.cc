#include "os/page_table.h"

#include <map>

#include "sim/logging.h"

namespace memento {

/** One radix node: a physical frame holding 512 entries. */
struct PageTable::Node
{
    explicit Node(Addr phys_base) : phys(phys_base) {}

    Addr phys;
    /** Interior children (levels 0..2), keyed by entry index. */
    std::map<unsigned, std::unique_ptr<Node>> children;
    /** Leaf mappings (level 3), entry index -> physical page. */
    std::map<unsigned, Addr> leaves;

    bool empty() const { return children.empty() && leaves.empty(); }

    /** Physical address of the PTE slot @p idx within this node. */
    Addr pteAddr(unsigned idx) const { return phys + idx * 8ull; }
};

PageTable::PageTable(FrameSource &frames) : frames_(frames)
{
    Addr root_frame = frames_.allocFrame();
    panic_if(root_frame == kNullAddr, "page table: no frame for root");
    root_ = std::make_unique<Node>(root_frame);
    nodePages_ = 1;
}

PageTable::~PageTable()
{
    // Return every node frame. Post-order via recursion on children.
    std::function<void(Node &)> release = [&](Node &node) {
        for (auto &[idx, child] : node.children)
            release(*child);
        frames_.freeFrame(node.phys);
    };
    release(*root_);
}

unsigned
PageTable::levelIndex(Addr vaddr, unsigned level)
{
    // Level 0 uses bits [47:39], level 3 (leaf) uses [20:12].
    const unsigned shift =
        kPageShift + kBitsPerLevel * (kLevels - 1 - level);
    return (vaddr >> shift) & (kEntriesPerNode - 1);
}

PageTable::Node *
PageTable::ensureChild(Node &parent, unsigned idx)
{
    auto it = parent.children.find(idx);
    if (it != parent.children.end())
        return it->second.get();
    Addr frame = frames_.allocFrame();
    if (frame == kNullAddr)
        return nullptr;
    auto node = std::make_unique<Node>(frame);
    Node *raw = node.get();
    parent.children.emplace(idx, std::move(node));
    ++nodePages_;
    return raw;
}

unsigned
PageTable::map(Addr vaddr, Addr ppage)
{
    panic_if(ppage == kNullAddr, "page table: mapping to null frame");
    const std::uint64_t nodes_before = nodePages_;

    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kLevels; ++level) {
        node = ensureChild(*node, levelIndex(vaddr, level));
        panic_if(!node, "page table: out of node frames");
    }
    const unsigned leaf_idx = levelIndex(vaddr, kLevels - 1);
    panic_if(node->leaves.count(leaf_idx),
             "page table: double map of 0x", std::hex, vaddr);
    node->leaves[leaf_idx] = pageBase(ppage);
    ++mappedPages_;
    return static_cast<unsigned>(nodePages_ - nodes_before);
}

Addr
PageTable::unmap(Addr vaddr, unsigned &freed_nodes)
{
    freed_nodes = 0;

    // Record the path so empty nodes can be pruned bottom-up.
    Node *path[kLevels] = {};
    unsigned idx[kLevels] = {};
    Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kLevels; ++level) {
        path[level] = node;
        idx[level] = levelIndex(vaddr, level);
        auto it = node->children.find(idx[level]);
        if (it == node->children.end())
            return kNullAddr;
        node = it->second.get();
    }
    path[kLevels - 1] = node;
    idx[kLevels - 1] = levelIndex(vaddr, kLevels - 1);

    auto leaf = node->leaves.find(idx[kLevels - 1]);
    if (leaf == node->leaves.end())
        return kNullAddr;
    const Addr ppage = leaf->second;
    node->leaves.erase(leaf);
    --mappedPages_;

    // Prune empty nodes (never the root).
    for (unsigned level = kLevels - 1; level > 0; --level) {
        Node *current = path[level];
        if (!current->empty())
            break;
        frames_.freeFrame(current->phys);
        path[level - 1]->children.erase(idx[level - 1]);
        --nodePages_;
        ++freed_nodes;
    }
    return ppage;
}

Addr
PageTable::translate(Addr vaddr) const
{
    const Node *node = root_.get();
    for (unsigned level = 0; level + 1 < kLevels; ++level) {
        auto it = node->children.find(levelIndex(vaddr, level));
        if (it == node->children.end())
            return kNullAddr;
        node = it->second.get();
    }
    auto leaf = node->leaves.find(levelIndex(vaddr, kLevels - 1));
    if (leaf == node->leaves.end())
        return kNullAddr;
    return leaf->second + (vaddr & (kPageSize - 1));
}

WalkResult
PageTable::walk(Addr vaddr)
{
    WalkResult res;
    Node *node = root_.get();
    for (unsigned level = 0; level < kLevels; ++level) {
        const unsigned idx = levelIndex(vaddr, level);
        res.visitedPtes.push_back(node->pteAddr(idx));
        if (level + 1 == kLevels) {
            auto leaf = node->leaves.find(idx);
            if (leaf == node->leaves.end())
                return res; // Invalid leaf: fault.
            res.valid = true;
            res.ppage = leaf->second;
            return res;
        }
        auto it = node->children.find(idx);
        if (it == node->children.end())
            return res; // Missing interior node: fault.
        node = it->second.get();
    }
    return res;
}

void
PageTable::forEachMapping(
    const std::function<void(Addr vpage, Addr ppage)> &fn) const
{
    // Children/leaves are std::maps, so recursion yields ascending VAs.
    std::function<void(const Node &, Addr, unsigned)> visit =
        [&](const Node &node, Addr va_prefix, unsigned level) {
            const unsigned shift =
                kPageShift + kBitsPerLevel * (kLevels - 1 - level);
            if (level + 1 == kLevels) {
                for (const auto &[idx, ppage] : node.leaves)
                    fn(va_prefix | (static_cast<Addr>(idx) << shift),
                       ppage);
                return;
            }
            for (const auto &[idx, child] : node.children)
                visit(*child,
                      va_prefix | (static_cast<Addr>(idx) << shift),
                      level + 1);
        };
    visit(*root_, 0, 0);
}

Addr
PageTable::rootPhys() const
{
    return root_->phys;
}

} // namespace memento
