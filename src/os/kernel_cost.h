/**
 * @file
 * Kernel cost helpers shared by the scheduler-level models: context
 * switches and the container set-up path used by the cold-start study.
 */

#ifndef MEMENTO_OS_KERNEL_COST_H
#define MEMENTO_OS_KERNEL_COST_H

#include "mem/env.h"
#include "sim/config.h"

namespace memento {

/** Charges scheduler/kernel operations that sit outside mmap/fault. */
class KernelCostModel
{
  public:
    explicit KernelCostModel(const MachineConfig &cfg) : cfg_(cfg) {}

    /**
     * Charge a context switch. @p hot_entries_flushed models Memento's
     * HOT flush on switch (§4): one writeback per valid entry.
     */
    void chargeContextSwitch(Env &env, unsigned hot_entries_flushed) const;

    /**
     * Charge the container set-up path for a cold-started function:
     * namespace creation, cgroup setup, runtime spawn (crun-like). The
     * instruction budget is deliberately coarse — the paper treats it as
     * an additive latency outside Memento's reach.
     */
    void chargeContainerSetup(Env &env) const;

    /** Instructions modeled for container set-up. */
    static constexpr InstCount kContainerSetupInstructions = 9'000'000;

  private:
    const MachineConfig &cfg_;
};

} // namespace memento

#endif // MEMENTO_OS_KERNEL_COST_H
