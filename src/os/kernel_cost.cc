#include "os/kernel_cost.h"

namespace memento {

void
KernelCostModel::chargeContextSwitch(Env &env,
                                     unsigned hot_entries_flushed) const
{
    CategoryScope scope(env.ledger(), CycleCategory::ContextSwitch);
    env.chargeCycles(cfg_.kernel.contextSwitchCycles);
    // Flushing the HOT issues one metadata writeback per valid entry;
    // each completes at L1 speed (the entries are small and the write
    // port is pipelined), so charge the HOT latency per entry.
    env.chargeCycles(static_cast<Cycles>(hot_entries_flushed) *
                     cfg_.memento.hotLatency);
}

void
KernelCostModel::chargeContainerSetup(Env &env) const
{
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    env.chargeInstructions(kContainerSetupInstructions);
}

} // namespace memento
