#include "os/virtual_memory.h"

#include "mem/tlb.h"

#include "sim/error.h"
#include "sim/logging.h"

namespace memento {

VirtualMemory::VirtualMemory(const MachineConfig &cfg, BuddyAllocator &buddy,
                             StatRegistry &stats, const std::string &prefix)
    : cfg_(cfg),
      buddy_(buddy),
      heapCursor_(cfg.layout.heapBase),
      aggUserPages_(stats.counter(prefix + ".agg_user_pages")),
      aggKernelPages_(stats.counter(prefix + ".agg_kernel_pages")),
      aggVmaBytes_(stats.counter(prefix + ".agg_vma_bytes")),
      peakResident_(stats.counter(prefix + ".peak_resident_pages")),
      faults_(stats.counter(prefix + ".faults")),
      mmapCalls_(stats.counter(prefix + ".mmap_calls")),
      munmapCalls_(stats.counter(prefix + ".munmap_calls"))
{
    // The page-table root is kernel memory; construct after counters so
    // allocFrame() accounting is live.
    pageTable_ = std::make_unique<PageTable>(*this);
}

VirtualMemory::~VirtualMemory()
{
    for (const auto &[block, frame] : hugeMappings_)
        buddy_.free(frame, kHugePageShift - kPageShift);
    hugeMappings_.clear();
    // Free all resident user frames before the table tears down.
    for (const auto &[base, vma] : vmas_) {
        for (Addr va = vma.base; va < vma.end(); va += kPageSize) {
            unsigned freed_nodes = 0;
            Addr frame = pageTable_->unmap(va, freed_nodes);
            if (frame != kNullAddr)
                buddy_.freePage(frame);
        }
    }
    pageTable_.reset();
}

Addr
VirtualMemory::allocFrame()
{
    Addr frame = buddy_.allocatePage();
    sim_error_if(frame == kNullAddr, ErrorCategory::OutOfMemory,
                 "out of physical memory (kernel page-table node)");
    ++aggKernelPages_;
    ++residentKernel_;
    updatePeak();
    return frame;
}

void
VirtualMemory::freeFrame(Addr paddr)
{
    buddy_.freePage(paddr);
    --residentKernel_;
}

void
VirtualMemory::touchStructPage(Addr frame, Env *env, bool write)
{
    if (!env)
        return;
    // One struct page per frame, 64 B apart: fault and reclaim paths
    // read and update it (flags, LRU linkage, memcg charge). This is
    // kernel data movement that Memento's page allocator avoids.
    const Addr addr = kStructPageBase + (frame >> kPageShift) * 64;
    env->accessPhysical(addr, AccessType::Read);
    if (write)
        env->accessPhysical(addr, AccessType::Write);
}

void
VirtualMemory::updatePeak()
{
    peakResident_.raiseTo(residentUser_ + residentKernel_);
}

Addr
VirtualMemory::mmap(std::uint64_t len, Env *env, bool populate,
                    std::uint64_t align)
{
    panic_if(len == 0, "mmap of zero length");
    panic_if(!isPowerOfTwo(align) || align < kPageSize,
             "mmap: bad alignment");
    len = alignUp(len, kPageSize);

    sim_error_if(cfg_.inject.mmapFailAt != 0 &&
                     mmapCalls_.value() + 1 == cfg_.inject.mmapFailAt,
                 ErrorCategory::OutOfMemory,
                 "mmap failed (injected fault at call ",
                 cfg_.inject.mmapFailAt, ")");
    ++mmapCalls_;
    heapCursor_ = alignUp(heapCursor_, align);
    const Addr base = heapCursor_;
    heapCursor_ += len + kPageSize; // Guard gap between regions.
    vmas_[base] = Vma{base, len};
    aggVmaBytes_ += kVmaBytes;

    if (env) {
        CategoryScope scope(env->ledger(), CycleCategory::KernelMmap);
        env->chargeCycles(cfg_.kernel.modeSwitchCycles);
        env->chargeInstructions(cfg_.kernel.mmapInstructions);
    }

    const bool do_populate = populate || cfg_.kernel.mapPopulate;
    if (do_populate) {
        // Batched population: the kernel allocates high-order blocks,
        // initializes struct pages with vectorized stores, and zeroes
        // with non-temporal writes — far cheaper per page than a
        // demand fault.
        for (Addr va = base; va < base + len; va += kPageSize) {
            if (env) {
                CategoryScope scope(env->ledger(),
                                    CycleCategory::KernelMmap);
                env->chargeInstructions(80);
            }
            backPage(va, env, /*bulk=*/true);
        }
    }
    return base;
}

void
VirtualMemory::backPage(Addr vpage, Env *env, bool bulk)
{
    Addr frame = buddy_.allocatePage();
    sim_error_if(frame == kNullAddr, ErrorCategory::OutOfMemory,
                 "out of physical memory (user demand fault)");
    ++aggUserPages_;
    ++residentUser_;
    pageTable_->map(vpage, frame);
    updatePeak();
    if (!bulk)
        touchStructPage(frame, env, /*write=*/true);

    if (env) {
        if (bulk) {
            // Batched population (MAP_POPULATE) clears pages with
            // streaming non-temporal stores: no cache pollution, a
            // small fixed cost per page.
            env->chargeCycles(96);
        } else {
            // Demand-fault zero-fill: the kernel writes whole lines,
            // so no fetch happens (write-combining stores); the dirty
            // lines are written back to DRAM later, which is where the
            // traffic cost of zeroing shows up.
            for (unsigned line = 0; line < kPageSize / kLineSize;
                 ++line)
                env->installPhysical(frame + line * kLineSize);
        }
    }
}

void
VirtualMemory::munmap(Addr base, std::uint64_t len, Env *env)
{
    len = alignUp(len, kPageSize);
    auto it = vmas_.upper_bound(base);
    panic_if(it == vmas_.begin(), "munmap of unmapped range 0x", std::hex,
             base);
    --it;
    panic_if(base < it->second.base || base + len > it->second.end(),
             "munmap of unmapped range 0x", std::hex, base);

    ++munmapCalls_;
    splitHugeRange(base, len, env);
    std::uint64_t pages_present = 0;
    for (Addr va = base; va < base + len; va += kPageSize) {
        unsigned freed_nodes = 0;
        Addr frame = pageTable_->unmap(va, freed_nodes);
        if (frame != kNullAddr) {
            touchStructPage(frame, env, /*write=*/true);
            buddy_.freePage(frame);
            --residentUser_;
            ++pages_present;
        }
        if (env)
            env->tlbInvalidate(va);
    }

    Vma vma = it->second;
    if (base == vma.base && len == vma.length) {
        vmas_.erase(it);
    } else if (base == vma.base) {
        // Shrink from the front (the key changes).
        vmas_.erase(it);
        vmas_[base + len] = Vma{base + len, vma.length - len};
    } else if (base + len == vma.end()) {
        it->second.length = base - vma.base;
    } else {
        // Interior hole: split into head and tail.
        it->second.length = base - vma.base;
        vmas_[base + len] = Vma{base + len, vma.end() - (base + len)};
        aggVmaBytes_ += kVmaBytes;
    }

    if (env) {
        CategoryScope scope(env->ledger(), CycleCategory::KernelMmap);
        env->chargeCycles(cfg_.kernel.modeSwitchCycles);
        env->chargeInstructions(cfg_.kernel.munmapBaseInstructions +
                                cfg_.kernel.munmapPerPageInstructions *
                                    pages_present);
    }
}

void
VirtualMemory::madviseFree(Addr base, std::uint64_t len, Env *env)
{
    len = alignUp(len, kPageSize);
    splitHugeRange(base, len, env);
    std::uint64_t pages_present = 0;
    for (Addr va = pageBase(base); va < base + len; va += kPageSize) {
        unsigned freed_nodes = 0;
        Addr frame = pageTable_->unmap(va, freed_nodes);
        if (frame != kNullAddr) {
            touchStructPage(frame, env, /*write=*/true);
            buddy_.freePage(frame);
            --residentUser_;
            ++pages_present;
        }
        if (env)
            env->tlbInvalidate(va);
    }
    if (env && pages_present > 0) {
        CategoryScope scope(env->ledger(), CycleCategory::KernelMmap);
        env->chargeCycles(cfg_.kernel.modeSwitchCycles);
        env->chargeInstructions(500 + cfg_.kernel.munmapPerPageInstructions *
                                          pages_present);
    }
}

bool
VirtualMemory::inVma(Addr vaddr) const
{
    auto it = vmas_.upper_bound(vaddr);
    if (it == vmas_.begin())
        return false;
    --it;
    return vaddr >= it->second.base && vaddr < it->second.end();
}

std::optional<Addr>
VirtualMemory::lookupHuge(Addr vaddr) const
{
    const std::uint64_t huge = 1ull << kHugePageShift;
    const Addr block = vaddr & ~(huge - 1);
    auto it = hugeMappings_.find(block);
    if (it == hugeMappings_.end())
        return std::nullopt;
    return it->second + (vaddr - block);
}

bool
VirtualMemory::tryHugeFault(Addr vaddr, Env &env)
{
    const std::uint64_t huge = 1ull << kHugePageShift;
    const Addr block = vaddr & ~(huge - 1);
    // The whole block must lie inside one VMA.
    if (!inVma(block) || !inVma(block + huge - 1))
        return false;
    // No 4 KiB page of the block may already be backed.
    for (Addr va = block; va < block + huge; va += kPageSize) {
        if (pageTable_->isMapped(va))
            return false;
    }
    const Addr frame = buddy_.allocate(kHugePageShift - kPageShift);
    if (frame == kNullAddr)
        return false;

    hugeMappings_[block] = frame;
    const std::uint64_t pages = huge / kPageSize;
    aggUserPages_ += pages;
    residentUser_ += pages;
    updatePeak();
    touchStructPage(frame, &env, /*write=*/true);
    // Zeroing 2 MiB dominates the huge fault (streaming stores).
    env.chargeCycles(cfg_.kernel.thpZeroCyclesPerPage * pages);
    env.chargeInstructions(cfg_.kernel.faultInstructions +
                           cfg_.kernel.buddyAllocInstructions);
    return true;
}

void
VirtualMemory::splitHugeRange(Addr base, std::uint64_t len, Env *env)
{
    if (hugeMappings_.empty())
        return;
    const std::uint64_t huge = 1ull << kHugePageShift;
    const Addr first = base & ~(huge - 1);
    for (Addr block = first; block < base + len; block += huge) {
        auto it = hugeMappings_.find(block);
        if (it == hugeMappings_.end())
            continue;
        buddy_.free(it->second, kHugePageShift - kPageShift);
        residentUser_ -= huge / kPageSize;
        hugeMappings_.erase(it);
        if (env) {
            env->tlbInvalidate(block);
            CategoryScope scope(env->ledger(),
                                CycleCategory::KernelMmap);
            env->chargeInstructions(800); // Huge-PMD split/zap path.
        }
    }
}

bool
VirtualMemory::handleFault(Addr vaddr, Env &env)
{
    if (!inVma(vaddr))
        return false;

    if (cfg_.kernel.transparentHugePages) {
        CategoryScope scope(env.ledger(), CycleCategory::KernelFault);
        env.chargeCycles(cfg_.kernel.modeSwitchCycles);
        if (tryHugeFault(vaddr, env)) {
            ++faults_;
            return true;
        }
        // Fall through to the 4 KiB path (mode switch already paid).
        ++faults_;
        env.chargeInstructions(cfg_.kernel.faultInstructions +
                               cfg_.kernel.buddyAllocInstructions);
        backPage(pageBase(vaddr), &env);
        return true;
    }

    ++faults_;
    CategoryScope scope(env.ledger(), CycleCategory::KernelFault);
    env.chargeCycles(cfg_.kernel.modeSwitchCycles);
    env.chargeInstructions(cfg_.kernel.faultInstructions +
                           cfg_.kernel.buddyAllocInstructions);
    backPage(pageBase(vaddr), &env);
    return true;
}

std::uint64_t
VirtualMemory::aggregateUserPages() const
{
    return aggUserPages_.value();
}

std::uint64_t
VirtualMemory::aggregateKernelPages() const
{
    return aggKernelPages_.value();
}

std::uint64_t
VirtualMemory::aggregateVmaBytes() const
{
    return aggVmaBytes_.value();
}

std::uint64_t
VirtualMemory::peakResidentPages() const
{
    return peakResident_.value();
}

std::uint64_t
VirtualMemory::faultCount() const
{
    return faults_.value();
}

std::vector<std::pair<Addr, Addr>>
VirtualMemory::vmaRanges() const
{
    std::vector<std::pair<Addr, Addr>> ranges;
    ranges.reserve(vmas_.size());
    for (const auto &[base, vma] : vmas_)
        ranges.emplace_back(vma.base, vma.end());
    return ranges;
}

} // namespace memento
