#include "os/buddy_allocator.h"

#include <sstream>

#include "sim/logging.h"

namespace memento {

BuddyAllocator::BuddyAllocator(Addr base, std::uint64_t size_bytes,
                               StatRegistry &stats)
    : base_(base),
      totalPages_(size_bytes / kPageSize),
      freeLists_(kMaxOrder + 1),
      allocCalls_(stats.counter("buddy.alloc_calls")),
      freeCalls_(stats.counter("buddy.free_calls")),
      splits_(stats.counter("buddy.splits")),
      coalesces_(stats.counter("buddy.coalesces")),
      peakPages_(stats.counter("buddy.peak_pages"))
{
    panic_if(base % kPageSize != 0, "buddy: unaligned base");
    const std::uint64_t max_block_pages = 1ull << kMaxOrder;
    panic_if(totalPages_ == 0 || totalPages_ % max_block_pages != 0,
             "buddy: size must be a multiple of the max block size");

    for (std::uint64_t page = 0; page < totalPages_;
         page += max_block_pages) {
        freeLists_[kMaxOrder].insert(base_ + page * kPageSize);
    }
}

Addr
BuddyAllocator::buddyOf(Addr addr, unsigned order) const
{
    const std::uint64_t block_bytes = kPageSize << order;
    return base_ + (((addr - base_) ^ block_bytes));
}

Addr
BuddyAllocator::allocate(unsigned order)
{
    panic_if(order > kMaxOrder, "buddy: order too large");
    ++allocCalls_;

    // Find the smallest available order >= requested.
    unsigned avail = order;
    while (avail <= kMaxOrder && freeLists_[avail].empty())
        ++avail;
    if (avail > kMaxOrder)
        return kNullAddr;

    Addr block = *freeLists_[avail].begin();
    freeLists_[avail].erase(freeLists_[avail].begin());

    // Split down to the requested order, returning upper halves.
    while (avail > order) {
        --avail;
        ++splits_;
        const Addr upper = block + (kPageSize << avail);
        freeLists_[avail].insert(upper);
    }

    liveBlocks_[block] = order;
    allocatedPages_ += 1ull << order;
    peakPages_.raiseTo(allocatedPages_);
    return block;
}

void
BuddyAllocator::free(Addr addr, unsigned order)
{
    ++freeCalls_;
    auto it = liveBlocks_.find(addr);
    panic_if(it == liveBlocks_.end(), "buddy: free of unallocated block 0x",
             std::hex, addr);
    panic_if(it->second != order, "buddy: free order mismatch");
    liveBlocks_.erase(it);
    allocatedPages_ -= 1ull << order;

    // Coalesce with free buddies while possible.
    Addr block = addr;
    while (order < kMaxOrder) {
        const Addr buddy = buddyOf(block, order);
        auto buddy_it = freeLists_[order].find(buddy);
        if (buddy_it == freeLists_[order].end())
            break;
        freeLists_[order].erase(buddy_it);
        ++coalesces_;
        block = block < buddy ? block : buddy;
        ++order;
    }
    freeLists_[order].insert(block);
}

bool
BuddyAllocator::checkInvariants() const
{
    std::vector<std::string> violations;
    return checkIntegrity(violations);
}

bool
BuddyAllocator::checkIntegrity(std::vector<std::string> &violations) const
{
    const std::size_t before = violations.size();
    std::uint64_t free_pages = 0;
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        for (Addr block : freeLists_[order]) {
            if ((block - base_) % (kPageSize << order) != 0) {
                std::ostringstream os;
                os << "buddy: misaligned order-" << order
                   << " free block 0x" << std::hex << block;
                violations.push_back(os.str());
            }
            // A free block must not intersect a live allocation.
            if (ownsLivePage(block)) {
                std::ostringstream os;
                os << "buddy: block 0x" << std::hex << block
                   << " is both free and live";
                violations.push_back(os.str());
            }
            free_pages += 1ull << order;
        }
    }
    std::uint64_t live_pages = 0;
    for (const auto &[addr, order] : liveBlocks_)
        live_pages += 1ull << order;
    if (live_pages != allocatedPages_) {
        std::ostringstream os;
        os << "buddy: live-block pages (" << live_pages
           << ") != allocated-page count (" << allocatedPages_ << ")";
        violations.push_back(os.str());
    }
    if (free_pages + live_pages != totalPages_) {
        std::ostringstream os;
        os << "buddy: page conservation broken: free (" << free_pages
           << ") + live (" << live_pages << ") != total (" << totalPages_
           << ")";
        violations.push_back(os.str());
    }
    return violations.size() == before;
}

bool
BuddyAllocator::ownsLivePage(Addr paddr) const
{
    auto it = liveBlocks_.upper_bound(paddr);
    if (it == liveBlocks_.begin())
        return false;
    --it;
    const std::uint64_t block_bytes = kPageSize << it->second;
    return paddr >= it->first && paddr < it->first + block_bytes;
}

} // namespace memento
