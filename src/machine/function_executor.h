/**
 * @file
 * Executes a workload trace on a Machine: binds object ids to the
 * addresses the live allocator returns, issues application memory
 * references, and adds the serverless bookends (optional container
 * set-up for cold starts, RPC input/output, batch free at exit).
 */

#ifndef MEMENTO_MACHINE_FUNCTION_EXECUTOR_H
#define MEMENTO_MACHINE_FUNCTION_EXECUTOR_H

#include <unordered_map>
#include <vector>

#include "machine/machine.h"
#include "wl/trace.h"
#include "wl/workloads.h"

namespace memento {

/** Per-run options. */
struct RunOptions
{
    /** Charge the container set-up path before executing (§6.6). */
    bool coldStart = false;
    /** Charge RPC bookends (functions fetch inputs / store results). */
    bool chargeRpc = true;
    /** Hash the final machine state into RunResult::digest. */
    bool computeDigest = false;
};

/**
 * Trace interpreter.
 *
 * Holds no static or process-global state (audited for the parallel
 * sweep engine): object bindings, fragmentation samples, and fault
 * bookkeeping all live in the instance, and all machine state lives in
 * the Machine. Distinct executor+machine pairs may therefore run
 * concurrently on different threads; the shared Trace is read-only.
 */
class FunctionExecutor
{
  public:
    explicit FunctionExecutor(Machine &machine) : machine_(machine) {}

    /**
     * Run @p trace for the machine's current process.
     *
     * The trace must be self-consistent (every Free matches a Malloc);
     * violations raise SimError(ErrorCategory::Trace) tagged with the
     * offending op index. The machine configuration's check.* keys arm
     * a watchdog (max ops / max cycles) and periodic invariant sweeps;
     * its inject.* keys apply deterministic trace faults when the plan
     * targets @p spec.
     */
    void run(const WorkloadSpec &spec, const Trace &trace,
             RunOptions opts = {});

    /**
     * Execute ops [from, to) of @p trace (multi-process interleaving:
     * object bindings persist across calls; no RPC bookends).
     */
    void runRange(const WorkloadSpec &spec, const Trace &trace,
                  std::size_t from, std::size_t to);

    /**
     * Allocator fragmentation (§6.6's inactive-slot metric), sampled
     * periodically and reported at the point of peak live bytes — the
     * moment the heap is densest and slack is real slack rather than
     * objects that already died.
     */
    double fragSample() const { return fragSample_; }

    /** Live object count (for tests; 0 after FunctionEnd). */
    std::size_t liveObjects() const { return liveCount_; }

  private:
    struct ObjectInfo
    {
        Addr addr = 0;
        std::uint64_t size = 0;
        bool live = false;
    };

    /**
     * Ids below this bind through the flat vector; at or above it (a
     * handwritten trace with huge ids, fault injection's poisoned
     * frees) they fall back to the hash map. Bounds the vector so a
     * hostile id cannot demand 2^64 slots.
     */
    static constexpr std::uint64_t kDenseIdLimit = 1ull << 22;

    void chargeRpc(const WorkloadSpec &spec);
    void execute(const WorkloadSpec &spec, const TraceOp &op);
    /** inject.arena_bit_flip_at: corrupt one arena allocation bitmap. */
    void flipArenaBit();

    Machine &machine_;
    /**
     * Object bindings. Trace generators issue ids densely from 1, so
     * the common case is a bounds check plus an indexed load — the
     * hash lookup per Load/Store/Free dominated the replay profile.
     * Grown on demand; FunctionEnd clears size but keeps capacity.
     */
    std::vector<ObjectInfo> dense_;
    std::unordered_map<std::uint64_t, ObjectInfo> sparse_;
    std::size_t liveCount_ = 0;
    double fragSample_ = 0.0;
    std::uint64_t fragMaxLive_ = 0;
    std::uint64_t opsSinceFragSample_ = 0;
};

} // namespace memento

#endif // MEMENTO_MACHINE_FUNCTION_EXECUTOR_H
