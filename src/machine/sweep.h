/**
 * @file
 * Parallel sweep engine: fans (workload x configuration) runs out over
 * a work-stealing thread pool and merges the outcomes back in task
 * order, so a sweep at any --jobs level reports byte-identically to
 * the serial path.
 *
 * Determinism rests on three properties, all enforced here or audited
 * in the components this header names:
 *  - every run owns a fresh Machine (no shared mutable simulator
 *    state; the Rng, StatRegistry, and allocators are all per-machine);
 *  - shared traces are immutable (TraceCache hands out
 *    shared_ptr<const Trace>, synthesized exactly once per workload);
 *  - results land in a pre-sized slot vector indexed by task order, so
 *    the merge never observes scheduling order.
 *
 * A failing run raises SimError inside its worker and is captured
 * there (Experiment::tryRunOne); one task's failure never tears down
 * its siblings. Without keep-going, tasks *after* the earliest failure
 * are cancelled cooperatively — exactly the tasks the serial sweep
 * would never have started.
 *
 * With SweepOptions::store set, the engine becomes crash-safe and
 * resumable: every completed cell (success or captured failure) is
 * persisted through the content-addressed result store before the
 * merge, cache hits skip execution entirely (including trace
 * synthesis), and a re-run after a crash — or on another machine with
 * a merged store — reproduces the uninterrupted sweep's outcomes
 * byte-for-byte at any --jobs level.
 */

#ifndef MEMENTO_MACHINE_SWEEP_H
#define MEMENTO_MACHINE_SWEEP_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "machine/experiment.h"
#include "sim/config.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

namespace memento {

class ResultStore;

/**
 * Run @p fn(index) for every index in [0, n), fanned out over a
 * work-stealing pool of @p jobs worker threads (0 = hardware
 * concurrency; always capped at n). With one effective worker the
 * calls run inline on the calling thread in index order — the exact
 * serial semantics.
 *
 * This is the pool under SweepEngine, exposed for any embarrassingly
 * parallel index space (the static analyzer's `check all` uses it
 * directly). Each index runs exactly once. @p fn must not throw and
 * must be safe to call concurrently on distinct indices; writing
 * results into a pre-sized slot vector indexed by `index` keeps the
 * caller's merge deterministic at any worker count.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/** One unit of sweep work: a single workload run under one config. */
struct SweepTask
{
    WorkloadSpec spec;
    MachineConfig cfg;
    RunOptions opts;
    /**
     * Replay trace override (e.g. --trace FILE). When null, the
     * engine's TraceCache synthesizes the spec's trace on first touch
     * and shares it across every task of the same workload.
     */
    std::shared_ptr<const Trace> trace;
    /**
     * Extra salt folded into this task's result-store key, for sweeps
     * that deliberately run the same (workload, config) cell more than
     * once (e.g. the digest-determinism re-run) and need both cells
     * cached separately.
     */
    std::string cacheSalt;
};

/** Sweep-wide execution policy. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Keep running tasks after a failure (--keep-going). When false,
     * tasks ordered after the earliest failed task are cancelled
     * before they start, mirroring the serial early exit.
     */
    bool keepGoing = false;
    /**
     * Pool watchdog: applied to any task whose config does not arm its
     * own check.maxOps / check.maxCycles budget, so a single runaway
     * run times out with ErrorCategory::Timeout instead of stalling
     * its worker (and, transitively, the pool) forever. 0 = off.
     */
    std::uint64_t watchdogMaxOps = 0;
    Cycles watchdogMaxCycles = 0;
    /**
     * Progress callback fired as each task starts, serialized by an
     * internal mutex (safe to write to a stream from). May be null.
     */
    std::function<void(const SweepTask &, std::size_t index)> onTaskStart;
    /**
     * Crash-safe result cache (machine/result_store.h). When set, each
     * task first tries to load its cell; on a miss the computed
     * outcome — success *or* captured failure — is persisted before
     * the merge. Null disables caching. Not owned.
     */
    ResultStore *store = nullptr;
    /**
     * Extra attempts for a failed task (per-cell fault isolation). A
     * failure is retried up to this many times with a deterministic
     * exponential backoff; the last attempt's outcome is reported,
     * with the attempt count alongside. Cached failures are not
     * retried — their recorded attempt count already reflects the
     * retries spent computing them.
     */
    unsigned retries = 0;
    /**
     * Self-healing cache audit: recompute every cache hit whose key
     * falls in the 1-in-N sample (0 = off, 1 = every hit) and compare
     * against the stored result field-by-field. A mismatch quarantines
     * the stored record, persists the recomputed result, and reports
     * the cell failed with ErrorCategory::Corruption — loudly, because
     * a divergent cached result means the cache was lying.
     */
    unsigned revalidateEvery = 0;
    /**
     * Cooperative stop (e.g. a SIGINT flag). Tasks that have not
     * started when it becomes true are marked skipped; completed cells
     * are already durable in the store, so a later run resumes. Not
     * owned; may be null.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Outcome of one sweep task, in task order. */
struct SweepOutcome
{
    RunResult result;
    /**
     * Task was cancelled before starting (a lower-indexed task failed
     * and keep-going was off, or the sweep was stopped). The
     * deterministic merge never reports skipped tasks: it stops at the
     * failure that caused them.
     */
    bool skipped = false;
    /** Result was served from the result store, not recomputed. */
    bool fromCache = false;
    /** Attempts spent on this cell (1 = first try; retries add more). */
    unsigned attempts = 1;
};

/**
 * The pool. One engine instance per sweep; the embedded TraceCache
 * lives as long as the engine, so successive run() calls on one engine
 * reuse already-synthesized traces.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {}) : opts_(std::move(opts)) {}

    /**
     * Execute every task and return outcomes in task order. With
     * jobs == 1 the tasks run inline on the calling thread, in order —
     * the exact serial semantics; with jobs > 1 they are distributed
     * round-robin over per-worker deques, and an idle worker steals
     * from the back of a sibling's deque. Outcomes are identical
     * either way (bar scheduling of the cancellation race: a task the
     * serial path would have skipped may have run — it is still never
     * reported).
     */
    std::vector<SweepOutcome> run(const std::vector<SweepTask> &tasks);

    TraceCache &traceCache() { return cache_; }

    /** Effective worker count for this engine (resolves jobs == 0). */
    unsigned effectiveJobs() const;

  private:
    SweepOptions opts_;
    TraceCache cache_;
};

/** Per-workload outcome of a comparison sweep. */
struct ComparisonOutcome
{
    Comparison cmp;
    /**
     * First failure across the triple in (base, memento, no-bypass)
     * order — the same run the serial Experiment::compare() would have
     * thrown from. The cmp fields still hold the partial metrics of
     * every run that executed.
     */
    std::optional<RunError> error;
    /** Attempts spent on the failed run (1 when error is empty). */
    unsigned attempts = 1;
};

/**
 * Parallel Experiment::compare() over many workloads: each of the
 * three runs of each workload is its own sweep task, all sharing the
 * workload's cached trace. Outcomes are returned in @p specs order.
 */
std::vector<ComparisonOutcome>
compareSweep(const std::vector<WorkloadSpec> &specs,
             const MachineConfig &base_cfg,
             const MachineConfig &memento_cfg, RunOptions run_opts,
             SweepEngine &engine);

} // namespace memento

#endif // MEMENTO_MACHINE_SWEEP_H
