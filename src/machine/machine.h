/**
 * @file
 * The simulated machine: one core (Table 3) with its TLBs, cache
 * hierarchy, DRAM, OS model, optional Memento hardware, and one or more
 * processes. Implements Env, the interface through which software
 * models and hardware units retire instructions and touch memory.
 */

#ifndef MEMENTO_MACHINE_MACHINE_H
#define MEMENTO_MACHINE_MACHINE_H

#include <memory>
#include <vector>

#include "hw/bypass.h"
#include "hw/hot.h"
#include "hw/hw_object_allocator.h"
#include "hw/hw_page_allocator.h"
#include "hw/memento_allocator.h"
#include "mem/cache_hierarchy.h"
#include "mem/env.h"
#include "mem/page_walker.h"
#include "mem/tlb.h"
#include "os/buddy_allocator.h"
#include "os/kernel_cost.h"
#include "os/process.h"
#include "rt/allocator.h"
#include "sim/config.h"
#include "sim/cycles.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "sim/stats.h"
#include "wl/workloads.h"

namespace memento {

/**
 * The full-system model. `final` so that calls through a Machine
 * reference devirtualize — Env's charge/access methods run tens of
 * millions of times per workload replay.
 */
class Machine final : public Env
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ---- Env ----
    void chargeInstructions(InstCount n) override
    {
        instructions_ += n;
        const double cycles = static_cast<double>(n) / cfg_.core.baseIpc;
        ledger_.charge(static_cast<Cycles>(cycles + 0.5));
    }
    void chargeCycles(Cycles n) override { ledger_.charge(n); }
    Cycles accessVirtual(Addr vaddr, AccessType type) override;
    Cycles accessPhysical(Addr paddr, AccessType type,
                          AccessAttrs attrs = {}) override;
    Cycles installPhysical(Addr paddr) override;
    Cycles now() const override { return ledger_.total(); }
    CycleLedger &ledger() override { return ledger_; }
    void tlbInvalidate(Addr vaddr) override;

    // ---- Process management ----

    /**
     * Create a process running the runtime that @p spec's language
     * uses (or the Memento allocator when the machine has Memento).
     * The first created process becomes current.
     *
     * @return process index for switchTo().
     */
    unsigned createProcess(const WorkloadSpec &spec);

    /** Context switch to process @p index (charges kernel costs). */
    void switchTo(unsigned index);

    /** The current process's allocator. */
    Allocator &allocator()
    {
        panic_if(procs_.empty(), "no process created");
        return *procs_[current_].allocator;
    }

    /** The current process. */
    Process &process()
    {
        panic_if(procs_.empty(), "no process created");
        return *procs_[current_].process;
    }

    /** Number of created processes. */
    unsigned processCount() const
    {
        return static_cast<unsigned>(procs_.size());
    }

    /** Process @p index (validation sweeps every address space). */
    Process &processAt(unsigned index);

    /** Memento state of process @p index (null without Memento). */
    MementoSpace *mementoSpaceAt(unsigned index);

    /** Base of the current process's static working-set region. */
    Addr staticBase() const { return procs_[current_].staticBase; }

    // ---- Application-issued operations ----

    /**
     * Retire @p n application instructions (AppCompute category).
     */
    void appCompute(InstCount n);

    /**
     * Application load/store to @p vaddr. Translation cost is fully
     * exposed; hierarchy latency is partially hidden by the OOO window
     * (core.memLatencyHiddenFraction). Classified for main-memory
     * bypass when it falls in the Memento region.
     */
    void appAccess(Addr vaddr, AccessType type);

    // ---- Introspection ----
    const MachineConfig &config() const { return cfg_; }
    StatRegistry &stats() { return stats_; }
    const CycleLedger &cycleLedger() const { return ledger_; }
    CacheHierarchy &hierarchy() { return *hier_; }
    BuddyAllocator &buddy() { return *buddy_; }
    Hot *hot() { return hot_.get(); }
    HwObjectAllocator *hwObjectAllocator() { return hwObj_.get(); }
    HwPageAllocator *hwPageAllocator() { return hwPage_.get(); }
    BypassUnit *bypassUnit() { return bypass_.get(); }
    MementoSpace *mementoSpace();
    KernelCostModel &kernelCosts() { return kernelCosts_; }

    /** Total retired instructions (all categories). */
    std::uint64_t instructions() const { return instructions_.value(); }

  private:
    struct ProcContext
    {
        std::unique_ptr<Process> process;
        std::unique_ptr<MementoSpace> space; ///< Null without Memento.
        std::unique_ptr<Allocator> allocator;
        Addr staticBase = 0;
        std::uint64_t staticWsBytes = 0;
    };

    /** TLB fill + page walk + fault path; returns the physical addr. */
    Addr translate(Addr vaddr);
    /** Walk the Memento page table, populating on demand. */
    Addr mementoWalk(Addr vaddr);

    MachineConfig cfg_;
    StatRegistry stats_;
    CycleLedger ledger_;

    std::unique_ptr<CacheHierarchy> hier_;
    std::unique_ptr<Tlb> l1Tlb_;
    std::unique_ptr<Tlb> l2Tlb_;
    std::unique_ptr<PageWalker> walker_;
    std::unique_ptr<BuddyAllocator> buddy_;
    KernelCostModel kernelCosts_;

    // Memento hardware (null when disabled).
    std::unique_ptr<ArenaGeometry> geometry_;
    std::unique_ptr<Hot> hot_;
    std::unique_ptr<HwPageAllocator> hwPage_;
    std::unique_ptr<HwObjectAllocator> hwObj_;
    std::unique_ptr<BypassUnit> bypass_;

    std::vector<ProcContext> procs_;
    unsigned current_ = 0;
    int nextPid_ = 1;

    Counter instructions_;
    Counter appLoads_;
    Counter appStores_;
};

// ---- Hot-path inline definitions ----
//
// Translation and the application access paths run once per simulated
// memory reference; defining them here lets the TLB probes and the
// hierarchy access inline into one chain.

inline Addr
Machine::translate(Addr vaddr)
{
    // L1 TLB (entries may be 4 KiB or 2 MiB).
    chargeCycles(l1Tlb_->latency());
    if (auto paddr = l1Tlb_->translate(vaddr))
        return *paddr;

    // L2 TLB.
    chargeCycles(l2Tlb_->latency());
    if (auto paddr = l2Tlb_->translate(vaddr)) {
        // Refill the L1 at the same granularity the mapping has.
        ProcContext &p = procs_[current_];
        const bool is_huge = p.process->vm().lookupHuge(vaddr).has_value();
        l1Tlb_->insert(vaddr, *paddr - (vaddr & ((1ull << (is_huge ? kHugePageShift : kPageShift)) - 1)),
                       is_huge ? kHugePageShift : kPageShift);
        return *paddr;
    }

    // Page walk. The MMU compares against MRS/MRE to pick the table.
    ProcContext &proc = procs_[current_];
    Addr ppage = kNullAddr;
    const MementoRegs &regs = proc.process->mementoRegs();
    const bool in_region = cfg_.memento.enabled && vaddr >= regs.mrs &&
                           vaddr < regs.mre;
    if (in_region) {
        ppage = mementoWalk(vaddr);
    } else {
        VirtualMemory &vm = proc.process->vm();
        // A huge (PMD-level) mapping terminates the walk a level early.
        if (auto huge = vm.lookupHuge(vaddr)) {
            chargeCycles(3 * cfg_.l2.latency / 2); // 3-level walk approx.
            const Addr base = *huge - (vaddr & ((1ull << kHugePageShift) - 1));
            l1Tlb_->insert(vaddr, base, kHugePageShift);
            l2Tlb_->insert(vaddr, base, kHugePageShift);
            return *huge;
        }
        Cycles walk_latency = 0;
        WalkResult res =
            walker_->walk(vm.pageTable(), vaddr, now(), walk_latency);
        ledger_.charge(walk_latency);
        if (!res.valid) {
            // Demand fault, then the access retries the walk.
            sim_error_if(!vm.handleFault(vaddr, *this),
                         ErrorCategory::Trace,
                         "segfault at 0x", std::hex, vaddr);
            if (auto huge = vm.lookupHuge(vaddr)) {
                // The fault was satisfied with a huge page (THP).
                const Addr base =
                    *huge - (vaddr & ((1ull << kHugePageShift) - 1));
                l1Tlb_->insert(vaddr, base, kHugePageShift);
                l2Tlb_->insert(vaddr, base, kHugePageShift);
                return *huge;
            }
            walk_latency = 0;
            res = walker_->walk(vm.pageTable(), vaddr, now(),
                                walk_latency);
            ledger_.charge(walk_latency);
            panic_if(!res.valid, "walk invalid after fault");
        }
        ppage = res.ppage;
    }

    l1Tlb_->insert(vaddr, ppage);
    l2Tlb_->insert(vaddr, ppage);
    return ppage + (vaddr & (kPageSize - 1));
}

inline Cycles
Machine::accessVirtual(Addr vaddr, AccessType type)
{
    const Cycles before = ledger_.total();
    const Addr paddr = translate(vaddr);
    AccessResult res = hier_->access(paddr, type, now());
    // Stores retire from the store buffer wherever they occur —
    // allocator metadata updates and object zeroing included — so the
    // bulk of a write's hierarchy latency is hidden. Loads on these
    // paths are dependent pointer chases and stay fully exposed.
    Cycles charge = res.latency;
    if (type == AccessType::Write) {
        const double exposed =
            static_cast<double>(res.latency) *
            (1.0 - cfg_.core.storeLatencyHiddenFraction);
        charge = static_cast<Cycles>(exposed < 1.0 ? 1.0 : exposed);
    }
    ledger_.charge(charge);
    return ledger_.total() - before;
}

inline Cycles
Machine::accessPhysical(Addr paddr, AccessType type, AccessAttrs attrs)
{
    AccessResult res = hier_->access(paddr, type, now(), attrs);
    ledger_.charge(res.latency);
    return res.latency;
}

inline Cycles
Machine::installPhysical(Addr paddr)
{
    Cycles latency = hier_->installLine(paddr, now());
    ledger_.charge(latency);
    return latency;
}

inline void
Machine::appCompute(InstCount n)
{
    CategoryScope scope(ledger_, CycleCategory::AppCompute);
    chargeInstructions(n);
}

inline void
Machine::appAccess(Addr vaddr, AccessType type)
{
    CategoryScope scope(ledger_, CycleCategory::AppMemory);
    if (type == AccessType::Write)
        ++appStores_;
    else
        ++appLoads_;

    const Addr paddr = translate(vaddr);

    AccessAttrs attrs;
    if (bypass_ && procs_[current_].space &&
        geometry_->inRegion(vaddr)) {
        attrs.bypassCandidate =
            bypass_->onAccess(*procs_[current_].space, vaddr);
    }

    AccessResult res = hier_->access(paddr, type, now(), attrs);
    // The OOO window overlaps part of the hierarchy latency with
    // useful work; stores retire from the store buffer and almost
    // never stall, loads stall on the unhidden remainder.
    const double hidden = type == AccessType::Write
                              ? cfg_.core.storeLatencyHiddenFraction
                              : cfg_.core.memLatencyHiddenFraction;
    const double exposed =
        static_cast<double>(res.latency) * (1.0 - hidden);
    ledger_.charge(static_cast<Cycles>(exposed < 1.0 ? 1.0 : exposed));
}

} // namespace memento

#endif // MEMENTO_MACHINE_MACHINE_H
