/**
 * @file
 * The simulated machine: one core (Table 3) with its TLBs, cache
 * hierarchy, DRAM, OS model, optional Memento hardware, and one or more
 * processes. Implements Env, the interface through which software
 * models and hardware units retire instructions and touch memory.
 */

#ifndef MEMENTO_MACHINE_MACHINE_H
#define MEMENTO_MACHINE_MACHINE_H

#include <memory>
#include <vector>

#include "hw/bypass.h"
#include "hw/hot.h"
#include "hw/hw_object_allocator.h"
#include "hw/hw_page_allocator.h"
#include "hw/memento_allocator.h"
#include "mem/cache_hierarchy.h"
#include "mem/env.h"
#include "mem/page_walker.h"
#include "mem/tlb.h"
#include "os/buddy_allocator.h"
#include "os/kernel_cost.h"
#include "os/process.h"
#include "rt/allocator.h"
#include "sim/config.h"
#include "sim/cycles.h"
#include "sim/stats.h"
#include "wl/workloads.h"

namespace memento {

/** The full-system model. */
class Machine : public Env
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ---- Env ----
    void chargeInstructions(InstCount n) override;
    void chargeCycles(Cycles n) override;
    Cycles accessVirtual(Addr vaddr, AccessType type) override;
    Cycles accessPhysical(Addr paddr, AccessType type,
                          AccessAttrs attrs = {}) override;
    Cycles installPhysical(Addr paddr) override;
    Cycles now() const override { return ledger_.total(); }
    CycleLedger &ledger() override { return ledger_; }
    void tlbInvalidate(Addr vaddr) override;

    // ---- Process management ----

    /**
     * Create a process running the runtime that @p spec's language
     * uses (or the Memento allocator when the machine has Memento).
     * The first created process becomes current.
     *
     * @return process index for switchTo().
     */
    unsigned createProcess(const WorkloadSpec &spec);

    /** Context switch to process @p index (charges kernel costs). */
    void switchTo(unsigned index);

    /** The current process's allocator. */
    Allocator &allocator();

    /** The current process. */
    Process &process();

    /** Number of created processes. */
    unsigned processCount() const
    {
        return static_cast<unsigned>(procs_.size());
    }

    /** Process @p index (validation sweeps every address space). */
    Process &processAt(unsigned index);

    /** Memento state of process @p index (null without Memento). */
    MementoSpace *mementoSpaceAt(unsigned index);

    /** Base of the current process's static working-set region. */
    Addr staticBase() const;

    // ---- Application-issued operations ----

    /**
     * Retire @p n application instructions (AppCompute category).
     */
    void appCompute(InstCount n);

    /**
     * Application load/store to @p vaddr. Translation cost is fully
     * exposed; hierarchy latency is partially hidden by the OOO window
     * (core.memLatencyHiddenFraction). Classified for main-memory
     * bypass when it falls in the Memento region.
     */
    void appAccess(Addr vaddr, AccessType type);

    // ---- Introspection ----
    const MachineConfig &config() const { return cfg_; }
    StatRegistry &stats() { return stats_; }
    const CycleLedger &cycleLedger() const { return ledger_; }
    CacheHierarchy &hierarchy() { return *hier_; }
    BuddyAllocator &buddy() { return *buddy_; }
    Hot *hot() { return hot_.get(); }
    HwObjectAllocator *hwObjectAllocator() { return hwObj_.get(); }
    HwPageAllocator *hwPageAllocator() { return hwPage_.get(); }
    BypassUnit *bypassUnit() { return bypass_.get(); }
    MementoSpace *mementoSpace();
    KernelCostModel &kernelCosts() { return kernelCosts_; }

    /** Total retired instructions (all categories). */
    std::uint64_t instructions() const { return instructions_.value(); }

  private:
    struct ProcContext
    {
        std::unique_ptr<Process> process;
        std::unique_ptr<MementoSpace> space; ///< Null without Memento.
        std::unique_ptr<Allocator> allocator;
        Addr staticBase = 0;
        std::uint64_t staticWsBytes = 0;
    };

    /** TLB fill + page walk + fault path; returns the physical addr. */
    Addr translate(Addr vaddr);
    /** Walk the Memento page table, populating on demand. */
    Addr mementoWalk(Addr vaddr);

    MachineConfig cfg_;
    StatRegistry stats_;
    CycleLedger ledger_;

    std::unique_ptr<CacheHierarchy> hier_;
    std::unique_ptr<Tlb> l1Tlb_;
    std::unique_ptr<Tlb> l2Tlb_;
    std::unique_ptr<PageWalker> walker_;
    std::unique_ptr<BuddyAllocator> buddy_;
    KernelCostModel kernelCosts_;

    // Memento hardware (null when disabled).
    std::unique_ptr<ArenaGeometry> geometry_;
    std::unique_ptr<Hot> hot_;
    std::unique_ptr<HwPageAllocator> hwPage_;
    std::unique_ptr<HwObjectAllocator> hwObj_;
    std::unique_ptr<BypassUnit> bypass_;

    std::vector<ProcContext> procs_;
    unsigned current_ = 0;
    int nextPid_ = 1;

    Counter instructions_;
    Counter appLoads_;
    Counter appStores_;
};

} // namespace memento

#endif // MEMENTO_MACHINE_MACHINE_H
