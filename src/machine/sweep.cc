#include "machine/sweep.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "sim/error.h"
#include "sim/logging.h"

namespace memento {
namespace {

/**
 * One worker's task queue. The owner takes from the front (ascending
 * task index, which keeps cancellation checks cheap and early), a
 * thief takes from the back. A mutex per deque is plenty here: tasks
 * are whole simulator runs, so queue traffic is negligible next to
 * task execution and a lock-free Chase-Lev deque would buy nothing.
 */
class TaskDeque
{
  public:
    void
    push(std::size_t idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        dq_.push_back(idx);
    }

    bool
    popFront(std::size_t &idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dq_.empty())
            return false;
        idx = dq_.front();
        dq_.pop_front();
        return true;
    }

    bool
    popBack(std::size_t &idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dq_.empty())
            return false;
        idx = dq_.back();
        dq_.pop_back();
        return true;
    }

  private:
    std::mutex mu_;
    std::deque<std::size_t> dq_;
};

/** Lower @p target to @p idx if smaller (lock-free min). */
void
atomicMin(std::atomic<std::size_t> &target, std::size_t idx)
{
    std::size_t cur = target.load(std::memory_order_relaxed);
    while (idx < cur &&
           !target.compare_exchange_weak(cur, idx,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw != 0 ? hw : 1;
    }
    const std::size_t workers = std::min<std::size_t>(jobs, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Round-robin seeding spreads adjacent indices over different
    // workers (for sweeps: a workload's config variants overlap early,
    // so shared-trace first touches coincide).
    std::vector<TaskDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i)
        deques[i % workers].push(i);

    auto worker_loop = [&](std::size_t me) {
        std::size_t idx;
        for (;;) {
            if (deques[me].popFront(idx)) {
                fn(idx);
                continue;
            }
            bool stole = false;
            for (std::size_t off = 1; off < workers && !stole; ++off)
                stole = deques[(me + off) % workers].popBack(idx);
            if (!stole)
                return; // All deques drained; no tasks are ever added.
            fn(idx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker_loop, w);
    for (std::thread &t : pool)
        t.join();
}

unsigned
SweepEngine::effectiveJobs() const
{
    if (opts_.jobs != 0)
        return opts_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<SweepOutcome>
SweepEngine::run(const std::vector<SweepTask> &tasks)
{
    std::vector<SweepOutcome> outcomes(tasks.size());

    // No failure yet: every index compares below the sentinel.
    std::atomic<std::size_t> first_failure{tasks.size()};
    std::mutex start_cb_mu;

    auto run_task = [&](std::size_t idx) {
        const SweepTask &task = tasks[idx];
        SweepOutcome &out = outcomes[idx];
        out.result.workload = task.spec.id;

        // Serial semantics: without keep-going, the serial sweep never
        // starts a task ordered after a failure. A concurrent sibling
        // may already have run — the merge stops before reporting it.
        if (!opts_.keepGoing &&
            idx > first_failure.load(std::memory_order_relaxed)) {
            out.skipped = true;
            return;
        }

        if (opts_.onTaskStart) {
            std::lock_guard<std::mutex> lock(start_cb_mu);
            opts_.onTaskStart(task, idx);
        }

        MachineConfig cfg = task.cfg;
        if (opts_.watchdogMaxOps != 0 && cfg.check.maxOps == 0)
            cfg.check.maxOps = opts_.watchdogMaxOps;
        if (opts_.watchdogMaxCycles != 0 && cfg.check.maxCycles == 0)
            cfg.check.maxCycles = opts_.watchdogMaxCycles;

        try {
            std::shared_ptr<const Trace> trace =
                task.trace ? task.trace : cache_.get(task.spec);
            out.result =
                Experiment::tryRunOne(task.spec, *trace, cfg, task.opts);
        } catch (const SimError &e) {
            // tryRunOne already captures SimError; this arm only
            // catches set-up failures outside it (trace synthesis).
            out.result.error =
                RunError{e.category(), e.what(), e.opIndex()};
        } catch (const std::exception &e) {
            // Anything unexpected must not escape the worker thread
            // (std::terminate would tear the whole sweep down).
            out.result.error =
                RunError{ErrorCategory::Internal,
                         std::string("worker: ") + e.what(),
                         SimError::kNoOpIndex};
        }

        if (out.result.failed() && !opts_.keepGoing)
            atomicMin(first_failure, idx);
    };

    parallelFor(tasks.size(), effectiveJobs(), run_task);
    return outcomes;
}

std::vector<ComparisonOutcome>
compareSweep(const std::vector<WorkloadSpec> &specs,
             const MachineConfig &base_cfg,
             const MachineConfig &memento_cfg, RunOptions run_opts,
             SweepEngine &engine)
{
    panic_if(base_cfg.memento.enabled, "compareSweep: base has Memento on");
    panic_if(!memento_cfg.memento.enabled,
             "compareSweep: memento config has Memento off");

    MachineConfig no_bypass_cfg = memento_cfg;
    no_bypass_cfg.memento.bypassEnabled = false;

    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size() * 3);
    for (const WorkloadSpec &spec : specs) {
        tasks.push_back({spec, base_cfg, run_opts, nullptr});
        tasks.push_back({spec, memento_cfg, run_opts, nullptr});
        tasks.push_back({spec, no_bypass_cfg, run_opts, nullptr});
    }

    const std::vector<SweepOutcome> outcomes = engine.run(tasks);

    std::vector<ComparisonOutcome> result(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ComparisonOutcome &out = result[i];
        out.cmp.spec = specs[i];
        out.cmp.base = outcomes[3 * i].result;
        out.cmp.memento = outcomes[3 * i + 1].result;
        out.cmp.mementoNoBypass = outcomes[3 * i + 2].result;
        // Report the failure the serial compare() would have thrown:
        // the first failed run in triple order.
        for (const RunResult *run :
             {&out.cmp.base, &out.cmp.memento, &out.cmp.mementoNoBypass}) {
            if (run->failed()) {
                out.error = run->error;
                break;
            }
        }
    }
    return result;
}

} // namespace memento
