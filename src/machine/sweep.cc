#include "machine/sweep.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "machine/result_store.h"
#include "sim/thread_annotations.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace memento {
namespace {

/**
 * One worker's task queue. The owner takes from the front (ascending
 * task index, which keeps cancellation checks cheap and early), a
 * thief takes from the back. A mutex per deque is plenty here: tasks
 * are whole simulator runs, so queue traffic is negligible next to
 * task execution and a lock-free Chase-Lev deque would buy nothing.
 */
class TaskDeque
{
  public:
    void
    push(std::size_t idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        dq_.push_back(idx);
    }

    bool
    popFront(std::size_t &idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dq_.empty())
            return false;
        idx = dq_.front();
        dq_.pop_front();
        return true;
    }

    bool
    popBack(std::size_t &idx)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dq_.empty())
            return false;
        idx = dq_.back();
        dq_.pop_back();
        return true;
    }

  private:
    std::mutex mu_;
    std::deque<std::size_t> dq_ MEMENTO_GUARDED_BY(mu_);
};

/** Lower @p target to @p idx if smaller (lock-free min). */
void
atomicMin(std::atomic<std::size_t> &target, std::size_t idx)
{
    std::size_t cur = target.load(std::memory_order_relaxed);
    while (idx < cur &&
           !target.compare_exchange_weak(cur, idx,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw != 0 ? hw : 1;
    }
    const std::size_t workers = std::min<std::size_t>(jobs, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Round-robin seeding spreads adjacent indices over different
    // workers (for sweeps: a workload's config variants overlap early,
    // so shared-trace first touches coincide).
    std::vector<TaskDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i)
        deques[i % workers].push(i);

    auto worker_loop = [&](std::size_t me) {
        std::size_t idx;
        for (;;) {
            if (deques[me].popFront(idx)) {
                fn(idx);
                continue;
            }
            bool stole = false;
            for (std::size_t off = 1; off < workers && !stole; ++off)
                stole = deques[(me + off) % workers].popBack(idx);
            if (!stole)
                return; // All deques drained; no tasks are ever added.
            fn(idx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker_loop, w);
    for (std::thread &t : pool)
        t.join();
}

unsigned
SweepEngine::effectiveJobs() const
{
    if (opts_.jobs != 0)
        return opts_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<SweepOutcome>
SweepEngine::run(const std::vector<SweepTask> &tasks)
{
    std::vector<SweepOutcome> outcomes(tasks.size());

    // No failure yet: every index compares below the sentinel.
    std::atomic<std::size_t> first_failure{tasks.size()};
    std::mutex start_cb_mu;

    auto run_task = [&](std::size_t idx) {
        const SweepTask &task = tasks[idx];
        SweepOutcome &out = outcomes[idx];
        out.result.workload = task.spec.id;

        // Cooperative stop (SIGINT): completed cells are already
        // durable; everything not yet started resumes next run.
        if (opts_.stopFlag != nullptr &&
            opts_.stopFlag->load(std::memory_order_relaxed)) {
            out.skipped = true;
            return;
        }

        // Serial semantics: without keep-going, the serial sweep never
        // starts a task ordered after a failure. A concurrent sibling
        // may already have run — the merge stops before reporting it.
        if (!opts_.keepGoing &&
            idx > first_failure.load(std::memory_order_relaxed)) {
            out.skipped = true;
            return;
        }

        if (opts_.onTaskStart) {
            std::lock_guard<std::mutex> lock(start_cb_mu);
            opts_.onTaskStart(task, idx);
        }

        MachineConfig cfg = task.cfg;
        if (opts_.watchdogMaxOps != 0 && cfg.check.maxOps == 0)
            cfg.check.maxOps = opts_.watchdogMaxOps;
        if (opts_.watchdogMaxCycles != 0 && cfg.check.maxCycles == 0)
            cfg.check.maxCycles = opts_.watchdogMaxCycles;

        // One attempt: run the cell, capturing any failure in-result.
        auto execute_once = [&]() -> RunResult {
            RunResult result;
            result.workload = task.spec.id;
            try {
                std::shared_ptr<const Trace> trace =
                    task.trace ? task.trace : cache_.get(task.spec);
                return Experiment::tryRunOne(task.spec, *trace, cfg,
                                             task.opts);
            } catch (const SimError &e) {
                // tryRunOne already captures SimError; this arm only
                // catches set-up failures outside it (trace synthesis).
                result.error =
                    RunError{e.category(), e.what(), e.opIndex()};
            } catch (const std::exception &e) {
                // Anything unexpected must not escape the worker thread
                // (std::terminate would tear the whole sweep down).
                result.error =
                    RunError{ErrorCategory::Internal,
                             std::string("worker: ") + e.what(),
                             SimError::kNoOpIndex};
            }
            return result;
        };

        // The cell's content address, derived from the *effective*
        // config (after watchdog defaulting) so a cell never aliases
        // across different effective watchdog budgets.
        CellKey key;
        if (opts_.store != nullptr && task.trace == nullptr) {
            key = opts_.store->runCellKey(task.spec.id, cfg, task.opts,
                                          task.cacheSalt);
            RunResult cached;
            unsigned cached_attempts = 1;
            if (opts_.store->loadRun(key, cached, cached_attempts)) {
                if (opts_.store->inRevalidateSample(
                        key, opts_.revalidateEvery)) {
                    const RunResult recomputed = execute_once();
                    if (recomputed == cached) {
                        opts_.store->noteRevalidated();
                    } else {
                        // The cache lied. Heal the store (quarantine
                        // the bad record, persist the recomputed one)
                        // and fail the cell loudly.
                        opts_.store->quarantine(key);
                        opts_.store->storeRun(key, recomputed, 1);
                        out.result = recomputed;
                        out.result.error = RunError{
                            ErrorCategory::Corruption,
                            "revalidate: cached result for cell " +
                                key.hex() +
                                " diverges from recomputation (record "
                                "quarantined, store healed)",
                            SimError::kNoOpIndex};
                        if (!opts_.keepGoing)
                            atomicMin(first_failure, idx);
                        return;
                    }
                }
                out.result = std::move(cached);
                out.attempts = cached_attempts;
                out.fromCache = true;
                if (out.result.failed() && !opts_.keepGoing)
                    atomicMin(first_failure, idx);
                return;
            }
        }

        // Per-cell fault isolation: a failed attempt is retried with a
        // deterministic exponential backoff before the cell is given
        // up on. The backoff is real time, but the *outcome* is pure
        // function of the attempt count, so reports stay byte-stable.
        unsigned attempt = 0;
        for (;;) {
            ++attempt;
            out.result = execute_once();
            if (!out.result.failed() || attempt > opts_.retries)
                break;
            if (opts_.stopFlag != nullptr &&
                opts_.stopFlag->load(std::memory_order_relaxed))
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                5ull << std::min(attempt, 4u)));
        }
        out.attempts = attempt;

        if (opts_.store != nullptr && task.trace == nullptr)
            opts_.store->storeRun(key, out.result, out.attempts);

        if (out.result.failed() && !opts_.keepGoing)
            atomicMin(first_failure, idx);
    };

    parallelFor(tasks.size(), effectiveJobs(), run_task);
    return outcomes;
}

std::vector<ComparisonOutcome>
compareSweep(const std::vector<WorkloadSpec> &specs,
             const MachineConfig &base_cfg,
             const MachineConfig &memento_cfg, RunOptions run_opts,
             SweepEngine &engine)
{
    panic_if(base_cfg.memento.enabled, "compareSweep: base has Memento on");
    panic_if(!memento_cfg.memento.enabled,
             "compareSweep: memento config has Memento off");

    MachineConfig no_bypass_cfg = memento_cfg;
    no_bypass_cfg.memento.bypassEnabled = false;

    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size() * 3);
    for (const WorkloadSpec &spec : specs) {
        tasks.push_back({spec, base_cfg, run_opts, nullptr, {}});
        tasks.push_back({spec, memento_cfg, run_opts, nullptr, {}});
        tasks.push_back({spec, no_bypass_cfg, run_opts, nullptr, {}});
    }

    const std::vector<SweepOutcome> outcomes = engine.run(tasks);

    std::vector<ComparisonOutcome> result(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ComparisonOutcome &out = result[i];
        out.cmp.spec = specs[i];
        out.cmp.base = outcomes[3 * i].result;
        out.cmp.memento = outcomes[3 * i + 1].result;
        out.cmp.mementoNoBypass = outcomes[3 * i + 2].result;
        // Report the failure the serial compare() would have thrown:
        // the first failed run in triple order, with the attempt count
        // spent on that run (the --keep-going failure report shows it).
        for (std::size_t j = 0; j < 3; ++j) {
            const RunResult &run =
                j == 0   ? out.cmp.base
                : j == 1 ? out.cmp.memento
                         : out.cmp.mementoNoBypass;
            if (run.failed()) {
                out.error = run.error;
                out.attempts = outcomes[3 * i + j].attempts;
                break;
            }
        }
    }
    return result;
}

} // namespace memento
