/**
 * @file
 * Fig. 9 attribution: where Memento's saved cycles come from.
 *
 * Saved cycles are computed per mechanism from paired category totals:
 * obj-alloc and obj-free gains are the software allocation/free cycles
 * minus what the hardware paths cost; page-management gains are the
 * kernel memory-management cycles minus the hardware page allocator's
 * cost; the bypass gain is isolated with a bypass-disabled Memento run.
 */

#ifndef MEMENTO_MACHINE_BREAKDOWN_H
#define MEMENTO_MACHINE_BREAKDOWN_H

#include "machine/experiment.h"

namespace memento {

/** Shares of the total saved cycles per mechanism (sum to 1). */
struct Breakdown
{
    double objAlloc = 0.0;
    double objFree = 0.0;
    double pageMgmt = 0.0;
    double bypass = 0.0;

    /** Total cycles saved by Memento over the baseline. */
    Cycles savedCycles = 0;
};

/** Compute the attribution for one workload's comparison. */
Breakdown computeBreakdown(const Comparison &cmp);

} // namespace memento

#endif // MEMENTO_MACHINE_BREAKDOWN_H
