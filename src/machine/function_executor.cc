#include "machine/function_executor.h"

#include <string>

#include "sim/error.h"
#include "sim/logging.h"
#include "val/invariants.h"

namespace memento {

void
FunctionExecutor::chargeRpc(const WorkloadSpec &spec)
{
    if (spec.rpcBytes == 0)
        return;
    // The paper measures RPC costs of hundreds of microseconds per
    // function; model a fixed software cost plus a per-byte component.
    CategoryScope scope(machine_.ledger(), CycleCategory::Rpc);
    machine_.chargeCycles(120'000 + spec.rpcBytes / 4);
}

void
FunctionExecutor::execute(const WorkloadSpec &spec, const TraceOp &op)
{
    Allocator &alloc = machine_.allocator();
    const Addr static_base = machine_.staticBase();

    switch (op.kind) {
      case OpKind::Compute:
        machine_.appCompute(op.value);
        break;
      case OpKind::StaticLoad:
        machine_.appAccess(static_base + op.offset % spec.staticWsBytes,
                           AccessType::Read);
        break;
      case OpKind::StaticStore:
        machine_.appAccess(static_base + op.offset % spec.staticWsBytes,
                           AccessType::Write);
        break;
      case OpKind::Malloc: {
        Addr addr = alloc.malloc(op.value, machine_);
        if (op.objId < kDenseIdLimit) {
            if (op.objId >= dense_.size())
                dense_.resize(op.objId + 1);
            ObjectInfo &slot = dense_[op.objId];
            sim_error_if(slot.live, ErrorCategory::Trace,
                         "trace: duplicate object id ", op.objId);
            slot.addr = addr;
            slot.size = op.value;
            slot.live = true;
        } else {
            auto [it, inserted] = sparse_.emplace(
                op.objId, ObjectInfo{addr, op.value, true});
            (void)it;
            sim_error_if(!inserted, ErrorCategory::Trace,
                         "trace: duplicate object id ", op.objId);
        }
        ++liveCount_;
        if (++opsSinceFragSample_ >= 4096) {
            opsSinceFragSample_ = 0;
            const std::uint64_t live = alloc.liveBytes();
            if (live >= fragMaxLive_) {
                fragMaxLive_ = live;
                fragSample_ = alloc.inactiveSlotFraction();
            }
        }
        break;
      }
      case OpKind::Free: {
        if (op.objId < dense_.size() && dense_[op.objId].live) {
            ObjectInfo &slot = dense_[op.objId];
            slot.live = false;
            --liveCount_;
            alloc.free(slot.addr, machine_);
            break;
        }
        auto it = sparse_.find(op.objId);
        sim_error_if(it == sparse_.end(), ErrorCategory::Trace,
                     "trace: free of unknown object ", op.objId);
        alloc.free(it->second.addr, machine_);
        sparse_.erase(it);
        --liveCount_;
        break;
      }
      case OpKind::Load:
      case OpKind::Store: {
        const ObjectInfo *info;
        if (op.objId < dense_.size() && dense_[op.objId].live) {
            info = &dense_[op.objId];
        } else {
            auto it = sparse_.find(op.objId);
            sim_error_if(it == sparse_.end(), ErrorCategory::Trace,
                         "trace: access to unknown object ", op.objId);
            info = &it->second;
        }
        sim_error_if(op.offset >= info->size, ErrorCategory::Trace,
                     "trace: access past object end");
        machine_.appAccess(info->addr + op.offset,
                           op.kind == OpKind::Store ? AccessType::Write
                                                    : AccessType::Read);
        break;
      }
      case OpKind::FunctionEnd:
        if (fragMaxLive_ == 0) {
            // Short trace: sample once before teardown.
            fragSample_ = alloc.inactiveSlotFraction();
        }
        alloc.functionExit(machine_);
        dense_.clear();
        sparse_.clear();
        liveCount_ = 0;
        break;
    }
}

void
FunctionExecutor::flipArenaBit()
{
    MementoSpace *space = machine_.mementoSpace();
    if (!space || space->arenas.empty())
        return;
    // Deterministic victim: the lowest-addressed live arena, found by
    // a full min-scan, so the traversal order is provably irrelevant.
    // Flipping slot 0 desynchronises the bitmap from the allocated
    // count either way the bit goes, so the checker always sees it.
    auto victim =
        space->arenas.begin(); // lint-src: allow(src-unordered-iteration)
    for (auto it =
             space->arenas.begin(); // lint-src: allow(src-unordered-iteration)
         it != space->arenas.end(); ++it) {
        if (it->first < victim->first)
            victim = it;
    }
    victim->second.bitmap.flip(0);
}

void
FunctionExecutor::run(const WorkloadSpec &spec, const Trace &trace,
                      RunOptions opts)
{
    const MachineConfig &cfg = machine_.config();
    const CheckConfig &check = cfg.check;
    const bool faulted = cfg.inject.appliesTo(spec.id);

    if (opts.coldStart)
        machine_.kernelCosts().chargeContainerSetup(machine_);
    if (opts.chargeRpc)
        chargeRpc(spec); // Fetch inputs.

    // A truncated trace stops before its FunctionEnd record.
    std::size_t limit = trace.size();
    bool truncated = false;
    if (faulted && cfg.inject.traceTruncateAt != 0 &&
        cfg.inject.traceTruncateAt < trace.size()) {
        limit = cfg.inject.traceTruncateAt;
        truncated = true;
    }

    // Hot path: no fault plan and no watchdog/invariant checks armed.
    // The per-op budget tests and the op-copy for corruption are all
    // invariant over the run, so hoist them out entirely and replay in
    // one tight loop. Error tagging is preserved by catching outside
    // the loop with the op index still in scope.
    if (!faulted && check.maxOps == 0 && check.maxCycles == 0 &&
        check.interval == 0) {
        std::size_t i = 0;
        try {
            for (; i < limit; ++i)
                execute(spec, trace[i]);
        } catch (SimError &e) {
            e.tagOpIndex(i);
            throw;
        }
        sim_error_if(truncated, ErrorCategory::Trace,
                     "trace truncated at op ", limit,
                     " (missing FunctionEnd)");
        if (opts.chargeRpc)
            chargeRpc(spec); // Store results.
        return;
    }

    for (std::size_t i = 0; i < limit; ++i) {
        TraceOp op = trace[i];
        if (faulted && cfg.inject.traceCorruptAt == i + 1) {
            // A corrupt record frees an object that never existed.
            op.kind = OpKind::Free;
            op.objId |= 1ull << 62;
        }
        try {
            sim_error_if(check.maxOps != 0 && i >= check.maxOps,
                         ErrorCategory::Timeout, "watchdog: op budget (",
                         check.maxOps, ") exceeded");
            sim_error_if(check.maxCycles != 0 &&
                             machine_.now() > check.maxCycles,
                         ErrorCategory::Timeout,
                         "watchdog: cycle budget (", check.maxCycles,
                         ") exceeded at cycle ", machine_.now());
            execute(spec, op);
            if (faulted && cfg.inject.arenaBitFlipAt == i + 1)
                flipArenaBit();
            if (check.interval != 0 && (i + 1) % check.interval == 0)
                InvariantChecker::enforce(machine_,
                                          "op " + std::to_string(i));
        } catch (SimError &e) {
            e.tagOpIndex(i);
            throw;
        }
    }
    sim_error_if(truncated, ErrorCategory::Trace,
                 "trace truncated at op ", limit,
                 " (missing FunctionEnd)");

    if (check.interval != 0)
        InvariantChecker::enforce(machine_, "end of run");

    if (opts.chargeRpc)
        chargeRpc(spec); // Store results.
}

void
FunctionExecutor::runRange(const WorkloadSpec &spec, const Trace &trace,
                           std::size_t from, std::size_t to)
{
    panic_if(to > trace.size() || from > to, "runRange: bad range");
    for (std::size_t i = from; i < to; ++i)
        execute(spec, trace[i]);
}

} // namespace memento
