#include "machine/function_executor.h"

#include "sim/logging.h"

namespace memento {

void
FunctionExecutor::chargeRpc(const WorkloadSpec &spec)
{
    if (spec.rpcBytes == 0)
        return;
    // The paper measures RPC costs of hundreds of microseconds per
    // function; model a fixed software cost plus a per-byte component.
    CategoryScope scope(machine_.ledger(), CycleCategory::Rpc);
    machine_.chargeCycles(120'000 + spec.rpcBytes / 4);
}

void
FunctionExecutor::execute(const WorkloadSpec &spec, const TraceOp &op)
{
    Allocator &alloc = machine_.allocator();
    const Addr static_base = machine_.staticBase();

    switch (op.kind) {
      case OpKind::Compute:
        machine_.appCompute(op.value);
        break;
      case OpKind::StaticLoad:
        machine_.appAccess(static_base + op.offset % spec.staticWsBytes,
                           AccessType::Read);
        break;
      case OpKind::StaticStore:
        machine_.appAccess(static_base + op.offset % spec.staticWsBytes,
                           AccessType::Write);
        break;
      case OpKind::Malloc: {
        Addr addr = alloc.malloc(op.value, machine_);
        auto [it, inserted] =
            objects_.emplace(op.objId, ObjectInfo{addr, op.value});
        (void)it;
        panic_if(!inserted, "trace: duplicate object id ", op.objId);
        if (++opsSinceFragSample_ >= 4096) {
            opsSinceFragSample_ = 0;
            const std::uint64_t live = alloc.liveBytes();
            if (live >= fragMaxLive_) {
                fragMaxLive_ = live;
                fragSample_ = alloc.inactiveSlotFraction();
            }
        }
        break;
      }
      case OpKind::Free: {
        auto it = objects_.find(op.objId);
        panic_if(it == objects_.end(), "trace: free of unknown object ",
                 op.objId);
        alloc.free(it->second.addr, machine_);
        objects_.erase(it);
        break;
      }
      case OpKind::Load:
      case OpKind::Store: {
        auto it = objects_.find(op.objId);
        panic_if(it == objects_.end(),
                 "trace: access to unknown object ", op.objId);
        panic_if(op.offset >= it->second.size,
                 "trace: access past object end");
        machine_.appAccess(it->second.addr + op.offset,
                           op.kind == OpKind::Store ? AccessType::Write
                                                    : AccessType::Read);
        break;
      }
      case OpKind::FunctionEnd:
        if (fragMaxLive_ == 0) {
            // Short trace: sample once before teardown.
            fragSample_ = alloc.inactiveSlotFraction();
        }
        alloc.functionExit(machine_);
        objects_.clear();
        break;
    }
}

void
FunctionExecutor::run(const WorkloadSpec &spec, const Trace &trace,
                      RunOptions opts)
{
    if (opts.coldStart)
        machine_.kernelCosts().chargeContainerSetup(machine_);
    if (opts.chargeRpc)
        chargeRpc(spec); // Fetch inputs.

    for (const TraceOp &op : trace)
        execute(spec, op);

    if (opts.chargeRpc)
        chargeRpc(spec); // Store results.
}

void
FunctionExecutor::runRange(const WorkloadSpec &spec, const Trace &trace,
                           std::size_t from, std::size_t to)
{
    panic_if(to > trace.size() || from > to, "runRange: bad range");
    for (std::size_t i = from; i < to; ++i)
        execute(spec, trace[i]);
}

} // namespace memento
