#include "machine/result_store.h"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <sstream>

#include <unistd.h>
#include <fcntl.h>

#include "sim/atomic_io.h"
#include "sim/config_canon.h"
#include "sim/error.h"
#include "sim/json.h"
#include "val/digest.h"

namespace memento {
namespace {

namespace fs = std::filesystem;

std::uint64_t
checksumOf(std::string_view payload)
{
    DigestBuilder d;
    d.add(payload);
    return d.value();
}

std::string
headerLine(std::string_view cell_kind, std::string_view key_hex,
           std::size_t payload_bytes, std::uint64_t checksum)
{
    std::ostringstream os;
    os << "{\"schema_version\": " << kJsonSchemaVersion
       << ", \"kind\": \"result-cell\", \"cell_kind\": \""
       << jsonEscape(cell_kind) << "\", \"key\": \"" << key_hex
       << "\", \"payload_bytes\": " << payload_bytes
       << ", \"checksum\": \"" << digestToHex(checksum) << "\"}";
    return os.str();
}

/**
 * Validate one record's bytes. Fills @p cell_kind and @p payload (a
 * view into @p record) on success. @p expect_key_hex restricts the
 * header's key ("" accepts any).
 */
bool
validateRecord(const std::string &record, std::string_view expect_key_hex,
               std::string &cell_kind, std::string_view &payload)
{
    const std::size_t nl = record.find('\n');
    if (nl == std::string::npos)
        return false;

    JsonValue header;
    std::string err;
    if (!parseJson(std::string_view(record).substr(0, nl), header, err) ||
        !header.isObject())
        return false;

    const JsonValue *version = header.find("schema_version");
    const JsonValue *kind = header.find("kind");
    const JsonValue *ckind = header.find("cell_kind");
    const JsonValue *key = header.find("key");
    const JsonValue *bytes = header.find("payload_bytes");
    const JsonValue *checksum = header.find("checksum");
    if (version == nullptr || !version->isNumber() || !version->isInteger ||
        version->u64 != kJsonSchemaVersion)
        return false;
    if (kind == nullptr || !kind->isString() || kind->str != "result-cell")
        return false;
    if (ckind == nullptr || !ckind->isString())
        return false;
    if (key == nullptr || !key->isString())
        return false;
    if (!expect_key_hex.empty() && key->str != expect_key_hex)
        return false;
    if (bytes == nullptr || !bytes->isNumber() || !bytes->isInteger)
        return false;
    if (checksum == nullptr || !checksum->isString())
        return false;

    const std::string_view body = std::string_view(record).substr(nl + 1);
    if (body.size() != bytes->u64)
        return false;
    if (digestToHex(checksumOf(body)) != checksum->str)
        return false;

    cell_kind = ckind->str;
    payload = body;
    return true;
}

// ---- RunResult payload (de)serialization -----------------------------

/** Doubles travel as exact bit patterns: cache hits must be bit-true. */
std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
bitsToDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

bool
getU64(const JsonValue &obj, std::string_view name, std::uint64_t &out)
{
    const JsonValue *v = obj.find(name);
    if (v == nullptr || !v->isNumber() || !v->isInteger)
        return false;
    out = v->u64;
    return true;
}

bool
getString(const JsonValue &obj, std::string_view name, std::string &out)
{
    const JsonValue *v = obj.find(name);
    if (v == nullptr || !v->isString())
        return false;
    out = v->str;
    return true;
}

std::string
runPayload(const RunResult &r, unsigned attempts)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("workload", std::string_view(r.workload));
    w.member("cycles", r.cycles);
    w.key("by_category").beginArray();
    for (const Cycles c : r.byCategory)
        w.value(c);
    w.endArray();
    w.member("instructions", r.instructions);
    w.member("dram_bytes", r.dramBytes);
    w.member("dram_reads", r.dramReads);
    w.member("dram_writes", r.dramWrites);
    w.member("bypassed_lines", r.bypassedLines);
    w.member("agg_user_pages", r.aggUserPages);
    w.member("agg_kernel_pages", r.aggKernelPages);
    w.member("peak_resident_pages", r.peakResidentPages);
    w.member("page_faults", r.pageFaults);
    w.member("mmap_calls", r.mmapCalls);
    w.member("pool_refills", r.poolRefills);
    w.member("hot_alloc_hits", r.hotAllocHits);
    w.member("hot_alloc_misses", r.hotAllocMisses);
    w.member("hot_free_hits", r.hotFreeHits);
    w.member("hot_free_misses", r.hotFreeMisses);
    w.member("alloc_list_ops", r.allocListOps);
    w.member("free_list_ops", r.freeListOps);
    w.member("obj_allocs", r.objAllocs);
    w.member("obj_frees", r.objFrees);
    w.member("hot_valid_entries", r.hotValidEntries);
    w.member("frag_inactive_bits", doubleBits(r.fragInactiveFraction));
    if (r.error.has_value()) {
        w.key("error").beginObject();
        w.member("category", errorCategoryName(r.error->category));
        w.member("message", std::string_view(r.error->message));
        w.member("op_index", r.error->opIndex);
        w.endObject();
    } else {
        w.key("error").valueNull();
    }
    w.member("digest", r.digest);
    w.member("attempts", static_cast<std::uint64_t>(attempts));
    w.endObject();
    return os.str();
}

bool
parseRunPayload(std::string_view payload, RunResult &r, unsigned &attempts)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(payload, doc, err) || !doc.isObject())
        return false;

    if (!getString(doc, "workload", r.workload))
        return false;
    if (!getU64(doc, "cycles", r.cycles))
        return false;

    const JsonValue *cats = doc.find("by_category");
    if (cats == nullptr || !cats->isArray() ||
        cats->items.size() != r.byCategory.size())
        return false;
    for (std::size_t i = 0; i < r.byCategory.size(); ++i) {
        const JsonValue &c = cats->items[i];
        if (!c.isNumber() || !c.isInteger)
            return false;
        r.byCategory[i] = c.u64;
    }

    std::uint64_t frag_bits = 0;
    if (!getU64(doc, "instructions", r.instructions) ||
        !getU64(doc, "dram_bytes", r.dramBytes) ||
        !getU64(doc, "dram_reads", r.dramReads) ||
        !getU64(doc, "dram_writes", r.dramWrites) ||
        !getU64(doc, "bypassed_lines", r.bypassedLines) ||
        !getU64(doc, "agg_user_pages", r.aggUserPages) ||
        !getU64(doc, "agg_kernel_pages", r.aggKernelPages) ||
        !getU64(doc, "peak_resident_pages", r.peakResidentPages) ||
        !getU64(doc, "page_faults", r.pageFaults) ||
        !getU64(doc, "mmap_calls", r.mmapCalls) ||
        !getU64(doc, "pool_refills", r.poolRefills) ||
        !getU64(doc, "hot_alloc_hits", r.hotAllocHits) ||
        !getU64(doc, "hot_alloc_misses", r.hotAllocMisses) ||
        !getU64(doc, "hot_free_hits", r.hotFreeHits) ||
        !getU64(doc, "hot_free_misses", r.hotFreeMisses) ||
        !getU64(doc, "alloc_list_ops", r.allocListOps) ||
        !getU64(doc, "free_list_ops", r.freeListOps) ||
        !getU64(doc, "obj_allocs", r.objAllocs) ||
        !getU64(doc, "obj_frees", r.objFrees) ||
        !getU64(doc, "hot_valid_entries", r.hotValidEntries) ||
        !getU64(doc, "frag_inactive_bits", frag_bits) ||
        !getU64(doc, "digest", r.digest))
        return false;
    r.fragInactiveFraction = bitsToDouble(frag_bits);

    const JsonValue *error = doc.find("error");
    if (error == nullptr)
        return false;
    if (error->type == JsonValue::Type::Null) {
        r.error.reset();
    } else if (error->isObject()) {
        RunError re;
        std::string category;
        if (!getString(*error, "category", category) ||
            !errorCategoryFromName(category, re.category) ||
            !getString(*error, "message", re.message) ||
            !getU64(*error, "op_index", re.opIndex))
            return false;
        r.error = std::move(re);
    } else {
        return false;
    }

    std::uint64_t attempts64 = 0;
    if (!getU64(doc, "attempts", attempts64) || attempts64 == 0 ||
        attempts64 > 1u << 20)
        return false;
    attempts = static_cast<unsigned>(attempts64);
    return true;
}

} // namespace

std::string
CellKey::hex() const
{
    return digestToHex(digest);
}

ResultStore::ResultStore(ResultStoreOptions opts) : opts_(std::move(opts))
{
    if (opts_.codeVersion.empty())
        opts_.codeVersion = codeVersionString();
    std::error_code ec;
    fs::create_directories(opts_.dir, ec);
    sim_error_if(ec || !fs::is_directory(opts_.dir), ErrorCategory::Config,
                 "cannot create result-store directory ", opts_.dir,
                 ec ? ": " + ec.message() : std::string());
}

CellKey
ResultStore::runCellKey(const std::string &workload,
                        const MachineConfig &cfg, const RunOptions &opts,
                        std::string_view salt) const
{
    DigestBuilder d;
    d.add(std::string_view("memento-run-cell"));
    d.add(std::string_view(opts_.codeVersion));
    d.add(std::string_view(workload));
    d.add(std::string_view(canonicalConfigText(cfg)));
    d.add(static_cast<std::uint64_t>(opts.coldStart));
    d.add(static_cast<std::uint64_t>(opts.chargeRpc));
    d.add(static_cast<std::uint64_t>(opts.computeDigest));
    d.add(salt);
    return CellKey{d.value()};
}

CellKey
ResultStore::derivedKey(std::initializer_list<std::string_view> parts) const
{
    DigestBuilder d;
    d.add(std::string_view("memento-derived-cell"));
    d.add(std::string_view(opts_.codeVersion));
    for (const std::string_view part : parts)
        d.add(part);
    return CellKey{d.value()};
}

std::string
ResultStore::cellPath(const CellKey &key) const
{
    return opts_.dir + "/" + key.hex() + ".cell";
}

bool
ResultStore::loadCell(const CellKey &key, std::string_view cell_kind,
                      std::string &payload)
{
    std::string record;
    if (!readFile(cellPath(key), record)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return false;
    }

    std::string stored_kind;
    std::string_view body;
    if (!validateRecord(record, key.hex(), stored_kind, body) ||
        stored_kind != cell_kind) {
        quarantine(key);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return false;
    }

    payload.assign(body);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    return true;
}

void
ResultStore::storeCell(const CellKey &key, std::string_view cell_kind,
                       std::string_view payload)
{
    const std::string hex = key.hex();
    std::string record =
        headerLine(cell_kind, hex, payload.size(), checksumOf(payload));
    record += '\n';
    record.append(payload.data(), payload.size());

    std::lock_guard<std::mutex> lock(mu_);
    ++storeCounter_;
    if (opts_.tornWriteAt != 0 && storeCounter_ == opts_.tornWriteAt) {
        // Crash injection: leave half a record under the *final* name
        // (bypassing the atomic path on purpose) and die, simulating
        // the worst a broken filesystem can do to us.
        const std::string path = cellPath(key);
        const int fd =
            ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            const std::size_t half = record.size() / 2;
            [[maybe_unused]] const ssize_t n =
                ::write(fd, record.data(), half);
            ::close(fd);
        }
        // Crash injection by design: die mid-write without unwinding,
        // exactly as a power cut would.
        ::_exit(121); // lint-src: allow(src-fatal-in-library)
    }

    writeFileAtomic(cellPath(key), record);
    ++stats_.stores;
    if (opts_.killAt != 0 && stats_.stores == opts_.killAt) {
        // Crash injection: the record above is complete and durable;
        // die without unwinding, as SIGKILL would.
        ::_exit(137); // lint-src: allow(src-fatal-in-library)
    }
}

bool
ResultStore::loadRun(const CellKey &key, RunResult &out, unsigned &attempts)
{
    std::string payload;
    if (!loadCell(key, "run", payload))
        return false;

    RunResult parsed;
    unsigned parsed_attempts = 1;
    if (!parseRunPayload(payload, parsed, parsed_attempts)) {
        quarantine(key);
        std::lock_guard<std::mutex> lock(mu_);
        --stats_.hits;
        ++stats_.misses;
        return false;
    }
    out = std::move(parsed);
    attempts = parsed_attempts;
    return true;
}

void
ResultStore::storeRun(const CellKey &key, const RunResult &result,
                      unsigned attempts)
{
    storeCell(key, "run", runPayload(result, attempts));
}

bool
ResultStore::inRevalidateSample(const CellKey &key, unsigned every) const
{
    if (every == 0)
        return false;
    if (every == 1)
        return true;
    return key.digest % every == 0;
}

void
ResultStore::quarantine(const CellKey &key)
{
    const std::string path = cellPath(key);
    const std::string aside = opts_.dir + "/" + key.hex() + ".quarantined";
    std::error_code ec;
    fs::rename(path, aside, ec);
    if (!ec) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantined;
    }
}

void
ResultStore::noteRevalidated()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.revalidated;
}

MergeStats
ResultStore::mergeFrom(const std::string &src_dir)
{
    MergeStats out;
    std::vector<std::string> names;
    std::error_code ec;
    for (fs::directory_iterator it(src_dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() == ".cell")
            names.push_back(it->path().filename().string());
    }
    sim_error_if(ec, ErrorCategory::Config, "cannot list ", src_dir, ": ",
                 ec.message());
    std::sort(names.begin(), names.end());

    for (const std::string &name : names) {
        const std::string expect_key = name.substr(0, name.size() - 5);
        std::string record;
        std::string stored_kind;
        std::string_view body;
        if (!readFile(src_dir + "/" + name, record) ||
            !validateRecord(record, expect_key, stored_kind, body)) {
            ++out.corrupt;
            continue;
        }

        const std::string dest = opts_.dir + "/" + name;
        std::string existing;
        std::string existing_kind;
        std::string_view existing_body;
        if (readFile(dest, existing) &&
            validateRecord(existing, expect_key, existing_kind,
                           existing_body)) {
            ++out.duplicates;
            continue;
        }
        writeFileAtomic(dest, record);
        ++out.merged;
    }
    return out;
}

std::vector<std::string>
ResultStore::listCellFiles() const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (fs::directory_iterator it(opts_.dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() == ".cell")
            names.push_back(it->path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace memento
