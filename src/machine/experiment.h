/**
 * @file
 * Experiment runner: executes one workload on a given configuration
 * and extracts the metrics every figure/table of the paper is built
 * from. A Comparison pairs a baseline run, a Memento run, and a
 * bypass-disabled Memento run over the identical trace.
 */

#ifndef MEMENTO_MACHINE_EXPERIMENT_H
#define MEMENTO_MACHINE_EXPERIMENT_H

#include <array>
#include <optional>
#include <string>

#include "machine/function_executor.h"
#include "sim/config.h"
#include "sim/error.h"
#include "wl/trace.h"
#include "wl/workloads.h"

namespace memento {

/** Structured description of a failed run. */
struct RunError
{
    ErrorCategory category = ErrorCategory::Internal;
    std::string message;
    /** Trace op the failure surfaced at (kNoOpIndex when outside ops). */
    std::uint64_t opIndex = SimError::kNoOpIndex;

    bool hasOpIndex() const { return opIndex != SimError::kNoOpIndex; }

    bool operator==(const RunError &) const = default;
};

/**
 * Metrics of one run (deltas over the measurement window).
 *
 * Serialization contract: RunResult is persisted by the result store
 * (machine/result_store.cc). A new metric field must be added to the
 * store's writer/loader pair — the store's round-trip test compares
 * with operator== and will catch a loader that drops it, but only if
 * the test's sample result sets the field to a non-default value.
 */
struct RunResult
{
    std::string workload;
    Cycles cycles = 0;
    std::array<Cycles, kNumCycleCategories> byCategory{};
    std::uint64_t instructions = 0;

    std::uint64_t dramBytes = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t bypassedLines = 0;

    /** Aggregate (cumulative) pages allocated during the run. */
    std::uint64_t aggUserPages = 0;
    std::uint64_t aggKernelPages = 0;
    std::uint64_t peakResidentPages = 0;

    std::uint64_t pageFaults = 0;
    std::uint64_t mmapCalls = 0;
    std::uint64_t poolRefills = 0;

    std::uint64_t hotAllocHits = 0;
    std::uint64_t hotAllocMisses = 0;
    std::uint64_t hotFreeHits = 0;
    std::uint64_t hotFreeMisses = 0;
    std::uint64_t allocListOps = 0;
    std::uint64_t freeListOps = 0;
    std::uint64_t objAllocs = 0; ///< Small allocations performed.
    std::uint64_t objFrees = 0;  ///< Small frees performed.
    /**
     * HOT entries valid when the run ended (0 without Memento). The
     * fleet scheduler charges this many writebacks when a context
     * switch flushes the instance's HOT residue off the core.
     */
    std::uint64_t hotValidEntries = 0;
    double fragInactiveFraction = 0.0;

    /**
     * Set when the run failed: metrics above cover the partial window
     * up to the failure (useful for localising the fault).
     */
    std::optional<RunError> error;
    /** Machine-state digest (RunOptions::computeDigest; 0 otherwise). */
    std::uint64_t digest = 0;

    bool failed() const { return error.has_value(); }

    /**
     * Field-wise equality, digest included. The parallel sweep's
     * differential tests lean on this: a run is only deterministic if
     * *every* metric reproduces, not just the state digest.
     */
    bool operator==(const RunResult &) const = default;

    Cycles
    category(CycleCategory cat) const
    {
        return byCategory[static_cast<std::size_t>(cat)];
    }

    /** Userspace memory-management cycles (Table 2 numerator). */
    Cycles userMmCycles() const;
    /** Kernel memory-management cycles. */
    Cycles kernelMmCycles() const;
    /** Hardware (Memento) memory-management cycles. */
    Cycles hwMmCycles() const;

    double
    executionMs(const MachineConfig &cfg) const
    {
        return cfg.cyclesToMs(cycles);
    }
};

/** Paired runs of one workload. */
struct Comparison
{
    WorkloadSpec spec;
    RunResult base;           ///< Software baseline.
    RunResult memento;        ///< Full Memento.
    RunResult mementoNoBypass; ///< Memento with bypass disabled.

    double speedup() const;
    /** 1 - memento DRAM bytes / baseline DRAM bytes. */
    double bandwidthReduction() const;
};

/**
 * Runs workloads on configurations.
 *
 * Thread safety: every run builds its own Machine, and a Machine owns
 * all of its mutable state (stats registry, cycle ledger, allocators,
 * RNGs), so concurrent runOne/tryRunOne calls on *distinct* machines
 * are safe — machine/sweep.h builds its worker pool directly on top of
 * this contract. The shared Trace argument is only ever read.
 */
class Experiment
{
  public:
    /**
     * Execute @p trace for @p spec on a fresh machine under @p cfg.
     * Throws SimError when the run fails (callers that need to survive
     * failures use tryRunOne).
     */
    static RunResult runOne(const WorkloadSpec &spec, const Trace &trace,
                            const MachineConfig &cfg, RunOptions opts = {});

    /**
     * Like runOne, but a failing run is captured instead of thrown:
     * the result's error field holds the category, message, and op
     * index, and the metric fields cover the partial window executed
     * before the failure. Only SimError (recoverable, per-run) is
     * caught — panics still abort, by design. When @p cfg's fault plan
     * names a different workload, the plan is stripped for this run.
     */
    static RunResult tryRunOne(const WorkloadSpec &spec,
                               const Trace &trace,
                               const MachineConfig &cfg,
                               RunOptions opts = {});

    /** Baseline + Memento + Memento-no-bypass over one shared trace. */
    static Comparison compare(const WorkloadSpec &spec,
                              const MachineConfig &base_cfg,
                              const MachineConfig &memento_cfg,
                              RunOptions opts = {});

    /** compare() with the default Table 3 configurations. */
    static Comparison compareDefault(const WorkloadSpec &spec,
                                     RunOptions opts = {});
};

} // namespace memento

#endif // MEMENTO_MACHINE_EXPERIMENT_H
