#include "machine/breakdown.h"

namespace memento {

Breakdown
computeBreakdown(const Comparison &cmp)
{
    const RunResult &b = cmp.base;
    const RunResult &m = cmp.memento;
    const RunResult &nb = cmp.mementoNoBypass;

    auto saved = [](Cycles base_cost, Cycles memento_cost) -> double {
        const double diff = static_cast<double>(base_cost) -
                            static_cast<double>(memento_cost);
        return diff > 0.0 ? diff : 0.0;
    };

    // Userspace alloc/free work replaced by the hardware object
    // allocator (the Memento runs still pay the software path for
    // large objects, which is why it is subtracted).
    const double alloc_saved =
        saved(b.category(CycleCategory::UserAlloc),
              m.category(CycleCategory::UserAlloc) +
                  m.category(CycleCategory::HwAlloc));
    const double free_saved =
        saved(b.category(CycleCategory::UserFree),
              m.category(CycleCategory::UserFree) +
                  m.category(CycleCategory::HwFree));

    // Kernel memory management replaced by the hardware page allocator.
    const double page_saved =
        saved(b.kernelMmCycles(),
              m.kernelMmCycles() + m.category(CycleCategory::HwPage));

    // Bypass gain isolated by the bypass-disabled run.
    const double bypass_saved =
        saved(nb.cycles, m.cycles);

    Breakdown out;
    const double base_minus_mem = saved(b.cycles, m.cycles);
    out.savedCycles = static_cast<Cycles>(base_minus_mem);

    const double total =
        alloc_saved + free_saved + page_saved + bypass_saved;
    if (total <= 0.0)
        return out;
    out.objAlloc = alloc_saved / total;
    out.objFree = free_saved / total;
    out.pageMgmt = page_saved / total;
    out.bypass = bypass_saved / total;
    return out;
}

} // namespace memento
