/**
 * @file
 * Content-addressed on-disk result store: the persistence layer that
 * makes sweeps crash-safe, resumable, and shardable.
 *
 * Every sweep cell (one workload run under one configuration) is keyed
 * by an FNV-1a digest of (workload id, canonical configuration text,
 * run options, code version) — see sim/config_canon.h — so a cache hit
 * is only possible when *nothing* that could change the result has
 * changed. Each cell is one file `<16-hex-key>.cell` in the store
 * directory:
 *
 *     {"schema_version": 1, "kind": "result-cell", "cell_kind": "run",
 *      "key": "<16hex>", "payload_bytes": N, "checksum": "<16hex>"}\n
 *     <N bytes of payload JSON>
 *
 * The checksum is FNV-1a over the exact payload bytes, and the whole
 * record is written via writeFileAtomic() (temp + fsync + rename), so
 * a crash at any instant leaves either no file or a complete valid
 * record under the final name. Defense in depth: even if a torn or
 * bit-flipped record *does* appear (hardware, filesystem bugs, or the
 * inject.store_torn_write test fault), loading detects the damage —
 * header unparseable, payload length short, or checksum mismatch —
 * quarantines the file (renamed to `<key>.quarantined`) and reports a
 * miss, so the cell is simply recomputed. Corruption is never fatal.
 *
 * Stores from different shards of the same sweep are disjoint-or-equal
 * by construction (same key => same content), which is what makes
 * `memento_sim merge` a trivial validated file union.
 *
 * Thread safety: all public methods are safe to call concurrently;
 * distinct cells go to distinct files and counters are mutex-guarded.
 */

#ifndef MEMENTO_MACHINE_RESULT_STORE_H
#define MEMENTO_MACHINE_RESULT_STORE_H

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "machine/experiment.h"
#include "machine/function_executor.h"
#include "sim/config.h"
#include "sim/thread_annotations.h"

namespace memento {

/** Content address of one cell (16-hex-digit FNV-1a digest). */
struct CellKey
{
    std::uint64_t digest = 0;

    std::string hex() const;

    bool operator==(const CellKey &) const = default;
};

struct ResultStoreOptions
{
    /** Store directory (created on construction if absent). */
    std::string dir;
    /**
     * Code version folded into every key; defaults to
     * codeVersionString(). Tests override it to pin keys.
     */
    std::string codeVersion;
    /** Crash injection: tear the Nth storeCell() in half and _exit. */
    std::uint64_t tornWriteAt = 0;
    /** Crash injection: _exit right after the Nth completed store. */
    std::uint64_t killAt = 0;
};

/** Hit/miss/corruption counters (reported to stderr, never stdout). */
struct StoreStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t revalidated = 0;
};

/** Outcome of merging one source store into this one. */
struct MergeStats
{
    std::uint64_t merged = 0;     ///< New cells copied in.
    std::uint64_t duplicates = 0; ///< Already present (kept ours).
    std::uint64_t corrupt = 0;    ///< Source records that failed validation.
};

class ResultStore
{
  public:
    /**
     * Opens (creating if needed) the store at opts.dir.
     * Throws SimError(Config) when the directory cannot be created.
     */
    explicit ResultStore(ResultStoreOptions opts);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return opts_.dir; }

    // ---- Key derivation ----

    /** Key of one run cell. @p salt disambiguates deliberate re-runs. */
    CellKey runCellKey(const std::string &workload,
                       const MachineConfig &cfg, const RunOptions &opts,
                       std::string_view salt = {}) const;

    /** Key from arbitrary tagged parts (bench cells and the like). */
    CellKey derivedKey(std::initializer_list<std::string_view> parts) const;

    // ---- Generic cell layer ----

    /**
     * Load the cell @p key. Returns true and fills @p payload on a
     * validated hit. A missing file is a miss; a damaged file is
     * quarantined and reported as a miss. @p cell_kind must match the
     * stored record's kind (a mismatch is damage).
     */
    bool loadCell(const CellKey &key, std::string_view cell_kind,
                  std::string &payload);

    /** Atomically persist the cell @p key (last writer wins). */
    void storeCell(const CellKey &key, std::string_view cell_kind,
                   std::string_view payload);

    // ---- RunResult cells ----

    /**
     * Load a run cell into @p out / @p attempts. A record whose payload
     * no longer parses as a RunResult is quarantined like any other
     * damage. The stored result may itself be a captured failure
     * (out.failed()) — cached failures are first-class.
     */
    bool loadRun(const CellKey &key, RunResult &out, unsigned &attempts);

    /** Persist one run outcome (success or captured failure). */
    void storeRun(const CellKey &key, const RunResult &result,
                  unsigned attempts);

    // ---- Revalidation / maintenance ----

    /**
     * True when @p key falls in the 1-in-@p every revalidation sample
     * (0 = never, 1 = always). Deterministic in the key.
     */
    bool inRevalidateSample(const CellKey &key, unsigned every) const;

    /** Move a damaged record aside; harmless if already gone. */
    void quarantine(const CellKey &key);

    /** Count a successful revalidation (stats only). */
    void noteRevalidated();

    /**
     * Validated union: copy every valid cell from @p src_dir that this
     * store does not already hold. Corrupt source records are counted
     * and skipped, never copied.
     */
    MergeStats mergeFrom(const std::string &src_dir);

    /** Sorted `<key>.cell` file names in this store. */
    std::vector<std::string> listCellFiles() const;

    StoreStats stats() const;

  private:
    std::string cellPath(const CellKey &key) const;

    ResultStoreOptions opts_ MEMENTO_READONLY_AFTER_INIT;
    mutable std::mutex mu_;
    StoreStats stats_ MEMENTO_GUARDED_BY(mu_);
    /** storeCell() invocation counter driving the crash injections. */
    std::uint64_t storeCounter_ MEMENTO_GUARDED_BY(mu_) = 0;
};

} // namespace memento

#endif // MEMENTO_MACHINE_RESULT_STORE_H
