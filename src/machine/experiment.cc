#include "machine/experiment.h"

#include <memory>

#include "sim/logging.h"
#include "val/digest.h"
#include "wl/trace_generator.h"

namespace memento {

Cycles
RunResult::userMmCycles() const
{
    return category(CycleCategory::UserAlloc) +
           category(CycleCategory::UserFree);
}

Cycles
RunResult::kernelMmCycles() const
{
    return category(CycleCategory::KernelMmap) +
           category(CycleCategory::KernelFault) +
           category(CycleCategory::KernelOther);
}

Cycles
RunResult::hwMmCycles() const
{
    return category(CycleCategory::HwAlloc) +
           category(CycleCategory::HwFree) +
           category(CycleCategory::HwPage);
}

double
Comparison::speedup() const
{
    if (memento.cycles == 0)
        return 1.0;
    return static_cast<double>(base.cycles) /
           static_cast<double>(memento.cycles);
}

double
Comparison::bandwidthReduction() const
{
    if (base.dramBytes == 0)
        return 0.0;
    const double ratio = static_cast<double>(memento.dramBytes) /
                         static_cast<double>(base.dramBytes);
    return 1.0 - ratio;
}

RunResult
Experiment::runOne(const WorkloadSpec &spec, const Trace &trace,
                   const MachineConfig &cfg, RunOptions opts)
{
    RunResult res = tryRunOne(spec, trace, cfg, opts);
    if (res.error) {
        SimError err(res.error->category, res.error->message);
        err.tagOpIndex(res.error->opIndex);
        throw err;
    }
    return res;
}

RunResult
Experiment::tryRunOne(const WorkloadSpec &spec, const Trace &trace,
                      const MachineConfig &cfg_in, RunOptions opts)
{
    RunResult res;
    res.workload = spec.id;

    // A fault plan aimed at another workload must not fire here: the
    // OS/pool hooks it arms cannot see workload identity themselves.
    MachineConfig cfg = cfg_in;
    if (!cfg.inject.appliesTo(spec.id))
        cfg.inject = FaultPlan{};

    std::unique_ptr<Machine> machine;
    try {
        machine = std::make_unique<Machine>(cfg);
        machine->createProcess(spec);
    } catch (const SimError &e) {
        res.error = RunError{e.category(), e.what(), e.opIndex()};
        return res;
    }

    // Snapshot after set-up: the measurement window covers only the
    // function execution itself (warm-start semantics). Each metric
    // resolves its stat slot once here instead of copying the whole
    // registry per run and re-finding every name afterwards.
    struct Probe
    {
        StatHandle handle;
        std::uint64_t before = 0;

        std::uint64_t delta() const { return handle.value() - before; }
        std::uint64_t now() const { return handle.value(); }
    };
    auto probe = [&](const std::string &name) {
        StatHandle h = machine->stats().handle(name);
        const std::uint64_t v = h.value();
        return Probe{std::move(h), v};
    };
    // Aggregate usage counts every page the OS allocated, including
    // runtime set-up (the paper's §6.3 metric covers the runtime's
    // pre-mapped pools — that is exactly where jemalloc's waste shows
    // up). Memento's hardware pool recycles pages internally, so only
    // OS grants to the pool count.
    const std::string vm = "vm" + std::to_string(machine->process().pid());
    Probe dramBytes = probe("dram.bytes");
    Probe dramReads = probe("dram.reads");
    Probe dramWrites = probe("dram.writes");
    Probe bypassedLines = probe("hier.bypassed_lines");
    Probe vmFaults = probe(vm + ".faults");
    Probe vmMmapCalls = probe(vm + ".mmap_calls");
    Probe poolRefills = probe("hwpage.pool_refills");
    Probe hotAllocHits = probe("hot.alloc_hits");
    Probe hotAllocMisses = probe("hot.alloc_misses");
    Probe hotFreeHits = probe("hot.free_hits");
    Probe hotFreeMisses = probe("hot.free_misses");
    Probe allocListOps = probe("hwobj.alloc_list_ops");
    Probe freeListOps = probe("hwobj.free_list_ops");
    Probe pySmallMallocs = probe("pymalloc.small_mallocs");
    Probe jeSmallMallocs = probe("jemalloc.small_mallocs");
    Probe goSmallMallocs = probe("gomalloc.small_mallocs");
    Probe pySmallFrees = probe("pymalloc.small_frees");
    Probe jeSmallFrees = probe("jemalloc.small_frees");
    Probe goDeaths = probe("gomalloc.deaths");
    Probe aggUserPages = probe(vm + ".agg_user_pages");
    Probe hwAggOsPages = probe("hwpage.agg_os_pages");
    Probe aggKernelPages = probe(vm + ".agg_kernel_pages");
    Probe aggVmaBytes = probe(vm + ".agg_vma_bytes");
    Probe buddyPeakPages = probe("buddy.peak_pages");
    const CycleLedger ledger_before = machine->cycleLedger();
    const std::uint64_t instr_before = machine->instructions();

    FunctionExecutor executor(*machine);
    try {
        executor.run(spec, trace, opts);
    } catch (const SimError &e) {
        // Keep the machine: the partial metrics below localise the
        // failure, and the sweep carries on with the next workload.
        res.error = RunError{e.category(), e.what(), e.opIndex()};
    }

    res.cycles = machine->cycleLedger().total() - ledger_before.total();
    for (std::size_t i = 0; i < kNumCycleCategories; ++i) {
        const auto cat = static_cast<CycleCategory>(i);
        res.byCategory[i] = machine->cycleLedger().category(cat) -
                            ledger_before.category(cat);
    }
    res.instructions = machine->instructions() - instr_before;

    res.dramBytes = dramBytes.delta();
    res.dramReads = dramReads.delta();
    res.dramWrites = dramWrites.delta();
    res.bypassedLines = bypassedLines.delta();

    res.aggUserPages = aggUserPages.now() + hwAggOsPages.now();
    res.aggKernelPages =
        aggKernelPages.now() + aggVmaBytes.now() / kPageSize;
    // Peak consumed memory: machine-wide physical high-water mark,
    // less the hardware pool's idle slack (reclaimable by the OS).
    std::uint64_t peak = buddyPeakPages.now();
    if (machine->hwPageAllocator()) {
        const std::uint64_t slack =
            machine->hwPageAllocator()->poolFreePages();
        peak = peak > slack ? peak - slack : 0;
    }
    res.peakResidentPages = peak;
    res.pageFaults = vmFaults.delta();
    res.mmapCalls = vmMmapCalls.delta();
    res.poolRefills = poolRefills.delta();

    res.hotAllocHits = hotAllocHits.delta();
    res.hotAllocMisses = hotAllocMisses.delta();
    res.hotFreeHits = hotFreeHits.delta();
    res.hotFreeMisses = hotFreeMisses.delta();
    res.allocListOps = allocListOps.delta();
    res.freeListOps = freeListOps.delta();
    res.hotValidEntries =
        machine->hot() != nullptr ? machine->hot()->validEntries() : 0;

    res.fragInactiveFraction = executor.fragSample();
    if (cfg.memento.enabled && !cfg.memento.mallaccMode) {
        res.objAllocs = res.hotAllocHits + res.hotAllocMisses;
        res.objFrees = res.hotFreeHits + res.hotFreeMisses;
    } else {
        res.objAllocs = pySmallMallocs.delta() + jeSmallMallocs.delta() +
                        goSmallMallocs.delta();
        res.objFrees =
            pySmallFrees.delta() + jeSmallFrees.delta() + goDeaths.delta();
    }

    if (opts.computeDigest)
        res.digest = digestMachine(*machine);
    return res;
}

Comparison
Experiment::compare(const WorkloadSpec &spec,
                    const MachineConfig &base_cfg,
                    const MachineConfig &memento_cfg, RunOptions opts)
{
    panic_if(base_cfg.memento.enabled, "compare: base has Memento on");
    panic_if(!memento_cfg.memento.enabled,
             "compare: memento config has Memento off");

    const Trace trace = TraceGenerator(spec).generate();

    Comparison cmp;
    cmp.spec = spec;
    cmp.base = runOne(spec, trace, base_cfg, opts);
    cmp.memento = runOne(spec, trace, memento_cfg, opts);

    MachineConfig no_bypass = memento_cfg;
    no_bypass.memento.bypassEnabled = false;
    cmp.mementoNoBypass = runOne(spec, trace, no_bypass, opts);
    return cmp;
}

Comparison
Experiment::compareDefault(const WorkloadSpec &spec, RunOptions opts)
{
    return compare(spec, defaultConfig(), mementoConfig(), opts);
}

} // namespace memento
