#include "machine/experiment.h"

#include <memory>

#include "sim/logging.h"
#include "val/digest.h"
#include "wl/trace_generator.h"

namespace memento {

Cycles
RunResult::userMmCycles() const
{
    return category(CycleCategory::UserAlloc) +
           category(CycleCategory::UserFree);
}

Cycles
RunResult::kernelMmCycles() const
{
    return category(CycleCategory::KernelMmap) +
           category(CycleCategory::KernelFault) +
           category(CycleCategory::KernelOther);
}

Cycles
RunResult::hwMmCycles() const
{
    return category(CycleCategory::HwAlloc) +
           category(CycleCategory::HwFree) +
           category(CycleCategory::HwPage);
}

double
Comparison::speedup() const
{
    if (memento.cycles == 0)
        return 1.0;
    return static_cast<double>(base.cycles) /
           static_cast<double>(memento.cycles);
}

double
Comparison::bandwidthReduction() const
{
    if (base.dramBytes == 0)
        return 0.0;
    const double ratio = static_cast<double>(memento.dramBytes) /
                         static_cast<double>(base.dramBytes);
    return 1.0 - ratio;
}

RunResult
Experiment::runOne(const WorkloadSpec &spec, const Trace &trace,
                   const MachineConfig &cfg, RunOptions opts)
{
    RunResult res = tryRunOne(spec, trace, cfg, opts);
    if (res.error) {
        SimError err(res.error->category, res.error->message);
        err.tagOpIndex(res.error->opIndex);
        throw err;
    }
    return res;
}

RunResult
Experiment::tryRunOne(const WorkloadSpec &spec, const Trace &trace,
                      const MachineConfig &cfg_in, RunOptions opts)
{
    RunResult res;
    res.workload = spec.id;

    // A fault plan aimed at another workload must not fire here: the
    // OS/pool hooks it arms cannot see workload identity themselves.
    MachineConfig cfg = cfg_in;
    if (!cfg.inject.appliesTo(spec.id))
        cfg.inject = FaultPlan{};

    std::unique_ptr<Machine> machine;
    try {
        machine = std::make_unique<Machine>(cfg);
        machine->createProcess(spec);
    } catch (const SimError &e) {
        res.error = RunError{e.category(), e.what(), e.opIndex()};
        return res;
    }

    // Snapshot after set-up: the measurement window covers only the
    // function execution itself (warm-start semantics).
    const auto stats_before = machine->stats().snapshot();
    const CycleLedger ledger_before = machine->cycleLedger();
    const std::uint64_t instr_before = machine->instructions();

    FunctionExecutor executor(*machine);
    try {
        executor.run(spec, trace, opts);
    } catch (const SimError &e) {
        // Keep the machine: the partial metrics below localise the
        // failure, and the sweep carries on with the next workload.
        res.error = RunError{e.category(), e.what(), e.opIndex()};
    }

    auto delta = [&](const std::string &name) {
        auto it = stats_before.find(name);
        const std::uint64_t before =
            it == stats_before.end() ? 0 : it->second;
        return machine->stats().value(name) - before;
    };
    res.cycles = machine->cycleLedger().total() - ledger_before.total();
    for (std::size_t i = 0; i < kNumCycleCategories; ++i) {
        const auto cat = static_cast<CycleCategory>(i);
        res.byCategory[i] = machine->cycleLedger().category(cat) -
                            ledger_before.category(cat);
    }
    res.instructions = machine->instructions() - instr_before;

    res.dramBytes = delta("dram.bytes");
    res.dramReads = delta("dram.reads");
    res.dramWrites = delta("dram.writes");
    res.bypassedLines = delta("hier.bypassed_lines");

    // Aggregate usage counts every page the OS allocated, including
    // runtime set-up (the paper's §6.3 metric covers the runtime's
    // pre-mapped pools — that is exactly where jemalloc's waste shows
    // up). Memento's hardware pool recycles pages internally, so only
    // OS grants to the pool count.
    const std::string vm = "vm" + std::to_string(machine->process().pid());
    res.aggUserPages = machine->stats().value(vm + ".agg_user_pages") +
                       machine->stats().value("hwpage.agg_os_pages");
    res.aggKernelPages =
        machine->stats().value(vm + ".agg_kernel_pages") +
        machine->stats().value(vm + ".agg_vma_bytes") / kPageSize;
    // Peak consumed memory: machine-wide physical high-water mark,
    // less the hardware pool's idle slack (reclaimable by the OS).
    std::uint64_t peak = machine->stats().value("buddy.peak_pages");
    if (machine->hwPageAllocator()) {
        const std::uint64_t slack =
            machine->hwPageAllocator()->poolFreePages();
        peak = peak > slack ? peak - slack : 0;
    }
    res.peakResidentPages = peak;
    res.pageFaults = delta(vm + ".faults");
    res.mmapCalls = delta(vm + ".mmap_calls");
    res.poolRefills = delta("hwpage.pool_refills");

    res.hotAllocHits = delta("hot.alloc_hits");
    res.hotAllocMisses = delta("hot.alloc_misses");
    res.hotFreeHits = delta("hot.free_hits");
    res.hotFreeMisses = delta("hot.free_misses");
    res.allocListOps = delta("hwobj.alloc_list_ops");
    res.freeListOps = delta("hwobj.free_list_ops");

    res.fragInactiveFraction = executor.fragSample();
    if (cfg.memento.enabled && !cfg.memento.mallaccMode) {
        res.objAllocs = res.hotAllocHits + res.hotAllocMisses;
        res.objFrees = res.hotFreeHits + res.hotFreeMisses;
    } else {
        res.objAllocs = delta("pymalloc.small_mallocs") +
                        delta("jemalloc.small_mallocs") +
                        delta("gomalloc.small_mallocs");
        res.objFrees = delta("pymalloc.small_frees") +
                       delta("jemalloc.small_frees") +
                       delta("gomalloc.deaths");
    }

    if (opts.computeDigest)
        res.digest = digestMachine(*machine);
    return res;
}

Comparison
Experiment::compare(const WorkloadSpec &spec,
                    const MachineConfig &base_cfg,
                    const MachineConfig &memento_cfg, RunOptions opts)
{
    panic_if(base_cfg.memento.enabled, "compare: base has Memento on");
    panic_if(!memento_cfg.memento.enabled,
             "compare: memento config has Memento off");

    const Trace trace = TraceGenerator(spec).generate();

    Comparison cmp;
    cmp.spec = spec;
    cmp.base = runOne(spec, trace, base_cfg, opts);
    cmp.memento = runOne(spec, trace, memento_cfg, opts);

    MachineConfig no_bypass = memento_cfg;
    no_bypass.memento.bypassEnabled = false;
    cmp.mementoNoBypass = runOne(spec, trace, no_bypass, opts);
    return cmp;
}

Comparison
Experiment::compareDefault(const WorkloadSpec &spec, RunOptions opts)
{
    return compare(spec, defaultConfig(), mementoConfig(), opts);
}

} // namespace memento
