#include "machine/machine.h"

#include "hw/mallacc.h"
#include "rt/gomalloc.h"
#include "rt/jemalloc.h"
#include "rt/pymalloc.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace memento {

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg),
      kernelCosts_(cfg_),
      instructions_(stats_.counter("machine.instructions")),
      appLoads_(stats_.counter("machine.app_loads")),
      appStores_(stats_.counter("machine.app_stores"))
{
    hier_ = std::make_unique<CacheHierarchy>(cfg_, stats_);
    l1Tlb_ = std::make_unique<Tlb>("l1tlb", cfg_.l1Tlb, stats_);
    l2Tlb_ = std::make_unique<Tlb>("l2tlb", cfg_.l2Tlb, stats_);
    walker_ = std::make_unique<PageWalker>(*hier_);
    // Physical memory starts above a reserved low region so that no
    // valid frame aliases kNullAddr.
    buddy_ = std::make_unique<BuddyAllocator>(1ull << 22,
                                              cfg_.dram.sizeBytes, stats_);

    if (cfg_.memento.enabled) {
        geometry_ =
            std::make_unique<ArenaGeometry>(cfg_.memento, cfg_.layout);
        hot_ = std::make_unique<Hot>(cfg_.memento, stats_);
        hwPage_ = std::make_unique<HwPageAllocator>(cfg_, *geometry_,
                                                    *buddy_, stats_);
        hwObj_ = std::make_unique<HwObjectAllocator>(
            cfg_, *geometry_, *hot_, *hwPage_, stats_);
        bypass_ = std::make_unique<BypassUnit>(cfg_.memento, *geometry_,
                                               stats_);
    }
}

Machine::~Machine() = default;

Addr
Machine::mementoWalk(Addr vaddr)
{
    MementoSpace &space = *procs_[current_].space;
    Cycles walk_latency = 0;
    WalkResult res = walker_->walk(space.mpt, vaddr, now(), walk_latency);
    ledger_.charge(walk_latency);
    if (res.valid)
        return res.ppage;
    // Invalid entry: the page allocator expands the table / backs the
    // page during the walk (§3.2).
    return hwPage_->populateOnWalk(space, vaddr, *this);
}

void
Machine::tlbInvalidate(Addr vaddr)
{
    l1Tlb_->invalidatePage(vaddr);
    l2Tlb_->invalidatePage(vaddr);
}

unsigned
Machine::createProcess(const WorkloadSpec &spec)
{
    ProcContext proc;
    proc.process = std::make_unique<Process>(
        nextPid_++, spec.id, cfg_, *buddy_, stats_);

    VirtualMemory &vm = proc.process->vm();
    if (cfg_.memento.enabled) {
        proc.space = std::make_unique<MementoSpace>(
            *geometry_, hwPage_->poolFrames());
        proc.process->mementoRegs().mptr = proc.space->mpt.rootPhys();
        if (cfg_.memento.mallaccMode) {
            // §6.7 comparison: idealized Mallacc instead of Memento.
            proc.allocator =
                std::make_unique<MallaccAllocator>(vm, stats_);
        } else {
            proc.allocator = std::make_unique<MementoAllocator>(
                *hwObj_, *proc.space, vm, stats_);
        }
    } else {
        switch (spec.lang) {
          case Language::Python: {
            PyMalloc::Params params;
            params.arenaBytes = cfg_.tuning.pymallocArenaBytes;
            proc.allocator =
                std::make_unique<PyMalloc>(vm, stats_, params);
            break;
          }
          case Language::Cpp: {
            JeMalloc::Params params;
            params.chunkBytes = cfg_.tuning.jemallocChunkBytes;
            // Long-running servers run jemalloc with decay purging,
            // which keeps page faults frequent on their heaps (§6.1).
            if (spec.domain == Domain::DataProc) {
                params.purgeIntervalOps = 1000;
                params.tcacheMax = 32;
            }
            proc.allocator =
                std::make_unique<JeMalloc>(vm, stats_, params);
            break;
          }
          case Language::Golang: {
            GoMalloc::Params params;
            // Long-running platform processes reach GC triggers;
            // short functions never do (§2.2).
            params.gcTriggerBytes = spec.domain == Domain::Platform
                                        ? cfg_.tuning.goGcTriggerBytes
                                        : 0;
            proc.allocator =
                std::make_unique<GoMalloc>(vm, stats_, params);
            break;
          }
        }
    }

    // Static working set (code + globals + inputs). A warm container
    // has this resident already, so it is populated at set-up.
    proc.staticWsBytes = spec.staticWsBytes;
    proc.staticBase = vm.mmap(spec.staticWsBytes, nullptr,
                              /*populate=*/true);

    procs_.push_back(std::move(proc));
    return static_cast<unsigned>(procs_.size() - 1);
}

void
Machine::switchTo(unsigned index)
{
    panic_if(index >= procs_.size(), "switchTo: bad process index");
    if (index == current_)
        return;
    unsigned flushed = 0;
    if (hot_)
        flushed = hot_->flush();
    kernelCosts_.chargeContextSwitch(*this, flushed);
    l1Tlb_->flushAll();
    l2Tlb_->flushAll();
    current_ = index;
}

MementoSpace *
Machine::mementoSpace()
{
    if (procs_.empty())
        return nullptr;
    return procs_[current_].space.get();
}

Process &
Machine::processAt(unsigned index)
{
    panic_if(index >= procs_.size(), "processAt: bad process index");
    return *procs_[index].process;
}

MementoSpace *
Machine::mementoSpaceAt(unsigned index)
{
    panic_if(index >= procs_.size(), "mementoSpaceAt: bad process index");
    return procs_[index].space.get();
}

} // namespace memento
