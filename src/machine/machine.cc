#include "machine/machine.h"

#include "hw/mallacc.h"
#include "rt/gomalloc.h"
#include "rt/jemalloc.h"
#include "rt/pymalloc.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace memento {

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg),
      kernelCosts_(cfg_),
      instructions_(stats_.counter("machine.instructions")),
      appLoads_(stats_.counter("machine.app_loads")),
      appStores_(stats_.counter("machine.app_stores"))
{
    hier_ = std::make_unique<CacheHierarchy>(cfg_, stats_);
    l1Tlb_ = std::make_unique<Tlb>("l1tlb", cfg_.l1Tlb, stats_);
    l2Tlb_ = std::make_unique<Tlb>("l2tlb", cfg_.l2Tlb, stats_);
    walker_ = std::make_unique<PageWalker>(*hier_);
    // Physical memory starts above a reserved low region so that no
    // valid frame aliases kNullAddr.
    buddy_ = std::make_unique<BuddyAllocator>(1ull << 22,
                                              cfg_.dram.sizeBytes, stats_);

    if (cfg_.memento.enabled) {
        geometry_ =
            std::make_unique<ArenaGeometry>(cfg_.memento, cfg_.layout);
        hot_ = std::make_unique<Hot>(cfg_.memento, stats_);
        hwPage_ = std::make_unique<HwPageAllocator>(cfg_, *geometry_,
                                                    *buddy_, stats_);
        hwObj_ = std::make_unique<HwObjectAllocator>(
            cfg_, *geometry_, *hot_, *hwPage_, stats_);
        bypass_ = std::make_unique<BypassUnit>(cfg_.memento, *geometry_,
                                               stats_);
    }
}

Machine::~Machine() = default;

void
Machine::chargeInstructions(InstCount n)
{
    instructions_ += n;
    const double cycles =
        static_cast<double>(n) / cfg_.core.baseIpc;
    ledger_.charge(static_cast<Cycles>(cycles + 0.5));
}

void
Machine::chargeCycles(Cycles n)
{
    ledger_.charge(n);
}

Addr
Machine::mementoWalk(Addr vaddr)
{
    MementoSpace &space = *procs_[current_].space;
    Cycles walk_latency = 0;
    WalkResult res = walker_->walk(space.mpt, vaddr, now(), walk_latency);
    ledger_.charge(walk_latency);
    if (res.valid)
        return res.ppage;
    // Invalid entry: the page allocator expands the table / backs the
    // page during the walk (§3.2).
    return hwPage_->populateOnWalk(space, vaddr, *this);
}

Addr
Machine::translate(Addr vaddr)
{
    // L1 TLB (entries may be 4 KiB or 2 MiB).
    chargeCycles(l1Tlb_->latency());
    if (auto paddr = l1Tlb_->translate(vaddr))
        return *paddr;

    // L2 TLB.
    chargeCycles(l2Tlb_->latency());
    if (auto paddr = l2Tlb_->translate(vaddr)) {
        // Refill the L1 at the same granularity the mapping has.
        ProcContext &p = procs_[current_];
        const bool is_huge = p.process->vm().lookupHuge(vaddr).has_value();
        l1Tlb_->insert(vaddr, *paddr - (vaddr & ((1ull << (is_huge ? kHugePageShift : kPageShift)) - 1)),
                       is_huge ? kHugePageShift : kPageShift);
        return *paddr;
    }

    // Page walk. The MMU compares against MRS/MRE to pick the table.
    ProcContext &proc = procs_[current_];
    Addr ppage = kNullAddr;
    const MementoRegs &regs = proc.process->mementoRegs();
    const bool in_region = cfg_.memento.enabled && vaddr >= regs.mrs &&
                           vaddr < regs.mre;
    if (in_region) {
        ppage = mementoWalk(vaddr);
    } else {
        VirtualMemory &vm = proc.process->vm();
        // A huge (PMD-level) mapping terminates the walk a level early.
        if (auto huge = vm.lookupHuge(vaddr)) {
            chargeCycles(3 * cfg_.l2.latency / 2); // 3-level walk approx.
            const Addr base = *huge - (vaddr & ((1ull << kHugePageShift) - 1));
            l1Tlb_->insert(vaddr, base, kHugePageShift);
            l2Tlb_->insert(vaddr, base, kHugePageShift);
            return *huge;
        }
        Cycles walk_latency = 0;
        WalkResult res =
            walker_->walk(vm.pageTable(), vaddr, now(), walk_latency);
        ledger_.charge(walk_latency);
        if (!res.valid) {
            // Demand fault, then the access retries the walk.
            sim_error_if(!vm.handleFault(vaddr, *this),
                         ErrorCategory::Trace,
                         "segfault at 0x", std::hex, vaddr);
            if (auto huge = vm.lookupHuge(vaddr)) {
                // The fault was satisfied with a huge page (THP).
                const Addr base =
                    *huge - (vaddr & ((1ull << kHugePageShift) - 1));
                l1Tlb_->insert(vaddr, base, kHugePageShift);
                l2Tlb_->insert(vaddr, base, kHugePageShift);
                return *huge;
            }
            walk_latency = 0;
            res = walker_->walk(vm.pageTable(), vaddr, now(),
                                walk_latency);
            ledger_.charge(walk_latency);
            panic_if(!res.valid, "walk invalid after fault");
        }
        ppage = res.ppage;
    }

    l1Tlb_->insert(vaddr, ppage);
    l2Tlb_->insert(vaddr, ppage);
    return ppage + (vaddr & (kPageSize - 1));
}

Cycles
Machine::accessVirtual(Addr vaddr, AccessType type)
{
    const Cycles before = ledger_.total();
    const Addr paddr = translate(vaddr);
    AccessResult res = hier_->access(paddr, type, now());
    // Stores retire from the store buffer wherever they occur —
    // allocator metadata updates and object zeroing included — so the
    // bulk of a write's hierarchy latency is hidden. Loads on these
    // paths are dependent pointer chases and stay fully exposed.
    Cycles charge = res.latency;
    if (type == AccessType::Write) {
        const double exposed =
            static_cast<double>(res.latency) *
            (1.0 - cfg_.core.storeLatencyHiddenFraction);
        charge = static_cast<Cycles>(exposed < 1.0 ? 1.0 : exposed);
    }
    ledger_.charge(charge);
    return ledger_.total() - before;
}

Cycles
Machine::accessPhysical(Addr paddr, AccessType type, AccessAttrs attrs)
{
    AccessResult res = hier_->access(paddr, type, now(), attrs);
    ledger_.charge(res.latency);
    return res.latency;
}

Cycles
Machine::installPhysical(Addr paddr)
{
    Cycles latency = hier_->installLine(paddr, now());
    ledger_.charge(latency);
    return latency;
}

void
Machine::tlbInvalidate(Addr vaddr)
{
    l1Tlb_->invalidatePage(vaddr);
    l2Tlb_->invalidatePage(vaddr);
}

unsigned
Machine::createProcess(const WorkloadSpec &spec)
{
    ProcContext proc;
    proc.process = std::make_unique<Process>(
        nextPid_++, spec.id, cfg_, *buddy_, stats_);

    VirtualMemory &vm = proc.process->vm();
    if (cfg_.memento.enabled) {
        proc.space = std::make_unique<MementoSpace>(
            *geometry_, hwPage_->poolFrames());
        proc.process->mementoRegs().mptr = proc.space->mpt.rootPhys();
        if (cfg_.memento.mallaccMode) {
            // §6.7 comparison: idealized Mallacc instead of Memento.
            proc.allocator =
                std::make_unique<MallaccAllocator>(vm, stats_);
        } else {
            proc.allocator = std::make_unique<MementoAllocator>(
                *hwObj_, *proc.space, vm, stats_);
        }
    } else {
        switch (spec.lang) {
          case Language::Python: {
            PyMalloc::Params params;
            params.arenaBytes = cfg_.tuning.pymallocArenaBytes;
            proc.allocator =
                std::make_unique<PyMalloc>(vm, stats_, params);
            break;
          }
          case Language::Cpp: {
            JeMalloc::Params params;
            params.chunkBytes = cfg_.tuning.jemallocChunkBytes;
            // Long-running servers run jemalloc with decay purging,
            // which keeps page faults frequent on their heaps (§6.1).
            if (spec.domain == Domain::DataProc) {
                params.purgeIntervalOps = 1000;
                params.tcacheMax = 32;
            }
            proc.allocator =
                std::make_unique<JeMalloc>(vm, stats_, params);
            break;
          }
          case Language::Golang: {
            GoMalloc::Params params;
            // Long-running platform processes reach GC triggers;
            // short functions never do (§2.2).
            params.gcTriggerBytes = spec.domain == Domain::Platform
                                        ? cfg_.tuning.goGcTriggerBytes
                                        : 0;
            proc.allocator =
                std::make_unique<GoMalloc>(vm, stats_, params);
            break;
          }
        }
    }

    // Static working set (code + globals + inputs). A warm container
    // has this resident already, so it is populated at set-up.
    proc.staticWsBytes = spec.staticWsBytes;
    proc.staticBase = vm.mmap(spec.staticWsBytes, nullptr,
                              /*populate=*/true);

    procs_.push_back(std::move(proc));
    return static_cast<unsigned>(procs_.size() - 1);
}

void
Machine::switchTo(unsigned index)
{
    panic_if(index >= procs_.size(), "switchTo: bad process index");
    if (index == current_)
        return;
    unsigned flushed = 0;
    if (hot_)
        flushed = hot_->flush();
    kernelCosts_.chargeContextSwitch(*this, flushed);
    l1Tlb_->flushAll();
    l2Tlb_->flushAll();
    current_ = index;
}

Allocator &
Machine::allocator()
{
    panic_if(procs_.empty(), "no process created");
    return *procs_[current_].allocator;
}

Process &
Machine::process()
{
    panic_if(procs_.empty(), "no process created");
    return *procs_[current_].process;
}

Addr
Machine::staticBase() const
{
    return procs_[current_].staticBase;
}

MementoSpace *
Machine::mementoSpace()
{
    if (procs_.empty())
        return nullptr;
    return procs_[current_].space.get();
}

Process &
Machine::processAt(unsigned index)
{
    panic_if(index >= procs_.size(), "processAt: bad process index");
    return *procs_[index].process;
}

MementoSpace *
Machine::mementoSpaceAt(unsigned index)
{
    panic_if(index >= procs_.size(), "mementoSpaceAt: bad process index");
    return procs_[index].space.get();
}

void
Machine::appCompute(InstCount n)
{
    CategoryScope scope(ledger_, CycleCategory::AppCompute);
    chargeInstructions(n);
}

void
Machine::appAccess(Addr vaddr, AccessType type)
{
    CategoryScope scope(ledger_, CycleCategory::AppMemory);
    if (type == AccessType::Write)
        ++appStores_;
    else
        ++appLoads_;

    const Addr paddr = translate(vaddr);

    AccessAttrs attrs;
    if (bypass_ && procs_[current_].space &&
        geometry_->inRegion(vaddr)) {
        attrs.bypassCandidate =
            bypass_->onAccess(*procs_[current_].space, vaddr);
    }

    AccessResult res = hier_->access(paddr, type, now(), attrs);
    // The OOO window overlaps part of the hierarchy latency with
    // useful work; stores retire from the store buffer and almost
    // never stall, loads stall on the unhidden remainder.
    const double hidden = type == AccessType::Write
                              ? cfg_.core.storeLatencyHiddenFraction
                              : cfg_.core.memLatencyHiddenFraction;
    const double exposed =
        static_cast<double>(res.latency) * (1.0 - hidden);
    ledger_.charge(static_cast<Cycles>(exposed < 1.0 ? 1.0 : exposed));
}

} // namespace memento
