#include "sim/atomic_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/error.h"

namespace memento {
namespace {

/** Directory part of @p path ("." when there is none). */
std::string
dirOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** fsync the directory entry so a rename survives a crash. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return; // Best effort: some filesystems refuse directory fds.
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
writeFileAtomic(const std::string &path, std::string_view contents)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    sim_error_if(fd < 0, ErrorCategory::Internal, "cannot create ", tmp,
                 ": ", std::strerror(errno));

    std::size_t off = 0;
    while (off < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + off, contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string why = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            sim_error(ErrorCategory::Internal, "short write to ", tmp,
                      ": ", why);
        }
        off += static_cast<std::size_t>(n);
    }

    if (::fsync(fd) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        sim_error(ErrorCategory::Internal, "fsync failed for ", tmp, ": ",
                  why);
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string why = std::strerror(errno);
        ::unlink(tmp.c_str());
        sim_error(ErrorCategory::Internal, "cannot rename ", tmp, " to ",
                  path, ": ", why);
    }
    syncDir(dirOf(path));
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        return false;
    out = ss.str();
    return true;
}

} // namespace memento
