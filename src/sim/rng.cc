#include "sim/rng.h"

#include <cmath>

#include "sim/logging.h"

namespace memento {
namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "nextRange: lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w > 0 ? w : 0;
    panic_if(total <= 0.0, "nextWeighted: no positive weight");

    double pick = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        double w = weights[i] > 0 ? weights[i] : 0;
        if (pick < w)
            return i;
        pick -= w;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    panic_if(p <= 0.0 || p > 1.0, "nextGeometric: p out of (0,1]");
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Inverse CDF; clamp to avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

} // namespace memento
