#include "sim/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.h"

namespace memento {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < frames_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (frames_.empty()) {
        panic_if(wroteRoot_ && !keyPending_,
                 "json: second root value in one document");
        return;
    }
    if (keyPending_)
        return; // key() already positioned us.
    panic_if(frames_.back() == Frame::Object,
             "json: value inside an object requires a key");
    if (frameHasElems_.back())
        os_ << ',';
    frameHasElems_.back() = true;
    newlineIndent();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object,
             "json: key outside an object");
    panic_if(keyPending_, "json: key after key");
    if (frameHasElems_.back())
        os_ << ',';
    frameHasElems_.back() = true;
    newlineIndent();
    os_ << '"' << jsonEscape(k) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    keyPending_ = false;
    os_ << '{';
    frames_.push_back(Frame::Object);
    frameHasElems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object,
             "json: endObject without beginObject");
    panic_if(keyPending_, "json: endObject with a dangling key");
    const bool had = frameHasElems_.back();
    frames_.pop_back();
    frameHasElems_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    keyPending_ = false;
    os_ << '[';
    frames_.push_back(Frame::Array);
    frameHasElems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Array,
             "json: endArray without beginArray");
    const bool had = frameHasElems_.back();
    frames_.pop_back();
    frameHasElems_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    keyPending_ = false;
    os_ << '"' << jsonEscape(v) << '"';
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    keyPending_ = false;
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    keyPending_ = false;
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    keyPending_ = false;
    if (!std::isfinite(v)) {
        os_ << "null";
    } else {
        // Locale-independent, stable across platforms.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os_ << buf;
    }
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    keyPending_ = false;
    os_ << (v ? "true" : "false");
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    beforeValue();
    keyPending_ = false;
    os_ << "null";
    wroteRoot_ = true;
    return *this;
}

void
writeSchemaHeader(JsonWriter &w, std::string_view kind)
{
    w.member("schema_version", kJsonSchemaVersion);
    w.member("kind", kind);
}

} // namespace memento
