#include "sim/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.h"

namespace memento {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < frames_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (frames_.empty()) {
        panic_if(wroteRoot_ && !keyPending_,
                 "json: second root value in one document");
        return;
    }
    if (keyPending_)
        return; // key() already positioned us.
    panic_if(frames_.back() == Frame::Object,
             "json: value inside an object requires a key");
    if (frameHasElems_.back())
        os_ << ',';
    frameHasElems_.back() = true;
    newlineIndent();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object,
             "json: key outside an object");
    panic_if(keyPending_, "json: key after key");
    if (frameHasElems_.back())
        os_ << ',';
    frameHasElems_.back() = true;
    newlineIndent();
    os_ << '"' << jsonEscape(k) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    keyPending_ = false;
    os_ << '{';
    frames_.push_back(Frame::Object);
    frameHasElems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object,
             "json: endObject without beginObject");
    panic_if(keyPending_, "json: endObject with a dangling key");
    const bool had = frameHasElems_.back();
    frames_.pop_back();
    frameHasElems_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    keyPending_ = false;
    os_ << '[';
    frames_.push_back(Frame::Array);
    frameHasElems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Array,
             "json: endArray without beginArray");
    const bool had = frameHasElems_.back();
    frames_.pop_back();
    frameHasElems_.pop_back();
    if (had) {
        newlineIndent();
    }
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    keyPending_ = false;
    os_ << '"' << jsonEscape(v) << '"';
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    keyPending_ = false;
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    keyPending_ = false;
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    keyPending_ = false;
    if (!std::isfinite(v)) {
        os_ << "null";
    } else {
        // Locale-independent, stable across platforms.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os_ << buf;
    }
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    keyPending_ = false;
    os_ << (v ? "true" : "false");
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    beforeValue();
    keyPending_ = false;
    os_ << "null";
    wroteRoot_ = true;
    return *this;
}

void
writeSchemaHeader(JsonWriter &w, std::string_view kind)
{
    w.member("schema_version", kJsonSchemaVersion);
    w.member("kind", kind);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/**
 * Recursive-descent JSON reader. Errors carry the byte offset so a
 * corrupt cache record can be reported precisely; depth is bounded so
 * adversarial nesting cannot blow the stack.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        if (!parseValue(out, 0)) {
            err = err_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            err = fail("trailing garbage after document");
            return false;
        }
        return true;
    }

  private:
    static constexpr std::size_t kMaxDepth = 64;

    std::string
    fail(std::string_view why)
    {
        if (err_.empty())
            err_ = "json: offset " + std::to_string(pos_) + ": " +
                   std::string(why);
        return err_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return false;
            const char c = text_[pos_++];
            unsigned digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return false;
            out = out * 16 + digit;
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp)) {
                    fail("bad \\u escape");
                    return false;
                }
                if (cp >= 0xd800 && cp <= 0xdfff) {
                    fail("surrogate \\u escape not supported");
                    return false;
                }
                // UTF-8 encode the code point (BMP only).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (consume('-'))
            negative = true;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ == start + (negative ? 1u : 0u)) {
            fail("bad number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        out.type = JsonValue::Type::Number;
        try {
            out.number = std::stod(token);
        } catch (...) {
            fail("unrepresentable number");
            return false;
        }
        if (integral && !negative) {
            try {
                out.u64 = std::stoull(token);
                out.isInteger = true;
            } catch (...) {
                // Exceeds u64: keep the double reading only.
            }
        }
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':')) {
                    fail("expected ':' after object key");
                    return false;
                }
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                fail("expected ',' or '}' in object");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                out.items.push_back(std::move(elem));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                fail("expected ',' or ']' in array");
                return false;
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        }
        if (consumeWord("true")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (consumeWord("false")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (consumeWord("null")) {
            out.type = JsonValue::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    return JsonParser(text).parse(out, err);
}

} // namespace memento
