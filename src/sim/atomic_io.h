/**
 * @file
 * Crash-safe file writes: temp file + fsync + rename.
 *
 * Every report or cache record the simulator persists goes through
 * writeFileAtomic(), so an interrupted process can never leave a
 * half-written file under the final name: readers observe either the
 * previous complete content or the new complete content. The temp file
 * lives in the destination directory (rename must not cross
 * filesystems) under a pid-unique name, and the directory entry is
 * fsynced after the rename so the new name itself survives a crash.
 */

#ifndef MEMENTO_SIM_ATOMIC_IO_H
#define MEMENTO_SIM_ATOMIC_IO_H

#include <string>
#include <string_view>

namespace memento {

/**
 * Atomically replace the file at @p path with @p contents.
 * Throws SimError(Internal) when the filesystem refuses (unwritable
 * directory, disk full) — the partial temp file is removed first.
 */
void writeFileAtomic(const std::string &path, std::string_view contents);

/**
 * Read the whole file at @p path into @p out. Returns false (without
 * touching @p out's error state) when the file does not exist or
 * cannot be read.
 */
bool readFile(const std::string &path, std::string &out);

} // namespace memento

#endif // MEMENTO_SIM_ATOMIC_IO_H
