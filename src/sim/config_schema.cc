#include "sim/config_schema.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "sim/error.h"

namespace memento {
namespace {

constexpr double kNoMin = 0.0;
constexpr double kNoMax = 1e30; // Effectively unbounded.

/** Setter shorthand: the lambda body stores `v` into the config `c`. */
#define MEMENTO_SET(expr)                                                   \
    +[](MachineConfig &c, const ConfigValue &v) {                           \
        (void)v;                                                            \
        expr;                                                               \
    }

const std::vector<ConfigKeyInfo> &
schemaTable()
{
    // Sorted by name; checked by the SchemaSorted test.
    static const std::vector<ConfigKeyInfo> table = {
        {"check.interval", ConfigType::U64, kNoMin, kNoMax,
         "invariant-checker period in trace ops (0 = off)",
         MEMENTO_SET(c.check.interval = v.u64)},
        {"check.max_cycles", ConfigType::U64, kNoMin, kNoMax,
         "watchdog cycle budget per run (0 = off)",
         MEMENTO_SET(c.check.maxCycles = v.u64)},
        {"check.max_ops", ConfigType::U64, kNoMin, kNoMax,
         "watchdog trace-op budget per run (0 = off)",
         MEMENTO_SET(c.check.maxOps = v.u64)},
        {"core.base_ipc", ConfigType::F64, 0.01, 64,
         "non-memory retirement IPC",
         MEMENTO_SET(c.core.baseIpc = v.f64)},
        {"core.freq_ghz", ConfigType::F64, 0.01, 100, "core clock (GHz)",
         MEMENTO_SET(c.core.freqGhz = v.f64)},
        {"core.load_hidden", ConfigType::F64, 0, 1,
         "fraction of load latency hidden by the OOO window",
         MEMENTO_SET(c.core.memLatencyHiddenFraction = v.f64)},
        {"core.store_hidden", ConfigType::F64, 0, 1,
         "fraction of store latency hidden by the store buffer",
         MEMENTO_SET(c.core.storeLatencyHiddenFraction = v.f64)},
        {"dram.banks", ConfigType::U32, 1, 65536, "DRAM bank count",
         MEMENTO_SET(c.dram.banks = static_cast<unsigned>(v.u64))},
        {"dram.hit_latency", ConfigType::U64, kNoMin, 1e9,
         "row-hit latency (cycles)",
         MEMENTO_SET(c.dram.hitLatency = v.u64)},
        {"dram.miss_latency", ConfigType::U64, kNoMin, 1e9,
         "row-miss latency (cycles)",
         MEMENTO_SET(c.dram.missLatency = v.u64)},
        {"dram.size", ConfigType::U64, 1 << 20, 1ull << 48,
         "DRAM capacity (bytes)", MEMENTO_SET(c.dram.sizeBytes = v.u64)},
        {"fleet.arrival", ConfigType::String, kNoMin, kNoMax,
         "fleet arrival process: poisson, bursty, or diurnal",
         MEMENTO_SET(c.fleet.arrival = v.str)},
        {"fleet.burst_factor", ConfigType::F64, 1, 1000,
         "bursty arrivals: rate multiplier inside a burst",
         MEMENTO_SET(c.fleet.burstFactor = v.f64)},
        {"fleet.burst_ms", ConfigType::F64, 0.01, 1e6,
         "bursty arrivals: burst length (ms)",
         MEMENTO_SET(c.fleet.burstMs = v.f64)},
        {"fleet.cores", ConfigType::U32, 1, 4096,
         "simulated cores on the fleet node",
         MEMENTO_SET(c.fleet.cores = static_cast<unsigned>(v.u64))},
        {"fleet.invocations", ConfigType::U64, 1, 100'000'000,
         "total invocations the arrival process generates",
         MEMENTO_SET(c.fleet.invocations = v.u64)},
        {"fleet.keep_alive_ms", ConfigType::F64, kNoMin, 1e9,
         "keep-alive window for idle instances (ms; 0 = none)",
         MEMENTO_SET(c.fleet.keepAliveMs = v.f64)},
        {"fleet.memory_budget_pages", ConfigType::U64, kNoMin, kNoMax,
         "node RSS budget in pages (0 = unlimited)",
         MEMENTO_SET(c.fleet.memoryBudgetPages = v.u64)},
        {"fleet.mix", ConfigType::String, kNoMin, kNoMax,
         "workload mix: 'function', 'all', or one workload id",
         MEMENTO_SET(c.fleet.mix = v.str)},
        {"fleet.period_ms", ConfigType::F64, 0.01, 1e6,
         "bursty arrivals: burst period (ms)",
         MEMENTO_SET(c.fleet.periodMs = v.f64)},
        {"fleet.rate_rps", ConfigType::F64, 0.01, 1e9,
         "mean arrival rate (invocations per second)",
         MEMENTO_SET(c.fleet.ratePerSec = v.f64)},
        {"fleet.seed", ConfigType::U64, kNoMin, kNoMax,
         "seed of the arrival-process RNG",
         MEMENTO_SET(c.fleet.seed = v.u64)},
        {"inject.arena_bit_flip_at", ConfigType::U64, kNoMin, kNoMax,
         "flip an arena bitmap bit after op N (0 = off)",
         MEMENTO_SET(c.inject.arenaBitFlipAt = v.u64)},
        {"inject.mmap_fail_at", ConfigType::U64, kNoMin, kNoMax,
         "fail the Nth mmap call (0 = off)",
         MEMENTO_SET(c.inject.mmapFailAt = v.u64)},
        {"inject.pool_exhaust_at", ConfigType::U64, kNoMin, kNoMax,
         "fail the page pool after N granted pages (0 = off)",
         MEMENTO_SET(c.inject.poolExhaustAtPage = v.u64)},
        {"inject.store_kill_at", ConfigType::U64, kNoMin, kNoMax,
         "kill the process after the Nth completed cell store (0 = off)",
         MEMENTO_SET(c.inject.storeKillAt = v.u64)},
        {"inject.store_torn_write", ConfigType::U64, kNoMin, kNoMax,
         "tear the Nth result-store cell write in half (0 = off)",
         MEMENTO_SET(c.inject.storeTornWriteAt = v.u64)},
        {"inject.trace_corrupt_at", ConfigType::U64, kNoMin, kNoMax,
         "corrupt the trace record at op N (0 = off)",
         MEMENTO_SET(c.inject.traceCorruptAt = v.u64)},
        {"inject.trace_truncate_at", ConfigType::U64, kNoMin, kNoMax,
         "truncate the replayed trace to N ops (0 = off)",
         MEMENTO_SET(c.inject.traceTruncateAt = v.u64)},
        {"inject.workload", ConfigType::String, kNoMin, kNoMax,
         "restrict the fault plan to this workload id",
         MEMENTO_SET(c.inject.workload = v.str)},
        {"kernel.fault_instructions", ConfigType::U64, kNoMin, 1e12,
         "instructions per minor page fault",
         MEMENTO_SET(c.kernel.faultInstructions = v.u64)},
        {"kernel.map_populate", ConfigType::Bool, kNoMin, kNoMax,
         "mmap eagerly populates pages",
         MEMENTO_SET(c.kernel.mapPopulate = v.boolean)},
        {"kernel.mmap_instructions", ConfigType::U64, kNoMin, 1e12,
         "instructions per mmap call",
         MEMENTO_SET(c.kernel.mmapInstructions = v.u64)},
        {"kernel.mode_switch_cycles", ConfigType::U64, kNoMin, 1e9,
         "user/kernel mode-switch cost (cycles)",
         MEMENTO_SET(c.kernel.modeSwitchCycles = v.u64)},
        {"kernel.thp", ConfigType::Bool, kNoMin, kNoMax,
         "transparent huge pages for anonymous faults",
         MEMENTO_SET(c.kernel.transparentHugePages = v.boolean)},
        {"l1d.latency", ConfigType::U64, kNoMin, 1e6,
         "L1D hit latency (cycles)", MEMENTO_SET(c.l1d.latency = v.u64)},
        {"l1d.size", ConfigType::U64, kLineSize, 1ull << 40,
         "L1D capacity (bytes)", MEMENTO_SET(c.l1d.sizeBytes = v.u64)},
        {"l1d.ways", ConfigType::U32, 1, 1024, "L1D associativity",
         MEMENTO_SET(c.l1d.ways = static_cast<unsigned>(v.u64))},
        {"l1i.latency", ConfigType::U64, kNoMin, 1e6,
         "L1I hit latency (cycles)", MEMENTO_SET(c.l1i.latency = v.u64)},
        {"l1i.size", ConfigType::U64, kLineSize, 1ull << 40,
         "L1I capacity (bytes)", MEMENTO_SET(c.l1i.sizeBytes = v.u64)},
        {"l1i.ways", ConfigType::U32, 1, 1024, "L1I associativity",
         MEMENTO_SET(c.l1i.ways = static_cast<unsigned>(v.u64))},
        {"l2.latency", ConfigType::U64, kNoMin, 1e6,
         "L2 hit latency (cycles)", MEMENTO_SET(c.l2.latency = v.u64)},
        {"l2.size", ConfigType::U64, kLineSize, 1ull << 40,
         "L2 capacity (bytes)", MEMENTO_SET(c.l2.sizeBytes = v.u64)},
        {"l2.ways", ConfigType::U32, 1, 1024, "L2 associativity",
         MEMENTO_SET(c.l2.ways = static_cast<unsigned>(v.u64))},
        {"layout.heap_base", ConfigType::U64, 4096, 1ull << 47,
         "base address of the conventional mmap heap",
         MEMENTO_SET(c.layout.heapBase = v.u64)},
        {"layout.memento_region_start", ConfigType::U64, 4096,
         1ull << 47, "Memento Region Start (MRS) register value",
         MEMENTO_SET(c.layout.mementoRegionStart = v.u64)},
        {"layout.per_class_region_bytes", ConfigType::U64, 4096,
         1ull << 40, "Memento region bytes reserved per size class",
         MEMENTO_SET(c.layout.perClassRegionBytes = v.u64)},
        {"llc.latency", ConfigType::U64, kNoMin, 1e6,
         "LLC hit latency (cycles)", MEMENTO_SET(c.llc.latency = v.u64)},
        {"llc.size", ConfigType::U64, kLineSize, 1ull << 40,
         "LLC capacity (bytes)", MEMENTO_SET(c.llc.sizeBytes = v.u64)},
        {"llc.ways", ConfigType::U32, 1, 1024, "LLC associativity",
         MEMENTO_SET(c.llc.ways = static_cast<unsigned>(v.u64))},
        {"memento.bypass", ConfigType::Bool, kNoMin, kNoMax,
         "enable the main-memory bypass mechanism",
         MEMENTO_SET(c.memento.bypassEnabled = v.boolean)},
        {"memento.eager_prefetch", ConfigType::Bool, kNoMin, kNoMax,
         "prefetch the next arena on last-object alloc",
         MEMENTO_SET(c.memento.eagerArenaPrefetch = v.boolean)},
        {"memento.enabled", ConfigType::Bool, kNoMin, kNoMax,
         "enable the Memento hardware",
         MEMENTO_SET(c.memento.enabled = v.boolean)},
        {"memento.hot_latency", ConfigType::U64, kNoMin, 1e6,
         "HOT hit latency (cycles)",
         MEMENTO_SET(c.memento.hotLatency = v.u64)},
        {"memento.mallacc", ConfigType::Bool, kNoMin, kNoMax,
         "idealized Mallacc comparator instead of Memento",
         MEMENTO_SET(c.memento.mallaccMode = v.boolean)},
        {"memento.objects_per_arena", ConfigType::U32, 1, 1 << 20,
         "objects per arena",
         MEMENTO_SET(c.memento.objectsPerArena =
                         static_cast<unsigned>(v.u64))},
        {"memento.pool_refill", ConfigType::U32, 1, 1 << 20,
         "pages granted per page-pool refill",
         MEMENTO_SET(c.memento.pagePoolRefill =
                         static_cast<unsigned>(v.u64))},
        {"sweep.cache_dir", ConfigType::String, kNoMin, kNoMax,
         "result-store directory for crash-safe resumable sweeps",
         MEMENTO_SET(c.sweep.cacheDir = v.str)},
        {"sweep.keep_going", ConfigType::Bool, kNoMin, kNoMax,
         "record per-cell failures and keep sweeping",
         MEMENTO_SET(c.sweep.keepGoing = v.boolean)},
        {"sweep.retry", ConfigType::U32, kNoMin, 16,
         "extra attempts per failed sweep cell",
         MEMENTO_SET(c.sweep.retries = static_cast<unsigned>(v.u64))},
        {"sweep.shard_count", ConfigType::U32, 1, 4096,
         "total shard count for a distributed sweep",
         MEMENTO_SET(c.sweep.shardCount = static_cast<unsigned>(v.u64))},
        {"sweep.shard_index", ConfigType::U32, kNoMin, 4095,
         "this process's shard index (must be < sweep.shard_count)",
         MEMENTO_SET(c.sweep.shardIndex = static_cast<unsigned>(v.u64))},
        {"tlb.l1_entries", ConfigType::U32, 1, 1 << 24,
         "L1 TLB entry count",
         MEMENTO_SET(c.l1Tlb.entries = static_cast<unsigned>(v.u64))},
        {"tlb.l1_ways", ConfigType::U32, 1, 1024, "L1 TLB associativity",
         MEMENTO_SET(c.l1Tlb.ways = static_cast<unsigned>(v.u64))},
        {"tlb.l2_entries", ConfigType::U32, 1, 1 << 24,
         "L2 TLB entry count",
         MEMENTO_SET(c.l2Tlb.entries = static_cast<unsigned>(v.u64))},
        {"tlb.l2_ways", ConfigType::U32, 1, 1024, "L2 TLB associativity",
         MEMENTO_SET(c.l2Tlb.ways = static_cast<unsigned>(v.u64))},
        {"tuning.go_gc_trigger", ConfigType::U64, 1024, 1ull << 40,
         "Go GC trigger heap size (bytes)",
         MEMENTO_SET(c.tuning.goGcTriggerBytes = v.u64)},
        {"tuning.jemalloc_chunk", ConfigType::U64, 4096, 1ull << 40,
         "jemalloc chunk size (bytes)",
         MEMENTO_SET(c.tuning.jemallocChunkBytes = v.u64)},
        {"tuning.pymalloc_arena", ConfigType::U64, 4096, 1ull << 40,
         "pymalloc arena size (bytes)",
         MEMENTO_SET(c.tuning.pymallocArenaBytes = v.u64)},
    };
    return table;
}

#undef MEMENTO_SET

/** Integer grammar: decimal with k/m/g suffix, or 0x hexadecimal. */
bool
parseU64(const std::string &raw, std::uint64_t &out)
{
    std::string v = raw;
    std::uint64_t scale = 1;
    int base = 10;
    if (v.size() > 2 && v[0] == '0' &&
        (v[1] == 'x' || v[1] == 'X')) {
        base = 16;
    } else if (!v.empty()) {
        switch (std::tolower(static_cast<unsigned char>(v.back()))) {
          case 'k': scale = 1ull << 10; v.pop_back(); break;
          case 'm': scale = 1ull << 20; v.pop_back(); break;
          case 'g': scale = 1ull << 30; v.pop_back(); break;
          default: break;
        }
    }
    if (v.empty() || v[0] == '-')
        return false;
    std::size_t pos = 0;
    std::uint64_t parsed = 0;
    try {
        parsed = std::stoull(v, &pos, base);
    } catch (...) {
        return false;
    }
    if (pos != v.size())
        return false;
    if (scale != 1 && parsed > std::numeric_limits<std::uint64_t>::max() / scale)
        return false;
    out = parsed * scale;
    return true;
}

bool
parseF64(const std::string &raw, double &out)
{
    std::size_t pos = 0;
    try {
        out = std::stod(raw, &pos);
    } catch (...) {
        return false;
    }
    return pos == raw.size();
}

bool
parseBool(const std::string &raw, bool &out)
{
    std::string v = raw;
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (v == "true" || v == "on" || v == "1" || v == "yes") {
        out = true;
        return true;
    }
    if (v == "false" || v == "off" || v == "0" || v == "no") {
        out = false;
        return true;
    }
    return false;
}

const char *
typeName(ConfigType type)
{
    switch (type) {
      case ConfigType::U64:
      case ConfigType::U32: return "integer";
      case ConfigType::F64: return "number";
      case ConfigType::Bool: return "boolean";
      case ConfigType::String: return "string";
    }
    return "value";
}

/**
 * Damerau-Levenshtein distance (optimal string alignment), the
 * standard "did you mean" metric: one edit covers an insertion, a
 * deletion, a substitution, or an adjacent transposition.
 */
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<std::vector<std::size_t>> d(n + 1,
                                            std::vector<std::size_t>(m + 1));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub = a[i - 1] == b[j - 1] ? 0 : 1;
            d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                                d[i - 1][j - 1] + sub});
            if (i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
                a[i - 2] == b[j - 1]) {
                d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
            }
        }
    }
    return d[n][m];
}

} // namespace

const std::vector<ConfigKeyInfo> &
configSchema()
{
    return schemaTable();
}

const ConfigKeyInfo *
findConfigKey(std::string_view key)
{
    const std::vector<ConfigKeyInfo> &schema = schemaTable();
    const auto it = std::lower_bound(
        schema.begin(), schema.end(), key,
        [](const ConfigKeyInfo &info, std::string_view k) {
            return std::string_view(info.name) < k;
        });
    if (it == schema.end() || std::string_view(it->name) != key)
        return nullptr;
    return &*it;
}

ConfigParseStatus
tryParseConfigValue(const ConfigKeyInfo &info, const std::string &raw,
                    ConfigValue &out, std::string &why)
{
    double numeric = 0.0;
    switch (info.type) {
      case ConfigType::U64:
      case ConfigType::U32:
        if (!parseU64(raw, out.u64)) {
            why = "bad integer '" + raw + "'";
            return ConfigParseStatus::BadValue;
        }
        numeric = static_cast<double>(out.u64);
        break;
      case ConfigType::F64:
        if (!parseF64(raw, out.f64)) {
            why = "bad number '" + raw + "'";
            return ConfigParseStatus::BadValue;
        }
        numeric = out.f64;
        break;
      case ConfigType::Bool:
        if (!parseBool(raw, out.boolean)) {
            why = "bad boolean '" + raw + "'";
            return ConfigParseStatus::BadValue;
        }
        return ConfigParseStatus::Ok;
      case ConfigType::String:
        out.str = raw;
        return ConfigParseStatus::Ok;
    }
    const double u32_cap =
        static_cast<double>(std::numeric_limits<std::uint32_t>::max());
    const double max =
        info.type == ConfigType::U32 ? std::min(info.maxValue, u32_cap)
                                     : info.maxValue;
    if (numeric < info.minValue || numeric > max) {
        why = detail::formatMsg("value ", raw, " out of range [",
                                info.minValue, ", ", max, "]");
        return ConfigParseStatus::OutOfRange;
    }
    return ConfigParseStatus::Ok;
}

ConfigValue
parseConfigValue(const ConfigKeyInfo &info, const std::string &key,
                 const std::string &raw)
{
    ConfigValue value;
    std::string why;
    switch (tryParseConfigValue(info, raw, value, why)) {
      case ConfigParseStatus::Ok:
        return value;
      case ConfigParseStatus::BadValue:
        sim_error(ErrorCategory::Config, "config: bad ",
                  typeName(info.type), " for ", key, ": '", raw, "'");
      case ConfigParseStatus::OutOfRange:
        sim_error(ErrorCategory::Config, "config: ", why, " for ", key);
    }
    sim_error(ErrorCategory::Config, "config: bad value for ", key);
}

std::string
suggestConfigKey(std::string_view key)
{
    const ConfigKeyInfo *best = nullptr;
    std::size_t best_dist = ~std::size_t{0};
    for (const ConfigKeyInfo &info : schemaTable()) {
        const std::size_t dist = editDistance(key, info.name);
        if (dist < best_dist) {
            best_dist = dist;
            best = &info;
        }
    }
    // A plausible typo is a short edit relative to the key length;
    // beyond that a suggestion is noise, not help.
    if (best == nullptr || best_dist > std::max<std::size_t>(2, key.size() / 4))
        return "";
    return best->name;
}

} // namespace memento
