#include "sim/error.h"

namespace memento {

std::string_view
errorCategoryName(ErrorCategory cat)
{
    switch (cat) {
      case ErrorCategory::Config: return "config";
      case ErrorCategory::Trace: return "trace";
      case ErrorCategory::OutOfMemory: return "out-of-memory";
      case ErrorCategory::Corruption: return "corruption";
      case ErrorCategory::Timeout: return "timeout";
      case ErrorCategory::Internal: return "internal";
    }
    return "unknown";
}

bool
errorCategoryFromName(std::string_view name, ErrorCategory &out)
{
    for (const auto cat :
         {ErrorCategory::Config, ErrorCategory::Trace,
          ErrorCategory::OutOfMemory, ErrorCategory::Corruption,
          ErrorCategory::Timeout, ErrorCategory::Internal}) {
        if (name == errorCategoryName(cat)) {
            out = cat;
            return true;
        }
    }
    return false;
}

} // namespace memento
