#include "sim/error.h"

namespace memento {

std::string_view
errorCategoryName(ErrorCategory cat)
{
    switch (cat) {
      case ErrorCategory::Config: return "config";
      case ErrorCategory::Trace: return "trace";
      case ErrorCategory::OutOfMemory: return "out-of-memory";
      case ErrorCategory::Corruption: return "corruption";
      case ErrorCategory::Timeout: return "timeout";
      case ErrorCategory::Internal: return "internal";
    }
    return "unknown";
}

} // namespace memento
