/**
 * @file
 * Small-object size classes shared by the software allocator models and
 * the Memento hardware: 8-byte steps up to 512 bytes (64 classes), as in
 * §3.1 of the paper.
 */

#ifndef MEMENTO_SIM_SIZE_CLASS_H
#define MEMENTO_SIM_SIZE_CLASS_H

#include <array>
#include <cstdint>

#include "sim/types.h"

namespace memento {

/** Size-class granularity in bytes. */
inline constexpr std::uint64_t kSizeClassStep = 8;

/** Number of small size classes. */
inline constexpr unsigned kNumSmallClasses = 64;

/** Largest size handled by the small-object path. */
inline constexpr std::uint64_t kMaxSmallSize =
    kSizeClassStep * kNumSmallClasses;

/** True when @p size is served by the small-object path. */
constexpr bool
isSmallSize(std::uint64_t size)
{
    return size >= 1 && size <= kMaxSmallSize;
}

namespace detail {

/** Compile-time size → class memo for the small range (index 0 unused). */
constexpr std::array<std::uint8_t, kMaxSmallSize + 1>
makeSizeClassTable()
{
    std::array<std::uint8_t, kMaxSmallSize + 1> table{};
    for (std::uint64_t size = 1; size <= kMaxSmallSize; ++size) {
        table[size] = static_cast<std::uint8_t>(
            (size + kSizeClassStep - 1) / kSizeClassStep - 1);
    }
    return table;
}

inline constexpr auto kSizeClassTable = makeSizeClassTable();

} // namespace detail

/**
 * Class index (0-based) for a small @p size. The small range resolves
 * through a compile-time memo table (every allocator model calls this
 * once per malloc); sizes past kMaxSmallSize keep the arithmetic form
 * for callers that round before delegating to the large path.
 */
constexpr unsigned
sizeClassIndex(std::uint64_t size)
{
    if (size <= kMaxSmallSize)
        return detail::kSizeClassTable[size];
    return static_cast<unsigned>((size + kSizeClassStep - 1) /
                                 kSizeClassStep) -
           1;
}

/** Rounded object size of class @p idx. */
constexpr std::uint64_t
sizeClassBytes(unsigned idx)
{
    return (static_cast<std::uint64_t>(idx) + 1) * kSizeClassStep;
}

} // namespace memento

#endif // MEMENTO_SIM_SIZE_CLASS_H
