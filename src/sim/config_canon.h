/**
 * @file
 * Canonical serialization of a MachineConfig, for content addressing.
 *
 * The result store keys every sweep cell by an FNV-1a digest of
 * (workload id, canonical config text, run options, code version), so
 * the canonical text must satisfy two properties:
 *
 *  - *Complete over results*: every configuration field that can
 *    change a run's outcome appears, in a fixed order with a fixed
 *    rendering. Adding a result-affecting field to MachineConfig and
 *    not here silently aliases distinct cells — the CanonCoversConfig
 *    test guards this with a sizeof tripwire.
 *  - *Silent over policy*: fields that steer the sweep *around* the
 *    cells without changing any cell's result — the sweep.* execution
 *    policy (cache dir, sharding, retry) and the store-level crash
 *    faults (inject.store_*) — are excluded, so a resumed or re-sharded
 *    sweep hits the cells its predecessor wrote.
 *
 * Doubles render with %.17g (exact binary round-trip); addresses in
 * hex; everything else in decimal. The text is stable across
 * platforms and runs by construction.
 */

#ifndef MEMENTO_SIM_CONFIG_CANON_H
#define MEMENTO_SIM_CONFIG_CANON_H

#include <string>

#include "sim/config.h"

namespace memento {

/** The canonical `key=value` text of @p cfg (see file comment). */
std::string canonicalConfigText(const MachineConfig &cfg);

/**
 * The code version cache keys incorporate: the git commit sha of the
 * build tree, or "unknown" outside a git checkout. Computed once and
 * cached for the process.
 */
const std::string &codeVersionString();

} // namespace memento

#endif // MEMENTO_SIM_CONFIG_CANON_H
