#include "sim/config_canon.h"

#include <cstdio>
#include <sstream>

namespace memento {
namespace {

/** Append one `name=value` line. */
class CanonWriter
{
  public:
    void
    field(const char *name, std::uint64_t v)
    {
        os_ << name << '=' << v << '\n';
    }

    void
    field(const char *name, unsigned v)
    {
        os_ << name << '=' << v << '\n';
    }

    void
    field(const char *name, bool v)
    {
        os_ << name << '=' << (v ? 1 : 0) << '\n';
    }

    void
    field(const char *name, double v)
    {
        // %.17g renders any double exactly (binary round-trip).
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os_ << name << '=' << buf << '\n';
    }

    void
    field(const char *name, const std::string &v)
    {
        os_ << name << '=' << v << '\n';
    }

    void
    hexField(const char *name, std::uint64_t v)
    {
        os_ << name << "=0x" << std::hex << v << std::dec << '\n';
    }

    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

void
cacheFields(CanonWriter &w, const char *prefix, const CacheConfig &c)
{
    const std::string p(prefix);
    w.field((p + ".size").c_str(), c.sizeBytes);
    w.field((p + ".ways").c_str(), c.ways);
    w.field((p + ".latency").c_str(), c.latency);
}

void
tlbFields(CanonWriter &w, const char *prefix, const TlbConfig &t)
{
    const std::string p(prefix);
    w.field((p + ".entries").c_str(), t.entries);
    w.field((p + ".ways").c_str(), t.ways);
    w.field((p + ".latency").c_str(), t.latency);
}

} // namespace

std::string
canonicalConfigText(const MachineConfig &cfg)
{
    CanonWriter w;

    w.field("core.freq_ghz", cfg.core.freqGhz);
    w.field("core.issue_width", cfg.core.issueWidth);
    w.field("core.rob_entries", cfg.core.robEntries);
    w.field("core.lsq_entries", cfg.core.lsqEntries);
    w.field("core.base_ipc", cfg.core.baseIpc);
    w.field("core.load_hidden", cfg.core.memLatencyHiddenFraction);
    w.field("core.store_hidden", cfg.core.storeLatencyHiddenFraction);

    cacheFields(w, "l1d", cfg.l1d);
    cacheFields(w, "l1i", cfg.l1i);
    cacheFields(w, "l2", cfg.l2);
    cacheFields(w, "llc", cfg.llc);
    tlbFields(w, "tlb.l1", cfg.l1Tlb);
    tlbFields(w, "tlb.l2", cfg.l2Tlb);

    w.field("dram.size", cfg.dram.sizeBytes);
    w.field("dram.banks", cfg.dram.banks);
    w.field("dram.hit_latency", cfg.dram.hitLatency);
    w.field("dram.miss_latency", cfg.dram.missLatency);
    w.field("dram.bank_busy_penalty", cfg.dram.bankBusyPenalty);
    w.field("dram.row_bytes", cfg.dram.rowBytes);

    w.field("kernel.mode_switch_cycles", cfg.kernel.modeSwitchCycles);
    w.field("kernel.mmap_instructions", cfg.kernel.mmapInstructions);
    w.field("kernel.munmap_base_instructions",
            cfg.kernel.munmapBaseInstructions);
    w.field("kernel.munmap_per_page_instructions",
            cfg.kernel.munmapPerPageInstructions);
    w.field("kernel.fault_instructions", cfg.kernel.faultInstructions);
    w.field("kernel.buddy_alloc_instructions",
            cfg.kernel.buddyAllocInstructions);
    w.field("kernel.buddy_free_instructions",
            cfg.kernel.buddyFreeInstructions);
    w.field("kernel.context_switch_cycles",
            cfg.kernel.contextSwitchCycles);
    w.field("kernel.map_populate", cfg.kernel.mapPopulate);
    w.field("kernel.thp", cfg.kernel.transparentHugePages);
    w.field("kernel.thp_zero_cycles_per_page",
            cfg.kernel.thpZeroCyclesPerPage);

    w.field("memento.enabled", cfg.memento.enabled);
    w.field("memento.num_size_classes", cfg.memento.numSizeClasses);
    w.field("memento.max_small_size", cfg.memento.maxSmallSize);
    w.field("memento.objects_per_arena", cfg.memento.objectsPerArena);
    w.field("memento.hot_latency", cfg.memento.hotLatency);
    w.field("memento.aac_latency", cfg.memento.aacLatency);
    w.field("memento.aac_entries", cfg.memento.aacEntries);
    w.field("memento.pool_refill", cfg.memento.pagePoolRefill);
    w.field("memento.pool_low_water", cfg.memento.pagePoolLowWater);
    w.field("memento.bypass", cfg.memento.bypassEnabled);
    w.field("memento.eager_prefetch", cfg.memento.eagerArenaPrefetch);
    w.field("memento.mallacc", cfg.memento.mallaccMode);

    w.field("tuning.pymalloc_arena", cfg.tuning.pymallocArenaBytes);
    w.field("tuning.jemalloc_chunk", cfg.tuning.jemallocChunkBytes);
    w.field("tuning.go_gc_trigger", cfg.tuning.goGcTriggerBytes);

    w.hexField("layout.heap_base", cfg.layout.heapBase);
    w.hexField("layout.image_base", cfg.layout.imageBase);
    w.hexField("layout.memento_region_start",
               cfg.layout.mementoRegionStart);
    w.field("layout.per_class_region_bytes",
            cfg.layout.perClassRegionBytes);

    w.field("check.interval", cfg.check.interval);
    w.field("check.max_ops", cfg.check.maxOps);
    w.field("check.max_cycles", cfg.check.maxCycles);

    // Per-run fault plan: deterministically changes results, so it is
    // part of the cell identity. The store-level crash faults
    // (inject.store_*) and the sweep.* execution policy are NOT
    // serialized: they perturb how the sweep executes, never what any
    // cell computes, and including them would make a resumed or
    // re-sharded sweep miss every cell its predecessor cached. The
    // fleet.* keys are excluded for the same reason: a workload's
    // per-invocation profile cell is independent of the fleet built on
    // top of it, and the fleet summary cell folds its own
    // fleetCanonicalText() (src/fleet/fleet.h) into its key instead.
    w.field("inject.pool_exhaust_at", cfg.inject.poolExhaustAtPage);
    w.field("inject.mmap_fail_at", cfg.inject.mmapFailAt);
    w.field("inject.trace_truncate_at", cfg.inject.traceTruncateAt);
    w.field("inject.trace_corrupt_at", cfg.inject.traceCorruptAt);
    w.field("inject.arena_bit_flip_at", cfg.inject.arenaBitFlipAt);
    w.field("inject.workload", cfg.inject.workload);

    return w.str();
}

const std::string &
codeVersionString()
{
    static const std::string sha = [] {
        FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
        if (!pipe)
            return std::string("unknown");
        char buf[128];
        std::string out;
        if (std::fgets(buf, sizeof buf, pipe))
            out = buf;
        ::pclose(pipe);
        while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
            out.pop_back();
        if (out.size() < 7 ||
            out.find_first_not_of("0123456789abcdef") != std::string::npos)
            return std::string("unknown");
        return out;
    }();
    return sha;
}

} // namespace memento
