#include "sim/cycles.h"

#include "sim/logging.h"

namespace memento {

std::string_view
cycleCategoryName(CycleCategory cat)
{
    switch (cat) {
      case CycleCategory::AppCompute: return "app-compute";
      case CycleCategory::AppMemory: return "app-memory";
      case CycleCategory::UserAlloc: return "user-alloc";
      case CycleCategory::UserFree: return "user-free";
      case CycleCategory::KernelMmap: return "kernel-mmap";
      case CycleCategory::KernelFault: return "kernel-fault";
      case CycleCategory::KernelOther: return "kernel-other";
      case CycleCategory::HwAlloc: return "hw-alloc";
      case CycleCategory::HwFree: return "hw-free";
      case CycleCategory::HwPage: return "hw-page";
      case CycleCategory::Rpc: return "rpc";
      case CycleCategory::ContextSwitch: return "context-switch";
      case CycleCategory::NumCategories: break;
    }
    panic("invalid cycle category");
}

bool
isMemoryManagementCategory(CycleCategory cat)
{
    switch (cat) {
      case CycleCategory::UserAlloc:
      case CycleCategory::UserFree:
      case CycleCategory::KernelMmap:
      case CycleCategory::KernelFault:
      case CycleCategory::KernelOther:
      case CycleCategory::HwAlloc:
      case CycleCategory::HwFree:
      case CycleCategory::HwPage:
        return true;
      default:
        return false;
    }
}

Cycles
CycleLedger::memoryManagementTotal() const
{
    Cycles sum = 0;
    for (std::size_t i = 0; i < kNumCycleCategories; ++i) {
        auto cat = static_cast<CycleCategory>(i);
        if (isMemoryManagementCategory(cat))
            sum += byCategory_[i];
    }
    return sum;
}

} // namespace memento
