/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The simulator never consults wall-clock entropy: every stochastic choice
 * flows from an explicitly seeded Rng so runs are exactly reproducible and
 * baseline/Memento comparisons are paired on identical operation streams.
 */

#ifndef MEMENTO_SIM_RNG_H
#define MEMENTO_SIM_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace memento {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Sample an index from a discrete distribution given by @p weights
     * (need not be normalized; at least one must be positive).
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Geometric-ish sample: number of failures before success(p). */
    std::uint64_t nextGeometric(double p);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace memento

#endif // MEMENTO_SIM_RNG_H
