/**
 * @file
 * A lightweight named-statistics registry.
 *
 * Components register counters under dotted names ("l1d.hits"). The
 * registry owns the storage; Counter is a cheap handle. Benchmarks and
 * reports read counters by name after a run.
 */

#ifndef MEMENTO_SIM_STATS_H
#define MEMENTO_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/thread_annotations.h"

namespace memento {

class StatRegistry;

/**
 * Read-only handle to one counter, resolved by name once.
 *
 * Resolution never creates the counter (creating a zero entry would
 * perturb machine-state digests): a handle to a name that is never
 * registered reads as 0, and a handle resolved before its counter
 * appears re-resolves lazily on the next read. Report extraction
 * resolves each metric once per experiment instead of copying the
 * registry and repeating string-keyed lookups.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    /** Current value (0 when the counter was never registered). */
    std::uint64_t value() const;

  private:
    friend class StatRegistry;
    StatHandle(const StatRegistry *stats, std::string name,
               const std::uint64_t *slot)
        : stats_(stats), name_(std::move(name)), slot_(slot)
    {
    }

    const StatRegistry *stats_ = nullptr;
    std::string name_;
    mutable const std::uint64_t *slot_ = nullptr;
};

/** Handle to a registered 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t n)
    {
        *slot_ += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++*slot_;
        return *this;
    }

    /** Current value. */
    std::uint64_t value() const { return *slot_; }

    /** Overwrite the value (used for gauges such as peak usage). */
    void set(std::uint64_t v) { *slot_ = v; }

    /** Raise the value to @p v if larger (high-water marks). */
    void
    raiseTo(std::uint64_t v)
    {
        if (v > *slot_)
            *slot_ = v;
    }

  private:
    friend class StatRegistry;
    explicit Counter(std::uint64_t *slot) : slot_(slot) {}
    std::uint64_t *slot_ = nullptr;
};

/**
 * Owns all counters of one simulated machine.
 *
 * Deliberately not synchronized: a registry belongs to exactly one
 * Machine, and a machine is driven by exactly one thread. The parallel
 * sweep engine gives every run a fresh Machine (hence a fresh
 * registry) instead of sharing counters across workers — there are no
 * process-wide statistics anywhere in the simulator.
 */
class MEMENTO_SINGLE_THREADED StatRegistry
{
  public:
    /** Get (creating if needed) the counter registered as @p name. */
    Counter counter(const std::string &name);

    /** Value of @p name, or 0 if it was never registered. */
    std::uint64_t value(const std::string &name) const;

    /** One-time name resolution for repeated reads (see StatHandle). */
    StatHandle handle(const std::string &name) const;

    /** Address of @p name's slot, or nullptr if never registered. */
    const std::uint64_t *findSlot(const std::string &name) const;

    /** value(numer) / value(denom), or 0 when the denominator is 0. */
    double ratio(const std::string &numer, const std::string &denom) const;

    /** Zero every registered counter (registrations survive). */
    void resetAll();

    /** Print "name value" lines sorted by name. */
    void dump(std::ostream &os) const;

    /** Snapshot of all counters, for paired-run comparisons. */
    std::map<std::string, std::uint64_t> snapshot() const;

  private:
    // node_hash-stable container: Counter handles point into mapped values
    // and std::map guarantees reference stability across inserts.
    std::map<std::string, std::uint64_t> values_;
};

} // namespace memento

#endif // MEMENTO_SIM_STATS_H
