/**
 * @file
 * Thread-safety annotation macros for concurrent data structures.
 *
 * The simulator's determinism contract (byte-identical sweep output at
 * any --jobs level) rests on a small set of explicitly synchronized
 * structures — the result store, the trace cache, the sweep engine's
 * task deques, the serialized logging layer. Every mutable member of
 * such a structure must name the synchronization that protects it:
 *
 *     std::mutex mu_;
 *     StoreStats stats_ MEMENTO_GUARDED_BY(mu_);
 *
 * Two enforcement layers read these annotations:
 *  - `memento_sim lint-src` (sa/source_lint.h) requires every data
 *    member of a mutex-holding class to carry MEMENTO_GUARDED_BY,
 *    MEMENTO_READONLY_AFTER_INIT, or be a std::atomic / sync primitive
 *    (rule src-mutex-unannotated);
 *  - when building with clang and -DMEMENTO_THREAD_ANNOTATIONS (plus
 *    -Wthread-safety), MEMENTO_GUARDED_BY expands to the real
 *    `guarded_by` attribute so the compiler's thread-safety analysis
 *    checks lock discipline too.
 *
 * Classes that are deliberately *not* synchronized because exactly one
 * thread ever owns an instance (a Machine's StatRegistry, the per-run
 * allocators) are marked MEMENTO_SINGLE_THREADED at the class head;
 * that is a documentation contract audited by the parallel sweep's
 * fresh-Machine-per-run design, not by a lock.
 */

#ifndef MEMENTO_SIM_THREAD_ANNOTATIONS_H
#define MEMENTO_SIM_THREAD_ANNOTATIONS_H

#if defined(MEMENTO_THREAD_ANNOTATIONS) && defined(__clang__)
#define MEMENTO_THREAD_ATTR(x) __attribute__((x))
#else
#define MEMENTO_THREAD_ATTR(x)
#endif

/** Member is read/written only while holding @p m. */
#define MEMENTO_GUARDED_BY(m) MEMENTO_THREAD_ATTR(guarded_by(m))

/**
 * Member is written only during construction and immutable afterwards,
 * so concurrent readers need no lock.
 */
#define MEMENTO_READONLY_AFTER_INIT

/**
 * Class is owned and driven by exactly one thread at a time; it has no
 * internal synchronization by design. Concurrency is achieved by
 * giving each worker its own instance, never by sharing one.
 */
#define MEMENTO_SINGLE_THREADED

#endif // MEMENTO_SIM_THREAD_ANNOTATIONS_H
