/**
 * @file
 * Recoverable simulation errors.
 *
 * fatal()/panic() (sim/logging.h) terminate the whole process and are
 * reserved for CLI misuse and genuine simulator bugs. Everything that
 * can go wrong with *one run* — a corrupt trace, physical-memory
 * exhaustion, an injected fault, an invariant violation, a watchdog
 * timeout — throws SimError instead, so a sweep can capture the failure
 * (category, message, op index, partial stats) and keep going.
 */

#ifndef MEMENTO_SIM_ERROR_H
#define MEMENTO_SIM_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/logging.h"

namespace memento {

/** Coarse classification of recoverable failures. */
enum class ErrorCategory : std::uint8_t {
    Config,      ///< Malformed configuration file / option.
    Trace,       ///< Corrupt, truncated, or inconsistent trace.
    OutOfMemory, ///< Physical memory / pool / region exhaustion.
    Corruption,  ///< Cross-module invariant violation detected.
    Timeout,     ///< Progress watchdog fired (runaway op stream).
    Internal,    ///< Unexpected but contained simulator condition.
};

/** Human-readable category name ("out-of-memory", "timeout", ...). */
std::string_view errorCategoryName(ErrorCategory cat);

/**
 * Inverse of errorCategoryName(), for loading stored failure records.
 * Returns false when @p name is not a known category.
 */
bool errorCategoryFromName(std::string_view name, ErrorCategory &out);

/** A recoverable per-run simulation error. */
class SimError : public std::runtime_error
{
  public:
    /** Sentinel for "not associated with a trace op". */
    static constexpr std::uint64_t kNoOpIndex = ~0ull;

    SimError(ErrorCategory cat, const std::string &msg,
             std::uint64_t op_index = kNoOpIndex)
        : std::runtime_error(msg), category_(cat), opIndex_(op_index)
    {
    }

    ErrorCategory category() const { return category_; }

    /** Trace op index the failure surfaced at (kNoOpIndex if none). */
    std::uint64_t opIndex() const { return opIndex_; }
    bool hasOpIndex() const { return opIndex_ != kNoOpIndex; }

    /** Attach an op index if none is recorded yet (outer-frame tag). */
    void
    tagOpIndex(std::uint64_t op_index)
    {
        if (opIndex_ == kNoOpIndex)
            opIndex_ = op_index;
    }

  private:
    ErrorCategory category_;
    std::uint64_t opIndex_;
};

} // namespace memento

/** Throw a SimError built from streamed message parts. */
#define sim_error(cat, ...)                                                 \
    throw ::memento::SimError(cat,                                          \
                              ::memento::detail::formatMsg(__VA_ARGS__))

/** sim_error() unless @p cond is false. */
#define sim_error_if(cond, cat, ...)                                        \
    do {                                                                    \
        if (cond)                                                           \
            sim_error(cat, __VA_ARGS__);                                    \
    } while (0)

#endif // MEMENTO_SIM_ERROR_H
