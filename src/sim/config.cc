#include "sim/config.h"

namespace memento {

MachineConfig
defaultConfig()
{
    return MachineConfig{};
}

MachineConfig
mementoConfig()
{
    MachineConfig cfg;
    cfg.memento.enabled = true;
    return cfg;
}

} // namespace memento
