#include "sim/config_file.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sim/error.h"

namespace memento {
namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::uint64_t
parseInt(const std::string &key, const std::string &value)
{
    std::string v = value;
    std::uint64_t scale = 1;
    if (!v.empty()) {
        switch (std::tolower(static_cast<unsigned char>(v.back()))) {
          case 'k': scale = 1ull << 10; v.pop_back(); break;
          case 'm': scale = 1ull << 20; v.pop_back(); break;
          case 'g': scale = 1ull << 30; v.pop_back(); break;
          default: break;
        }
    }
    std::size_t pos = 0;
    std::uint64_t parsed = 0;
    try {
        parsed = std::stoull(v, &pos);
    } catch (...) {
        sim_error(ErrorCategory::Config, "config: bad integer for ", key,
                  ": '", value, "'");
    }
    sim_error_if(pos != v.size(), ErrorCategory::Config,
                 "config: bad integer for ", key, ": '", value, "'");
    return parsed * scale;
}

double
parseDouble(const std::string &key, const std::string &value)
{
    std::size_t pos = 0;
    double parsed = 0;
    try {
        parsed = std::stod(value, &pos);
    } catch (...) {
        sim_error(ErrorCategory::Config, "config: bad number for ", key,
                  ": '", value, "'");
    }
    sim_error_if(pos != value.size(), ErrorCategory::Config,
                 "config: bad number for ", key, ": '", value, "'");
    return parsed;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    std::string v = value;
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (v == "true" || v == "on" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "off" || v == "0" || v == "no")
        return false;
    sim_error(ErrorCategory::Config, "config: bad boolean for ", key,
              ": '", value, "'");
}

} // namespace

void
applyConfigOption(const std::string &key, const std::string &value,
                  MachineConfig &cfg)
{
    auto u64 = [&] { return parseInt(key, value); };
    auto u32 = [&] { return static_cast<unsigned>(parseInt(key, value)); };
    auto f64 = [&] { return parseDouble(key, value); };
    auto b = [&] { return parseBool(key, value); };

    // Core.
    if (key == "core.freq_ghz") cfg.core.freqGhz = f64();
    else if (key == "core.base_ipc") cfg.core.baseIpc = f64();
    else if (key == "core.load_hidden")
        cfg.core.memLatencyHiddenFraction = f64();
    else if (key == "core.store_hidden")
        cfg.core.storeLatencyHiddenFraction = f64();
    // Caches.
    else if (key == "l1d.size") cfg.l1d.sizeBytes = u64();
    else if (key == "l1d.ways") cfg.l1d.ways = u32();
    else if (key == "l1d.latency") cfg.l1d.latency = u64();
    else if (key == "l1i.size") cfg.l1i.sizeBytes = u64();
    else if (key == "l1i.ways") cfg.l1i.ways = u32();
    else if (key == "l1i.latency") cfg.l1i.latency = u64();
    else if (key == "l2.size") cfg.l2.sizeBytes = u64();
    else if (key == "l2.ways") cfg.l2.ways = u32();
    else if (key == "l2.latency") cfg.l2.latency = u64();
    else if (key == "llc.size") cfg.llc.sizeBytes = u64();
    else if (key == "llc.ways") cfg.llc.ways = u32();
    else if (key == "llc.latency") cfg.llc.latency = u64();
    // TLBs.
    else if (key == "tlb.l1_entries") cfg.l1Tlb.entries = u32();
    else if (key == "tlb.l1_ways") cfg.l1Tlb.ways = u32();
    else if (key == "tlb.l2_entries") cfg.l2Tlb.entries = u32();
    else if (key == "tlb.l2_ways") cfg.l2Tlb.ways = u32();
    // DRAM.
    else if (key == "dram.size") cfg.dram.sizeBytes = u64();
    else if (key == "dram.banks") cfg.dram.banks = u32();
    else if (key == "dram.hit_latency") cfg.dram.hitLatency = u64();
    else if (key == "dram.miss_latency") cfg.dram.missLatency = u64();
    // Kernel.
    else if (key == "kernel.fault_instructions")
        cfg.kernel.faultInstructions = u64();
    else if (key == "kernel.mmap_instructions")
        cfg.kernel.mmapInstructions = u64();
    else if (key == "kernel.mode_switch_cycles")
        cfg.kernel.modeSwitchCycles = u64();
    else if (key == "kernel.map_populate") cfg.kernel.mapPopulate = b();
    else if (key == "kernel.thp") cfg.kernel.transparentHugePages = b();
    // Memento.
    else if (key == "memento.enabled") cfg.memento.enabled = b();
    else if (key == "memento.bypass") cfg.memento.bypassEnabled = b();
    else if (key == "memento.eager_prefetch")
        cfg.memento.eagerArenaPrefetch = b();
    else if (key == "memento.objects_per_arena")
        cfg.memento.objectsPerArena = u32();
    else if (key == "memento.hot_latency")
        cfg.memento.hotLatency = u64();
    else if (key == "memento.pool_refill")
        cfg.memento.pagePoolRefill = u32();
    else if (key == "memento.mallacc") cfg.memento.mallaccMode = b();
    // Runtime tuning.
    else if (key == "tuning.pymalloc_arena")
        cfg.tuning.pymallocArenaBytes = u64();
    else if (key == "tuning.jemalloc_chunk")
        cfg.tuning.jemallocChunkBytes = u64();
    else if (key == "tuning.go_gc_trigger")
        cfg.tuning.goGcTriggerBytes = u64();
    // Validation / watchdog.
    else if (key == "check.interval") cfg.check.interval = u64();
    else if (key == "check.max_ops") cfg.check.maxOps = u64();
    else if (key == "check.max_cycles") cfg.check.maxCycles = u64();
    // Deterministic fault injection.
    else if (key == "inject.pool_exhaust_at")
        cfg.inject.poolExhaustAtPage = u64();
    else if (key == "inject.mmap_fail_at") cfg.inject.mmapFailAt = u64();
    else if (key == "inject.trace_truncate_at")
        cfg.inject.traceTruncateAt = u64();
    else if (key == "inject.trace_corrupt_at")
        cfg.inject.traceCorruptAt = u64();
    else if (key == "inject.arena_bit_flip_at")
        cfg.inject.arenaBitFlipAt = u64();
    else if (key == "inject.workload") cfg.inject.workload = value;
    else
        sim_error(ErrorCategory::Config, "config: unknown key '", key,
                  "'");
}

void
applyConfigStream(std::istream &is, MachineConfig &cfg)
{
    std::string line;
    unsigned line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        sim_error_if(eq == std::string::npos, ErrorCategory::Config,
                     "config: missing '=' on line ", line_no);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        sim_error_if(key.empty() || value.empty(), ErrorCategory::Config,
                     "config: empty key or value on line ", line_no);
        applyConfigOption(key, value, cfg);
    }
}

void
applyConfigFile(const std::string &path, MachineConfig &cfg)
{
    std::ifstream in(path);
    sim_error_if(!in, ErrorCategory::Config, "config: cannot open '",
                 path, "'");
    applyConfigStream(in, cfg);
}

} // namespace memento
