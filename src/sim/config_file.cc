#include "sim/config_file.h"

#include <cctype>
#include <fstream>
#include <map>

#include "sim/config_schema.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace memento {
namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

void
applyConfigOption(const std::string &key, const std::string &value,
                  MachineConfig &cfg)
{
    const ConfigKeyInfo *info = findConfigKey(key);
    if (info == nullptr) {
        const std::string suggestion = suggestConfigKey(key);
        sim_error(ErrorCategory::Config, "config: unknown key '", key,
                  "'",
                  suggestion.empty()
                      ? std::string()
                      : "; did you mean '" + suggestion + "'?");
    }
    info->apply(cfg, parseConfigValue(*info, key, value));
}

void
applyConfigStream(std::istream &is, MachineConfig &cfg)
{
    std::string line;
    unsigned line_no = 0;
    std::map<std::string, unsigned> last_set; // key -> latest assignment line
    while (std::getline(is, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        sim_error_if(eq == std::string::npos, ErrorCategory::Config,
                     "config: missing '=' on line ", line_no);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        sim_error_if(key.empty() || value.empty(), ErrorCategory::Config,
                     "config: empty key or value on line ", line_no);
        const auto [it, inserted] = last_set.emplace(key, line_no);
        if (!inserted) {
            warn("config: duplicate key '", key, "' on line ", line_no,
                 " overrides line ", it->second, " (last value wins)");
            it->second = line_no;
        }
        applyConfigOption(key, value, cfg);
    }
}

void
applyConfigFile(const std::string &path, MachineConfig &cfg)
{
    std::ifstream in(path);
    sim_error_if(!in, ErrorCategory::Config, "config: cannot open '",
                 path, "'");
    applyConfigStream(in, cfg);
}

} // namespace memento
