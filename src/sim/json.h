/**
 * @file
 * The one JSON emitter every `--json` surface of the simulator shares.
 *
 * All machine-readable output — `check` / `lint-config` findings, the
 * self-benchmark harness's BENCH_*.json — is produced through
 * JsonWriter, so escaping, number formatting, and the document
 * envelope are identical everywhere and downstream tooling can parse
 * any command's output with one loader.
 *
 * Every top-level document starts with the same two members:
 *
 *     {
 *       "schema_version": 1,
 *       "kind": "diagnostics" | "bench" | ...,
 *       ...
 *     }
 *
 * `schema_version` is bumped whenever any emitted document changes
 * incompatibly (a member removed or re-typed; additions are
 * compatible and do not bump it). Consumers should reject versions
 * they do not know. writeSchemaHeader() stamps the envelope.
 *
 * JsonWriter is a streaming writer with explicit begin/end nesting; it
 * validates nesting depth and key/value alternation with panics (a
 * malformed document is a programming error, never a user error).
 * Doubles are written with 12 significant digits (locale-independent);
 * NaN and infinities are written as null (JSON has no spelling for
 * them).
 */

#ifndef MEMENTO_SIM_JSON_H
#define MEMENTO_SIM_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace memento {

/** Version stamped into every JSON document's envelope. */
inline constexpr unsigned kJsonSchemaVersion = 1;

/** Streaming JSON document writer (pretty-printed, two-space indent). */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    // ---- Structure ----
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key inside an object; must be followed by a value. */
    JsonWriter &key(std::string_view k);

    // ---- Values ----
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &valueNull();

    // ---- key+value conveniences ----
    template <typename T>
    JsonWriter &
    member(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** True once every begin has been matched by its end. */
    bool complete() const { return frames_.empty() && wroteRoot_; }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void beforeValue();
    void newlineIndent();
    void writeEscaped(std::string_view s);

    std::ostream &os_;
    std::vector<Frame> frames_;
    /** A key was emitted and its value is pending. */
    bool keyPending_ = false;
    /** The current frame already holds at least one element. */
    std::vector<bool> frameHasElems_;
    bool wroteRoot_ = false;
};

/**
 * Stamp the shared envelope: the writer must be positioned right after
 * beginObject(). Writes "schema_version" and "kind".
 */
void writeSchemaHeader(JsonWriter &w, std::string_view kind);

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * A parsed JSON value (the read side of JsonWriter, used by the
 * result store and anything else that loads a document this simulator
 * wrote). Integers that fit an unsigned 64-bit value parse exactly
 * (`isInteger` + `u64`) — digests, cycle counts, and op indices never
 * round-trip through a double — while every number also fills
 * `number` for callers that want the floating-point reading.
 */
class JsonValue
{
  public:
    enum class Type : std::uint8_t {
        Null, Bool, Number, String, Array, Object
    };

    Type type = Type::Null;
    bool boolean = false;
    /** Floating-point reading of a Number (always filled). */
    double number = 0.0;
    /** Exact reading of a non-negative integer Number. */
    std::uint64_t u64 = 0;
    bool isInteger = false;
    std::string str;
    std::vector<JsonValue> items; ///< Array elements, in order.
    /** Object members in document order (duplicates preserved). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }
};

/**
 * Parse one JSON document from @p text (trailing whitespace allowed,
 * trailing garbage is an error). Returns false and fills @p err with a
 * byte offset and reason on malformed input — never throws, because a
 * corrupt cached document is an expected input, not a bug.
 */
bool parseJson(std::string_view text, JsonValue &out, std::string &err);

} // namespace memento

#endif // MEMENTO_SIM_JSON_H
