#include "sim/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace memento {
namespace {

// Sweep workers log concurrently. Each fprintf call below emits one
// whole line, and this mutex keeps lines from different threads from
// interleaving mid-message (POSIX only guarantees atomicity per stdio
// call, and a diagnostic split across calls would be unreadable).
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace memento
