/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef MEMENTO_SIM_TYPES_H
#define MEMENTO_SIM_TYPES_H

#include <cstddef>
#include <cstdint>

namespace memento {

/** A virtual or physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A count of core clock cycles. */
using Cycles = std::uint64_t;

/** A count of retired instructions. */
using InstCount = std::uint64_t;

/** Base-2 logarithm of the simulated page size (4 KiB pages). */
inline constexpr unsigned kPageShift = 12;

/** Simulated page size in bytes. */
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;

/** Base-2 logarithm of the cache-line size (64 B lines). */
inline constexpr unsigned kLineShift = 6;

/** Cache-line size in bytes. */
inline constexpr std::uint64_t kLineSize = 1ull << kLineShift;

/** An invalid / null simulated address sentinel. */
inline constexpr Addr kNullAddr = 0;

/** Round @p addr down to the containing page boundary. */
constexpr Addr
pageBase(Addr addr)
{
    return addr & ~(kPageSize - 1);
}

/** Round @p addr down to the containing cache-line boundary. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~(kLineSize - 1);
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True if @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power-of-two @p value. */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    unsigned shift = 0;
    while ((1ull << shift) < value)
        ++shift;
    return shift;
}

} // namespace memento

#endif // MEMENTO_SIM_TYPES_H
