/**
 * @file
 * Plain-text configuration files for the simulator.
 *
 * Format: one `key = value` pair per line; `#` starts a comment; blank
 * lines ignored. Values are integers (decimal, or with a k/m/g binary
 * suffix: "256k" = 262144), floating point, or booleans
 * (true/false/on/off/1/0). Unknown keys and malformed values raise a
 * recoverable SimError (ErrorCategory::Config) so typos never silently
 * run the default, yet a sweep driver can report and continue.
 *
 * Supported keys mirror MachineConfig:
 *
 *   core.freq_ghz, core.base_ipc, core.load_hidden, core.store_hidden
 *   l1d.size, l1d.ways, l1d.latency         (same for l1i, l2, llc)
 *   tlb.l1_entries, tlb.l1_ways, tlb.l2_entries, tlb.l2_ways
 *   dram.size, dram.banks, dram.hit_latency, dram.miss_latency
 *   kernel.fault_instructions, kernel.mmap_instructions,
 *   kernel.mode_switch_cycles, kernel.map_populate
 *   memento.enabled, memento.bypass, memento.eager_prefetch,
 *   memento.objects_per_arena, memento.hot_latency,
 *   memento.pool_refill, memento.mallacc
 *   tuning.pymalloc_arena, tuning.jemalloc_chunk, tuning.go_gc_trigger
 *   check.interval, check.max_ops, check.max_cycles
 *   inject.pool_exhaust_at, inject.mmap_fail_at,
 *   inject.trace_truncate_at, inject.trace_corrupt_at,
 *   inject.arena_bit_flip_at, inject.workload,
 *   inject.store_torn_write, inject.store_kill_at
 *   sweep.cache_dir, sweep.shard_index, sweep.shard_count,
 *   sweep.retry, sweep.keep_going
 */

#ifndef MEMENTO_SIM_CONFIG_FILE_H
#define MEMENTO_SIM_CONFIG_FILE_H

#include <istream>
#include <string>

#include "sim/config.h"

namespace memento {

/**
 * Apply `key = value` lines from @p is on top of @p cfg.
 * Throws SimError(Config) on malformed lines or unknown keys.
 */
void applyConfigStream(std::istream &is, MachineConfig &cfg);

/**
 * applyConfigStream() over the file at @p path.
 * Throws SimError(Config) when the file is unreadable.
 */
void applyConfigFile(const std::string &path, MachineConfig &cfg);

/** Apply a single "key=value" assignment (command-line overrides). */
void applyConfigOption(const std::string &key, const std::string &value,
                       MachineConfig &cfg);

} // namespace memento

#endif // MEMENTO_SIM_CONFIG_FILE_H
