/**
 * @file
 * Declarative schema for the simulator's `key = value` configuration
 * surface.
 *
 * Every key the parser accepts is one table entry: name, value type,
 * inclusive numeric range, one-line description, and a setter into
 * MachineConfig. sim/config_file.cc applies options through the table,
 * and the sa/ config linter validates files against the same table, so
 * the accepted key set, the value grammar, and the range checks can
 * never drift apart.
 *
 * Integer values accept decimal with an optional k/m/g binary suffix
 * ("256k" = 262144) or a 0x-prefixed hexadecimal literal (address keys
 * such as layout.memento_region_start). Booleans accept
 * true/false/on/off/1/0/yes/no.
 */

#ifndef MEMENTO_SIM_CONFIG_SCHEMA_H
#define MEMENTO_SIM_CONFIG_SCHEMA_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.h"

namespace memento {

/** Value type of one configuration key. */
enum class ConfigType : std::uint8_t { U64, U32, F64, Bool, String };

/** A parsed value; the member matching the key's type is set. */
struct ConfigValue
{
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    bool boolean = false;
    std::string str;
};

/** Outcome of parsing a raw value against a schema entry. */
enum class ConfigParseStatus : std::uint8_t {
    Ok,
    BadValue,   ///< Does not parse as the key's type.
    OutOfRange, ///< Parses, but violates the declared range.
};

/** One schema entry. */
struct ConfigKeyInfo
{
    const char *name;
    ConfigType type;
    /** Inclusive numeric range (ignored for Bool/String keys). */
    double minValue;
    double maxValue;
    /** One-line description used by lint output and docs. */
    const char *doc;
    /** Store @p value into the MachineConfig field the key names. */
    void (*apply)(MachineConfig &cfg, const ConfigValue &value);
};

/** The full schema, sorted by key name. */
const std::vector<ConfigKeyInfo> &configSchema();

/** Schema entry for @p key, or nullptr when the key is unknown. */
const ConfigKeyInfo *findConfigKey(std::string_view key);

/**
 * Parse @p raw against @p info's type and range. On success fills
 * @p out and returns Ok; otherwise returns the failure kind and fills
 * @p why with a human-readable reason (no key name or location — the
 * caller owns diagnostics framing).
 */
ConfigParseStatus tryParseConfigValue(const ConfigKeyInfo &info,
                                      const std::string &raw,
                                      ConfigValue &out, std::string &why);

/**
 * tryParseConfigValue() that throws SimError(Config) mentioning
 * @p key on any failure.
 */
ConfigValue parseConfigValue(const ConfigKeyInfo &info,
                             const std::string &key,
                             const std::string &raw);

/**
 * The known key nearest to @p key by Damerau-Levenshtein distance, or
 * "" when nothing is close enough to be a plausible typo.
 */
std::string suggestConfigKey(std::string_view key);

} // namespace memento

#endif // MEMENTO_SIM_CONFIG_SCHEMA_H
