/**
 * @file
 * Cycle accounting with per-category attribution.
 *
 * Every cycle charged in the simulator carries a CycleCategory so that
 * experiments can answer "where did the time go" questions (Table 2 and
 * Fig. 9 of the paper). Components charge cycles against the ledger's
 * current category, which callers select with a CategoryScope RAII guard.
 */

#ifndef MEMENTO_SIM_CYCLES_H
#define MEMENTO_SIM_CYCLES_H

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace memento {

/** Attribution buckets for charged cycles. */
enum class CycleCategory : std::uint8_t {
    AppCompute,    ///< Application arithmetic / control instructions.
    AppMemory,     ///< Application loads and stores (incl. stall cycles).
    UserAlloc,     ///< Userspace software-allocator allocation path.
    UserFree,      ///< Userspace software-allocator free path.
    KernelMmap,    ///< mmap / munmap / brk system calls.
    KernelFault,   ///< Page-fault handling (incl. mode switches).
    KernelOther,   ///< Other kernel work attributed to memory management.
    HwAlloc,       ///< Memento obj-alloc handling.
    HwFree,        ///< Memento obj-free handling.
    HwPage,        ///< Memento hardware page-allocator work.
    Rpc,           ///< Function input/output RPC bookends.
    ContextSwitch, ///< Context-switch costs (incl. HOT flushes).
    NumCategories
};

/** Number of distinct cycle categories. */
inline constexpr std::size_t kNumCycleCategories =
    static_cast<std::size_t>(CycleCategory::NumCategories);

/** Human-readable name of a category, for reports. */
std::string_view cycleCategoryName(CycleCategory cat);

/** True for categories that count as memory-management time. */
bool isMemoryManagementCategory(CycleCategory cat);

/**
 * The per-machine cycle ledger.
 *
 * Tracks total elapsed cycles and the split across CycleCategory buckets.
 * The "current" category is a piece of dynamic context: whoever initiates
 * an operation opens a CategoryScope and all cycles charged underneath
 * (e.g. by the cache hierarchy) land in that bucket.
 */
class CycleLedger
{
  public:
    CycleLedger() { reset(); }

    /** Charge @p n cycles to the current category. */
    void
    charge(Cycles n)
    {
        total_ += n;
        byCategory_[static_cast<std::size_t>(current_)] += n;
    }

    /** Charge @p n cycles to an explicit category. */
    void
    charge(Cycles n, CycleCategory cat)
    {
        total_ += n;
        byCategory_[static_cast<std::size_t>(cat)] += n;
    }

    /** Total cycles elapsed. */
    Cycles total() const { return total_; }

    /** Cycles charged to @p cat. */
    Cycles
    category(CycleCategory cat) const
    {
        return byCategory_[static_cast<std::size_t>(cat)];
    }

    /** Sum of all memory-management categories. */
    Cycles memoryManagementTotal() const;

    /** Currently active attribution category. */
    CycleCategory current() const { return current_; }

    /** Zero all counters. */
    void
    reset()
    {
        total_ = 0;
        byCategory_.fill(0);
        current_ = CycleCategory::AppCompute;
    }

  private:
    friend class CategoryScope;
    friend struct InvariantTestPeer; ///< Corruption hooks for val tests.

    Cycles total_ = 0;
    std::array<Cycles, kNumCycleCategories> byCategory_{};
    CycleCategory current_ = CycleCategory::AppCompute;
};

/**
 * RAII guard that switches a ledger's current category and restores the
 * previous one on destruction. Nestable.
 */
class CategoryScope
{
  public:
    CategoryScope(CycleLedger &ledger, CycleCategory cat)
        : ledger_(ledger), saved_(ledger.current_)
    {
        ledger_.current_ = cat;
    }

    ~CategoryScope() { ledger_.current_ = saved_; }

    CategoryScope(const CategoryScope &) = delete;
    CategoryScope &operator=(const CategoryScope &) = delete;

  private:
    CycleLedger &ledger_;
    CycleCategory saved_;
};

} // namespace memento

#endif // MEMENTO_SIM_CYCLES_H
