#include "sim/stats.h"

namespace memento {

Counter
StatRegistry::counter(const std::string &name)
{
    auto [it, inserted] = values_.try_emplace(name, 0);
    (void)inserted;
    return Counter(&it->second);
}

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
}

const std::uint64_t *
StatRegistry::findSlot(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? nullptr : &it->second;
}

StatHandle
StatRegistry::handle(const std::string &name) const
{
    return StatHandle(this, name, findSlot(name));
}

std::uint64_t
StatHandle::value() const
{
    if (!slot_ && stats_)
        slot_ = stats_->findSlot(name_);
    return slot_ ? *slot_ : 0;
}

double
StatRegistry::ratio(const std::string &numer, const std::string &denom) const
{
    std::uint64_t d = value(denom);
    if (d == 0)
        return 0.0;
    return static_cast<double>(value(numer)) / static_cast<double>(d);
}

void
StatRegistry::resetAll()
{
    for (auto &entry : values_)
        entry.second = 0;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : values_)
        os << name << ' ' << value << '\n';
}

std::map<std::string, std::uint64_t>
StatRegistry::snapshot() const
{
    return values_;
}

} // namespace memento
