/**
 * @file
 * Machine configuration: Table 3 of the paper plus Memento parameters,
 * OS cost-model knobs, and the simulated address-space layout.
 *
 * All latencies are in core clock cycles at coreFreqGhz. Defaults mirror
 * the paper's simulated system (4-issue OOO @ 3 GHz, 32 KB L1s, 256 KB L2,
 * 2 MB LLC slice, 64-/2048-entry TLBs, DDR4-3200, 64-entry HOT, 32-entry
 * AAC).
 */

#ifndef MEMENTO_SIM_CONFIG_H
#define MEMENTO_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace memento {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    unsigned ways = 1;
    Cycles latency = 1;

    std::uint64_t numSets() const { return sizeBytes / (ways * kLineSize); }
};

/** Geometry and latency of one TLB level. */
struct TlbConfig
{
    unsigned entries = 0;
    unsigned ways = 1;
    Cycles latency = 1;
};

/** DRAM timing and geometry (DDR4-3200-like, expressed in core cycles). */
struct DramConfig
{
    std::uint64_t sizeBytes = 64ull << 30;
    unsigned banks = 16;
    /** Row-hit access latency (CL + transfer). */
    Cycles hitLatency = 75;
    /** Row-miss access latency (tRP + tRCD + CL + transfer). */
    Cycles missLatency = 135;
    /** Extra queuing delay applied per outstanding same-bank access. */
    Cycles bankBusyPenalty = 24;
    /** Rows per bank used by the open-row model. */
    std::uint64_t rowBytes = 8192;
};

/** Core front/back-end approximation of the 4-issue OOO core. */
struct CoreConfig
{
    double freqGhz = 3.0;
    unsigned issueWidth = 4;
    unsigned robEntries = 256;
    unsigned lsqEntries = 64;
    /**
     * Average non-memory retirement IPC used to convert instruction
     * counts into cycles. Memory stalls are charged separately by the
     * hierarchy, so this models compute-bound issue behaviour only.
     */
    double baseIpc = 2.0;
    /**
     * Fraction of a load's hierarchy latency that the OOO window
     * hides on average (MLP/overlap factor). 0 = fully exposed.
     */
    double memLatencyHiddenFraction = 0.55;
    /**
     * Fraction of a store's latency hidden by the store buffer /
     * write-combining; stores rarely stall retirement.
     */
    double storeLatencyHiddenFraction = 0.92;
};

/** Kernel cost model (instruction budgets, calibrated in DESIGN.md). */
struct KernelConfig
{
    /** User->kernel->user mode switch cost, charged per syscall/fault. */
    Cycles modeSwitchCycles = 300;
    /** Instructions executed by mmap (VMA setup, bookkeeping). */
    InstCount mmapInstructions = 1800;
    /** Base instructions for munmap plus per-page teardown cost. */
    InstCount munmapBaseInstructions = 1400;
    InstCount munmapPerPageInstructions = 180;
    /**
     * Instructions for a minor (anonymous) page fault. Functions run
     * inside containers, where the fault path includes memcg charging
     * and cgroup accounting on top of the bare handler.
     */
    InstCount faultInstructions = 5000;
    /** Instructions for buddy-allocator page alloc/free. */
    InstCount buddyAllocInstructions = 250;
    InstCount buddyFreeInstructions = 220;
    /** Context switch cost excluding any HOT flush. */
    Cycles contextSwitchCycles = 3600;
    /** Whether mmap eagerly populates pages (MAP_POPULATE study). */
    bool mapPopulate = false;
    /**
     * Transparent huge pages: anonymous faults try to back a whole
     * 2 MiB block with one huge page (shorter walks, bigger TLB reach,
     * fewer faults — at an internal-fragmentation cost). The software
     * counter-proposal to Memento's hardware page management.
     */
    bool transparentHugePages = false;
    /** Zeroing cost per 4 KiB subpage of a huge-page fault. */
    Cycles thpZeroCyclesPerPage = 24;
};

/** Memento hardware parameters. */
struct MementoConfig
{
    bool enabled = false;

    /** Number of size classes (8-byte steps up to maxSmallSize). */
    unsigned numSizeClasses = 64;
    /** Largest object handled in hardware, in bytes. */
    std::uint64_t maxSmallSize = 512;
    /** Objects per arena. */
    unsigned objectsPerArena = 256;
    /** HOT access latency for hits. */
    Cycles hotLatency = 2;
    /** AAC access latency for hits. */
    Cycles aacLatency = 1;
    /** AAC entry count (per-core pointers cached). */
    unsigned aacEntries = 32;
    /** Physical pages the OS grants the page allocator per refill. */
    unsigned pagePoolRefill = 64;
    /** Low-water mark that triggers an asynchronous OS refill. */
    unsigned pagePoolLowWater = 16;
    /** Enable the main-memory bypass mechanism. */
    bool bypassEnabled = true;
    /** Eagerly prefetch the next available arena on last-object alloc. */
    bool eagerArenaPrefetch = true;
    /** Enable the idealized Mallacc comparator instead of Memento. */
    bool mallaccMode = false;
};

/** Software-runtime tuning knobs (the §6.6 allocator-tuning study). */
struct RuntimeTuning
{
    /** pymalloc arena size (default 256 KB as in CPython). */
    std::uint64_t pymallocArenaBytes = 256 << 10;
    /** jemalloc chunk size. */
    std::uint64_t jemallocChunkBytes = 4 << 20;
    /** Go GC trigger for long-running (Platform) processes. */
    std::uint64_t goGcTriggerBytes = 1 << 20;
};

/** Runtime validation knobs (invariant checker + progress watchdog). */
struct CheckConfig
{
    /**
     * Run the cross-module invariant checker every this many trace ops
     * (and once at the end of each run). 0 disables periodic checks.
     */
    std::uint64_t interval = 0;
    /** Watchdog: abort a run after this many trace ops (0 = off). */
    std::uint64_t maxOps = 0;
    /** Watchdog: abort a run after this many cycles (0 = off). */
    Cycles maxCycles = 0;
};

/**
 * Deterministic fault-injection plan. All trigger points are keyed on
 * monotonically increasing per-run counters (op index, mmap call count,
 * pages granted), so a plan reproduces exactly across runs. A value of
 * 0 disables the corresponding fault; `workload` (when non-empty)
 * restricts the whole plan to the matching workload id.
 */
struct FaultPlan
{
    /** Fail the hardware page pool once it has been granted N pages. */
    std::uint64_t poolExhaustAtPage = 0;
    /** Fail the Nth mmap call of each process (1-based). */
    std::uint64_t mmapFailAt = 0;
    /** Truncate the replayed trace to its first N ops. */
    std::uint64_t traceTruncateAt = 0;
    /** Corrupt the trace record at op index N (1-based, bogus free). */
    std::uint64_t traceCorruptAt = 0;
    /** Flip one arena-header bitmap bit after op index N (1-based). */
    std::uint64_t arenaBitFlipAt = 0;
    /**
     * Result-store crash injection (1-based, counted per process):
     * tear the Nth cell write in half, or kill the process right after
     * the Nth completed cell store. These exercise the store's
     * torn-write quarantine and kill-resume paths; they are *not* part
     * of any() — they never change a cell's simulated result and are
     * excluded from canonical cache keys (see sim/config_canon.h).
     */
    std::uint64_t storeTornWriteAt = 0;
    std::uint64_t storeKillAt = 0;
    /** Apply the plan only to this workload id ("" = every workload). */
    std::string workload;

    /** True when any simulation fault is armed (store faults excluded). */
    bool
    any() const
    {
        return poolExhaustAtPage || mmapFailAt || traceTruncateAt ||
               traceCorruptAt || arenaBitFlipAt;
    }

    /** True when the plan applies to the workload @p id. */
    bool
    appliesTo(const std::string &id) const
    {
        return any() && (workload.empty() || workload == id);
    }
};

/**
 * Sweep execution policy: how a sweep runs, never what any cell
 * computes. These keys are deliberately excluded from canonical cache
 * keys (sim/config_canon.h) so that resumed, retried, or re-sharded
 * sweeps hit the cells an earlier invocation cached. Settable both via
 * config keys (sweep.*) and the corresponding CLI flags.
 */
struct SweepPolicyConfig
{
    /** Result-store directory ("" = caching disabled). */
    std::string cacheDir;
    /** This process computes workloads with index % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /** Extra attempts per failed cell (0 = fail on first error). */
    unsigned retries = 0;
    /** Record per-cell failures and keep sweeping (same as --keep-going). */
    bool keepGoing = false;
};

/**
 * Fleet-scenario configuration (src/fleet): the arrival process, node
 * geometry, keep-alive window, and memory-pressure policy of the
 * fleet-scale serverless node simulation. Like sweep.*, fleet.* keys
 * shape a layer built *on top of* per-invocation runs: they are
 * excluded from canonical run-cell keys (a workload's invocation
 * profile does not depend on the fleet around it) and folded into the
 * fleet summary cell key instead (see src/fleet/fleet.h).
 */
struct FleetConfig
{
    /** Arrival process: "poisson", "bursty", or "diurnal". */
    std::string arrival = "poisson";
    /** Mean arrival rate (invocations per second). */
    double ratePerSec = 2000.0;
    /** Total invocations to generate. */
    std::uint64_t invocations = 2000;
    /** Simulated cores on the node. */
    unsigned cores = 8;
    /** Seed of the arrival process RNG. */
    std::uint64_t seed = 1;
    /** Keep-alive window for idle instances (ms; 0 = none). */
    double keepAliveMs = 50.0;
    /** Node RSS budget in pages (0 = unlimited). */
    std::uint64_t memoryBudgetPages = 0;
    /** bursty: rate multiplier inside a burst. */
    double burstFactor = 8.0;
    /** bursty: burst length and burst period (ms). */
    double burstMs = 5.0;
    double periodMs = 50.0;
    /** Workload mix: "function", "all", or one workload id. */
    std::string mix = "function";
};

/** Simulated virtual address-space layout (single process). */
struct AddressLayout
{
    /** Base of the conventional mmap heap region. */
    Addr heapBase = 0x0000'7000'0000ull;
    /** Base of code/static image (only used for footprint accounting). */
    Addr imageBase = 0x0000'0040'0000ull;
    /** Memento Region Start register value. */
    Addr mementoRegionStart = 0x4000'0000'0000ull;
    /** Bytes of Memento region per size class (region = 64x this). */
    std::uint64_t perClassRegionBytes = 1ull << 30;

    Addr
    mementoRegionEnd(unsigned num_classes) const
    {
        return mementoRegionStart + perClassRegionBytes * num_classes;
    }
};

/** Top-level machine configuration. */
struct MachineConfig
{
    CoreConfig core;
    CacheConfig l1d{32 << 10, 8, 2};
    CacheConfig l1i{32 << 10, 8, 2};
    CacheConfig l2{256 << 10, 8, 14};
    CacheConfig llc{2 << 20, 16, 40};
    TlbConfig l1Tlb{64, 4, 1};
    TlbConfig l2Tlb{2048, 12, 7};
    DramConfig dram;
    KernelConfig kernel;
    MementoConfig memento;
    RuntimeTuning tuning;
    AddressLayout layout;
    CheckConfig check;
    FaultPlan inject;
    SweepPolicyConfig sweep;
    FleetConfig fleet;

    /** Convert a millisecond value to cycles at the core frequency. */
    Cycles
    msToCycles(double ms) const
    {
        return static_cast<Cycles>(ms * core.freqGhz * 1.0e6);
    }

    /** Convert cycles to milliseconds at the core frequency. */
    double
    cyclesToMs(Cycles cycles) const
    {
        return static_cast<double>(cycles) / (core.freqGhz * 1.0e6);
    }
};

/** The paper's Table 3 baseline configuration (Memento disabled). */
MachineConfig defaultConfig();

/** Table 3 configuration with Memento enabled. */
MachineConfig mementoConfig();

} // namespace memento

#endif // MEMENTO_SIM_CONFIG_H
