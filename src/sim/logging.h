/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for simulator invariant violations (bugs in this code base);
 * fatal() is for user/configuration errors that make continuing pointless.
 * Both terminate; warn()/inform() only print.
 *
 * All four are safe to call from parallel sweep workers: emission is
 * serialized by an internal mutex so lines never interleave.
 */

#ifndef MEMENTO_SIM_LOGGING_H
#define MEMENTO_SIM_LOGGING_H

#include <sstream>
#include <string>

namespace memento {

/** Print "panic: <msg>" with location info and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: <msg>" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warnImpl(const std::string &msg);

/** Print "info: <msg>" to stderr. */
void informImpl(const std::string &msg);

namespace detail {

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
formatMsg(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace memento

#define panic(...)                                                          \
    ::memento::panicImpl(__FILE__, __LINE__,                                \
                         ::memento::detail::formatMsg(__VA_ARGS__))

#define fatal(...)                                                          \
    ::memento::fatalImpl(__FILE__, __LINE__,                                \
                         ::memento::detail::formatMsg(__VA_ARGS__))

#define warn(...)                                                           \
    ::memento::warnImpl(::memento::detail::formatMsg(__VA_ARGS__))

#define inform(...)                                                         \
    ::memento::informImpl(::memento::detail::formatMsg(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // MEMENTO_SIM_LOGGING_H
