/**
 * @file
 * The shared command-line API of memento_sim.
 *
 * Every command (`run`, `compare`, `check`, `lint-config`, `bench`, …)
 * parses its options through one declarative flag table: each flag is
 * registered once with its value shape, help text, and application
 * function, and each command declares which flags it accepts. That
 * buys one parser, one `--help` renderer, and one error-message style
 * for the whole tool — a command can no longer drift its own flag
 * spelling or silently accept a flag it ignores.
 *
 * All pre-existing flag spellings (`--config`, `--set`, `--memento`,
 * `--cold`, `--trace`, `--stats`, `--keep-going`, `--digest`,
 * `--jobs`, `--json`, `--allow`, `--werror`) are preserved verbatim.
 * The crash-safe sweep layer adds `--cache DIR`, `--no-cache`,
 * `--shard I/N`, `--retry N`, and `--revalidate`.
 *
 * Parse errors raise the usual fatal() path (user error, exit 1).
 * `--help` anywhere in a command's options sets
 * CliOptions::helpRequested instead of parsing further; the caller
 * renders the command's help page and exits 0.
 */

#ifndef MEMENTO_CLI_OPTIONS_H
#define MEMENTO_CLI_OPTIONS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sa/diag.h"
#include "sim/config.h"

namespace memento {

/** Everything a memento_sim command can be asked to do. */
struct CliOptions
{
    MachineConfig cfg = defaultConfig();
    bool memento = false;
    bool cold = false;
    bool dumpStats = false;
    bool keepGoing = false;
    bool digest = false;
    bool json = false;
    /** bench: run the reduced smoke sweep instead of all workloads. */
    bool smoke = false;
    /** --no-cache: ignore sweep.cache_dir from config files. */
    bool noCache = false;
    /** --revalidate: recompute a sample of cache hits and compare. */
    bool revalidate = false;
    /** --help was seen; render help and exit 0 without running. */
    bool helpRequested = false;
    unsigned jobs = 0; ///< Sweep worker threads; 0 = hw concurrency.
    /** bench: timed repetitions per workload (median is reported). */
    unsigned repeats = 3;
    std::string traceFile;
    /** bench: output JSON path. */
    std::string outFile = "BENCH_PR8.json";
    DiagPolicy diagPolicy; ///< --allow / --werror (analysis commands).
    /** Variadic path arguments (lint-src [paths...]), in CLI order. */
    std::vector<std::string> paths;
};

/** One registered flag. */
struct FlagSpec
{
    std::string_view name;      ///< "--config".
    std::string_view valueName; ///< "FILE" / "N" / "" (boolean flag).
    std::string_view help;      ///< One-line help text.
    /** Apply the flag; @p value is empty for boolean flags. */
    void (*apply)(CliOptions &opts, const std::string &value);

    bool takesValue() const { return !valueName.empty(); }
};

/** One registered command. */
struct CommandSpec
{
    std::string_view name;      ///< "run".
    std::string_view usageArgs; ///< "<workload>|all".
    std::string_view help;      ///< One-line help text.
    /** Names of the flags this command accepts, in help order. */
    std::vector<std::string_view> flags;
    /** Required positional-argument count (before any flags). */
    std::size_t positionals = 0;
    /** Accept additional non-flag arguments into CliOptions::paths
     * (lint-src [paths...]); otherwise a bare argument is an error. */
    bool variadicPaths = false;
};

/** The full flag table, in help order. */
const std::vector<FlagSpec> &allFlags();

/** The full command table, in help order. */
const std::vector<CommandSpec> &allCommands();

/** Registry lookups; nullptr when unknown. */
const FlagSpec *findFlag(std::string_view name);
const CommandSpec *findCommand(std::string_view name);

/**
 * Parse @p command's options from @p args starting at @p from. Every
 * flag must be registered and accepted by the command; a flag that
 * takes a value consumes the following argument. fatal()s on unknown
 * flags, flags the command does not accept, and missing/bad values.
 */
CliOptions parseCommandOptions(const CommandSpec &command,
                               const std::vector<std::string> &args,
                               std::size_t from);

/** Render the global usage page (all commands + shared flags). */
void printUsage(std::ostream &os);

/** Render one command's help page (usage line + accepted flags). */
void printCommandHelp(std::ostream &os, const CommandSpec &command);

} // namespace memento

#endif // MEMENTO_CLI_OPTIONS_H
