#include "cli/options.h"

#include <cstdlib>
#include <cstring>
#include <ostream>

#include "sim/config_file.h"
#include "sim/logging.h"

namespace memento {
namespace {

unsigned
parsePositiveCount(const std::string &v, const char *flag)
{
    char *end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    fatal_if(end == v.c_str() || *end != '\0' || n < 1 || n > 4096,
             flag, " expects a positive count, got ", v);
    return static_cast<unsigned>(n);
}

/** `--shard I/N`: I in [0, N), N in [1, 4096]. */
void
parseShard(const std::string &v, unsigned &index, unsigned &count)
{
    const std::size_t slash = v.find('/');
    fatal_if(slash == std::string::npos || slash == 0 ||
                 slash + 1 >= v.size(),
             "--shard expects I/N (e.g. 0/2), got ", v);
    char *end = nullptr;
    const std::string idx_s = v.substr(0, slash);
    const std::string cnt_s = v.substr(slash + 1);
    const long idx = std::strtol(idx_s.c_str(), &end, 10);
    fatal_if(end == idx_s.c_str() || *end != '\0' || idx < 0,
             "--shard expects I/N (e.g. 0/2), got ", v);
    const long cnt = std::strtol(cnt_s.c_str(), &end, 10);
    fatal_if(end == cnt_s.c_str() || *end != '\0' || cnt < 1 ||
                 cnt > 4096,
             "--shard expects I/N with N in [1, 4096], got ", v);
    fatal_if(idx >= cnt, "--shard ", v, ": shard index ", idx,
             " must be below the shard count ", cnt);
    index = static_cast<unsigned>(idx);
    count = static_cast<unsigned>(cnt);
}

} // namespace

const std::vector<FlagSpec> &
allFlags()
{
    static const std::vector<FlagSpec> flags = {
        {"--config", "FILE",
         "apply `key = value` lines (see sim/config_file.h)",
         [](CliOptions &o, const std::string &v) {
             applyConfigFile(v, o.cfg);
         }},
        {"--set", "key=value",
         "single config override (repeatable, applied after --config)",
         [](CliOptions &o, const std::string &v) {
             const std::size_t eq = v.find('=');
             fatal_if(eq == std::string::npos,
                      "--set expects key=value, got ", v);
             applyConfigOption(v.substr(0, eq), v.substr(eq + 1), o.cfg);
         }},
        {"--memento", "", "enable the Memento hardware",
         [](CliOptions &o, const std::string &) { o.memento = true; }},
        {"--cold", "", "charge container set-up (cold start)",
         [](CliOptions &o, const std::string &) { o.cold = true; }},
        {"--trace", "FILE",
         "replay a recorded trace instead of synthesizing",
         [](CliOptions &o, const std::string &v) { o.traceFile = v; }},
        {"--stats", "", "dump every raw counter after the run",
         [](CliOptions &o, const std::string &) { o.dumpStats = true; }},
        {"--keep-going", "",
         "survive failing runs; report failures at the end",
         [](CliOptions &o, const std::string &) { o.keepGoing = true; }},
        {"--digest", "",
         "run each workload twice and compare machine-state digests",
         [](CliOptions &o, const std::string &) { o.digest = true; }},
        {"--jobs", "N",
         "worker threads for the sweep (default: hardware concurrency)",
         [](CliOptions &o, const std::string &v) {
             o.jobs = parsePositiveCount(v, "--jobs");
         }},
        {"--json", "",
         "emit a versioned JSON document instead of text",
         [](CliOptions &o, const std::string &) { o.json = true; }},
        {"--allow", "RULE[,RULE...]",
         "suppress findings of the rule id(s); repeatable",
         [](CliOptions &o, const std::string &v) {
             // Comma-separated list or repeated flag, interchangeably.
             std::size_t from = 0;
             while (from <= v.size()) {
                 std::size_t comma = v.find(',', from);
                 if (comma == std::string::npos)
                     comma = v.size();
                 const std::string rule = v.substr(from, comma - from);
                 fatal_if(rule.empty(),
                          "--allow: empty rule id in '", v, "'");
                 fatal_if(findDiagRule(rule) == nullptr,
                          "--allow: unknown rule '", rule,
                          "' (see `memento_sim rules` or the rule table "
                          "in README.md)");
                 o.diagPolicy.allowed.insert(rule);
                 from = comma + 1;
             }
         }},
        {"--werror", "", "treat analysis warnings as errors",
         [](CliOptions &o, const std::string &) {
             o.diagPolicy.werror = true;
         }},
        {"--out", "FILE",
         "benchmark JSON output path (default BENCH_PR8.json)",
         [](CliOptions &o, const std::string &v) { o.outFile = v; }},
        {"--repeat", "N",
         "timed repetitions per workload; the median is reported",
         [](CliOptions &o, const std::string &v) {
             o.repeats = parsePositiveCount(v, "--repeat");
         }},
        {"--smoke", "",
         "bench a reduced three-workload sweep (CI smoke mode)",
         [](CliOptions &o, const std::string &) { o.smoke = true; }},
        {"--cache", "DIR",
         "crash-safe result store: resume, share, and merge sweeps",
         [](CliOptions &o, const std::string &v) {
             fatal_if(v.empty(), "--cache expects a directory path");
             o.cfg.sweep.cacheDir = v;
         }},
        {"--no-cache", "",
         "ignore any sweep.cache_dir from config files",
         [](CliOptions &o, const std::string &) { o.noCache = true; }},
        {"--shard", "I/N",
         "compute only workloads with index % N == I (merge later)",
         [](CliOptions &o, const std::string &v) {
             parseShard(v, o.cfg.sweep.shardIndex, o.cfg.sweep.shardCount);
         }},
        {"--retry", "N",
         "retry each failed cell up to N times (deterministic backoff)",
         [](CliOptions &o, const std::string &v) {
             char *end = nullptr;
             const long n = std::strtol(v.c_str(), &end, 10);
             fatal_if(end == v.c_str() || *end != '\0' || n < 0 ||
                          n > 16,
                      "--retry expects a count in [0, 16], got ", v);
             o.cfg.sweep.retries = static_cast<unsigned>(n);
         }},
        {"--revalidate", "",
         "recompute a sample of cache hits; fail loudly on divergence",
         [](CliOptions &o, const std::string &) { o.revalidate = true; }},
        // Fleet conveniences: each is sugar for --set fleet.<key>=V, so
        // the schema's type and range validation applies unchanged.
        {"--cores", "N", "fleet: simulated cores on the node",
         [](CliOptions &o, const std::string &v) {
             applyConfigOption("fleet.cores", v, o.cfg);
         }},
        {"--invocations", "N", "fleet: arrivals to generate",
         [](CliOptions &o, const std::string &v) {
             applyConfigOption("fleet.invocations", v, o.cfg);
         }},
        {"--arrival", "KIND",
         "fleet: arrival process (poisson, bursty, diurnal)",
         [](CliOptions &o, const std::string &v) {
             applyConfigOption("fleet.arrival", v, o.cfg);
         }},
        {"--rate", "RPS", "fleet: mean arrival rate (requests/sec)",
         [](CliOptions &o, const std::string &v) {
             applyConfigOption("fleet.rate_rps", v, o.cfg);
         }},
    };
    return flags;
}

const std::vector<CommandSpec> &
allCommands()
{
    static const std::vector<CommandSpec> commands = {
        {"list", "", "list built-in workloads", {}, 0},
        {"run", "<workload>|all", "run one configuration",
         {"--config", "--set", "--memento", "--cold", "--trace",
          "--stats", "--keep-going", "--digest", "--jobs", "--cache",
          "--no-cache", "--shard", "--retry", "--revalidate"},
         1},
        {"compare", "<workload>|all",
         "paired baseline vs Memento (and bypass-off) runs",
         {"--config", "--set", "--cold", "--keep-going", "--jobs",
          "--cache", "--no-cache", "--shard", "--retry", "--revalidate"},
         1},
        {"trace", "<workload> <file>", "write the workload's trace",
         {}, 2},
        {"check", "<workload>|all",
         "static trace analysis (no simulation)",
         {"--config", "--set", "--trace", "--jobs", "--json", "--allow",
          "--werror"},
         1},
        {"lint-config", "<file>", "validate a config file",
         {"--json", "--allow", "--werror"}, 1},
        {"lint-src", "[paths...]",
         "determinism & thread-safety lint over C++ sources",
         {"--jobs", "--json", "--allow", "--werror"}, 0, true},
        {"rules", "", "dump the registered diagnostic rule table",
         {"--json"}, 0},
        {"bench", "",
         "self-benchmark the simulator over the workload sweep",
         {"--config", "--set", "--memento", "--jobs", "--json", "--out",
          "--repeat", "--smoke", "--cache", "--no-cache", "--shard"},
         0},
        {"fleet", "",
         "simulate a serverless node: arrivals, keep-alive, percentiles",
         {"--config", "--set", "--memento", "--jobs", "--json", "--cores",
          "--invocations", "--arrival", "--rate", "--cache", "--no-cache"},
         0},
        {"merge", "<out-dir> <in-dir>...",
         "merge partial result stores into one (validated union)",
         {}, 2},
        {"help", "[command]", "show help for a command", {}, 0},
    };
    return commands;
}

const FlagSpec *
findFlag(std::string_view name)
{
    for (const FlagSpec &flag : allFlags()) {
        if (flag.name == name)
            return &flag;
    }
    return nullptr;
}

const CommandSpec *
findCommand(std::string_view name)
{
    for (const CommandSpec &cmd : allCommands()) {
        if (cmd.name == name)
            return &cmd;
    }
    return nullptr;
}

CliOptions
parseCommandOptions(const CommandSpec &command,
                    const std::vector<std::string> &args, std::size_t from)
{
    CliOptions opts;
    for (std::size_t i = from; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            opts.helpRequested = true;
            return opts;
        }
        if (command.variadicPaths && arg.rfind("-", 0) != 0) {
            opts.paths.push_back(arg);
            continue;
        }
        const FlagSpec *flag = findFlag(arg);
        fatal_if(flag == nullptr, "unknown option ", arg,
                 " (see `memento_sim help ", command.name, "`)");
        bool accepted = false;
        for (std::string_view name : command.flags)
            accepted = accepted || name == arg;
        fatal_if(!accepted, "command '", command.name,
                 "' does not accept ", arg, " (see `memento_sim help ",
                 command.name, "`)");
        std::string value;
        if (flag->takesValue()) {
            fatal_if(i + 1 >= args.size(), "missing ", flag->valueName,
                     " after ", arg);
            value = args[++i];
        }
        flag->apply(opts, value);
    }
    if (opts.memento)
        opts.cfg.memento.enabled = true;
    // --no-cache beats --cache and sweep.cache_dir regardless of the
    // order they appeared in.
    if (opts.noCache)
        opts.cfg.sweep.cacheDir.clear();
    return opts;
}

void
printCommandHelp(std::ostream &os, const CommandSpec &command)
{
    os << "usage: memento_sim " << command.name;
    if (!command.usageArgs.empty())
        os << ' ' << command.usageArgs;
    if (!command.flags.empty())
        os << " [options]";
    os << "\n  " << command.help << "\n";
    if (command.flags.empty())
        return;
    os << "options:\n";
    for (std::string_view name : command.flags) {
        const FlagSpec *flag = findFlag(name);
        std::string left(flag->name);
        if (flag->takesValue()) {
            left += ' ';
            left += flag->valueName;
        }
        os << "  " << left;
        for (std::size_t pad = left.size(); pad < 22; ++pad)
            os << ' ';
        os << flag->help << "\n";
    }
}

void
printUsage(std::ostream &os)
{
    os << "usage: memento_sim <command> [args]\n";
    for (const CommandSpec &cmd : allCommands()) {
        std::string left(cmd.name);
        if (!cmd.usageArgs.empty()) {
            left += ' ';
            left += cmd.usageArgs;
        }
        os << "  " << left;
        for (std::size_t pad = left.size(); pad < 26; ++pad)
            os << ' ';
        os << cmd.help << "\n";
    }
    os << "Run `memento_sim help <command>` for that command's "
          "options.\n";
}

} // namespace memento
