#include "rt/allocator.h"

// Interface-only translation unit.
