#include "rt/glibc_large.h"

#include "sim/logging.h"
#include "sim/size_class.h"

namespace memento {

GlibcLargeAlloc::GlibcLargeAlloc(VirtualMemory &vm, StatRegistry &stats,
                                 const std::string &prefix)
    : vm_(vm),
      mallocs_(stats.counter(prefix + ".large_mallocs")),
      frees_(stats.counter(prefix + ".large_frees")),
      mmapServed_(stats.counter(prefix + ".large_mmap_served"))
{
}

Addr
GlibcLargeAlloc::malloc(std::uint64_t size, Env &env)
{
    panic_if(size <= kMaxSmallSize, "GlibcLargeAlloc: small size ", size);
    CategoryScope scope(env.ledger(), CycleCategory::UserAlloc);
    ++mallocs_;

    const std::uint64_t need = alignUp(size + kHeaderBytes, 16);

    if (need >= kMmapThreshold) {
        // Direct mmap path.
        ++mmapServed_;
        env.chargeInstructions(120);
        Addr base = vm_.mmap(alignUp(need, kPageSize), &env);
        Addr user = base + kHeaderBytes;
        env.accessVirtual(base, AccessType::Write); // Chunk header.
        live_[user] = Chunk{base, alignUp(need, kPageSize), size, true};
        liveBytes_ += size;
        return user;
    }

    // First fit over the binned free list.
    env.chargeInstructions(90);
    for (auto it = freeChunks_.begin(); it != freeChunks_.end(); ++it) {
        if (it->second >= need) {
            Addr base = it->first;
            std::uint64_t chunk_size = it->second;
            freeChunks_.erase(it);
            // Split the remainder back when worthwhile.
            if (chunk_size - need >= 64) {
                freeChunks_[base + need] = chunk_size - need;
                chunk_size = need;
            }
            env.accessVirtual(base, AccessType::Write);
            Addr user = base + kHeaderBytes;
            live_[user] = Chunk{base, chunk_size, size, false};
            liveBytes_ += size;
            return user;
        }
    }

    // Grow the top region.
    if (topUsed_ + need > topSize_) {
        const std::uint64_t grow =
            alignUp(need > kTopGrowBytes ? need : kTopGrowBytes, kPageSize);
        topBase_ = vm_.mmap(grow, &env);
        topSize_ = grow;
        topUsed_ = 0;
    }
    Addr base = topBase_ + topUsed_;
    topUsed_ += need;
    env.accessVirtual(base, AccessType::Write);
    Addr user = base + kHeaderBytes;
    live_[user] = Chunk{base, need, size, false};
    liveBytes_ += size;
    return user;
}

void
GlibcLargeAlloc::free(Addr ptr, Env &env)
{
    CategoryScope scope(env.ledger(), CycleCategory::UserFree);
    auto it = live_.find(ptr);
    panic_if(it == live_.end(), "GlibcLargeAlloc: bad free 0x", std::hex,
             ptr);
    ++frees_;
    const Chunk chunk = it->second;
    live_.erase(it);
    liveBytes_ -= chunk.requested;

    env.chargeInstructions(60);
    env.accessVirtual(chunk.base, AccessType::Read); // Header check.

    if (chunk.mmapped) {
        vm_.munmap(chunk.base, chunk.size, &env);
        return;
    }
    // Coalescing with neighbours is modeled by merging adjacent free
    // chunks in the map.
    Addr base = chunk.base;
    std::uint64_t size = chunk.size;
    auto next = freeChunks_.find(base + size);
    if (next != freeChunks_.end()) {
        size += next->second;
        freeChunks_.erase(next);
    }
    if (!freeChunks_.empty()) {
        auto prev = freeChunks_.lower_bound(base);
        if (prev != freeChunks_.begin()) {
            --prev;
            if (prev->first + prev->second == base) {
                base = prev->first;
                size += prev->second;
                freeChunks_.erase(prev);
            }
        }
    }
    freeChunks_[base] = size;
}

void
GlibcLargeAlloc::releaseAll(Env &env)
{
    while (!live_.empty())
        free(live_.begin()->first, env);
    freeChunks_.clear();
    liveBytes_ = 0;
}

} // namespace memento
