/**
 * @file
 * Model of TCMalloc — the allocator Mallacc (§6.7's comparator) was
 * built to accelerate.
 *
 * Structure follows the classic design: per-thread caches hold size-
 * classed singly-linked free lists; misses refill in batches from the
 * central free lists, which carve spans from the page heap; the page
 * heap grows via mmap in large increments and keeps freed spans for
 * reuse. Compared to the jemalloc model: TCMalloc's thread-cache free
 * lists are threaded through the objects themselves (the free pop
 * dereferences the object — the load Mallacc's cache short-circuits),
 * and its central lists transfer in fixed batch sizes.
 *
 * Offered as an alternative C++ baseline: construct it instead of
 * JeMalloc, or compare both (bench/abl_design, tests).
 */

#ifndef MEMENTO_RT_TCMALLOC_H
#define MEMENTO_RT_TCMALLOC_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/allocator.h"
#include "rt/glibc_large.h"
#include "sim/size_class.h"
#include "sim/stats.h"

namespace memento {

/** TCMalloc-like thread-cache / central-list / page-heap allocator. */
class TcMalloc : public Allocator
{
  public:
    struct Params
    {
        /** Span size carved by the central lists. */
        std::uint64_t spanBytes = 32 << 10;
        /** Page-heap growth increment (sys_alloc). */
        std::uint64_t growBytes = 1 << 20;
        /** Thread-cache capacity per class (object count). */
        unsigned cacheMax = 64;
        /** Objects moved per central transfer. */
        unsigned transferBatch = 16;
        /**
         * Instruction budgets for the paths Mallacc accelerates (size
         * class lookup + free-list pop/push) and the rest of the fast
         * path.
         */
        InstCount cachedPathInstructions = 14;
        InstCount restOfFastPathInstructions = 12;
        /** Follow the free-list pointer inside the object on pop. */
        bool popTouchesObject = true;
    };

    TcMalloc(VirtualMemory &vm, StatRegistry &stats, Params params);
    TcMalloc(VirtualMemory &vm, StatRegistry &stats);

    Addr malloc(std::uint64_t size, Env &env) override;
    void free(Addr ptr, Env &env) override;
    void functionExit(Env &env) override;
    bool isLive(Addr ptr) const override;
    std::uint64_t
    liveBytes() const override
    {
        return liveBytes_ + large_.liveBytes();
    }
    double inactiveSlotFraction() const override;
    std::string name() const override { return "tcmalloc"; }

  private:
    struct Span
    {
        Addr base = 0;
        unsigned szclass = 0;
        unsigned capacity = 0;
        unsigned carved = 0;
        unsigned live = 0;
    };

    /** Refill the class's thread cache from the central list. */
    void refill(unsigned cls, Env &env);
    /** Release half the thread cache back to the central list. */
    void release(unsigned cls, Env &env);
    Span &spanOf(Addr ptr);

    VirtualMemory &vm_;
    Params params_;
    GlibcLargeAlloc large_;

    /** Thread cache: per-class LIFO of object addresses. */
    std::vector<std::vector<Addr>> cache_;
    /** Central free lists: per-class objects returned by releases. */
    std::vector<std::vector<Addr>> central_;
    /** Spans by base address. */
    std::unordered_map<Addr, Span> spans_;
    /** Per-class span with uncarved objects. */
    std::vector<Addr> openSpan_;

    /** Page-heap growth region. */
    Addr growBase_ = 0;
    std::uint64_t growUsed_ = 0;
    std::uint64_t growSize_ = 0;
    /** All growth regions mapped so far (for teardown). */
    std::vector<Addr> regions_;

    /** Central/pageheap metadata region (pre-populated, warm). */
    Addr metaRegion_ = 0;

    std::unordered_map<Addr, std::uint32_t> live_;
    std::uint64_t liveBytes_ = 0;

    Counter smallMallocs_;
    Counter smallFrees_;
    Counter refills_;
    Counter releases_;
    Counter spanCarves_;
    Counter heapGrows_;
};

} // namespace memento

#endif // MEMENTO_RT_TCMALLOC_H
