/**
 * @file
 * Model of the Go 1.13 runtime allocator and garbage collector.
 *
 * Small objects come from 8 KB spans carved out of large (64 MB) arena
 * reservations; spans are cached per-P (mcache) and refilled from
 * mcentral/mheap. Objects are zeroed on allocation (mallocgc), which is
 * what drags Go's first-touch page faults onto the allocation path and
 * produces the paper's 56/44 user/kernel split (Table 2). free() only
 * records unreachability: within a short function the GC never fires,
 * so everything is batch-freed at exit (§2.2's "long-lived" Go bars in
 * Fig. 3); long-running processes (the FaaS platform ops) trigger
 * mark-and-sweep cycles once enough bytes have been allocated.
 */

#ifndef MEMENTO_RT_GOMALLOC_H
#define MEMENTO_RT_GOMALLOC_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/allocator.h"
#include "rt/glibc_large.h"
#include "sim/size_class.h"
#include "sim/stats.h"

namespace memento {

/** Go-runtime-like allocator with optional GC. */
class GoMalloc : public Allocator
{
  public:
    struct Params
    {
        /** Reservation unit requested from the OS (Go heap arena). */
        std::uint64_t arenaBytes = 64 << 20;
        /** Span size. */
        std::uint64_t spanBytes = 8 << 10;
        /**
         * GC trigger: run a cycle when this many bytes have been
         * allocated since the last one. 0 disables GC (short-lived
         * functions never reach a trigger).
         */
        std::uint64_t gcTriggerBytes = 0;
        /**
         * Scavenge fully-free spans after a GC cycle: their pages are
         * madvised back to the OS and fault in again on reuse (the Go
         * 1.13 background scavenger). Only meaningful with GC on.
         */
        bool scavenge = true;
    };

    GoMalloc(VirtualMemory &vm, StatRegistry &stats, Params params);
    GoMalloc(VirtualMemory &vm, StatRegistry &stats);

    Addr malloc(std::uint64_t size, Env &env) override;
    void free(Addr ptr, Env &env) override;
    void functionExit(Env &env) override;
    bool isLive(Addr ptr) const override;
    std::uint64_t
    liveBytes() const override
    {
        return liveBytes_ + large_.liveBytes();
    }
    std::string name() const override { return "gomalloc"; }
    double inactiveSlotFraction() const override;

    /** Completed GC cycles. */
    std::uint64_t gcCycles() const { return gcRuns_.value(); }

    /** Run a mark-and-sweep cycle now (also used by tests). */
    void runGc(Env &env);

  private:
    struct Span
    {
        Addr base = 0;
        Addr metaAddr = 0;
        unsigned szclass = 0;
        unsigned capacity = 0;
        unsigned carved = 0;
        unsigned liveCount = 0;
        std::vector<Addr> freeList;
        std::vector<Addr> dead; ///< Unreachable, not yet swept.
    };

    Span &spanForClass(unsigned cls, Env &env);
    Span &newSpan(unsigned cls, Env &env);
    Addr spanBaseOf(Addr ptr) const;

    VirtualMemory &vm_;
    Params params_;
    GlibcLargeAlloc large_;

    std::unordered_map<Addr, Span> spans_;
    std::vector<std::vector<Addr>> partialSpans_; ///< Per class.
    std::vector<Addr> idleSpans_; ///< Fully free, reusable (any class).
    std::vector<Addr> arenas_;    ///< OS reservations.
    std::uint64_t arenaCursor_ = 0;

    /** mcache/mcentral metadata region (one record per span). */
    Addr metaRegion_ = 0;
    std::uint64_t metaCursor_ = 0;

    std::unordered_map<Addr, std::uint32_t> live_;
    std::uint64_t liveBytes_ = 0;
    std::uint64_t bytesSinceGc_ = 0;

    Counter smallMallocs_;
    Counter deaths_;
    Counter gcRuns_;
    Counter sweptObjects_;
    Counter arenaMmaps_;
    Counter spanCarves_;
};

} // namespace memento

#endif // MEMENTO_RT_GOMALLOC_H
