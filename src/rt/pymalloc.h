/**
 * @file
 * Model of CPython's pymalloc (obmalloc.c), per §2.1 of the paper.
 *
 * 256 KB arenas are mmap'd from the OS and split into 4 KB pools; each
 * pool serves one 8-byte-step size class <= 512 B and keeps a free list
 * threaded through the freed blocks themselves. Per-class used-pool
 * lists, per-arena free-pool lists, arena release via munmap when fully
 * free, and >512 B delegation to the glibc model all follow the real
 * allocator. Metadata accesses happen at the metadata's simulated
 * addresses, so the allocator's cache/TLB/fault behaviour is emergent.
 */

#ifndef MEMENTO_RT_PYMALLOC_H
#define MEMENTO_RT_PYMALLOC_H

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "rt/allocator.h"
#include "rt/glibc_large.h"
#include "sim/size_class.h"
#include "sim/stats.h"

namespace memento {

/** pymalloc-style arena/pool allocator. */
class PyMalloc : public Allocator
{
  public:
    /** Tunables (the §6.6 "tuning software allocators" study). */
    struct Params
    {
        std::uint64_t arenaBytes = 256 << 10;
        std::uint64_t poolBytes = 4 << 10;
        /** Pool header size (struct pool_header). */
        std::uint64_t poolHeaderBytes = 48;
    };

    PyMalloc(VirtualMemory &vm, StatRegistry &stats, Params params);
    PyMalloc(VirtualMemory &vm, StatRegistry &stats);

    Addr malloc(std::uint64_t size, Env &env) override;
    void free(Addr ptr, Env &env) override;
    void functionExit(Env &env) override;
    bool isLive(Addr ptr) const override;
    std::uint64_t
    liveBytes() const override
    {
        return liveBytes_ + large_.liveBytes();
    }
    std::string name() const override { return "pymalloc"; }
    double inactiveSlotFraction() const override;

    /** Number of live arenas (tests). */
    std::size_t arenaCount() const { return arenas_.size(); }

  private:
    struct Pool
    {
        Addr base = 0;
        Addr arenaBase = 0;
        unsigned szclass = 0;
        unsigned capacity = 0;
        unsigned used = 0;
        /** Next never-carved block (bump). */
        Addr bump = 0;
        /** LIFO of freed block addresses (freeblock chain). */
        std::vector<Addr> freeBlocks;
        /** Position in usedPools_[szclass] when linked there. */
        std::list<Pool *>::iterator usedPos;
        bool inUsedList = false;

        bool
        hasFree(const Params &p) const
        {
            return !freeBlocks.empty() ||
                   bump + sizeClassBytes(szclass) <= base + p.poolBytes;
        }
    };

    struct Arena
    {
        Addr base = 0;
        /** Address of this arena's arena_object metadata slot. */
        Addr objAddr = 0;
        std::vector<Addr> freePools; ///< LIFO of uncarved/empty pools.
        unsigned totalPools = 0;
        unsigned freeCount = 0;
    };

    /** Get a pool with free space for @p cls, acquiring one if needed. */
    Pool &poolForClass(unsigned cls, Env &env);
    /** Carve a block from @p pool (it must have space). */
    Addr carveBlock(Pool &pool, Env &env);
    /** Take a free pool from an arena (mmap'ing a new arena if none). */
    Addr acquirePool(unsigned cls, Env &env);
    void releaseArena(Arena &arena, Env &env);

    VirtualMemory &vm_;
    Params params_;
    GlibcLargeAlloc large_;

    /**
     * Pools with free blocks per class; front = most recently used.
     * Holds Pool pointers (map nodes are stable) so the malloc fast
     * path reaches its pool without a pools_ lookup; a pool unlinks
     * itself before its pools_ node is erased.
     */
    std::vector<std::list<Pool *>> usedPools_;
    std::map<Addr, Pool> pools_;   ///< Keyed by pool base.
    std::map<Addr, Arena> arenas_; ///< Keyed by arena base.
    /** Arena-object table region (arena metadata lives here). */
    Addr arenaObjRegion_ = 0;
    std::uint64_t arenaObjCursor_ = 0;
    /** Recycled arena_object slots (CPython's unused_arena_objects). */
    std::vector<Addr> freeArenaObjSlots_;

    std::unordered_map<Addr, std::uint32_t> live_; ///< ptr -> size.
    std::uint64_t liveBytes_ = 0;

    Counter smallMallocs_;
    Counter smallFrees_;
    Counter arenaMmaps_;
    Counter arenaMunmaps_;
    Counter poolAcquires_;
};

} // namespace memento

#endif // MEMENTO_RT_PYMALLOC_H
