#include "rt/gomalloc.h"

#include <algorithm>
#include <vector>

#include "sim/logging.h"

namespace memento {

GoMalloc::GoMalloc(VirtualMemory &vm, StatRegistry &stats)
    : GoMalloc(vm, stats, Params{})
{
}

GoMalloc::GoMalloc(VirtualMemory &vm, StatRegistry &stats, Params params)
    : vm_(vm),
      params_(params),
      large_(vm, stats, "gomalloc"),
      partialSpans_(kNumSmallClasses),
      smallMallocs_(stats.counter("gomalloc.small_mallocs")),
      deaths_(stats.counter("gomalloc.deaths")),
      gcRuns_(stats.counter("gomalloc.gc_runs")),
      sweptObjects_(stats.counter("gomalloc.swept_objects")),
      arenaMmaps_(stats.counter("gomalloc.arena_mmaps")),
      spanCarves_(stats.counter("gomalloc.span_carves"))
{
    panic_if(!isPowerOfTwo(params_.spanBytes) ||
                 params_.spanBytes < kPageSize,
             "gomalloc: span size must be a power-of-two >= page size");
    panic_if(params_.arenaBytes % params_.spanBytes != 0,
             "gomalloc: arena size must be a multiple of the span size");
    // mspan records live in runtime-managed memory, demand-faulted as
    // the heap grows (this is kernel-visible metadata growth).
    metaRegion_ = vm_.mmap(256 * kPageSize, nullptr);
}

Addr
GoMalloc::spanBaseOf(Addr ptr) const
{
    return ptr & ~(params_.spanBytes - 1);
}

GoMalloc::Span &
GoMalloc::newSpan(unsigned cls, Env &env)
{
    ++spanCarves_;
    Addr base;
    if (!idleSpans_.empty()) {
        base = idleSpans_.back();
        idleSpans_.pop_back();
        spans_.erase(base);
    } else {
        if (arenas_.empty() || arenaCursor_ + params_.spanBytes >
                                   params_.arenaBytes) {
            // mheap growth: reserve a new arena from the OS. Go's
            // reservations are huge, so this is rare but expensive.
            ++arenaMmaps_;
            env.chargeInstructions(350);
            arenas_.push_back(vm_.mmap(params_.arenaBytes, &env, false,
                                       params_.spanBytes));
            arenaCursor_ = 0;
        }
        base = arenas_.back() + arenaCursor_;
        arenaCursor_ += params_.spanBytes;
    }

    Span span;
    span.base = base;
    span.szclass = cls;
    span.capacity =
        static_cast<unsigned>(params_.spanBytes / sizeClassBytes(cls));
    span.metaAddr = metaRegion_ + metaCursor_;
    metaCursor_ = (metaCursor_ + 64) % (256 * kPageSize);

    // mcentral span acquisition: list surgery plus mspan init.
    env.chargeInstructions(230);
    env.accessVirtual(span.metaAddr, AccessType::Write);

    auto [it, inserted] = spans_.emplace(base, span);
    panic_if(!inserted, "gomalloc: span already exists at 0x", std::hex,
             base);
    partialSpans_[cls].push_back(base);
    return it->second;
}

GoMalloc::Span &
GoMalloc::spanForClass(unsigned cls, Env &env)
{
    auto &list = partialSpans_[cls];
    while (!list.empty()) {
        Span &span = spans_.at(list.back());
        if (!span.freeList.empty() || span.carved < span.capacity)
            return span;
        list.pop_back(); // Exhausted; drop from the partial list.
    }
    return newSpan(cls, env);
}

Addr
GoMalloc::malloc(std::uint64_t size, Env &env)
{
    panic_if(size == 0, "gomalloc: zero-size malloc");
    if (size > kMaxSmallSize)
        return large_.malloc(size, env);

    if (params_.gcTriggerBytes != 0 &&
        bytesSinceGc_ >= params_.gcTriggerBytes)
        runGc(env);

    CategoryScope scope(env.ledger(), CycleCategory::UserAlloc);
    ++smallMallocs_;
    env.chargeInstructions(85); // mallocgc small-object budget.

    const unsigned cls = sizeClassIndex(size);
    Span &span = spanForClass(cls, env);
    env.accessVirtual(span.metaAddr, AccessType::Read);

    Addr obj;
    if (!span.freeList.empty()) {
        obj = span.freeList.back();
        span.freeList.pop_back();
    } else {
        obj = span.base + static_cast<std::uint64_t>(span.carved) *
                              sizeClassBytes(cls);
        ++span.carved;
    }
    ++span.liveCount;
    env.accessVirtual(span.metaAddr, AccessType::Write); // allocBits.

    // mallocgc zeroes the object: this write is what demand-faults the
    // heap page on the allocation path.
    env.accessVirtual(obj, AccessType::Write);

    live_[obj] = static_cast<std::uint32_t>(size);
    liveBytes_ += size;
    bytesSinceGc_ += sizeClassBytes(cls);
    return obj;
}

void
GoMalloc::free(Addr ptr, Env &env)
{
    if (large_.owns(ptr)) {
        large_.free(ptr, env);
        return;
    }

    // Becoming unreachable costs nothing at the moment of death; the
    // object is reclaimed by a future GC sweep (or batch-freed at
    // function exit by the OS).
    auto it = live_.find(ptr);
    panic_if(it == live_.end(), "gomalloc: death of non-live 0x", std::hex,
             ptr);
    ++deaths_;
    liveBytes_ -= it->second;
    live_.erase(it);

    Span &span = spans_.at(spanBaseOf(ptr));
    span.dead.push_back(ptr);
    --span.liveCount;
    (void)env;
}

void
GoMalloc::runGc(Env &env)
{
    ++gcRuns_;
    CategoryScope scope(env.ledger(), CycleCategory::UserFree);

    // Mark: proportional to the live set.
    env.chargeInstructions(20 * live_.size() + 4000);

    // Sweep in ascending span order: the sweep touches span metadata
    // (cache state) and appends reclaimed spans to the partial/idle
    // lists that later allocations pop from, so hash-order sweeping
    // would make allocation addresses implementation-defined.
    std::vector<Addr> bases;
    bases.reserve(spans_.size());
    for (const auto &[base, span] :
         spans_) // lint-src: allow(src-unordered-iteration)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    for (Addr base : bases) {
        Span &span = spans_.at(base);
        if (span.dead.empty())
            continue;
        env.chargeInstructions(60 + 12 * span.dead.size());
        env.accessVirtual(span.metaAddr, AccessType::Write);
        sweptObjects_ += span.dead.size();
        const bool was_exhausted =
            span.freeList.empty() && span.carved == span.capacity;
        for (Addr obj : span.dead)
            span.freeList.push_back(obj);
        span.dead.clear();
        if (was_exhausted && span.liveCount > 0)
            partialSpans_[span.szclass].push_back(base);
        if (span.liveCount == 0) {
            // Fully free span: hand it back to the mheap. It must leave
            // its class's partial list or a later allocation of that
            // class could find a span that has been repurposed.
            auto &pl = partialSpans_[span.szclass];
            pl.erase(std::remove(pl.begin(), pl.end(), base), pl.end());
            idleSpans_.push_back(base);
            if (params_.scavenge) {
                // Return the span's pages to the OS; reuse refaults.
                vm_.madviseFree(base, params_.spanBytes, &env);
            }
        }
    }
    bytesSinceGc_ = 0;
}

void
GoMalloc::functionExit(Env &env)
{
    // Batch free by the OS at process exit: unmap the reservations.
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    for (Addr arena : arenas_)
        vm_.munmap(arena, params_.arenaBytes, &env);
    arenas_.clear();
    arenaCursor_ = 0;
    spans_.clear();
    idleSpans_.clear();
    for (auto &list : partialSpans_)
        list.clear();
    live_.clear();
    liveBytes_ = 0;
    bytesSinceGc_ = 0;
    large_.releaseAll(env);
}

double
GoMalloc::inactiveSlotFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t live = 0;
    // Commutative integer sums: visit order cannot affect the result.
    for (const auto &[base, span] :
         spans_) { // lint-src: allow(src-unordered-iteration)
        if (span.liveCount == 0)
            continue; // Idle span: free memory, not slack.
        total += span.capacity;
        live += span.liveCount;
    }
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(live) / static_cast<double>(total);
}

bool
GoMalloc::isLive(Addr ptr) const
{
    return live_.count(ptr) != 0 || large_.owns(ptr);
}

} // namespace memento
