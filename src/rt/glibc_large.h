/**
 * @file
 * glibc-malloc-like handler for large (>512 B) allocations.
 *
 * The paper routes allocations above 512 bytes to software (glibc) in
 * both the baseline and the Memento system, so this model is shared:
 * medium sizes are served first-fit from binned free lists over a
 * sbrk/mmap-grown top region; sizes at or above the mmap threshold map
 * and unmap their own regions, exactly the behaviour that makes large
 * allocations kernel-heavy.
 */

#ifndef MEMENTO_RT_GLIBC_LARGE_H
#define MEMENTO_RT_GLIBC_LARGE_H

#include <cstdint>
#include <map>

#include "mem/env.h"
#include "os/virtual_memory.h"
#include "rt/allocator.h"
#include "sim/stats.h"

namespace memento {

/** Large-object allocator in the style of glibc's ptmalloc. */
class GlibcLargeAlloc
{
  public:
    /** Allocations at or above this size get their own mapping. */
    static constexpr std::uint64_t kMmapThreshold = 128 << 10;
    /** Top-region growth increment. */
    static constexpr std::uint64_t kTopGrowBytes = 1 << 20;

    GlibcLargeAlloc(VirtualMemory &vm, StatRegistry &stats,
                    const std::string &prefix);

    /** Allocate @p size (> kMaxSmallSize) bytes. */
    Addr malloc(std::uint64_t size, Env &env);

    /** Free a pointer previously returned by malloc(). */
    void free(Addr ptr, Env &env);

    /** True when @p ptr was allocated here and is live. */
    bool owns(Addr ptr) const { return live_.count(ptr) != 0; }

    /** Live bytes (requested). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Release everything (process teardown). */
    void releaseAll(Env &env);

  private:
    struct Chunk
    {
        Addr base = 0;
        std::uint64_t size = 0;      ///< Usable size incl. header.
        std::uint64_t requested = 0; ///< Size the caller asked for.
        bool mmapped = false;
    };

    VirtualMemory &vm_;

    /** Free chunks in the top region, keyed by base (first fit). */
    std::map<Addr, std::uint64_t> freeChunks_;
    /** Live allocations: user pointer -> chunk. */
    std::map<Addr, Chunk> live_;
    std::uint64_t liveBytes_ = 0;
    Addr topBase_ = 0;   ///< Current top region (grown on demand).
    std::uint64_t topUsed_ = 0;
    std::uint64_t topSize_ = 0;

    Counter mallocs_;
    Counter frees_;
    Counter mmapServed_;

    static constexpr std::uint64_t kHeaderBytes = 16;
};

} // namespace memento

#endif // MEMENTO_RT_GLIBC_LARGE_H
