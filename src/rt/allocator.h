/**
 * @file
 * The userspace allocator interface the simulated application calls.
 *
 * Implementations are *models of algorithms*: they maintain the same
 * metadata structures as the real allocators, place that metadata at
 * real simulated virtual addresses, and touch it through Env so that
 * cache behaviour, TLB behaviour, page faults and kernel calls all
 * surface exactly where the real software would cause them.
 *
 * malloc() charges under CycleCategory::UserAlloc, free() under
 * UserFree; kernel work they trigger re-scopes itself (see
 * VirtualMemory).
 */

#ifndef MEMENTO_RT_ALLOCATOR_H
#define MEMENTO_RT_ALLOCATOR_H

#include <cstdint>
#include <string>

#include "mem/env.h"
#include "sim/types.h"

namespace memento {

/** Abstract userspace allocator. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Allocate @p size bytes.
     * @return virtual address of the object (never kNullAddr).
     */
    virtual Addr malloc(std::uint64_t size, Env &env) = 0;

    /**
     * Release the object at @p ptr. For garbage-collected runtimes this
     * records unreachability; reclamation may be deferred to a GC cycle
     * or to functionExit().
     */
    virtual void free(Addr ptr, Env &env) = 0;

    /**
     * Function/process teardown: batch-free everything still live and
     * return memory to the OS (the "freed by the OS when the function
     * exits" path of §2.2).
     */
    virtual void functionExit(Env &env) = 0;

    /** True when @p ptr is a live allocation (test/validation hook). */
    virtual bool isLive(Addr ptr) const = 0;

    /** Bytes currently live (requested sizes). */
    virtual std::uint64_t liveBytes() const = 0;

    /**
     * Fraction of small-object slots currently tracked by the
     * allocator's metadata that are not live (the §6.6 fragmentation
     * metric; mixes fragmentation and free memory).
     */
    virtual double inactiveSlotFraction() const { return 0.0; }

    /** Allocator display name. */
    virtual std::string name() const = 0;
};

} // namespace memento

#endif // MEMENTO_RT_ALLOCATOR_H
