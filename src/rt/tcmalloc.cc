#include "rt/tcmalloc.h"

#include "sim/logging.h"

namespace memento {

TcMalloc::TcMalloc(VirtualMemory &vm, StatRegistry &stats)
    : TcMalloc(vm, stats, Params{})
{
}

TcMalloc::TcMalloc(VirtualMemory &vm, StatRegistry &stats, Params params)
    : vm_(vm),
      params_(params),
      large_(vm, stats, "tcmalloc"),
      cache_(kNumSmallClasses),
      central_(kNumSmallClasses),
      openSpan_(kNumSmallClasses, kNullAddr),
      smallMallocs_(stats.counter("tcmalloc.small_mallocs")),
      smallFrees_(stats.counter("tcmalloc.small_frees")),
      refills_(stats.counter("tcmalloc.refills")),
      releases_(stats.counter("tcmalloc.releases")),
      spanCarves_(stats.counter("tcmalloc.span_carves")),
      heapGrows_(stats.counter("tcmalloc.heap_grows"))
{
    panic_if(!isPowerOfTwo(params_.spanBytes) ||
                 params_.spanBytes < kPageSize,
             "tcmalloc: span size must be a power-of-two >= page size");
    panic_if(params_.growBytes % params_.spanBytes != 0,
             "tcmalloc: grow size must be a multiple of the span size");
    // Thread-cache headers and central-list metadata; resident in a
    // warm process.
    metaRegion_ = vm_.mmap(2 * kPageSize, nullptr, /*populate=*/true);
}

TcMalloc::Span &
TcMalloc::spanOf(Addr ptr)
{
    return spans_.at(ptr & ~(params_.spanBytes - 1));
}

void
TcMalloc::refill(unsigned cls, Env &env)
{
    ++refills_;
    // Central list lock + transfer bookkeeping.
    env.chargeInstructions(160);
    env.accessVirtual(metaRegion_ + cls * 64, AccessType::Write);

    unsigned want = params_.transferBatch;
    auto &central = central_[cls];
    while (want > 0 && !central.empty()) {
        cache_[cls].push_back(central.back());
        central.pop_back();
        --want;
    }
    while (want > 0) {
        // Carve from the class's open span, fetching a new span from
        // the page heap when exhausted.
        if (openSpan_[cls] == kNullAddr ||
            spans_.at(openSpan_[cls]).carved ==
                spans_.at(openSpan_[cls]).capacity) {
            if (growBase_ == 0 || growUsed_ + params_.spanBytes >
                                      growSize_) {
                ++heapGrows_;
                env.chargeInstructions(300);
                growBase_ = vm_.mmap(params_.growBytes, &env, false,
                                     params_.spanBytes);
                regions_.push_back(growBase_);
                growSize_ = params_.growBytes;
                growUsed_ = 0;
            }
            Span span;
            span.base = growBase_ + growUsed_;
            growUsed_ += params_.spanBytes;
            span.szclass = cls;
            span.capacity = static_cast<unsigned>(params_.spanBytes /
                                                  sizeClassBytes(cls));
            ++spanCarves_;
            env.chargeInstructions(220);
            env.accessVirtual(span.base, AccessType::Write);
            openSpan_[cls] = span.base;
            spans_[span.base] = span;
        }
        Span &span = spans_.at(openSpan_[cls]);
        const Addr obj =
            span.base + static_cast<std::uint64_t>(span.carved) *
                            sizeClassBytes(cls);
        ++span.carved;
        cache_[cls].push_back(obj);
        --want;
    }
}

void
TcMalloc::release(unsigned cls, Env &env)
{
    ++releases_;
    env.chargeInstructions(140);
    env.accessVirtual(metaRegion_ + cls * 64, AccessType::Write);
    auto &cache = cache_[cls];
    for (unsigned i = 0; i < params_.transferBatch && !cache.empty();
         ++i) {
        central_[cls].push_back(cache.front());
        cache.erase(cache.begin());
        env.chargeInstructions(6);
    }
}

Addr
TcMalloc::malloc(std::uint64_t size, Env &env)
{
    panic_if(size == 0, "tcmalloc: zero-size malloc");
    if (size > kMaxSmallSize)
        return large_.malloc(size, env);

    CategoryScope scope(env.ledger(), CycleCategory::UserAlloc);
    ++smallMallocs_;
    env.chargeInstructions(params_.cachedPathInstructions +
                           params_.restOfFastPathInstructions);

    const unsigned cls = sizeClassIndex(size);
    if (cache_[cls].empty())
        refill(cls, env);

    Addr obj = cache_[cls].back();
    cache_[cls].pop_back();
    if (params_.popTouchesObject) {
        // The free list is threaded through the objects: popping reads
        // the next pointer stored in the object itself. This is the
        // dependent load Mallacc's cache short-circuits.
        env.accessVirtual(obj, AccessType::Read);
    }
    ++spanOf(obj).live;

    live_[obj] = static_cast<std::uint32_t>(size);
    liveBytes_ += size;
    return obj;
}

void
TcMalloc::free(Addr ptr, Env &env)
{
    if (large_.owns(ptr)) {
        large_.free(ptr, env);
        return;
    }

    CategoryScope scope(env.ledger(), CycleCategory::UserFree);
    auto it = live_.find(ptr);
    panic_if(it == live_.end(), "tcmalloc: bad free 0x", std::hex, ptr);
    liveBytes_ -= it->second;
    live_.erase(it);

    ++smallFrees_;
    env.chargeInstructions(params_.cachedPathInstructions / 2 +
                           params_.restOfFastPathInstructions / 2);

    Span &span = spanOf(ptr);
    --span.live;
    const unsigned cls = span.szclass;
    // Push threads the list pointer through the freed object.
    env.accessVirtual(ptr, AccessType::Write);
    cache_[cls].push_back(ptr);
    if (cache_[cls].size() > params_.cacheMax)
        release(cls, env);
}

void
TcMalloc::functionExit(Env &env)
{
    // TCMalloc famously does not return memory eagerly; process exit
    // lets the OS unmap everything. Regions are unmapped here for the
    // accounting the paper's batch-free path measures.
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    for (Addr r : regions_)
        vm_.munmap(r, params_.growBytes, &env);
    regions_.clear();
    spans_.clear();
    for (auto &c : cache_)
        c.clear();
    for (auto &c : central_)
        c.clear();
    openSpan_.assign(kNumSmallClasses, kNullAddr);
    growBase_ = 0;
    growUsed_ = 0;
    growSize_ = 0;
    live_.clear();
    liveBytes_ = 0;
    large_.releaseAll(env);
}

bool
TcMalloc::isLive(Addr ptr) const
{
    return live_.count(ptr) != 0 || large_.owns(ptr);
}

double
TcMalloc::inactiveSlotFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t live = 0;
    // Commutative integer sums: visit order cannot affect the result.
    for (const auto &[base, span] :
         spans_) { // lint-src: allow(src-unordered-iteration)
        if (span.live == 0)
            continue;
        total += span.capacity;
        live += span.live;
    }
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(live) / static_cast<double>(total);
}

} // namespace memento
