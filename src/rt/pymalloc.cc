#include "rt/pymalloc.h"

#include "sim/logging.h"

namespace memento {

PyMalloc::PyMalloc(VirtualMemory &vm, StatRegistry &stats)
    : PyMalloc(vm, stats, Params{})
{
}

PyMalloc::PyMalloc(VirtualMemory &vm, StatRegistry &stats, Params params)
    : vm_(vm),
      params_(params),
      large_(vm, stats, "pymalloc"),
      usedPools_(kNumSmallClasses),
      smallMallocs_(stats.counter("pymalloc.small_mallocs")),
      smallFrees_(stats.counter("pymalloc.small_frees")),
      arenaMmaps_(stats.counter("pymalloc.arena_mmaps")),
      arenaMunmaps_(stats.counter("pymalloc.arena_munmaps")),
      poolAcquires_(stats.counter("pymalloc.pool_acquires"))
{
    panic_if(params_.arenaBytes % params_.poolBytes != 0,
             "pymalloc: arena size must be a multiple of the pool size");
    // Pool lookup on free masks the pointer with the pool size, which
    // requires pool-aligned arenas; mmap guarantees page alignment only.
    panic_if(params_.poolBytes != kPageSize,
             "pymalloc: pool size must equal the page size");
    // Region holding arena_object records (not eagerly populated: the
    // interpreter faults these in as arenas appear).
    arenaObjRegion_ = vm_.mmap(64 * kPageSize, nullptr);
}

Addr
PyMalloc::acquirePool(unsigned cls, Env &env)
{
    ++poolAcquires_;
    env.chargeInstructions(40);

    // Find a usable arena with a spare pool.
    for (auto &[base, arena] : arenas_) {
        if (arena.freeCount > 0) {
            env.accessVirtual(arena.objAddr, AccessType::Read);
            Addr pool_base = arena.freePools.back();
            arena.freePools.pop_back();
            --arena.freeCount;
            env.accessVirtual(arena.objAddr, AccessType::Write);

            Pool pool;
            pool.base = pool_base;
            pool.arenaBase = base;
            pool.szclass = cls;
            pool.capacity = static_cast<unsigned>(
                (params_.poolBytes - params_.poolHeaderBytes) /
                sizeClassBytes(cls));
            pool.bump = pool_base + params_.poolHeaderBytes;
            // Initialize the pool header in place.
            env.chargeInstructions(25);
            env.accessVirtual(pool_base, AccessType::Write);
            pools_[pool_base] = pool;
            return pool_base;
        }
    }

    // No free pools anywhere: mmap a fresh arena (step 4 of Fig. 1).
    ++arenaMmaps_;
    env.chargeInstructions(90);
    Addr arena_base = vm_.mmap(params_.arenaBytes, &env);

    Arena arena;
    arena.base = arena_base;
    if (!freeArenaObjSlots_.empty()) {
        arena.objAddr = freeArenaObjSlots_.back();
        freeArenaObjSlots_.pop_back();
    } else {
        panic_if(arenaObjCursor_ >= 64 * kPageSize,
                 "pymalloc: arena_object table exhausted");
        arena.objAddr = arenaObjRegion_ + arenaObjCursor_;
        arenaObjCursor_ += 64; // sizeof(struct arena_object)
    }
    arena.totalPools =
        static_cast<unsigned>(params_.arenaBytes / params_.poolBytes);
    arena.freeCount = arena.totalPools;
    // Pools are handed out low-to-high; keep LIFO order so the first
    // pop is the lowest address (matches the real bump behaviour).
    for (unsigned i = arena.totalPools; i > 0; --i)
        arena.freePools.push_back(arena_base + (i - 1) * params_.poolBytes);
    env.accessVirtual(arena.objAddr, AccessType::Write);
    arenas_[arena_base] = arena;

    return acquirePool(cls, env);
}

PyMalloc::Pool &
PyMalloc::poolForClass(unsigned cls, Env &env)
{
    auto &list = usedPools_[cls];
    if (!list.empty())
        return *list.front();
    Addr pool_base = acquirePool(cls, env);
    Pool &pool = pools_.at(pool_base);
    list.push_front(&pool);
    pool.usedPos = list.begin();
    pool.inUsedList = true;
    return pool;
}

Addr
PyMalloc::carveBlock(Pool &pool, Env &env)
{
    // Read the pool header, take the freeblock head or bump.
    env.accessVirtual(pool.base, AccessType::Read);
    Addr block;
    if (!pool.freeBlocks.empty()) {
        block = pool.freeBlocks.back();
        pool.freeBlocks.pop_back();
        // The free list is threaded through the blocks: follow it.
        env.accessVirtual(block, AccessType::Read);
    } else {
        block = pool.bump;
        pool.bump += sizeClassBytes(pool.szclass);
    }
    ++pool.used;
    env.accessVirtual(pool.base, AccessType::Write);

    // Pool exhausted: unlink from the used list.
    if (!pool.hasFree(params_) && pool.inUsedList) {
        usedPools_[pool.szclass].erase(pool.usedPos);
        pool.inUsedList = false;
    }
    return block;
}

Addr
PyMalloc::malloc(std::uint64_t size, Env &env)
{
    panic_if(size == 0, "pymalloc: zero-size malloc");
    if (size > kMaxSmallSize)
        return large_.malloc(size, env);

    CategoryScope scope(env.ledger(), CycleCategory::UserAlloc);
    ++smallMallocs_;
    env.chargeInstructions(30); // PyObject_Malloc fast-path budget.

    const unsigned cls = sizeClassIndex(size);
    Pool &pool = poolForClass(cls, env);
    Addr block = carveBlock(pool, env);

    live_[block] = static_cast<std::uint32_t>(size);
    liveBytes_ += size;
    return block;
}

void
PyMalloc::free(Addr ptr, Env &env)
{
    if (large_.owns(ptr)) {
        large_.free(ptr, env);
        return;
    }

    CategoryScope scope(env.ledger(), CycleCategory::UserFree);
    auto live_it = live_.find(ptr);
    panic_if(live_it == live_.end(), "pymalloc: bad free 0x", std::hex,
             ptr);
    liveBytes_ -= live_it->second;
    live_.erase(live_it);

    ++smallFrees_;
    env.chargeInstructions(26);

    // Pool header from address arithmetic (step 5 of Fig. 1).
    const Addr pool_base = ptr & ~(params_.poolBytes - 1);
    auto pool_it = pools_.find(pool_base);
    panic_if(pool_it == pools_.end(), "pymalloc: free outside any pool");
    Pool &pool = pool_it->second;

    env.accessVirtual(pool.base, AccessType::Read);
    // Link the block onto the freeblock chain (a write into the block).
    env.accessVirtual(ptr, AccessType::Write);
    pool.freeBlocks.push_back(ptr);
    --pool.used;
    env.accessVirtual(pool.base, AccessType::Write);

    if (!pool.inUsedList) {
        // Pool was full and regained space: back to the used list head.
        auto &list = usedPools_[pool.szclass];
        list.push_front(&pool);
        pool.usedPos = list.begin();
        pool.inUsedList = true;
        env.chargeInstructions(12);
    }

    if (pool.used == 0) {
        // Entirely free: return the pool to its arena.
        env.chargeInstructions(30);
        if (pool.inUsedList)
            usedPools_[pool.szclass].erase(pool.usedPos);
        Arena &arena = arenas_.at(pool.arenaBase);
        arena.freePools.push_back(pool.base);
        ++arena.freeCount;
        env.accessVirtual(arena.objAddr, AccessType::Write);
        pools_.erase(pool_it);

        if (arena.freeCount == arena.totalPools)
            releaseArena(arena, env);
    }
}

void
PyMalloc::releaseArena(Arena &arena, Env &env)
{
    ++arenaMunmaps_;
    env.chargeInstructions(60);
    const Addr base = arena.base;
    freeArenaObjSlots_.push_back(arena.objAddr);
    vm_.munmap(base, params_.arenaBytes, &env);
    arenas_.erase(base);
}

void
PyMalloc::functionExit(Env &env)
{
    // Process exit: the OS tears down all mappings wholesale; no
    // per-object work happens in userspace.
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    while (!arenas_.empty()) {
        Addr base = arenas_.begin()->first;
        vm_.munmap(base, params_.arenaBytes, &env);
        arenas_.erase(arenas_.begin());
    }
    pools_.clear();
    for (auto &list : usedPools_)
        list.clear();
    freeArenaObjSlots_.clear();
    arenaObjCursor_ = 0;
    live_.clear();
    liveBytes_ = 0;
    large_.releaseAll(env);
}

double
PyMalloc::inactiveSlotFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t used = 0;
    for (const auto &[base, pool] : pools_) {
        if (pool.used == 0)
            continue; // Fully free pool: free memory, not slack.
        total += pool.capacity;
        used += pool.used;
    }
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(used) / static_cast<double>(total);
}

bool
PyMalloc::isLive(Addr ptr) const
{
    return live_.count(ptr) != 0 || large_.owns(ptr);
}

} // namespace memento
