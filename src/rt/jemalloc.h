/**
 * @file
 * Model of a jemalloc-style allocator (C/C++ workloads).
 *
 * Small classes are served from a per-thread cache (tcache) refilled in
 * batches from slab runs; slabs are carved from large chunks that
 * jemalloc pre-maps and pre-faults at initialization — the behaviour the
 * paper calls out for DeathStarBench (§6.1): almost no kernel work, but
 * object alloc/free become the bottleneck. Sizes > 512 B go to the
 * shared glibc large model.
 */

#ifndef MEMENTO_RT_JEMALLOC_H
#define MEMENTO_RT_JEMALLOC_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/allocator.h"
#include "rt/glibc_large.h"
#include "sim/size_class.h"
#include "sim/stats.h"

namespace memento {

/** jemalloc-like tcache/slab allocator. */
class JeMalloc : public Allocator
{
  public:
    /** Tunables (the §6.6 allocator-tuning study). */
    struct Params
    {
        /** Chunk size pre-mapped from the OS. */
        std::uint64_t chunkBytes = 4 << 20;
        /** Slab run size per size class. */
        std::uint64_t slabBytes = 16 << 10;
        /** tcache capacity per size class. */
        unsigned tcacheMax = 64;
        /** Objects moved per tcache fill/flush. */
        unsigned batch = 32;
        /** Pre-fault the first chunk at init (jemalloc behaviour). */
        bool prefaultFirstChunk = true;
        /** Fast-path instruction budgets (zeroed by the idealized
         *  Mallacc model, which services them in a 0-latency cache). */
        InstCount fastMallocInstructions = 28;
        InstCount fastFreeInstructions = 20;
        /** Whether fast paths touch the tcache metadata in memory. */
        bool touchTcacheMeta = true;
        /**
         * Decay purging: every this many malloc/free operations, fully
         * free slabs are madvised away (jemalloc's decay). 0 disables
         * it; long-running servers enable it, which is what keeps
         * page faults frequent on their heaps (§5's data-processing
         * applications).
         */
        std::uint64_t purgeIntervalOps = 0;
    };

    JeMalloc(VirtualMemory &vm, StatRegistry &stats, Params params);
    JeMalloc(VirtualMemory &vm, StatRegistry &stats);

    Addr malloc(std::uint64_t size, Env &env) override;
    void free(Addr ptr, Env &env) override;
    void functionExit(Env &env) override;
    bool isLive(Addr ptr) const override;
    std::uint64_t
    liveBytes() const override
    {
        return liveBytes_ + large_.liveBytes();
    }
    std::string name() const override { return "jemalloc"; }
    double inactiveSlotFraction() const override;

  private:
    struct Slab
    {
        Addr base = 0;
        unsigned szclass = 0;
        unsigned capacity = 0;
        unsigned carved = 0; ///< Objects handed to tcaches so far.
        std::vector<Addr> freeList; ///< Returned by tcache flushes.
        /** Live-object count per page (purge granularity). */
        std::vector<std::uint16_t> livePerPage;
    };

    /** Refill the class's tcache with a batch of objects. */
    void fillTcache(unsigned cls, Env &env);
    /** Flush half the tcache back to the owning slabs. */
    void flushTcache(unsigned cls, Env &env);
    /** Decay tick: purge object-free pages via madvise. */
    void maybePurge(Env &env);
    /** Adjust a slab's per-page live counts for one object. */
    void adjustLivePages(Slab &slab, Addr obj, int delta);
    /** Carve a new slab for @p cls from the current chunk. */
    Slab &newSlab(unsigned cls, Env &env);
    Addr slabBaseOf(Addr ptr) const;

    VirtualMemory &vm_;
    Params params_;
    GlibcLargeAlloc large_;

    std::vector<std::vector<Addr>> tcache_; ///< Per-class LIFO stacks.
    /** Slabs by base address. */
    std::unordered_map<Addr, Slab> slabs_;
    /** Per-class slabs with uncarved/free objects. */
    std::vector<std::vector<Addr>> partialSlabs_;
    /** Chunks mmap'd from the OS. */
    std::vector<Addr> chunks_;
    std::uint64_t chunkCursor_ = 0; ///< Bytes used in the last chunk.

    /** tcache metadata region (bins array), one line per class. */
    Addr tcacheMeta_ = 0;

    std::unordered_map<Addr, std::uint32_t> live_;
    std::uint64_t liveBytes_ = 0;
    std::uint64_t opsSincePurge_ = 0;

    Counter smallMallocs_;
    Counter smallFrees_;
    Counter tcacheFills_;
    Counter tcacheFlushes_;
    Counter chunkMmaps_;
    Counter purges_;
    Counter purgedPages_;
};

} // namespace memento

#endif // MEMENTO_RT_JEMALLOC_H
