#include "rt/jemalloc.h"

#include <algorithm>
#include <vector>

#include "sim/logging.h"

namespace memento {

JeMalloc::JeMalloc(VirtualMemory &vm, StatRegistry &stats)
    : JeMalloc(vm, stats, Params{})
{
}

JeMalloc::JeMalloc(VirtualMemory &vm, StatRegistry &stats, Params params)
    : vm_(vm),
      params_(params),
      large_(vm, stats, "jemalloc"),
      tcache_(kNumSmallClasses),
      partialSlabs_(kNumSmallClasses),
      smallMallocs_(stats.counter("jemalloc.small_mallocs")),
      smallFrees_(stats.counter("jemalloc.small_frees")),
      tcacheFills_(stats.counter("jemalloc.tcache_fills")),
      tcacheFlushes_(stats.counter("jemalloc.tcache_flushes")),
      chunkMmaps_(stats.counter("jemalloc.chunk_mmaps")),
      purges_(stats.counter("jemalloc.purges")),
      purgedPages_(stats.counter("jemalloc.purged_pages"))
{
    panic_if(!isPowerOfTwo(params_.slabBytes) ||
                 params_.slabBytes < kPageSize,
             "jemalloc: slab size must be a power-of-two >= page size");
    panic_if(params_.chunkBytes % params_.slabBytes != 0,
             "jemalloc: chunk size must be a multiple of the slab size");

    // tcache bins metadata (stack pointers per class): pre-populated.
    tcacheMeta_ = vm_.mmap(kPageSize, nullptr, /*populate=*/true);

    // jemalloc pre-maps (and effectively pre-faults) its first chunk at
    // library initialization. This is pre-existing state for a warm
    // function, so no Env is charged.
    Addr chunk = vm_.mmap(params_.chunkBytes, nullptr,
                          params_.prefaultFirstChunk, params_.slabBytes);
    chunks_.push_back(chunk);
    chunkCursor_ = 0;
}

Addr
JeMalloc::slabBaseOf(Addr ptr) const
{
    return ptr & ~(params_.slabBytes - 1);
}

void
JeMalloc::adjustLivePages(Slab &slab, Addr obj, int delta)
{
    if (slab.livePerPage.empty())
        return;
    const std::uint64_t size = sizeClassBytes(slab.szclass);
    const std::size_t first = (obj - slab.base) >> kPageShift;
    const std::size_t last = (obj + size - 1 - slab.base) >> kPageShift;
    for (std::size_t page = first; page <= last; ++page) {
        slab.livePerPage[page] =
            static_cast<std::uint16_t>(slab.livePerPage[page] + delta);
    }
}

JeMalloc::Slab &
JeMalloc::newSlab(unsigned cls, Env &env)
{
    if (chunkCursor_ + params_.slabBytes > params_.chunkBytes) {
        // Current chunk exhausted: map another (rare).
        ++chunkMmaps_;
        env.chargeInstructions(200);
        Addr chunk = vm_.mmap(params_.chunkBytes, &env, false,
                              params_.slabBytes);
        chunks_.push_back(chunk);
        chunkCursor_ = 0;
    }
    Addr base = chunks_.back() + chunkCursor_;
    chunkCursor_ += params_.slabBytes;

    Slab slab;
    slab.base = base;
    slab.szclass = cls;
    slab.capacity =
        static_cast<unsigned>(params_.slabBytes / sizeClassBytes(cls));
    if (params_.purgeIntervalOps != 0)
        slab.livePerPage.assign(params_.slabBytes / kPageSize, 0);
    env.chargeInstructions(200);
    env.accessVirtual(base, AccessType::Write); // Slab header init.
    auto [it, inserted] = slabs_.emplace(base, slab);
    panic_if(!inserted, "jemalloc: slab already exists");
    partialSlabs_[cls].push_back(base);
    return it->second;
}

void
JeMalloc::fillTcache(unsigned cls, Env &env)
{
    ++tcacheFills_;
    env.chargeInstructions(340);
    env.accessVirtual(tcacheMeta_ + cls * kLineSize / 4,
                      AccessType::Write);

    unsigned want = params_.batch;
    while (want > 0) {
        if (partialSlabs_[cls].empty())
            newSlab(cls, env);
        Addr slab_base = partialSlabs_[cls].back();
        Slab &slab = slabs_.at(slab_base);
        env.accessVirtual(slab.base, AccessType::Write); // Bitmap update.

        while (want > 0) {
            Addr obj = kNullAddr;
            if (!slab.freeList.empty()) {
                // Address-ordered reuse (jemalloc policy): densify the
                // slab's low pages so whole pages drain and purge.
                auto min_it = slab.freeList.begin();
                for (auto it = slab.freeList.begin();
                     it != slab.freeList.end(); ++it) {
                    if (*it < *min_it)
                        min_it = it;
                }
                obj = *min_it;
                *min_it = slab.freeList.back();
                slab.freeList.pop_back();
            } else if (slab.carved < slab.capacity) {
                obj = slab.base + static_cast<std::uint64_t>(slab.carved) *
                                      sizeClassBytes(cls);
                ++slab.carved;
            } else {
                break; // Slab has nothing left to hand out.
            }
            adjustLivePages(slab, obj, +1);
            tcache_[cls].push_back(obj);
            --want;
        }
        if (slab.freeList.empty() && slab.carved == slab.capacity)
            partialSlabs_[cls].pop_back();
    }
}

void
JeMalloc::flushTcache(unsigned cls, Env &env)
{
    ++tcacheFlushes_;
    env.chargeInstructions(300);
    env.accessVirtual(tcacheMeta_ + cls * kLineSize / 4,
                      AccessType::Write);

    unsigned flush = params_.batch;
    auto &stack = tcache_[cls];
    while (flush > 0 && !stack.empty()) {
        Addr obj = stack.front();
        stack.erase(stack.begin());
        Addr slab_base = slabBaseOf(obj);
        Slab &slab = slabs_.at(slab_base);
        const bool was_exhausted =
            slab.freeList.empty() && slab.carved == slab.capacity;
        slab.freeList.push_back(obj);
        adjustLivePages(slab, obj, -1);
        env.chargeInstructions(16);
        env.accessVirtual(slab.base, AccessType::Write);
        if (was_exhausted)
            partialSlabs_[cls].push_back(slab_base);
        --flush;
    }
}

void
JeMalloc::maybePurge(Env &env)
{
    if (params_.purgeIntervalOps == 0)
        return;
    if (++opsSincePurge_ < params_.purgeIntervalOps)
        return;
    opsSincePurge_ = 0;
    ++purges_;

    // jemalloc decay: pages that back no live object are returned to
    // the OS; the virtual addresses stay valid and fault back in on
    // reuse. This is what keeps long-running servers' page-fault rates
    // high even at a stable heap size.
    CategoryScope scope(env.ledger(), CycleCategory::UserFree);
    env.chargeInstructions(400);
    // Decay in ascending slab order: madviseFree mutates VM state, so
    // hash-order purging would make the access sequence (and with it
    // the state digest) implementation-defined.
    std::vector<Addr> bases;
    bases.reserve(slabs_.size());
    for (const auto &[base, slab] :
         slabs_) // lint-src: allow(src-unordered-iteration)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    for (Addr base : bases) {
        Slab &slab = slabs_.at(base);
        if (slab.livePerPage.empty())
            continue;
        for (std::size_t page = 0; page < slab.livePerPage.size();
             ++page) {
            if (slab.livePerPage[page] == 0) {
                // madviseFree of an already-absent page charges
                // nothing, so repeated purges are harmless.
                vm_.madviseFree(base + page * kPageSize, kPageSize,
                                &env);
                ++purgedPages_;
            }
        }
    }
}

Addr
JeMalloc::malloc(std::uint64_t size, Env &env)
{
    panic_if(size == 0, "jemalloc: zero-size malloc");
    if (size > kMaxSmallSize)
        return large_.malloc(size, env);

    maybePurge(env);

    CategoryScope scope(env.ledger(), CycleCategory::UserAlloc);
    ++smallMallocs_;
    env.chargeInstructions(params_.fastMallocInstructions);

    const unsigned cls = sizeClassIndex(size);
    if (params_.touchTcacheMeta)
        env.accessVirtual(tcacheMeta_ + cls * kLineSize / 4,
                          AccessType::Read);
    if (tcache_[cls].empty())
        fillTcache(cls, env);

    Addr obj = tcache_[cls].back();
    tcache_[cls].pop_back();

    live_[obj] = static_cast<std::uint32_t>(size);
    liveBytes_ += size;
    return obj;
}

void
JeMalloc::free(Addr ptr, Env &env)
{
    if (large_.owns(ptr)) {
        large_.free(ptr, env);
        return;
    }

    CategoryScope scope(env.ledger(), CycleCategory::UserFree);
    auto it = live_.find(ptr);
    panic_if(it == live_.end(), "jemalloc: bad free 0x", std::hex, ptr);
    liveBytes_ -= it->second;
    live_.erase(it);

    ++smallFrees_;
    env.chargeInstructions(params_.fastFreeInstructions);

    const Addr slab_base = slabBaseOf(ptr);
    const unsigned cls = slabs_.at(slab_base).szclass;
    if (params_.touchTcacheMeta)
        env.accessVirtual(tcacheMeta_ + cls * kLineSize / 4,
                          AccessType::Write);
    tcache_[cls].push_back(ptr);
    if (tcache_[cls].size() > params_.tcacheMax)
        flushTcache(cls, env);
}

void
JeMalloc::functionExit(Env &env)
{
    // Process exit: chunks go back to the OS wholesale.
    CategoryScope scope(env.ledger(), CycleCategory::KernelOther);
    for (Addr chunk : chunks_)
        vm_.munmap(chunk, params_.chunkBytes, &env);
    chunks_.clear();
    slabs_.clear();
    for (auto &stack : tcache_)
        stack.clear();
    for (auto &list : partialSlabs_)
        list.clear();
    live_.clear();
    liveBytes_ = 0;
    chunkCursor_ = params_.chunkBytes; // Force a new chunk if reused.
    large_.releaseAll(env);
}

double
JeMalloc::inactiveSlotFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t inactive = 0;
    // Commutative integer sums: visit order cannot affect the result.
    for (const auto &[base, slab] :
         slabs_) { // lint-src: allow(src-unordered-iteration)
        if (slab.freeList.size() == slab.carved)
            continue; // No live objects: free memory, not slack.
        total += slab.capacity;
        inactive += (slab.capacity - slab.carved) + slab.freeList.size();
    }
    // Objects parked in tcaches are also not live.
    for (const auto &stack : tcache_)
        inactive += stack.size();
    if (total == 0)
        return 0.0;
    return static_cast<double>(inactive) / static_cast<double>(total);
}

bool
JeMalloc::isLive(Addr ptr) const
{
    return live_.count(ptr) != 0 || large_.owns(ptr);
}

} // namespace memento
