#include "fleet/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "machine/result_store.h"
#include "machine/sweep.h"
#include "os/kernel_cost.h"
#include "sim/config_canon.h"
#include "sim/error.h"
#include "sim/json.h"
#include "val/digest.h"

namespace memento {
namespace {

/** Sentinel folded into the digest for a rejected arrival. */
constexpr std::uint64_t kRejectedMark = ~0ull;

/** Nearest-rank percentile (num/den) of an ascending latency vector. */
Cycles
nearestRank(const std::vector<Cycles> &sorted, std::uint64_t num,
            std::uint64_t den)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<std::uint64_t>(sorted.size());
    std::uint64_t rank = (num * n + den - 1) / den; // ceil(num/den * n)
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

/** One core of the simulated node. */
struct CoreState
{
    /** The core is busy until this cycle. */
    Cycles freeAt = 0;
    /** Instance id whose state the core last ran (0 = fresh core). */
    std::uint64_t lastInstance = 0;
    /** HOT entries that instance left valid (flushed on next switch). */
    std::uint64_t lastHotValid = 0;
};

/** One resident function instance (warm container). */
struct InstanceState
{
    std::size_t workload = 0;
    unsigned core = 0;
    std::uint64_t pages = 0;
    /** Busy until this cycle; idle (warm) afterwards. */
    Cycles busyUntil = 0;
};

std::string
u64Field(std::string_view key, std::uint64_t v, bool last = false)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%.*s\": %" PRIu64 "%s",
                  static_cast<int>(key.size()), key.data(), v,
                  last ? "" : ", ");
    return buf;
}

/** The integer fields persisted in a fleet summary cell, in order. */
constexpr const char *kMetricFields[] = {
    "arrivals",      "completed",   "rejected",
    "cold_starts",   "warm_hits",   "evictions",
    "expirations",   "makespan",    "p50",
    "p99",           "p999",        "peak_rss_pages",
    "residency_area", "digest",
};

std::vector<std::uint64_t *>
metricSlots(FleetMetrics &m)
{
    return {&m.arrivals,    &m.completed,          &m.rejected,
            &m.coldStarts,  &m.warmHits,           &m.evictions,
            &m.expirations, &m.makespanCycles,     &m.p50Cycles,
            &m.p99Cycles,   &m.p999Cycles,         &m.peakRssPages,
            &m.residencyCycleArea, &m.digest};
}

/** Serialize metrics as the fleet summary cell payload. */
std::string
metricsPayload(const FleetMetrics &metrics)
{
    FleetMetrics m = metrics;
    const std::vector<std::uint64_t *> slots = metricSlots(m);
    std::string out = "{";
    for (std::size_t i = 0; i < slots.size(); ++i)
        out += u64Field(kMetricFields[i], *slots[i],
                        i + 1 == slots.size());
    out += "}";
    return out;
}

/** Parse a summary cell payload; false on any missing/non-int field. */
bool
parseMetricsPayload(const std::string &payload, FleetMetrics &out)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(payload, doc, err) || !doc.isObject())
        return false;
    const std::vector<std::uint64_t *> slots = metricSlots(out);
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const JsonValue *v = doc.find(kMetricFields[i]);
        if (v == nullptr || !v->isNumber() || !v->isInteger)
            return false;
        *slots[i] = v->u64;
    }
    return true;
}

} // namespace

double
FleetMetrics::latencyMs(const MachineConfig &cfg, Cycles latency) const
{
    return cfg.cyclesToMs(latency);
}

double
FleetMetrics::throughputRps(const MachineConfig &cfg) const
{
    if (makespanCycles == 0)
        return 0.0;
    return static_cast<double>(completed) * cfg.core.freqGhz * 1.0e9 /
           static_cast<double>(makespanCycles);
}

double
FleetMetrics::coldStartRate() const
{
    if (completed == 0)
        return 0.0;
    return static_cast<double>(coldStarts) /
           static_cast<double>(completed);
}

double
FleetMetrics::packingDensity() const
{
    if (makespanCycles == 0)
        return 0.0;
    return static_cast<double>(residencyCycleArea) /
           static_cast<double>(makespanCycles);
}

std::vector<WorkloadSpec>
fleetMix(const FleetConfig &fleet)
{
    if (fleet.mix == "function")
        return workloadsByDomain(Domain::Function);
    if (fleet.mix == "all")
        return allWorkloads();
    return {workloadById(fleet.mix)};
}

Cycles
fleetSwitchCost(const MachineConfig &cfg, std::uint64_t hot_valid)
{
    // Definitionally KernelCostModel::chargeContextSwitch for a switch
    // flushing hot_valid entries (held together by a unit test).
    return cfg.kernel.contextSwitchCycles + hot_valid * cfg.memento.hotLatency;
}

Cycles
fleetReclaimCost(const MachineConfig &cfg, std::uint64_t pages)
{
    // Memento reclaims at arena granularity: the hardware returns whole
    // arena spans to the page pool, so the kernel tears down one unit
    // per span instead of one per page.
    std::uint64_t units = pages;
    if (cfg.memento.enabled) {
        const std::uint64_t pages_per_arena =
            std::max<std::uint64_t>(1, cfg.memento.objectsPerArena *
                                           cfg.memento.maxSmallSize /
                                           kPageSize);
        units = (pages + pages_per_arena - 1) / pages_per_arena;
    }
    const InstCount instr = cfg.kernel.munmapBaseInstructions +
                            cfg.kernel.munmapPerPageInstructions * units;
    // Same instruction->cycle rounding as Machine::chargeInstructions.
    return static_cast<Cycles>(
        static_cast<double>(instr) / cfg.core.baseIpc + 0.5);
}

Cycles
fleetColdSetupCost(const MachineConfig &cfg)
{
    return static_cast<Cycles>(
        static_cast<double>(KernelCostModel::kContainerSetupInstructions) /
            cfg.core.baseIpc +
        0.5);
}

std::string
fleetCanonicalText(const FleetConfig &fleet)
{
    std::ostringstream os;
    const auto f64 = [&os](const char *key, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os << key << "=" << buf << "\n";
    };
    // Sorted by key, one per line, like canonicalConfigText.
    os << "fleet.arrival=" << fleet.arrival << "\n";
    f64("fleet.burst_factor", fleet.burstFactor);
    f64("fleet.burst_ms", fleet.burstMs);
    os << "fleet.cores=" << fleet.cores << "\n";
    os << "fleet.invocations=" << fleet.invocations << "\n";
    f64("fleet.keep_alive_ms", fleet.keepAliveMs);
    os << "fleet.memory_budget_pages=" << fleet.memoryBudgetPages << "\n";
    os << "fleet.mix=" << fleet.mix << "\n";
    f64("fleet.period_ms", fleet.periodMs);
    f64("fleet.rate_rps", fleet.ratePerSec);
    os << "fleet.seed=" << fleet.seed << "\n";
    return os.str();
}

FleetMetrics
simulateFleet(const std::vector<Arrival> &arrivals,
              const std::vector<FleetProfile> &profiles,
              const MachineConfig &cfg)
{
    const FleetConfig &fleet = cfg.fleet;
    sim_error_if(fleet.cores == 0, ErrorCategory::Config,
                 "fleet.cores must be at least 1");
    sim_error_if(profiles.empty(), ErrorCategory::Config,
                 "fleet: the workload mix is empty");

    const Cycles keep_alive = cfg.msToCycles(fleet.keepAliveMs);
    const std::uint64_t budget = fleet.memoryBudgetPages;
    const Cycles cold_setup = fleetColdSetupCost(cfg);

    std::vector<CoreState> cores(fleet.cores);
    // Instances keyed by id: iteration order == creation order, so
    // every scan below is deterministic.
    std::map<std::uint64_t, InstanceState> instances;
    std::uint64_t next_instance_id = 1;
    std::uint64_t rss_pages = 0;

    FleetMetrics m;
    m.arrivals = arrivals.size();

    DigestBuilder digest;
    digest.add(std::string_view("memento-fleet-state"));
    digest.add(fleetCanonicalText(fleet));
    digest.add(static_cast<std::uint64_t>(profiles.size()));
    for (const FleetProfile &p : profiles) {
        digest.add(std::string_view(p.id));
        digest.add(p.serviceCycles);
        digest.add(p.pages);
        digest.add(p.hotValidEntries);
    }

    std::vector<Cycles> latencies;
    latencies.reserve(arrivals.size());
    Cycles prev_t = 0;

    for (const Arrival &arr : arrivals) {
        const Cycles t = arr.atCycles;
        sim_error_if(arr.workloadIndex >= profiles.size(),
                     ErrorCategory::Config,
                     "fleet: arrival references workload ",
                     arr.workloadIndex, " outside the mix");
        const FleetProfile &prof = profiles[arr.workloadIndex];

        // Packing integral: resident count is a step function sampled
        // at arrival granularity (expirations are folded in lazily at
        // the next arrival, matching when the node would notice).
        m.residencyCycleArea +=
            static_cast<std::uint64_t>(instances.size()) * (t - prev_t);
        prev_t = t;

        // 1. Keep-alive expiry: an instance idle since busyUntil lapses
        // once its idle span exceeds the keep-alive window.
        for (auto it = instances.begin(); it != instances.end();) {
            if (it->second.busyUntil + keep_alive <= t) {
                rss_pages -= it->second.pages;
                ++m.expirations;
                it = instances.erase(it);
            } else {
                ++it;
            }
        }

        // 2. Warm path: an idle, unexpired instance of this workload.
        // Prefer the most recently used (tie: lowest id) — MRU reuse
        // lets the cold tail expire instead of round-robining it warm.
        std::uint64_t warm_id = 0;
        for (const auto &[id, inst] : instances) {
            if (inst.workload != arr.workloadIndex || inst.busyUntil > t)
                continue;
            if (warm_id == 0 ||
                inst.busyUntil > instances[warm_id].busyUntil)
                warm_id = id;
        }

        Cycles setup = 0;
        std::uint64_t run_id = warm_id;
        if (warm_id != 0) {
            ++m.warmHits;
        } else {
            // 3. Cold path: admit a new instance, evicting idle ones
            // LRU-first while over the memory budget. The munmap-model
            // reclaim cost of every eviction is charged to this
            // arrival's latency — memory pressure is not free.
            bool admitted = budget == 0 || prof.pages <= budget;
            while (budget != 0 && admitted &&
                   rss_pages + prof.pages > budget) {
                std::uint64_t victim = 0;
                for (const auto &[id, inst] : instances) {
                    if (inst.busyUntil > t)
                        continue; // Busy instances are unevictable.
                    if (victim == 0 ||
                        inst.busyUntil < instances[victim].busyUntil)
                        victim = id;
                }
                if (victim == 0) {
                    admitted = false; // Nothing left to evict.
                    break;
                }
                const InstanceState &v = instances[victim];
                rss_pages -= v.pages;
                setup += fleetReclaimCost(cfg, v.pages);
                ++m.evictions;
                instances.erase(victim);
            }
            if (!admitted) {
                ++m.rejected;
                digest.add(t);
                digest.add(static_cast<std::uint64_t>(arr.workloadIndex));
                digest.add(kRejectedMark);
                continue;
            }
            // Place on the earliest-free core (tie: lowest index).
            unsigned core = 0;
            for (unsigned c = 1; c < cores.size(); ++c) {
                if (cores[c].freeAt < cores[core].freeAt)
                    core = c;
            }
            InstanceState inst;
            inst.workload = arr.workloadIndex;
            inst.core = core;
            inst.pages = prof.pages;
            run_id = next_instance_id++;
            instances[run_id] = inst;
            rss_pages += prof.pages;
            m.peakRssPages = std::max(m.peakRssPages, rss_pages);
            ++m.coldStarts;
            setup += cold_setup;
        }

        // 4. Dispatch: switching the core away from another instance
        // flushes the HOT residue that instance left (kernel_cost.h).
        InstanceState &inst = instances[run_id];
        CoreState &core = cores[inst.core];
        Cycles switch_cost = 0;
        if (core.lastInstance != run_id) {
            switch_cost = fleetSwitchCost(cfg, core.lastHotValid);
        }
        const Cycles start = std::max(t, core.freeAt);
        const Cycles end =
            start + switch_cost + setup + prof.serviceCycles;
        core.freeAt = end;
        core.lastInstance = run_id;
        core.lastHotValid = prof.hotValidEntries;
        inst.busyUntil = end;

        const Cycles latency = end - t;
        latencies.push_back(latency);
        ++m.completed;
        m.makespanCycles = std::max(m.makespanCycles, end);

        digest.add(t);
        digest.add(static_cast<std::uint64_t>(arr.workloadIndex));
        digest.add(latency);
    }

    // Tail of the packing integral: the window closes at the makespan.
    if (m.makespanCycles > prev_t)
        m.residencyCycleArea +=
            static_cast<std::uint64_t>(instances.size()) *
            (m.makespanCycles - prev_t);

    std::sort(latencies.begin(), latencies.end());
    m.p50Cycles = nearestRank(latencies, 50, 100);
    m.p99Cycles = nearestRank(latencies, 99, 100);
    m.p999Cycles = nearestRank(latencies, 999, 1000);

    // Fold the counters and the final node state, so the digest pins
    // the complete outcome, not just the per-arrival trajectory.
    digest.add(m.completed);
    digest.add(m.rejected);
    digest.add(m.coldStarts);
    digest.add(m.warmHits);
    digest.add(m.evictions);
    digest.add(m.expirations);
    digest.add(m.makespanCycles);
    digest.add(m.peakRssPages);
    digest.add(m.residencyCycleArea);
    digest.add(rss_pages);
    digest.add(static_cast<std::uint64_t>(instances.size()));
    for (const CoreState &c : cores) {
        digest.add(c.freeAt);
        digest.add(c.lastInstance);
        digest.add(c.lastHotValid);
    }
    m.digest = digest.value();
    return m;
}

FleetReport
runFleet(const FleetOptions &opts)
{
    const MachineConfig &cfg = opts.cfg;
    if (!validArrivalKind(cfg.fleet.arrival)) {
        sim_error(ErrorCategory::Config, "fleet.arrival '",
                  cfg.fleet.arrival,
                  "' is not one of poisson, bursty, diurnal");
    }
    const std::vector<WorkloadSpec> mix = fleetMix(cfg.fleet);

    FleetReport report;
    report.fleet = cfg.fleet;

    // Stage 1: profile every workload in the mix through the sweep
    // engine — default RunOptions, so `run`/`bench` and fleet all share
    // the same cached run cells.
    std::vector<SweepTask> tasks;
    tasks.reserve(mix.size());
    for (const WorkloadSpec &spec : mix)
        tasks.push_back(SweepTask{spec, cfg, RunOptions{}, nullptr, {}});
    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    sweep_opts.store = opts.store;
    SweepEngine engine(sweep_opts);
    const std::vector<SweepOutcome> outcomes = engine.run(tasks);

    report.profiles.reserve(mix.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &res = outcomes[i].result;
        if (outcomes[i].skipped || res.error) {
            const RunError err = res.error.value_or(
                RunError{ErrorCategory::Internal, "profile run skipped",
                         SimError::kNoOpIndex});
            SimError boxed(err.category,
                           "fleet: profiling workload '" + mix[i].id +
                               "' failed: " + err.message);
            boxed.tagOpIndex(err.opIndex);
            throw boxed;
        }
        FleetProfile prof;
        prof.id = mix[i].id;
        prof.serviceCycles = res.cycles;
        prof.pages = res.peakResidentPages;
        prof.hotValidEntries = res.hotValidEntries;
        report.profiles.push_back(std::move(prof));
    }

    // Stage 2: the fleet event loop, behind its own summary cell.
    CellKey key;
    if (opts.store != nullptr) {
        key = opts.store->derivedKey({"fleet-summary",
                                      canonicalConfigText(cfg),
                                      fleetCanonicalText(cfg.fleet)});
        std::string payload;
        if (opts.store->loadCell(key, "fleet", payload)) {
            if (parseMetricsPayload(payload, report.metrics)) {
                report.fromCache = true;
                return report;
            }
            // Payload no longer parses: treat like any other damage.
            opts.store->quarantine(key);
        }
    }

    const std::vector<Arrival> arrivals =
        generateArrivals(cfg, mix.size());
    report.metrics = simulateFleet(arrivals, report.profiles, cfg);
    if (opts.store != nullptr)
        opts.store->storeCell(key, "fleet", metricsPayload(report.metrics));
    return report;
}

void
writeFleetJson(std::ostream &os, const FleetReport &report,
               const MachineConfig &cfg)
{
    const FleetMetrics &m = report.metrics;
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "fleet");
    w.member("git_sha", codeVersionString());
    w.member("memento", cfg.memento.enabled);

    w.key("fleet").beginObject();
    w.member("arrival", report.fleet.arrival);
    w.member("rate_rps", report.fleet.ratePerSec);
    w.member("invocations", report.fleet.invocations);
    w.member("cores", report.fleet.cores);
    w.member("seed", report.fleet.seed);
    w.member("keep_alive_ms", report.fleet.keepAliveMs);
    w.member("memory_budget_pages", report.fleet.memoryBudgetPages);
    w.member("mix", report.fleet.mix);
    w.endObject();

    w.key("profiles").beginArray();
    for (const FleetProfile &p : report.profiles) {
        w.beginObject();
        w.member("workload", p.id);
        w.member("service_cycles", p.serviceCycles);
        w.member("pages", p.pages);
        w.member("hot_valid_entries", p.hotValidEntries);
        w.endObject();
    }
    w.endArray();

    w.key("metrics").beginObject();
    w.member("arrivals", m.arrivals);
    w.member("completed", m.completed);
    w.member("rejected", m.rejected);
    w.member("cold_starts", m.coldStarts);
    w.member("warm_hits", m.warmHits);
    w.member("evictions", m.evictions);
    w.member("expirations", m.expirations);
    w.member("makespan_cycles", m.makespanCycles);
    w.member("p50_cycles", m.p50Cycles);
    w.member("p99_cycles", m.p99Cycles);
    w.member("p999_cycles", m.p999Cycles);
    w.member("p50_ms", m.latencyMs(cfg, m.p50Cycles));
    w.member("p99_ms", m.latencyMs(cfg, m.p99Cycles));
    w.member("p999_ms", m.latencyMs(cfg, m.p999Cycles));
    w.member("throughput_rps", m.throughputRps(cfg));
    w.member("cold_start_rate", m.coldStartRate());
    w.member("packing_density", m.packingDensity());
    w.member("peak_rss_pages", m.peakRssPages);
    w.member("residency_cycle_area", m.residencyCycleArea);
    w.member("digest", digestToHex(m.digest));
    w.endObject();

    w.endObject();
    os << "\n";
}

void
printFleetText(std::ostream &os, const FleetReport &report,
               const MachineConfig &cfg)
{
    const FleetMetrics &m = report.metrics;
    char buf[256];

    std::snprintf(buf, sizeof(buf),
                  "fleet: %" PRIu64 " arrivals (%s @ %.1f rps), %u cores, "
                  "mix %s, memento %s\n",
                  m.arrivals, report.fleet.arrival.c_str(),
                  report.fleet.ratePerSec, report.fleet.cores,
                  report.fleet.mix.c_str(),
                  cfg.memento.enabled ? "on" : "off");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "policy: keep-alive %.1f ms, memory budget %" PRIu64
                  " pages%s\n",
                  report.fleet.keepAliveMs, report.fleet.memoryBudgetPages,
                  report.fleet.memoryBudgetPages == 0 ? " (unbounded)" : "");
    os << buf;

    os << "profiles:\n";
    for (const FleetProfile &p : report.profiles) {
        std::snprintf(buf, sizeof(buf),
                      "  %-12s service %10" PRIu64 " cyc  rss %6" PRIu64
                      " pages  hot %3" PRIu64 "\n",
                      p.id.c_str(), p.serviceCycles, p.pages,
                      p.hotValidEntries);
        os << buf;
    }

    std::snprintf(buf, sizeof(buf),
                  "completed %" PRIu64 "  rejected %" PRIu64
                  "  cold starts %" PRIu64 " (%.2f%%)  warm hits %" PRIu64
                  "\n",
                  m.completed, m.rejected, m.coldStarts,
                  m.coldStartRate() * 100.0, m.warmHits);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "evictions %" PRIu64 "  expirations %" PRIu64
                  "  peak rss %" PRIu64 " pages\n",
                  m.evictions, m.expirations, m.peakRssPages);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "latency p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms\n",
                  m.latencyMs(cfg, m.p50Cycles),
                  m.latencyMs(cfg, m.p99Cycles),
                  m.latencyMs(cfg, m.p999Cycles));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "throughput %.1f rps  packing density %.2f instances  "
                  "makespan %.1f ms\n",
                  m.throughputRps(cfg), m.packingDensity(),
                  cfg.cyclesToMs(m.makespanCycles));
    os << buf;
    os << "fleet digest " << digestToHex(m.digest) << "\n";
}

} // namespace memento
