#include "fleet/arrivals.h"

#include <algorithm>
#include <cmath>

#include "sim/error.h"
#include "sim/rng.h"

namespace memento {
namespace {

/**
 * The diurnal load curve: relative rate at each of 24 "hours",
 * normalized below so the long-run mean matches fleet.rate_rps. The
 * shape is the usual consumer-facing tide — a night trough, a morning
 * ramp, a midday plateau, an evening peak.
 */
constexpr double kDayCurve[24] = {
    0.35, 0.30, 0.25, 0.22, 0.22, 0.28, 0.45, 0.70,
    1.00, 1.20, 1.30, 1.35, 1.30, 1.25, 1.20, 1.20,
    1.25, 1.40, 1.60, 1.75, 1.60, 1.30, 0.90, 0.55,
};

/** Piecewise-linear read of the day curve at phase @p u in [0, 1). */
double
dayCurveAt(double u)
{
    const double pos = u * 24.0;
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    const double a = kDayCurve[i % 24];
    const double b = kDayCurve[(i + 1) % 24];
    return a + (b - a) * frac;
}

double
dayCurveMean()
{
    double sum = 0.0;
    for (const double v : kDayCurve)
        sum += v;
    return sum / 24.0;
}

double
dayCurveMax()
{
    return *std::max_element(std::begin(kDayCurve), std::end(kDayCurve));
}

} // namespace

bool
validArrivalKind(std::string_view kind)
{
    return kind == "poisson" || kind == "bursty" || kind == "diurnal";
}

std::vector<Arrival>
generateArrivals(const MachineConfig &cfg, std::size_t num_workloads)
{
    const FleetConfig &fleet = cfg.fleet;
    if (!validArrivalKind(fleet.arrival)) {
        sim_error(ErrorCategory::Config, "fleet.arrival '", fleet.arrival,
                  "' is not one of poisson, bursty, diurnal");
    }
    sim_error_if(num_workloads == 0, ErrorCategory::Config,
                 "fleet: the workload mix is empty");

    const double cycles_per_sec = cfg.core.freqGhz * 1.0e9;
    const double mean_rate = fleet.ratePerSec;

    // Thinning needs the peak rate and the instantaneous fraction
    // rate(t)/peak; the homogeneous Poisson process is the special
    // case where the fraction is identically 1 (no acceptance draw).
    double peak_rate = mean_rate;
    // Bursty: off-rate scaled so the on/off mixture's mean stays
    // fleet.rate_rps.
    const double burst_frac =
        std::min(1.0, fleet.burstMs / fleet.periodMs);
    const double off_rate =
        mean_rate /
        (1.0 - burst_frac + fleet.burstFactor * burst_frac);
    // Diurnal: one "day" is compressed into the expected generation
    // window, and the curve is normalized to mean 1.
    const double window_sec =
        static_cast<double>(fleet.invocations) / mean_rate;
    const double curve_scale = 1.0 / dayCurveMean();
    if (fleet.arrival == "bursty")
        peak_rate = off_rate * fleet.burstFactor;
    else if (fleet.arrival == "diurnal")
        peak_rate = mean_rate * dayCurveMax() * curve_scale;

    const auto rate_fraction = [&](double t_sec) -> double {
        if (fleet.arrival == "bursty") {
            const double phase_ms =
                std::fmod(t_sec * 1.0e3, fleet.periodMs);
            const double rate =
                phase_ms < fleet.burstMs ? off_rate * fleet.burstFactor
                                         : off_rate;
            return rate / peak_rate;
        }
        if (fleet.arrival == "diurnal") {
            const double u =
                std::fmod(t_sec / window_sec, 1.0);
            const double rate =
                mean_rate * dayCurveAt(u) * curve_scale;
            return rate / peak_rate;
        }
        return 1.0;
    };

    Rng rng(fleet.seed);
    std::vector<Arrival> arrivals;
    arrivals.reserve(fleet.invocations);
    double t_sec = 0.0;
    while (arrivals.size() < fleet.invocations) {
        // Candidate gap at the peak rate; 1 - u keeps the argument of
        // log strictly positive (nextDouble() is in [0, 1)).
        const double u = rng.nextDouble();
        t_sec += -std::log(1.0 - u) / peak_rate;
        const double fraction = rate_fraction(t_sec);
        if (fraction < 1.0 && rng.nextDouble() >= fraction)
            continue; // Thinned away: not an arrival at this rate.
        Arrival a;
        a.atCycles = static_cast<Cycles>(t_sec * cycles_per_sec);
        a.workloadIndex = rng.nextBelow(num_workloads);
        arrivals.push_back(a);
    }
    return arrivals;
}

} // namespace memento
