/**
 * @file
 * Fleet-scale serverless node simulation (ROADMAP item 1: the
 * "millions of users" scenario).
 *
 * One `memento_sim fleet` run models a whole multi-tenant node instead
 * of a single invocation: an open-loop arrival process (fleet/arrivals.h)
 * dispatches thousands of function invocations across fleet.cores
 * simulated cores under a keep-alive policy (idle instances stay warm
 * for fleet.keep_alive_ms) and a memory-pressure policy (cold starts
 * that would push node RSS past fleet.memory_budget_pages first evict
 * idle instances LRU-first, reclaiming their arenas; if pressure still
 * cannot be relieved the arrival is rejected).
 *
 * The simulation is two-staged so it scales to fleets:
 *
 *  1. Profile stage (parallel): each distinct workload in the mix is
 *     run once through Experiment via the SweepEngine — the same
 *     work-stealing pool, result-store caching, and slot-merge
 *     machinery as `run all`, so profiles are byte-identical at any
 *     --jobs level and resume from a --cache store for free. A profile
 *     is the invocation's service time (cycles), its resident-set size
 *     (pages), and the HOT residue it leaves on a core (valid entries).
 *  2. Fleet stage (serial, integer-cycle event loop): arrivals are
 *     replayed in time order against per-core and per-instance state.
 *     A context switch onto a core charges the multi-proc sensitivity
 *     cost model of os/kernel_cost.h — kernel.context_switch_cycles
 *     plus one HOT-entry writeback per valid entry left by the
 *     previous instance (fleetSwitchCost() is definitionally equal to
 *     KernelCostModel::chargeContextSwitch, and a unit test holds the
 *     two together).
 *
 * Everything the fleet stage computes is integer cycles and counters;
 * reported doubles (latency percentiles in ms, throughput, packing
 * density) are derived at render time from those integers, so output
 * is byte-identical across --jobs levels and across resume-from-store.
 * An FNV-1a digest over the complete arrival-by-arrival outcome makes
 * "byte-identical" cheap to assert end to end.
 */

#ifndef MEMENTO_FLEET_FLEET_H
#define MEMENTO_FLEET_FLEET_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/arrivals.h"
#include "sim/config.h"
#include "wl/workloads.h"

namespace memento {

class ResultStore;

/** Per-invocation profile of one workload in the mix (stage 1). */
struct FleetProfile
{
    std::string id;
    /** Service time of one warm invocation (cycles). */
    Cycles serviceCycles = 0;
    /** Resident-set size one instance pins (pages). */
    std::uint64_t pages = 0;
    /** HOT entries a finished invocation leaves valid on its core. */
    std::uint64_t hotValidEntries = 0;
};

/**
 * Everything the fleet stage produces, as integers. The doubles every
 * report shows (ms percentiles, throughput, packing density) are
 * derived from these on demand, never stored, so two runs agree on
 * the doubles exactly iff they agree on this struct.
 */
struct FleetMetrics
{
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmHits = 0;
    std::uint64_t evictions = 0;   ///< Instances evicted under pressure.
    std::uint64_t expirations = 0; ///< Instances whose keep-alive lapsed.
    /** Last completion time (cycles from window start). */
    Cycles makespanCycles = 0;
    /** Nearest-rank invocation latency percentiles (cycles). */
    Cycles p50Cycles = 0;
    Cycles p99Cycles = 0;
    Cycles p999Cycles = 0;
    std::uint64_t peakRssPages = 0;
    /** Integral of resident instance count over cycles (packing). */
    std::uint64_t residencyCycleArea = 0;
    /** FNV-1a digest over the complete fleet outcome. */
    std::uint64_t digest = 0;

    bool operator==(const FleetMetrics &) const = default;

    // ---- Derived report values (pure functions of the integers) ----
    double latencyMs(const MachineConfig &cfg, Cycles latency) const;
    /** completed / makespan, in invocations per second. */
    double throughputRps(const MachineConfig &cfg) const;
    /** coldStarts / completed (0 when nothing completed). */
    double coldStartRate() const;
    /** Time-averaged resident instances (packing density). */
    double packingDensity() const;
};

/** The full fleet result. */
struct FleetReport
{
    /** The fleet configuration the run used (echoed into reports). */
    FleetConfig fleet;
    /** Stage-1 profiles, in mix order. */
    std::vector<FleetProfile> profiles;
    FleetMetrics metrics;
    /** True when the metrics came from a cached fleet summary cell. */
    bool fromCache = false;
};

struct FleetOptions
{
    MachineConfig cfg = defaultConfig();
    /** Stage-1 profile workers; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Optional result store (profile cells + fleet summary cell). */
    ResultStore *store = nullptr;
};

/**
 * Resolve fleet.mix to workload specs: "function" (the 14 function
 * workloads), "all" (all 23), or one workload id. fatal()s on an
 * unknown id, like workloadById.
 */
std::vector<WorkloadSpec> fleetMix(const FleetConfig &fleet);

/**
 * Cost of switching a core to a different instance: exactly what
 * KernelCostModel::chargeContextSwitch charges for a switch that
 * flushes @p hot_valid HOT entries.
 */
Cycles fleetSwitchCost(const MachineConfig &cfg, std::uint64_t hot_valid);

/**
 * Cost of reclaiming an evicted instance's memory (@p pages).
 * Baseline: munmap per-page teardown. With Memento: arena-granular
 * reclamation — the hardware frees whole arenas back to the page pool,
 * so the kernel tears down one unit per arena span instead of one per
 * page (see DESIGN.md §10).
 */
Cycles fleetReclaimCost(const MachineConfig &cfg, std::uint64_t pages);

/** Container set-up cost of a cold start (kernel_cost.h budget). */
Cycles fleetColdSetupCost(const MachineConfig &cfg);

/**
 * Canonical `key=value` text of the fleet shape, folded into the fleet
 * summary cell key and the fleet digest (the fleet analogue of
 * canonicalConfigText, which deliberately excludes fleet.*).
 */
std::string fleetCanonicalText(const FleetConfig &fleet);

/**
 * The fleet stage alone: replay @p arrivals (time-ordered) against
 * @p profiles under cfg.fleet policy. Exposed separately so the
 * property/fuzz tests can drive hand-built arrival traces and profiles
 * through the exact production scheduler.
 */
FleetMetrics simulateFleet(const std::vector<Arrival> &arrivals,
                           const std::vector<FleetProfile> &profiles,
                           const MachineConfig &cfg);

/**
 * Both stages: profile the mix (through the sweep engine, cached when
 * opts.store is set), generate arrivals, and run the fleet. A cached
 * fleet summary cell skips the fleet stage entirely. Throws SimError
 * when a profile run fails or the fleet config is invalid.
 */
FleetReport runFleet(const FleetOptions &opts);

/** Versioned JSON document (kind "fleet"). */
void writeFleetJson(std::ostream &os, const FleetReport &report,
                    const MachineConfig &cfg);

/** Human-readable rendering, digest line included. */
void printFleetText(std::ostream &os, const FleetReport &report,
                    const MachineConfig &cfg);

} // namespace memento

#endif // MEMENTO_FLEET_FLEET_H
