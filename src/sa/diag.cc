#include "sa/diag.h"

#include <ostream>

#include "sim/json.h"
#include "sim/logging.h"

namespace memento {

std::string_view
severityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Note: return "note";
      case DiagSeverity::Warning: return "warning";
      case DiagSeverity::Error: return "error";
    }
    panic("bad diagnostic severity");
}

const std::vector<DiagRule> &
allDiagRules()
{
    static const std::vector<DiagRule> rules = {
        // Trace checker (abstract interpretation over shadow state).
        {"trace-double-free", DiagSeverity::Error,
         "Free of an object that was already freed"},
        {"trace-free-unallocated", DiagSeverity::Error,
         "Free of an object id that was never allocated"},
        {"trace-use-after-free", DiagSeverity::Error,
         "Load/Store to an object after it was freed"},
        {"trace-use-unallocated", DiagSeverity::Error,
         "Load/Store to an object id that was never allocated"},
        {"trace-out-of-bounds", DiagSeverity::Error,
         "Load/Store offset past the end of a live object"},
        {"trace-duplicate-id", DiagSeverity::Error,
         "Malloc reuses an object id that is still live"},
        {"trace-size-class", DiagSeverity::Error,
         "Allocation size has no size class (zero, or larger than the "
         "per-class region so it cannot be HOT-routed)"},
        {"trace-arena-oversubscription", DiagSeverity::Error,
         "Live objects in one size class exceed the class's arena-region "
         "capacity"},
        {"trace-function-boundary", DiagSeverity::Error,
         "Operations follow a FunctionEnd terminator (out-of-order "
         "function boundary)"},
        {"trace-truncated", DiagSeverity::Error,
         "Op stream does not end with a FunctionEnd terminator"},
        {"trace-leak", DiagSeverity::Warning,
         "Objects still live when a stream ends without FunctionEnd"},
        {"trace-parse", DiagSeverity::Error,
         "Trace file is not parseable"},
        // Config linter (schema validation + cross-key contradictions).
        {"config-parse", DiagSeverity::Error,
         "Line is not a 'key = value' assignment"},
        {"config-unknown-key", DiagSeverity::Error,
         "Key is not in the configuration schema"},
        {"config-duplicate-key", DiagSeverity::Warning,
         "Key assigned more than once (the last value wins)"},
        {"config-bad-value", DiagSeverity::Error,
         "Value does not parse as the key's type"},
        {"config-out-of-range", DiagSeverity::Error,
         "Value is outside the key's declared range"},
        {"config-region-overlap", DiagSeverity::Error,
         "Memento region [MRS, MRE) is inverted or overlaps the "
         "heap/image layout"},
        {"config-bypass-no-memento", DiagSeverity::Warning,
         "Memento hardware keys set while memento.enabled is off"},
        {"config-check-conflict", DiagSeverity::Warning,
         "check.interval can never fire before the check.max_ops "
         "watchdog"},
        {"config-shard-range", DiagSeverity::Error,
         "sweep.shard_index is not below sweep.shard_count, so the "
         "shard computes nothing"},
        {"config-retry-no-keep-going", DiagSeverity::Warning,
         "sweep.retry is set without sweep.keep_going, so the first "
         "cell that exhausts its retries still aborts the sweep"},
        {"config-fleet-bad-arrival", DiagSeverity::Error,
         "fleet.arrival is not one of poisson, bursty, diurnal"},
        {"config-fleet-bad-mix", DiagSeverity::Error,
         "fleet.mix is neither 'function', 'all', nor a workload id"},
        {"config-fleet-keepalive-no-budget", DiagSeverity::Warning,
         "fleet.keep_alive_ms keeps instances warm with no "
         "fleet.memory_budget_pages, so node RSS grows unbounded"},
        // Source linter (determinism & thread-safety over src/ itself).
        {"src-unordered-iteration", DiagSeverity::Warning,
         "Iteration over std::unordered_{map,set}: hash order is "
         "implementation-defined, so whatever the loop feeds (stdout, "
         "digests, simulated access order) loses portability"},
        {"src-pointer-key-order", DiagSeverity::Warning,
         "std::map/std::set keyed by a raw pointer iterates in allocator "
         "address order, which differs run to run"},
        {"src-unseeded-random", DiagSeverity::Error,
         "Randomness outside the seeded sim/rng layer (rand, "
         "std::random_device, std::random_shuffle) breaks replay from "
         "the spec seed"},
        {"src-wallclock-in-sim", DiagSeverity::Warning,
         "Host wall-clock time read inside simulation/digest code; "
         "simulated results must derive from the cycle ledger only"},
        {"src-naked-cout", DiagSeverity::Warning,
         "Process-stream write outside the serialized logging layer; "
         "parallel workers interleave lines"},
        {"src-mutex-unannotated", DiagSeverity::Warning,
         "Data member of a mutex-holding class without MEMENTO_GUARDED_BY "
         "or MEMENTO_READONLY_AFTER_INIT (sim/thread_annotations.h)"},
        {"src-fatal-in-library", DiagSeverity::Warning,
         "fatal()/abort()/exit() in model-layer code that should raise "
         "recoverable SimError so --keep-going sweeps survive"},
        {"src-float-accumulation-in-digest", DiagSeverity::Warning,
         "Floating-point value fed to the FNV-1a digest; FP rounding and "
         "summation order vary across platforms"},
        {"src-include-cycle", DiagSeverity::Error,
         "#include \"...\" cycle among the scanned files"},
        {"src-todo-without-issue", DiagSeverity::Note,
         "Work-marker comment without an issue reference (#NNN or "
         "ISSUE-NNN), so the debt is untrackable"},
    };
    return rules;
}

const DiagRule *
findDiagRule(std::string_view id)
{
    for (const DiagRule &rule : allDiagRules()) {
        if (rule.id == id)
            return &rule;
    }
    return nullptr;
}

bool
DiagPolicy::suppressed(std::string_view rule_id) const
{
    return allowed.find(rule_id) != allowed.end();
}

DiagSeverity
DiagPolicy::effective(DiagSeverity severity) const
{
    if (werror && severity == DiagSeverity::Warning)
        return DiagSeverity::Error;
    return severity;
}

void
DiagReport::add(std::string_view rule_id, std::string subject,
                std::uint64_t location, std::string message)
{
    const DiagRule *rule = findDiagRule(rule_id);
    panic_if(rule == nullptr, "unregistered diagnostic rule '", rule_id,
             "'");
    diags_.push_back(Diag{rule->id, rule->severity, std::move(subject),
                          location, std::move(message)});
}

void
DiagReport::append(const DiagReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

std::size_t
DiagReport::errors(const DiagPolicy &policy) const
{
    std::size_t n = 0;
    for (const Diag &d : diags_) {
        if (!policy.suppressed(d.ruleId) &&
            policy.effective(d.severity) == DiagSeverity::Error)
            ++n;
    }
    return n;
}

std::size_t
DiagReport::warnings(const DiagPolicy &policy) const
{
    std::size_t n = 0;
    for (const Diag &d : diags_) {
        if (!policy.suppressed(d.ruleId) &&
            policy.effective(d.severity) == DiagSeverity::Warning)
            ++n;
    }
    return n;
}

std::size_t
DiagReport::notes(const DiagPolicy &policy) const
{
    std::size_t n = 0;
    for (const Diag &d : diags_) {
        if (!policy.suppressed(d.ruleId) &&
            policy.effective(d.severity) == DiagSeverity::Note)
            ++n;
    }
    return n;
}

bool
DiagReport::clean(const DiagPolicy &policy) const
{
    return errors(policy) == 0;
}

void
DiagReport::printText(std::ostream &os, const DiagPolicy &policy) const
{
    for (const Diag &d : diags_) {
        if (policy.suppressed(d.ruleId))
            continue;
        os << d.subject << ':';
        if (d.hasLocation())
            os << d.location << ':';
        os << ' ' << severityName(policy.effective(d.severity)) << ": "
           << d.message << " [" << d.ruleId << "]\n";
    }
}

void
DiagReport::printJson(std::ostream &os, const DiagPolicy &policy) const
{
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "diagnostics");
    w.key("findings").beginArray();
    for (const Diag &d : diags_) {
        if (policy.suppressed(d.ruleId))
            continue;
        w.beginObject();
        w.member("rule", d.ruleId);
        w.member("severity", severityName(policy.effective(d.severity)));
        w.member("subject", std::string_view(d.subject));
        if (d.hasLocation())
            w.member("location", d.location);
        w.member("message", std::string_view(d.message));
        w.endObject();
    }
    w.endArray();
    w.member("errors", static_cast<std::uint64_t>(errors(policy)));
    w.member("warnings", static_cast<std::uint64_t>(warnings(policy)));
    // Additive member (schema_version stays 1): advisory note count.
    w.member("notes", static_cast<std::uint64_t>(notes(policy)));
    w.endObject();
}

} // namespace memento
