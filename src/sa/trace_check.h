/**
 * @file
 * Static trace checker: an abstract interpreter that replays an
 * operation trace over *shadow allocation state only* — no caches, no
 * DRAM, no cycle ledger — and reports every memory-discipline
 * violation the full simulator would trip over mid-run, before any
 * cycle-accurate machinery is spun up.
 *
 * The shadow state is the sanitizer view of the heap: which object ids
 * are live (with size and allocation site), which were freed (with the
 * free site, for double-free / use-after-free messages), and how many
 * live objects each Memento size class holds (for the paper's
 * arena-discipline rules). One forward pass over the trace costs
 * O(ops) with O(live objects) memory — roughly two orders of magnitude
 * cheaper than `run` — which is what lets CI and the fuzz corpus vet
 * every input without paying simulation cost.
 *
 * Detected rules (see sa/diag.h for the registry):
 *   trace-double-free, trace-free-unallocated, trace-use-after-free,
 *   trace-use-unallocated, trace-out-of-bounds, trace-duplicate-id,
 *   trace-size-class, trace-arena-oversubscription,
 *   trace-function-boundary, trace-truncated, trace-leak, trace-parse.
 *
 * The checker never throws and never stops at the first finding: it
 * reports every violation with the exact op index, recovering with the
 * same state transition the dynamic executor would have applied.
 */

#ifndef MEMENTO_SA_TRACE_CHECK_H
#define MEMENTO_SA_TRACE_CHECK_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sa/diag.h"
#include "sim/config.h"
#include "wl/trace.h"

namespace memento {

/**
 * The admission rules the checker enforces, lifted from the machine
 * configuration (paper defaults: 64 classes x 8 B steps up to 512 B,
 * 256 objects per arena, 1 GiB of region per class).
 */
struct TraceCheckPolicy
{
    /** Largest object served by the hardware small-object path. */
    std::uint64_t maxSmallSize = 512;
    /** Size-class count (8-byte steps up to maxSmallSize). */
    unsigned numSizeClasses = 64;
    /** Objects per arena. */
    unsigned objectsPerArena = 256;
    /** Memento region bytes reserved per size class. */
    std::uint64_t perClassRegionBytes = 1ull << 30;

    static TraceCheckPolicy fromConfig(const MachineConfig &cfg);

    /**
     * Maximum live objects of size class @p cls: the number of arenas
     * the class region can hold (at least one) times the objects per
     * arena. Beyond this the hardware has no arena to place the next
     * object in — the over-subscription rule.
     */
    std::uint64_t classCapacity(unsigned cls) const;
};

/**
 * Abstract-interpret @p trace and append one diagnostic per violation
 * to @p report, each tagged with @p subject and the offending op
 * index. Never throws.
 */
void checkTrace(const Trace &trace, const TraceCheckPolicy &policy,
                const std::string &subject, DiagReport &report);

/**
 * readTrace() + checkTrace(): parse failures become trace-parse
 * diagnostics (with the offending line when the parser reports one)
 * instead of exceptions, so `check --trace FILE` diagnoses malformed
 * files uniformly.
 */
void checkTraceStream(std::istream &is, const TraceCheckPolicy &policy,
                      const std::string &subject, DiagReport &report);

/**
 * Apply @p plan's trace corruptions (truncation, record corruption) to
 * a copy of @p trace, with exactly the semantics FunctionExecutor::run
 * applies mid-simulation, when the plan targets @p workload_id. Lets
 * `check` flag statically every trace fault the dynamic invariant
 * checker would catch (the differential-testing contract); machine
 * faults (pool exhaustion, mmap failure, arena bit flips) have no
 * trace image and remain dynamic-only.
 */
Trace applyTraceFaultPlan(const Trace &trace, const FaultPlan &plan,
                          const std::string &workload_id);

} // namespace memento

#endif // MEMENTO_SA_TRACE_CHECK_H
