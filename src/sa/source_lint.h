/**
 * @file
 * Determinism & thread-safety source analyzer (`memento_sim lint-src`).
 *
 * A repo-aware C++ lint pass over this code base's own sources: a
 * lightweight comment/string-aware tokenizer (no libclang dependency)
 * feeds a registry of rules that encode the project's determinism
 * contract — `run` / `compare` / `check` / `fleet` output must be
 * byte-identical at any --jobs level and across result-store resumes —
 * at the *source* level, where the TSan job and the differential TEST_P
 * suites can only catch violations dynamically and after the fact.
 *
 * The rule catalog (all ids registered in sa/diag.h):
 *
 *   src-unordered-iteration        range-for / .begin() iteration over a
 *                                  std::unordered_{map,set} variable:
 *                                  hash order is implementation-defined,
 *                                  so anything it feeds (stdout, digests,
 *                                  the result store, simulated access
 *                                  order) silently loses portability.
 *   src-pointer-key-order          std::map/std::set keyed by a raw
 *                                  pointer: iteration order is the
 *                                  allocator's address order, different
 *                                  every run.
 *   src-unseeded-random            rand()/srand()/std::random_device/
 *                                  std::random_shuffle outside the seeded
 *                                  RNG layer (sim/rng, wl/, fleet/arrivals).
 *   src-wallclock-in-sim           time()/std::chrono::system_clock/
 *                                  gettimeofday/localtime in simulation
 *                                  or digest code (bench/ self-timing via
 *                                  steady_clock is exempt).
 *   src-naked-cout                 std::cout/std::cerr/printf writes
 *                                  outside the serialized logging layer
 *                                  (sim/logging) and the CLI front end.
 *   src-mutex-unannotated          a class declares a std::mutex but a
 *                                  sibling data member carries neither
 *                                  MEMENTO_GUARDED_BY nor
 *                                  MEMENTO_READONLY_AFTER_INIT (see
 *                                  sim/thread_annotations.h).
 *   src-fatal-in-library           fatal()/abort()/exit() in model-layer
 *                                  code (hw/ mem/ os/ rt/ machine/) that
 *                                  must raise recoverable SimError.
 *   src-float-accumulation-in-digest  a float/double expression fed to a
 *                                  DigestBuilder: FNV-1a inputs must be
 *                                  integers or the digest depends on FP
 *                                  rounding mode and summation order.
 *   src-include-cycle              `#include "..."` cycle among the
 *                                  scanned files.
 *   src-todo-without-issue         TODO/FIXME/XXX comment with no issue
 *                                  reference (`TODO(#123)` / `ISSUE-42`).
 *
 * Findings report through the shared DiagEngine (sa/diag.h), so
 * --allow, --werror, and --json (kind "diagnostics") work unchanged.
 *
 * An inline comment `lint-src: allow(rule-id)` on the same physical
 * line as a finding suppresses it — used for the handful of benign
 * patterns a lexical pass cannot prove safe (collect-keys-then-sort,
 * min_element by a unique projection).
 *
 * lintSourcePaths() walks the given files/directories, lints every
 * .h/.cc in sorted path order through machine/sweep.h's parallelFor,
 * and merges per-file reports in that order, then appends cross-file
 * include-cycle findings — byte-identical output at any --jobs level,
 * the same contract as `check all`.
 */

#ifndef MEMENTO_SA_SOURCE_LINT_H
#define MEMENTO_SA_SOURCE_LINT_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sa/diag.h"

namespace memento {

/** One `#include "..."` edge out of a scanned file. */
struct IncludeEdge
{
    std::string target; ///< Quoted include path, verbatim.
    unsigned line = 0;  ///< 1-based line of the directive.
};

/** Per-file scan byproducts needed by the cross-file passes. */
struct SourceScan
{
    /** Path key the include graph knows this file by (see below). */
    std::string key;
    std::vector<IncludeEdge> includes;
};

/**
 * Lint the translation unit @p text. @p subject tags the findings (and
 * drives the path-scoped rules: e.g. naked stream writes are exempt
 * under `sim/logging` and `tools/`). When @p scan is non-null it is
 * filled with this file's include edges for findIncludeCycles().
 * Findings append in line order; the function never throws.
 */
void lintSourceText(std::string_view text, const std::string &subject,
                    DiagReport &report, SourceScan *scan = nullptr);

/** lintSourceText() over the file at @p path (with @p key as the
 * include-graph key). An unreadable path is a user error and
 * fatal()s, matching the CLI's input-validation convention. */
void lintSourceFile(const std::string &path, const std::string &key,
                    DiagReport &report, SourceScan *scan = nullptr);

/**
 * Cross-file pass: detect `#include "..."` cycles among the scanned
 * files. Each cycle is reported exactly once, anchored at its
 * lexicographically smallest member, in sorted order — deterministic
 * regardless of scan parallelism. Includes that leave the scanned set
 * are ignored.
 */
void findIncludeCycles(const std::vector<SourceScan> &scans,
                       DiagReport &report);

/**
 * Recursively collect the .h/.cc files under each of @p paths (a file
 * argument is taken verbatim), returning (path, include-key) pairs in
 * sorted path order. The include key is the path relative to the
 * argument root that found it, which is how this repo spells includes
 * (`#include "machine/sweep.h"` relative to `src/`).
 */
std::vector<std::pair<std::string, std::string>>
collectSourceFiles(const std::vector<std::string> &paths);

/**
 * The whole `lint-src` pipeline: collect, lint each file via
 * parallelFor(@p jobs), merge per-file reports in sorted path order,
 * then append include-cycle findings. Byte-identical at any @p jobs.
 * Returns the number of files linted.
 */
std::size_t lintSourcePaths(const std::vector<std::string> &paths,
                            unsigned jobs, DiagReport &report);

} // namespace memento

#endif // MEMENTO_SA_SOURCE_LINT_H
